#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace fasea {

// --- HistogramSnapshot ---------------------------------------------------

std::int64_t HistogramSnapshot::ValueAtPercentile(double p) const {
  if (count <= 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 means the first sample.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(p / 100.0 *
                                             static_cast<double>(count))));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Report the highest value this bucket can hold, clamped to what
      // was actually observed — exact for unit-width buckets and for the
      // extremes, ≤ one bucket width optimistic elsewhere.
      const std::int64_t upper = Histogram::BucketUpperBound(i);
      std::int64_t value = upper == INT64_MAX ? max : upper - 1;
      return std::clamp(value, min, max);
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& baseline) const {
  FASEA_CHECK(baseline.buckets.empty() ||
              baseline.buckets.size() == buckets.size());
  HistogramSnapshot delta;
  delta.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::int64_t before =
        i < baseline.buckets.size() ? baseline.buckets[i] : 0;
    FASEA_CHECK(buckets[i] >= before &&
                "baseline is not an earlier snapshot of this histogram");
    delta.buckets[i] = buckets[i] - before;
    delta.count += delta.buckets[i];
  }
  if (delta.count == 0) return delta;
  delta.sum = sum - baseline.sum;
  std::size_t first = 0;
  while (delta.buckets[first] == 0) ++first;
  std::size_t last = delta.buckets.size() - 1;
  while (delta.buckets[last] == 0) --last;
  // The cumulative min/max are exact when they land inside the delta's
  // edge buckets (they then bound the delta's own extremes at least as
  // tightly as the bucket edges do); otherwise fall back to the edges.
  const std::int64_t first_lo = Histogram::BucketLowerBound(first);
  const std::int64_t first_hi = Histogram::BucketUpperBound(first);
  delta.min = (min >= first_lo && min < first_hi) ? min : first_lo;
  const std::int64_t last_hi = Histogram::BucketUpperBound(last);
  if (max >= Histogram::BucketLowerBound(last) && max < last_hi) {
    delta.max = max;
  } else {
    delta.max = last_hi == INT64_MAX ? max : last_hi - 1;
  }
  return delta;
}

// --- Histogram -----------------------------------------------------------

std::int64_t Histogram::BucketLowerBound(std::size_t index) {
  FASEA_CHECK(index < kNumBuckets);
  if (index < 2 * kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t block = index >> kSubBucketBits;
  const std::size_t pos = index & (kSubBuckets - 1);
  const int shift = static_cast<int>(block) - 1;
  return static_cast<std::int64_t>((kSubBuckets + pos) << shift);
}

std::int64_t Histogram::BucketUpperBound(std::size_t index) {
  FASEA_CHECK(index < kNumBuckets);
  if (index == kNumBuckets - 1) return INT64_MAX;  // Overflow bucket.
  if (index < 2 * kSubBuckets) return static_cast<std::int64_t>(index) + 1;
  const std::size_t block = index >> kSubBucketBits;
  const int shift = static_cast<int>(block) - 1;
  return BucketLowerBound(index) + (std::int64_t{1} << shift);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::int64_t n = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = n;
    snap.count += n;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::int64_t min = min_.load(std::memory_order_relaxed);
  const std::int64_t max = max_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 && min != INT64_MAX ? min : 0;
  snap.max = snap.count > 0 && max != INT64_MIN ? max : 0;
  return snap;
}

// --- MetricsRegistry -----------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(const std::string& name,
                                                     Kind kind) {
  FASEA_CHECK(!name.empty());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  FASEA_CHECK(entry.kind == kind &&
              "metric name already registered as a different kind");
  return &entry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(name, Kind::kHistogram)->histogram.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(name, entry.counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        snap.histograms.emplace_back(name, entry.histogram->Snapshot());
        break;
    }
  }
  return snap;
}

namespace {

void AppendJsonHistogram(const HistogramSnapshot& h, std::string* out) {
  out->append(StrFormat(
      "{\"count\":%lld,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
      "\"mean\":%s,\"p50\":%lld,\"p90\":%lld,\"p95\":%lld,\"p99\":%lld,"
      "\"buckets\":[",
      static_cast<long long>(h.count), static_cast<long long>(h.sum),
      static_cast<long long>(h.min), static_cast<long long>(h.max),
      FormatDouble(h.Mean(), 6).c_str(),
      static_cast<long long>(h.ValueAtPercentile(50)),
      static_cast<long long>(h.ValueAtPercentile(90)),
      static_cast<long long>(h.ValueAtPercentile(95)),
      static_cast<long long>(h.ValueAtPercentile(99))));
  bool first = true;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    out->append(StrFormat(
        "%s[%lld,%lld]", first ? "" : ",",
        static_cast<long long>(Histogram::BucketLowerBound(i)),
        static_cast<long long>(h.buckets[i])));
    first = false;
  }
  out->append("]}");
}

bool IsPrometheusNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; every
// illegal character (dots, dashes, slashes, spaces, ...) collapses to '_'
// and a leading digit gains a '_' prefix, so scrapers ingest any dotted
// registry name cleanly.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(IsPrometheusNameChar(c) ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// HELP text: the original dotted name survives the rename (escaped per the
// exposition format: backslash and newline), so dashboards can map the
// exported series back to the registry catalog in DESIGN.md §8.
std::string PrometheusHelp(const std::string& name) {
  std::string escaped;
  escaped.reserve(name.size());
  for (char c : name) {
    if (c == '\\') {
      escaped.append("\\\\");
    } else if (c == '\n') {
      escaped.append("\\n");
    } else {
      escaped.push_back(c);
    }
  }
  return "FASEA metric '" + escaped + "'";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out.append(StrFormat("%s\"%s\":%lld", i == 0 ? "" : ",",
                         snap.counters[i].first.c_str(),
                         static_cast<long long>(snap.counters[i].second)));
  }
  out.append("},\"gauges\":{");
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out.append(StrFormat("%s\"%s\":%s", i == 0 ? "" : ",",
                         snap.gauges[i].first.c_str(),
                         FormatDouble(snap.gauges[i].second, 6).c_str()));
  }
  out.append("},\"histograms\":{");
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    out.append(StrFormat("%s\"%s\":", i == 0 ? "" : ",",
                         snap.histograms[i].first.c_str()));
    AppendJsonHistogram(snap.histograms[i].second, &out);
  }
  out.append("}}");
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PrometheusName(name);
    out.append(StrFormat("# HELP %s %s\n# TYPE %s counter\n%s %lld\n",
                         prom.c_str(), PrometheusHelp(name).c_str(),
                         prom.c_str(), prom.c_str(),
                         static_cast<long long>(value)));
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    out.append(StrFormat("# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
                         prom.c_str(), PrometheusHelp(name).c_str(),
                         prom.c_str(), prom.c_str(),
                         FormatDouble(value, 6).c_str()));
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = PrometheusName(name);
    out.append(StrFormat("# HELP %s %s\n# TYPE %s summary\n", prom.c_str(),
                         PrometheusHelp(name).c_str(), prom.c_str()));
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
      out.append(StrFormat(
          "%s{quantile=\"%s\"} %lld\n", prom.c_str(),
          FormatDouble(q, 2).c_str(),
          static_cast<long long>(h.ValueAtPercentile(q * 100.0))));
    }
    out.append(StrFormat("%s_sum %lld\n%s_count %lld\n", prom.c_str(),
                         static_cast<long long>(h.sum), prom.c_str(),
                         static_cast<long long>(h.count)));
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace fasea
