#include "obs/trace.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace fasea {

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  FASEA_CHECK(capacity > 0);
  slots_.reserve(std::min<std::size_t>(capacity, 1024));
}

void TraceRing::Record(const TraceEvent& event) {
  if constexpr (!kMetricsEnabled) {
    (void)event;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (slots_.size() < capacity_) {
    slots_.push_back(event);
    return;
  }
  slots_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(slots_.size());
  // Once wrapped, `next_` points at the oldest slot.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out.push_back(slots_[(next_ + i) % slots_.size()]);
  }
  return out;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  next_ = 0;
}

std::int64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<TraceEvent> TraceRing::FilteredEvents(
    std::size_t last_rounds) const {
  std::vector<TraceEvent> events = Events();
  if (last_rounds == 0 || events.empty()) return events;
  std::int64_t max_round = 0;
  for (const TraceEvent& e : events) max_round = std::max(max_round, e.round);
  const std::int64_t cutoff =
      max_round - static_cast<std::int64_t>(last_rounds) + 1;
  std::erase_if(events,
                [cutoff](const TraceEvent& e) { return e.round < cutoff; });
  return events;
}

std::string TraceRing::DumpText(std::size_t last_rounds) const {
  const std::vector<TraceEvent> events = FilteredEvents(last_rounds);
  if (events.empty()) return "trace: no spans recorded\n";

  // Group by round, preserving recording order inside each round. The
  // ring is ordered oldest → newest, so a stable sort on round keeps
  // stage order within a round.
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.round < b.round;
                   });
  std::string out;
  std::int64_t current_round = -1;
  std::int64_t round_origin_ns = 0;
  for (const TraceEvent& e : sorted) {
    if (e.round != current_round) {
      current_round = e.round;
      round_origin_ns = e.start_ns;
      out.append(StrFormat("round %lld:\n",
                           static_cast<long long>(e.round)));
    }
    out.append(StrFormat(
        "  %-24s %10.1fus  @+%.1fus\n", e.name,
        static_cast<double>(e.duration_ns) / 1e3,
        static_cast<double>(e.start_ns - round_origin_ns) / 1e3));
  }
  return out;
}

std::string TraceRing::ToJson(std::size_t last_rounds) const {
  const std::vector<TraceEvent> events = FilteredEvents(last_rounds);
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out.append(StrFormat(
        "%s{\"name\":\"%s\",\"round\":%lld,\"start_ns\":%lld,"
        "\"duration_ns\":%lld,\"trace_id\":\"%016llx\"}",
        i == 0 ? "" : ",", events[i].name,
        static_cast<long long>(events[i].round),
        static_cast<long long>(events[i].start_ns),
        static_cast<long long>(events[i].duration_ns),
        static_cast<unsigned long long>(events[i].trace_id)));
  }
  out.append("]");
  return out;
}

std::string TraceRing::DumpTransactionTimeline() const {
  const std::vector<TraceEvent> events = Events();
  // Group by trace id in first-seen (oldest-transaction-first) order; the
  // ring is oldest → newest, so a stable sort keeps span order within a
  // transaction too.
  std::vector<std::uint64_t> order;
  for (const TraceEvent& e : events) {
    if (e.trace_id == 0) continue;
    if (std::find(order.begin(), order.end(), e.trace_id) == order.end()) {
      order.push_back(e.trace_id);
    }
  }
  if (order.empty()) return "trace: no cross-shard transactions recorded\n";
  std::string out;
  for (std::uint64_t id : order) {
    std::int64_t origin_ns = 0;
    bool first = true;
    for (const TraceEvent& e : events) {
      if (e.trace_id != id) continue;
      if (first) {
        origin_ns = e.start_ns;
        first = false;
        out.append(StrFormat("txn trace=%016llx:\n",
                             static_cast<unsigned long long>(id)));
      }
      out.append(StrFormat(
          "  %-24s round=%-8lld %10.1fus  @+%.1fus\n", e.name,
          static_cast<long long>(e.round),
          static_cast<double>(e.duration_ns) / 1e3,
          static_cast<double>(e.start_ns - origin_ns) / 1e3));
    }
  }
  return out;
}

TraceRing* TraceRing::Global() {
  static TraceRing* ring = new TraceRing();
  return ring;
}

void RecordSpanSinceImpl(const char* name, std::int64_t round,
                         std::int64_t start_ns, Histogram* histogram,
                         std::uint64_t trace_id) {
  const std::int64_t duration = Stopwatch::NowNanos() - start_ns;
  TraceRing::Global()->Record(
      TraceEvent{name, round, start_ns, duration, trace_id});
  if (histogram != nullptr) histogram->Record(duration);
}

}  // namespace fasea
