// Process-wide runtime metrics for the serving pipeline.
//
// Three primitives, all safe for concurrent recording with relaxed
// atomics and no locks on the hot path:
//
//   Counter    — monotonically increasing 64-bit count (appends, fsyncs,
//                degraded-mode entries, ...).
//   Gauge      — last-written value (health bits, rounds served).
//   Histogram  — fixed-bucket log-scale value distribution with
//                p50/p95/p99/max extraction; designed for nanosecond
//                latencies but works for any non-negative magnitude.
//
// MetricsRegistry owns named instances: components resolve their metrics
// by name once (at construction — a mutex-protected map lookup) and then
// record through plain pointers, so the per-round cost is a handful of
// relaxed atomic adds. `MetricsRegistry::Global()` is the process-wide
// registry every production component uses; tests may build private
// registries.
//
// Export surfaces: Snapshot() (structured), ToJson() (machine-readable,
// consumed by `fasea_cli stats` and tools/check.sh --metrics-smoke), and
// ToPrometheusText() (scrape-style text).
//
// Compile-time kill switch: building with -DFASEA_DISABLE_METRICS
// (CMake option of the same name) turns every Record/Add/Set into a
// no-op that the optimizer deletes, for measuring instrumentation
// overhead (bench/micro_policies) or shaving the last atomics off an
// embedded build. Registration and snapshots still work; they report
// zeros.
#ifndef FASEA_OBS_METRICS_H_
#define FASEA_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fasea {

#ifdef FASEA_DISABLE_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(std::int64_t n) {
    if constexpr (kMetricsEnabled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if constexpr (kMetricsEnabled) {
      value_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram; all derived statistics
/// (percentiles, mean) are computed on the copy so a snapshot is
/// internally consistent even while recording continues.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when empty.
  std::int64_t max = 0;
  std::vector<std::int64_t> buckets;  // Size Histogram::kNumBuckets.

  /// Value at percentile p ∈ [0, 100]: the upper edge of the bucket
  /// containing the p-th sample, clamped to the observed [min, max] (so a
  /// single-sample histogram reports that sample exactly). Empty → 0.
  std::int64_t ValueAtPercentile(double p) const;
  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / count : 0.0;
  }

  /// The distribution recorded between `baseline` (an EARLIER snapshot of
  /// the same histogram) and this snapshot: counts, sums, and buckets
  /// subtract element-wise, so percentiles on the result describe only
  /// the post-baseline samples. This is the warmup-exclusion primitive —
  /// histograms are cumulative and process-wide, so a load bench that
  /// wants steady-state p99 snapshots after warmup and reports the delta.
  /// min/max are re-derived from the delta's non-empty bucket edges,
  /// tightened to this snapshot's exact extremes when those fall inside
  /// the edge buckets (exact unless the all-time extreme predates the
  /// baseline yet shares a bucket; then off by < one bucket width).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& baseline) const;
};

/// Log-scale histogram of non-negative 64-bit values (HdrHistogram-style
/// indexing): each power-of-two octave is split into kSubBuckets linear
/// sub-buckets, giving ≤ 100/kSubBuckets % relative bucket width with a
/// small fixed array and pure integer arithmetic. Values 0..2·kSubBuckets
/// land in exact unit-width buckets; values past the last boundary land
/// in the overflow bucket (index kNumBuckets−1), whose reported
/// percentile value is clamped to the observed max.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave.
  static constexpr std::int64_t kSubBuckets = 1 << kSubBucketBits;
  // 384 buckets cover [0, 2^50) ≈ 13 days in nanoseconds; anything larger
  // clamps into the final (overflow) bucket.
  static constexpr std::size_t kNumBuckets = 384;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Negative values clamp to 0 (the stopwatch can
  /// legally report 0 ns on a coarse clock; it never reports negatives —
  /// the clamp is for arbitrary caller-supplied magnitudes).
  void Record(std::int64_t value) {
    if constexpr (kMetricsEnabled) {
      if (value < 0) value = 0;
      buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(value, std::memory_order_relaxed);
      UpdateExtreme(&min_, value, /*want_min=*/true);
      UpdateExtreme(&max_, value, /*want_min=*/false);
    } else {
      (void)value;
    }
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index of `value` (≥ 0); the top bucket absorbs overflow.
  static std::size_t BucketIndex(std::int64_t value) {
    const auto v = static_cast<std::uint64_t>(value);
    std::size_t index;
    if (v < 2 * kSubBuckets) {
      index = static_cast<std::size_t>(v);
    } else {
      const int octave = 63 - std::countl_zero(v);
      const int shift = octave - kSubBucketBits;
      index = static_cast<std::size_t>(
          (static_cast<std::uint64_t>(octave - kSubBucketBits)
           << kSubBucketBits) +
          (v >> shift));
    }
    return index < kNumBuckets ? index : kNumBuckets - 1;
  }

  /// Inclusive lower edge of bucket `index`.
  static std::int64_t BucketLowerBound(std::size_t index);
  /// Exclusive upper edge of bucket `index` (the overflow bucket reports
  /// INT64_MAX).
  static std::int64_t BucketUpperBound(std::size_t index);

 private:
  static void UpdateExtreme(std::atomic<std::int64_t>* slot,
                            std::int64_t value, bool want_min) {
    std::int64_t seen = slot->load(std::memory_order_relaxed);
    while ((want_min ? value < seen : value > seen) &&
           !slot->compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// One registry snapshot: every metric, sorted by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first
  /// use. A name permanently binds to its first-requested kind; asking
  /// for it as a different kind aborts (catches catalog typos early).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count, sum, min, max, mean, p50, p90, p95, p99, buckets: [[lo,
  /// count], ...]}}} — buckets lists only non-empty ones.
  std::string ToJson() const;

  /// Prometheus-style text: counters/gauges as-is, histograms as summary
  /// quantiles plus _count/_sum. Metric names have '.' mapped to '_'.
  std::string ToPrometheusText() const;

  /// The process-wide registry used by all production instrumentation.
  static MetricsRegistry* Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Shorthand for MetricsRegistry::Global().
inline MetricsRegistry* Metrics() { return MetricsRegistry::Global(); }

}  // namespace fasea

#endif  // FASEA_OBS_METRICS_H_
