#include "obs/offline_eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/linear_policy_base.h"
#include "model/platform_state.h"
#include "obs/metrics.h"

namespace fasea {

namespace {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs, double mean) {
  if (xs.size() < 2) return 0.0;
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

EstimatorResult NormalEstimate(const std::vector<double>& terms, double z) {
  EstimatorResult r;
  r.mean = Mean(terms);
  const double sd = SampleStdDev(terms, r.mean);
  r.std_error =
      terms.empty() ? 0.0 : sd / std::sqrt(static_cast<double>(terms.size()));
  r.ci_low = r.mean - z * r.std_error;
  r.ci_high = r.mean + z * r.std_error;
  return r;
}

}  // namespace

OfflineEvaluator::OfflineEvaluator(const ProblemInstance* instance,
                                   DecisionLogScan log,
                                   std::vector<InteractionRecord> outcomes,
                                   RoundRegenerator regenerate)
    : instance_(instance),
      log_(std::move(log)),
      outcomes_(std::move(outcomes)),
      regenerate_(std::move(regenerate)),
      direct_model_(instance->dim(),
                    log_.header.lambda > 0.0 ? log_.header.lambda : 1.0) {
  FASEA_CHECK(instance_ != nullptr);
  // Outcomes come from a recovered WAL: already duplicate-collapsed, but
  // index by round with last-wins anyway so a re-served round pairs with
  // the decision that actually stood.
  std::unordered_map<std::int64_t, std::size_t> outcome_by_round;
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    outcome_by_round[outcomes_[i].t] = i;
  }
  for (const DecisionRecord& decision : log_.records) {
    auto it = outcome_by_round.find(decision.round);
    if (it == outcome_by_round.end()) {
      // The proposal was durable but its feedback never was (torn tail,
      // crash before SubmitFeedback): no reward to weight.
      ++unmatched_decisions_;
      continue;
    }
    const InteractionRecord& outcome = outcomes_[it->second];
    if (outcome.arrangement != decision.arrangement) {
      ++pairing_mismatches_;
      continue;
    }
    pairs_.push_back(MatchedExample{&decision, &outcome});
  }
  // Direct model: one ridge fit over every matched (context, reward)
  // observation, frozen before any candidate is evaluated. (In-sample by
  // construction — the DR bias guard is the importance-weighted residual
  // term, not a held-out fit.)
  for (const MatchedExample& ex : pairs_) {
    for (std::size_t i = 0; i < ex.outcome->arrangement.size(); ++i) {
      direct_model_.Update(ex.outcome->contexts[i],
                           static_cast<double>(ex.outcome->feedback[i]));
    }
  }
}

double OfflineEvaluator::DirectValue(std::span<const double> scores,
                                     const Arrangement& arrangement) {
  double value = 0.0;
  for (EventId v : arrangement) {
    value += std::clamp(scores[v], 0.0, 1.0);  // Rewards live in {0,1}.
  }
  return value;
}

OfflineEvalResult OfflineEvaluator::Evaluate(
    Policy* candidate, const OfflineEvalOptions& options) const {
  FASEA_CHECK(candidate != nullptr);
  FASEA_CHECK(options.propensity_floor > 0.0);
  OfflineEvalResult res;
  res.candidate_id = std::string(candidate->name());
  res.skipped_no_outcome = unmatched_decisions_;
  res.skipped_pairing_mismatch = pairing_mismatches_;

  auto* linear = dynamic_cast<LinearPolicyBase*>(candidate);
  PlatformState state(*instance_);
  std::vector<double> scores(instance_->num_events());
  std::vector<double> weights, rewards, ips_terms, dr_terms;
  RoundContext learn_scratch;
  learn_scratch.contexts = ContextMatrix(instance_->num_events(),
                                         instance_->dim());

  for (const MatchedExample& ex : pairs_) {
    const DecisionRecord& decision = *ex.decision;
    const InteractionRecord& outcome = *ex.outcome;
    const RoundContext round = regenerate_(decision.round);
    if (HashRoundContext(round) == decision.context_hash) {
      if (linear != nullptr &&
          linear->ridge().num_observations() != decision.theta_version) {
        ++res.theta_version_mismatches;
      }
      double p_b = decision.propensity;
      double p_c = candidate->PropensityOf(decision.round, round, state,
                                           decision.arrangement);
      if (p_b < options.propensity_floor) {
        p_b = options.propensity_floor;
        ++res.clipped_propensities;
      }
      if (p_c < options.propensity_floor) {
        p_c = options.propensity_floor;
        ++res.clipped_propensities;
      }
      const double w = p_c / p_b;
      const double r = static_cast<double>(NumAccepted(outcome.feedback));
      const Arrangement candidate_action =
          candidate->Propose(decision.round, round, state);
      direct_model_.PredictBatch(round.contexts, scores);
      const double q_logged = DirectValue(scores, decision.arrangement);
      const double q_candidate = DirectValue(scores, candidate_action);
      weights.push_back(w);
      rewards.push_back(r);
      ips_terms.push_back(w * r);
      dr_terms.push_back(q_candidate + w * (r - q_logged));
    } else {
      // Regeneration does not reproduce what the policy saw: the example
      // cannot be estimated, but the outcome still drives learning and
      // capacity so later rounds stay on the logged trajectory.
      ++res.skipped_context_mismatch;
    }
    if (options.learn_from_log) {
      // The outcome record carries the exact context rows the behavior
      // learner consumed — bit-identical progressive replay.
      InteractionLog::FeedRecord(outcome, instance_->num_events(),
                                 instance_->dim(), candidate,
                                 &learn_scratch);
    }
    for (std::size_t i = 0; i < outcome.arrangement.size(); ++i) {
      if (outcome.feedback[i]) state.ConsumeOne(outcome.arrangement[i]);
    }
  }

  res.examples = static_cast<std::int64_t>(ips_terms.size());
  res.observed_mean_reward = Mean(rewards);
  res.mean_weight = Mean(weights);
  double w_sum = 0.0, w_sq_sum = 0.0;
  for (double w : weights) {
    w_sum += w;
    w_sq_sum += w * w;
  }
  res.effective_sample_size =
      w_sq_sum > 0.0 ? (w_sum * w_sum) / w_sq_sum : 0.0;

  res.ips = NormalEstimate(ips_terms, options.confidence_z);
  // SNIPS: ratio estimator; its spread is the spread of the normalized
  // residuals w (r − mean) / w̄.
  res.snips.mean = w_sum > 0.0 ? Mean(ips_terms) * static_cast<double>(
                                     ips_terms.size()) / w_sum
                               : 0.0;
  {
    std::vector<double> residuals;
    residuals.reserve(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      residuals.push_back(res.mean_weight > 0.0
                              ? weights[i] * (rewards[i] - res.snips.mean) /
                                    res.mean_weight
                              : 0.0);
    }
    const EstimatorResult spread =
        NormalEstimate(residuals, options.confidence_z);
    res.snips.std_error = spread.std_error;
    res.snips.ci_low = res.snips.mean - options.confidence_z *
                                            res.snips.std_error;
    res.snips.ci_high = res.snips.mean + options.confidence_z *
                                             res.snips.std_error;
  }
  res.dr = NormalEstimate(dr_terms, options.confidence_z);

  // Diagnostics for scrapers; per-run values are also in the result.
  Metrics()->GetCounter("fasea.replay.examples")->Add(res.examples);
  Metrics()
      ->GetCounter("fasea.replay.clipped_propensities")
      ->Add(res.clipped_propensities);
  Metrics()
      ->GetCounter("fasea.replay.context_mismatches")
      ->Add(res.skipped_context_mismatch);
  Metrics()
      ->GetCounter("fasea.replay.unmatched_decisions")
      ->Add(res.skipped_no_outcome);
  Metrics()
      ->GetCounter("fasea.replay.theta_version_mismatches")
      ->Add(res.theta_version_mismatches);
  Metrics()->GetGauge("fasea.replay.effective_sample_size")
      ->Set(res.effective_sample_size);
  Metrics()->GetGauge("fasea.replay.mean_weight")->Set(res.mean_weight);
  return res;
}

}  // namespace fasea
