#include "obs/decision_log.h"

#include <bit>
#include <utility>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/strings.h"

namespace fasea {

namespace {

// Frame kinds inside a decision log. Distinct from the shard-WAL kinds:
// a decision log is its own directory with its own payload layer.
constexpr std::uint8_t kHeaderFrame = 0x00;
constexpr std::uint8_t kDecisionFrame = 0x01;

constexpr std::uint64_t kHashSeed = 0xCBF29CE484222325ULL;  // FNV offset.

inline std::uint64_t HashFold(std::uint64_t h, std::uint64_t v) {
  return Mix64(h ^ (v + 0x9E3779B97F4A7C15ULL));
}

}  // namespace

std::uint64_t HashRoundContext(const RoundContext& round) {
  std::uint64_t h = kHashSeed;
  h = HashFold(h, static_cast<std::uint64_t>(round.user_id));
  h = HashFold(h, static_cast<std::uint64_t>(round.user_capacity));
  h = HashFold(h, round.contexts.rows());
  h = HashFold(h, round.contexts.cols());
  for (std::size_t v = 0; v < round.contexts.rows(); ++v) {
    for (double x : round.contexts.Row(v)) {
      h = HashFold(h, std::bit_cast<std::uint64_t>(x));
    }
  }
  for (std::uint8_t a : round.available) h = HashFold(h, a);
  return h;
}

std::string EncodeDecisionLogHeader(const DecisionLogHeader& header) {
  std::string out;
  AppendU8(&out, kHeaderFrame);
  AppendU32(&out, header.version);
  AppendU64(&out, header.num_events);
  AppendU64(&out, header.dim);
  AppendI64(&out, header.horizon);
  AppendU64(&out, header.workload_seed);
  AppendDouble(&out, header.lambda);
  AppendDouble(&out, header.alpha);
  AppendDouble(&out, header.delta);
  AppendDouble(&out, header.epsilon);
  AppendDouble(&out, header.temperature);
  AppendU64(&out, header.policy_seed);
  AppendU32(&out, static_cast<std::uint32_t>(header.policy_id.size()));
  out += header.policy_id;
  return out;
}

std::string EncodeDecisionRecord(const DecisionRecord& record) {
  std::string out;
  AppendU8(&out, kDecisionFrame);
  AppendI64(&out, record.round);
  AppendU64(&out, record.txn);
  AppendI64(&out, record.user_id);
  AppendI64(&out, record.user_capacity);
  AppendU64(&out, record.context_hash);
  AppendU64(&out, record.trace_id);
  AppendI64(&out, record.theta_version);
  AppendDouble(&out, record.propensity);
  AppendU32(&out, static_cast<std::uint32_t>(record.policy_id.size()));
  out += record.policy_id;
  AppendU32(&out, static_cast<std::uint32_t>(record.arrangement.size()));
  for (EventId v : record.arrangement) AppendU32(&out, v);
  return out;
}

namespace {

StatusOr<DecisionLogHeader> DecodeHeaderBody(std::string_view payload) {
  ByteReader reader(payload, "decision log: truncated header");
  DecisionLogHeader h;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  h.version = *version;
  auto num_events = reader.ReadU64();
  if (!num_events.ok()) return num_events.status();
  h.num_events = *num_events;
  auto dim = reader.ReadU64();
  if (!dim.ok()) return dim.status();
  h.dim = *dim;
  auto horizon = reader.ReadI64();
  if (!horizon.ok()) return horizon.status();
  h.horizon = *horizon;
  auto workload_seed = reader.ReadU64();
  if (!workload_seed.ok()) return workload_seed.status();
  h.workload_seed = *workload_seed;
  for (double* field : {&h.lambda, &h.alpha, &h.delta, &h.epsilon,
                        &h.temperature}) {
    auto value = reader.ReadDouble();
    if (!value.ok()) return value.status();
    *field = *value;
  }
  auto policy_seed = reader.ReadU64();
  if (!policy_seed.ok()) return policy_seed.status();
  h.policy_seed = *policy_seed;
  auto name_len = reader.ReadU32();
  if (!name_len.ok()) return name_len.status();
  if (reader.remaining() != *name_len) {
    return DataLossError("decision log: header policy id length mismatch");
  }
  h.policy_id = std::string(payload.substr(reader.position(), *name_len));
  return h;
}

StatusOr<DecisionRecord> DecodeRecordBody(std::string_view payload) {
  ByteReader reader(payload, "decision log: truncated record");
  DecisionRecord r;
  auto round = reader.ReadI64();
  if (!round.ok()) return round.status();
  r.round = *round;
  auto txn = reader.ReadU64();
  if (!txn.ok()) return txn.status();
  r.txn = *txn;
  auto user_id = reader.ReadI64();
  if (!user_id.ok()) return user_id.status();
  r.user_id = *user_id;
  auto user_capacity = reader.ReadI64();
  if (!user_capacity.ok()) return user_capacity.status();
  r.user_capacity = *user_capacity;
  auto context_hash = reader.ReadU64();
  if (!context_hash.ok()) return context_hash.status();
  r.context_hash = *context_hash;
  auto trace_id = reader.ReadU64();
  if (!trace_id.ok()) return trace_id.status();
  r.trace_id = *trace_id;
  auto theta_version = reader.ReadI64();
  if (!theta_version.ok()) return theta_version.status();
  r.theta_version = *theta_version;
  auto propensity = reader.ReadDouble();
  if (!propensity.ok()) return propensity.status();
  r.propensity = *propensity;
  auto name_len = reader.ReadU32();
  if (!name_len.ok()) return name_len.status();
  if (reader.remaining() < *name_len) {
    return DataLossError("decision log: truncated policy id");
  }
  r.policy_id = std::string(payload.substr(reader.position(), *name_len));
  ByteReader tail(payload.substr(reader.position() + *name_len),
                  "decision log: truncated arrangement");
  auto n = tail.ReadU32();
  if (!n.ok()) return n.status();
  r.arrangement.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto v = tail.ReadU32();
    if (!v.ok()) return v.status();
    r.arrangement.push_back(*v);
  }
  if (!tail.AtEnd()) {
    return DataLossError("decision log: trailing bytes after record");
  }
  return r;
}

}  // namespace

StatusOr<std::unique_ptr<DecisionLogWriter>> DecisionLogWriter::Open(
    Env* env, std::string dir, const DecisionLogHeader& header,
    WalOptions options) {
  auto wal = WalWriter::Open(env, std::move(dir), options);
  if (!wal.ok()) return wal.status();
  auto writer = std::unique_ptr<DecisionLogWriter>(
      new DecisionLogWriter(std::move(wal).value()));
  if (Status st = writer->wal_->Append(EncodeDecisionLogHeader(header));
      !st.ok()) {
    return st;
  }
  return writer;
}

Status DecisionLogWriter::Append(const DecisionRecord& record) {
  Status st = wal_->Append(EncodeDecisionRecord(record));
  if (!st.ok()) {
    failures_metric_->Increment();
    return st;
  }
  ++records_appended_;
  records_metric_->Increment();
  return Status::Ok();
}

Status DecisionLogWriter::Sync() { return wal_->Sync(); }

Status DecisionLogWriter::Close() { return wal_->Close(); }

StatusOr<DecisionLogScan> ReadDecisionLog(Env* env, const std::string& dir) {
  auto scan = ScanWal(env, dir, CorruptFramePolicy::kFail);
  if (!scan.ok()) return scan.status();
  DecisionLogScan out;
  out.segments_scanned = scan->segments_scanned;
  out.bytes_truncated = scan->bytes_truncated;
  for (const std::string& payload : scan->payloads) {
    if (payload.empty()) {
      return DataLossError("decision log: empty frame");
    }
    const auto kind = static_cast<std::uint8_t>(payload[0]);
    const std::string_view body = std::string_view(payload).substr(1);
    if (kind == kHeaderFrame) {
      auto header = DecodeHeaderBody(body);
      if (!header.ok()) return header.status();
      if (out.has_header) {
        // A reopened writer re-frames its header; only the first governs.
        ++out.duplicates_collapsed;
        continue;
      }
      out.header = std::move(header).value();
      out.has_header = true;
      continue;
    }
    if (kind != kDecisionFrame) {
      return DataLossError(
          StrFormat("decision log: unknown frame kind 0x%02x", kind));
    }
    auto record = DecodeRecordBody(body);
    if (!record.ok()) return record.status();
    // A frame whose round does not advance means the service rewound —
    // a persisted-retry duplicate, an AbortPendingRound re-serve, or a
    // crash recovery that lost the tail outcomes and re-served those
    // rounds. The LAST frame for a round is the proposal its outcome
    // belongs to, and every previously logged decision at or past the
    // rewind point was rolled back with it.
    while (!out.records.empty() &&
           out.records.back().round >= record->round) {
      out.records.pop_back();
      ++out.duplicates_collapsed;
    }
    out.records.push_back(std::move(record).value());
  }
  return out;
}

std::string DecisionLogDirName(const std::string& wal_dir) {
  return wal_dir + "-decisions";
}

}  // namespace fasea
