// Durable decision log: the exploration side of the serve → log →
// evaluate → promote loop.
//
// The feedback WAL (io/wal.h + ebsn/interaction_log.h) records what the
// user DID; nothing recorded what the policy KNEW when it acted — which
// arrangement it proposed, from which context, with what probability. The
// decision log closes that gap, MWTExplore-Recorder style: one CRC-framed
// record per proposal carrying (round, user, context hash, arrangement,
// behavior propensity, policy id, θ̂ version, trace id), written through
// the same segmented-WAL framing beside the feedback WAL so crash
// recovery yields a matched (decision, outcome) stream keyed by round.
//
// The context is stored as a 64-bit hash, not the |V|×d matrix: offline
// replay regenerates contexts deterministically from the logged workload
// seed (the header carries everything needed) and the hash verifies the
// regeneration bit-for-bit — compact logged state instead of O(|V|d)
// bytes per round, per Bento et al.'s space argument.
#ifndef FASEA_OBS_DECISION_LOG_H_
#define FASEA_OBS_DECISION_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/wal.h"
#include "model/context.h"
#include "model/types.h"
#include "obs/metrics.h"

namespace fasea {

/// First frame of every decision log: format version plus the recipe for
/// regenerating the logged traffic (synthetic workload shape + seed) and
/// for reconstructing the behavior policy (kind, Table 4 params, seed).
struct DecisionLogHeader {
  std::uint32_t version = 1;
  std::uint64_t num_events = 0;
  std::uint64_t dim = 0;
  std::int64_t horizon = 0;
  std::uint64_t workload_seed = 0;
  std::string policy_id;        // PolicyKindName of the behavior policy.
  double lambda = 1.0;
  double alpha = 2.0;
  double delta = 0.1;
  double epsilon = 0.1;
  double temperature = 0.2;
  std::uint64_t policy_seed = 0;

  bool operator==(const DecisionLogHeader&) const = default;
};

/// One logged proposal.
struct DecisionRecord {
  std::int64_t round = 0;        // Service round t (coordinator round when
                                 // sharded) — the join key to the outcome.
  std::uint64_t txn = 0;         // Transaction id (== round unsharded).
  std::int64_t user_id = 0;
  std::int64_t user_capacity = 0;
  std::uint64_t context_hash = 0;  // HashRoundContext of the round.
  std::uint64_t trace_id = 0;      // TraceRing correlation id.
  std::int64_t theta_version = 0;  // Learner observations at propose time.
  double propensity = 0.0;         // Behavior probability of `arrangement`.
  std::string policy_id;           // Behavior policy name.
  Arrangement arrangement;

  bool operator==(const DecisionRecord&) const = default;
};

/// Order-sensitive 64-bit hash of everything the policy saw this round:
/// user id, capacity, shape, availability mask, and the raw bit patterns
/// of every context double. Replay recomputes it over the regenerated
/// round and skips (and counts) mismatches instead of silently evaluating
/// against wrong contexts.
std::uint64_t HashRoundContext(const RoundContext& round);

std::string EncodeDecisionLogHeader(const DecisionLogHeader& header);
std::string EncodeDecisionRecord(const DecisionRecord& record);

/// Appends decision records through a segmented WAL in its own directory
/// (conventionally `<wal_dir>-decisions` beside the feedback WAL). The
/// header frame is written at Open. Append failures follow WAL semantics:
/// the writer breaks and later appends fail fast — callers treat decision
/// logging as best-effort observability, never blocking serving.
class DecisionLogWriter {
 public:
  static StatusOr<std::unique_ptr<DecisionLogWriter>> Open(
      Env* env, std::string dir, const DecisionLogHeader& header,
      WalOptions options = {});

  Status Append(const DecisionRecord& record);
  Status Sync();
  Status Close();
  bool broken() const { return wal_->broken(); }
  std::int64_t records_appended() const { return records_appended_; }

 private:
  explicit DecisionLogWriter(std::unique_ptr<WalWriter> wal)
      : wal_(std::move(wal)) {}

  std::unique_ptr<WalWriter> wal_;
  std::int64_t records_appended_ = 0;
  Counter* records_metric_ =
      Metrics()->GetCounter("fasea.decision.records");
  Counter* failures_metric_ =
      Metrics()->GetCounter("fasea.decision.append_failures");
};

struct DecisionLogScan {
  DecisionLogHeader header;
  bool has_header = false;
  std::vector<DecisionRecord> records;     // Duplicate-collapsed, in order.
  std::int64_t duplicates_collapsed = 0;   // Persisted-retry frames dropped.
  std::int64_t segments_scanned = 0;
  std::int64_t bytes_truncated = 0;        // Torn tail dropped, in bytes.
};

/// Recovers every decision from the log in `dir`. Torn tails truncate
/// silently (those proposals were never acknowledged); a record whose
/// round does not advance past the previous one is a persisted-retry
/// duplicate (fsync failed after the frame hit disk, the writer reopened
/// and re-appended) and collapses, mirroring RecoveryManager's rule for
/// the feedback WAL.
StatusOr<DecisionLogScan> ReadDecisionLog(Env* env, const std::string& dir);

/// Directory convention for a decision log living beside a feedback WAL.
std::string DecisionLogDirName(const std::string& wal_dir);

}  // namespace fasea

#endif  // FASEA_OBS_DECISION_LOG_H_
