// Offline counterfactual policy evaluation over a recorded decision log.
//
// Given the matched (decision, outcome) stream recovered from a decision
// log and its feedback WAL, the evaluator replays the logged traffic
// against a CANDIDATE policy — no live serving — and scores it with the
// standard off-policy estimator family:
//
//   IPS     (1/n) Σ w_i r_i                    w_i = π_c(A_i|x_i)/p_i
//   SNIPS   Σ w_i r_i / Σ w_i                  (self-normalized)
//   DR      (1/n) Σ [ q̂(x_i, A_c) + w_i (r_i − q̂(x_i, A_i)) ]
//
// where p_i is the logged behavior propensity, r_i = accepted events, and
// q̂ is the direct model: a FROZEN RidgeState fit once over every logged
// (context, reward) observation and scored through the PR 4 batch kernels
// (Σ over an arrangement of clamp(xᵀθ̂, [0,1])). Both propensities are
// floor-clipped (OfflineEvalOptions::propensity_floor) so one
// vanishing-probability action cannot dominate the average; the
// effective sample size (Σw)²/Σw² diagnoses how much the weights
// concentrated.
//
// Replay fidelity: the candidate learns progressively from the logged
// outcomes exactly the way the behavior service did (same Learn calls,
// bit-identical context rows from the outcome records) and the platform
// capacity state follows the LOGGED acceptances — so evaluating the
// behavior policy itself as candidate reproduces its recorded
// propensities exactly and IPS collapses to the observed mean reward
// (the self-consistency check `fasea_cli replay --self_check` asserts).
#ifndef FASEA_OBS_OFFLINE_EVAL_H_
#define FASEA_OBS_OFFLINE_EVAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/ridge.h"
#include "ebsn/interaction_log.h"
#include "obs/decision_log.h"

namespace fasea {

struct OfflineEvalOptions {
  /// Propensities below this clip up to it (both sides of the ratio), the
  /// standard variance/robustness guard for logged exploration tails.
  double propensity_floor = 1e-6;
  /// Candidate learns from each logged outcome after being evaluated on
  /// it (progressive replay). Off = frozen candidate.
  bool learn_from_log = true;
  /// Normal-approximation half-width multiplier for the reported CIs.
  double confidence_z = 1.96;
};

struct EstimatorResult {
  double mean = 0.0;
  double std_error = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
};

struct OfflineEvalResult {
  std::string candidate_id;
  std::int64_t examples = 0;               // Rounds actually estimated.
  std::int64_t skipped_no_outcome = 0;     // Decision without feedback.
  std::int64_t skipped_pairing_mismatch = 0;  // Arrangement disagreement.
  std::int64_t skipped_context_mismatch = 0;  // Regenerated hash differs.
  std::int64_t clipped_propensities = 0;
  std::int64_t theta_version_mismatches = 0;  // Learner-state drift.
  double observed_mean_reward = 0.0;       // Logged behavior performance.
  double mean_weight = 0.0;                // Mean importance weight.
  double effective_sample_size = 0.0;      // (Σw)² / Σw².
  EstimatorResult ips;
  EstimatorResult snips;
  EstimatorResult dr;
};

/// Regenerates the full |V|×d round the policy saw at `round` (the
/// decision log stores only its hash). The CLI wires this to the
/// synthetic RoundProvider rebuilt from the log header.
using RoundRegenerator = std::function<RoundContext(std::int64_t round)>;

class OfflineEvaluator {
 public:
  /// Joins decisions to outcomes by round id, fits the frozen direct
  /// model, and is then reusable across any number of candidates (the
  /// A/B path evaluates every --policy over the same matched stream).
  /// `instance` must outlive the evaluator.
  OfflineEvaluator(const ProblemInstance* instance, DecisionLogScan log,
                   std::vector<InteractionRecord> outcomes,
                   RoundRegenerator regenerate);

  /// Replays the matched stream against `candidate`. Exports the run's
  /// diagnostics through MetricsRegistry as fasea.replay.*.
  OfflineEvalResult Evaluate(Policy* candidate,
                             const OfflineEvalOptions& options = {}) const;

  std::int64_t num_matched() const {
    return static_cast<std::int64_t>(pairs_.size());
  }
  const DecisionLogHeader& header() const { return log_.header; }
  const RidgeState& direct_model() const { return direct_model_; }

 private:
  struct MatchedExample {
    const DecisionRecord* decision;
    const InteractionRecord* outcome;
  };

  /// Σ over `arrangement` of clamp(xᵀθ̂_frozen, [0,1]) given the round's
  /// batch-predicted scores.
  static double DirectValue(std::span<const double> scores,
                            const Arrangement& arrangement);

  const ProblemInstance* instance_;
  DecisionLogScan log_;
  std::vector<InteractionRecord> outcomes_;
  RoundRegenerator regenerate_;
  std::vector<MatchedExample> pairs_;
  std::int64_t unmatched_decisions_ = 0;
  std::int64_t pairing_mismatches_ = 0;
  RidgeState direct_model_;
};

}  // namespace fasea

#endif  // FASEA_OBS_OFFLINE_EVAL_H_
