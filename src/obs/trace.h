// Lightweight hot-path tracing: RAII spans recorded into a fixed-size
// in-memory ring, so the last N serve/feedback rounds can always be
// dumped with per-stage timings (context ingest → policy score → oracle
// greedy → WAL append → fsync) without any tracing daemon.
//
// A TraceSpan costs two steady-clock reads plus one short mutex-guarded
// ring write at destruction; with -DFASEA_DISABLE_METRICS it compiles to
// nothing. Spans carry a `round` id (the service/simulator round they
// belong to) so dumps can group stages by round; spans outside any round
// use round 0.
//
// The ring keeps only completed spans and overwrites the oldest once
// full — it is a flight recorder, not a log.
#ifndef FASEA_OBS_TRACE_H_
#define FASEA_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace fasea {

/// One completed span. `name` must be a string with static storage
/// duration (a literal): the ring stores the pointer, not a copy.
struct TraceEvent {
  const char* name = "";
  std::int64_t round = 0;
  std::int64_t start_ns = 0;     // Steady-clock timestamp.
  std::int64_t duration_ns = 0;
  /// Distributed-trace correlation id (0 = none). The sharded serving
  /// layer derives it deterministically from the transaction id, so spans
  /// recorded on different shards for the same cross-shard arrangement
  /// share one id and DumpTransactionTimeline can stitch them together.
  std::uint64_t trace_id = 0;
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(const TraceEvent& event);

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Drops every retained span.
  void Clear();

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (≥ retained count once the ring wraps).
  std::int64_t total_recorded() const;

  /// Human-readable per-round stage timings for the `last_rounds`
  /// highest round ids still in the ring (0 = everything retained).
  /// Stage start offsets are relative to the round's first span.
  std::string DumpText(std::size_t last_rounds = 0) const;

  /// JSON array [{"name":...,"round":...,"start_ns":...,
  /// "duration_ns":...,"trace_id":...}, ...], same filtering as DumpText.
  std::string ToJson(std::size_t last_rounds = 0) const;

  /// Cross-shard transaction timelines: spans carrying a non-zero
  /// trace_id, grouped by trace id in first-seen order, each span's start
  /// offset relative to the transaction's first span — one dump
  /// reconstructs the full reserve/commit path of every retained
  /// cross-shard arrangement.
  std::string DumpTransactionTimeline() const;

  /// The process-wide flight recorder used by production spans.
  static TraceRing* Global();

 private:
  /// Events, oldest first, restricted to the last `last_rounds` rounds.
  std::vector<TraceEvent> FilteredEvents(std::size_t last_rounds) const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> slots_;
  std::size_t next_ = 0;          // Ring cursor once `slots_` is full.
  std::int64_t total_ = 0;
};

/// RAII span: times its scope and records into a ring (and optionally a
/// latency histogram — one scope feeding both the flight recorder and
/// the percentile metrics).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t round = 0,
                     TraceRing* ring = TraceRing::Global(),
                     Histogram* histogram = nullptr,
                     std::uint64_t trace_id = 0)
      : name_(name),
        round_(round),
        trace_id_(trace_id),
        ring_(ring),
        histogram_(histogram) {
    if constexpr (kMetricsEnabled) start_ns_ = Stopwatch::NowNanos();
  }

  ~TraceSpan() {
    if constexpr (kMetricsEnabled) {
      const std::int64_t duration = Stopwatch::NowNanos() - start_ns_;
      if (ring_ != nullptr) {
        ring_->Record(
            TraceEvent{name_, round_, start_ns_, duration, trace_id_});
      }
      if (histogram_ != nullptr) histogram_->Record(duration);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::int64_t round_;
  std::uint64_t trace_id_;
  std::int64_t start_ns_ = 0;
  TraceRing* ring_;
  Histogram* histogram_;
};

/// Start timestamp for RecordSpanSince. Compiles to nothing (returns 0)
/// under FASEA_DISABLE_METRICS, like TraceSpan.
inline std::int64_t SpanStart() {
  if constexpr (kMetricsEnabled) return Stopwatch::NowNanos();
  return 0;
}

/// Records a completed span that started at `start_ns` (from
/// SpanStart()) into the global ring (and optionally a histogram). Use
/// this instead of a scoped TraceSpan around per-event hot loops: a
/// span object with a non-trivial destructor alive across such a loop —
/// or even the inlined recording code itself — measurably inhibits the
/// loop's optimization (up to ~20% on UCB scoring at -O2). The impl is
/// deliberately out of line so the caller pays one plain call, nothing
/// more (and none at all under FASEA_DISABLE_METRICS).
void RecordSpanSinceImpl(const char* name, std::int64_t round,
                         std::int64_t start_ns, Histogram* histogram,
                         std::uint64_t trace_id);

inline void RecordSpanSince(const char* name, std::int64_t round,
                            std::int64_t start_ns,
                            Histogram* histogram = nullptr,
                            std::uint64_t trace_id = 0) {
  if constexpr (kMetricsEnabled) {
    RecordSpanSinceImpl(name, round, start_ns, histogram, trace_id);
  }
}

}  // namespace fasea

#endif  // FASEA_OBS_TRACE_H_
