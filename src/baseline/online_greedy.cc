#include "baseline/online_greedy.h"

#include <algorithm>

namespace fasea {

std::vector<double> TagInterestingness(
    const std::vector<std::vector<int>>& event_tags,
    const std::vector<int>& preferred_tags) {
  std::vector<double> scores(event_tags.size(), 0.0);
  for (std::size_t v = 0; v < event_tags.size(); ++v) {
    const auto& tags = event_tags[v];
    std::size_t common = 0;
    for (int tag : tags) {
      if (std::find(preferred_tags.begin(), preferred_tags.end(), tag) !=
          preferred_tags.end()) {
        ++common;
      }
    }
    const std::size_t unions = tags.size() + preferred_tags.size() - common;
    scores[v] = unions == 0 ? 0.0
                            : static_cast<double>(common) /
                                  static_cast<double>(unions);
  }
  return scores;
}

Arrangement OnlineGreedyPolicy::Propose(std::int64_t /*t*/,
                                        const RoundContext& round,
                                        const PlatformState& state) {
  masked_ = scores_;
  ApplyAvailabilityMask(round, masked_);
  return greedy_.Select(masked_, instance_->conflicts(), state,
                        round.user_capacity);
}

void OnlineGreedyPolicy::EstimateRewards(const ContextMatrix& contexts,
                                         std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows() && out.size() == scores_.size());
  std::copy(scores_.begin(), scores_.end(), out.begin());
}

}  // namespace fasea
