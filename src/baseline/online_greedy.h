// OnlineGreedy-GEACC baseline ("Online[39]" in Table 7 of the paper).
//
// The online arrangement algorithm of She et al. (TKDE'16) assigns events
// by a fixed interestingness score computed from user-selected preference
// tags — it never looks at feedbacks, so running it for multiple rounds
// repeats the same arrangement and its accept ratio is a single-round
// quantity. FASEA's experiments use it to show the value of feedback
// awareness.
//
// Interestingness here follows the tag-overlap construction the paper
// describes ("we use category-sub-categories as tags of events and asked
// users to select their preferred tags"): the Jaccard similarity between
// the event's tag set and the user's preferred tag set.
#ifndef FASEA_BASELINE_ONLINE_GREEDY_H_
#define FASEA_BASELINE_ONLINE_GREEDY_H_

#include <vector>

#include "core/policy.h"
#include "model/instance.h"
#include "oracle/greedy.h"

namespace fasea {

/// Jaccard tag-overlap interestingness: one score per event.
std::vector<double> TagInterestingness(
    const std::vector<std::vector<int>>& event_tags,
    const std::vector<int>& preferred_tags);

class OnlineGreedyPolicy final : public Policy {
 public:
  /// `interestingness[v]` is the fixed score of event v.
  OnlineGreedyPolicy(const ProblemInstance* instance,
                     std::vector<double> interestingness)
      : instance_(instance), scores_(std::move(interestingness)) {
    FASEA_CHECK(instance != nullptr);
    FASEA_CHECK(scores_.size() == instance->num_events());
  }

  std::string_view name() const override { return "Online"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  /// Feedback-oblivious by construction.
  void Learn(std::int64_t, const RoundContext&, const Arrangement&,
             const Feedback&) override {}

  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override {
    return scores_.capacity() * sizeof(double) +
           masked_.capacity() * sizeof(double);
  }

 private:
  const ProblemInstance* instance_;
  std::vector<double> scores_;
  std::vector<double> masked_;
  GreedyOracle greedy_;
};

}  // namespace fasea

#endif  // FASEA_BASELINE_ONLINE_GREEDY_H_
