// ExactOracle: branch-and-bound solver for the max-score arrangement.
//
// Finds the independent set of at most c_u non-full events maximizing the
// sum of (positive) scores. Exponential in the worst case — FASEA uses it
// only in tests (validating Theorem 1's 1/c_u bound against Oracle-Greedy)
// and in the bench_ablation_oracle study on small instances.
#ifndef FASEA_ORACLE_EXACT_H_
#define FASEA_ORACLE_EXACT_H_

#include <vector>

#include "oracle/oracle.h"

namespace fasea {

class ExactOracle final : public ArrangementOracle {
 public:
  /// `node_limit` bounds the search; exceeding it aborts (tests keep
  /// instances small enough that this never triggers).
  explicit ExactOracle(std::int64_t node_limit = 50'000'000)
      : node_limit_(node_limit) {}

  Arrangement Select(std::span<const double> scores,
                     const ConflictGraph& conflicts,
                     const PlatformState& state,
                     std::int64_t user_capacity) override;

  std::string_view name() const override { return "Exact"; }

 private:
  std::int64_t node_limit_;
};

}  // namespace fasea

#endif  // FASEA_ORACLE_EXACT_H_
