// Arrangement oracles: given per-event scores, build a feasible
// arrangement (non-conflicting, non-full events, at most c_u of them).
//
// Selecting the max-score arrangement is NP-hard (it embeds max-weight
// independent set, see [38] cited by the paper), so the production oracle
// is the greedy 1/c_u-approximation of Algorithm 2. The interface is
// pluggable so tests can swap in an exact branch-and-bound oracle and the
// Random baseline can reuse the same feasibility filter.
#ifndef FASEA_ORACLE_ORACLE_H_
#define FASEA_ORACLE_ORACLE_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "graph/conflict_graph.h"
#include "model/platform_state.h"
#include "model/types.h"

namespace fasea {

class ArrangementOracle {
 public:
  virtual ~ArrangementOracle() = default;

  /// Builds an arrangement from `scores` (one per event). Implementations
  /// must only return events with remaining capacity, pairwise
  /// non-conflicting, and at most `user_capacity` of them.
  virtual Arrangement Select(std::span<const double> scores,
                             const ConflictGraph& conflicts,
                             const PlatformState& state,
                             std::int64_t user_capacity) = 0;

  virtual std::string_view name() const = 0;
};

/// Checks the three feasibility constraints of Definition 3 for an
/// arrangement; used by tests and debug assertions.
bool IsFeasibleArrangement(const Arrangement& arrangement,
                           const ConflictGraph& conflicts,
                           const PlatformState& state,
                           std::int64_t user_capacity);

/// Sum of scores[v] over the arrangement, counting only positive scores —
/// the quantity Theorem 1 bounds.
double PositiveScoreSum(const Arrangement& arrangement,
                        std::span<const double> scores);

}  // namespace fasea

#endif  // FASEA_ORACLE_ORACLE_H_
