// RandomOracle: visits events in a uniformly random order and applies the
// same feasibility filter as Oracle-Greedy (lines 3-5 of Algorithm 2).
// This is both the paper's Random baseline and the exploration move of
// eGreedy (Algorithm 4 line 7).
#ifndef FASEA_ORACLE_RANDOM_ORACLE_H_
#define FASEA_ORACLE_RANDOM_ORACLE_H_

#include <vector>

#include "oracle/oracle.h"
#include "rng/pcg64.h"

namespace fasea {

class RandomOracle final : public ArrangementOracle {
 public:
  explicit RandomOracle(Pcg64 rng) : rng_(rng) {}

  /// Scores are ignored except for their count.
  Arrangement Select(std::span<const double> scores,
                     const ConflictGraph& conflicts,
                     const PlatformState& state,
                     std::int64_t user_capacity) override;

  std::string_view name() const override { return "Random"; }

 private:
  Pcg64 rng_;
  std::vector<EventId> order_;
  EventBitset arranged_;
};

}  // namespace fasea

#endif  // FASEA_ORACLE_RANDOM_ORACLE_H_
