// Oracle-Greedy (Algorithm 2 of the paper).
//
// Visits events in non-increasing order of score; arranges each visited
// event that still has capacity and does not conflict with the events
// already arranged, stopping once the user capacity is reached. Theorem 1:
// over positive scores this is a 1/c_u approximation of the optimal
// arrangement. Note that events with score ≤ 0 ARE arranged when nothing
// better fits — the paper argues this "does no harm" because estimated
// rewards can be pessimistic (§3).
#ifndef FASEA_ORACLE_GREEDY_H_
#define FASEA_ORACLE_GREEDY_H_

#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "oracle/oracle.h"

namespace fasea {

class GreedyOracle final : public ArrangementOracle {
 public:
  /// Lazy top-k selection: builds a max-heap over (score desc, id asc) in
  /// O(|V|) and pops only until c_u events are placed — O(|V| + k log|V|)
  /// with k pops, vs the O(|V| log|V|) full sort of SelectBySort. The heap
  /// pops in exactly the sort's total order, so the arrangement is
  /// identical (the tie order is part of the contract: the simulator's
  /// bit-compatibility tests depend on it).
  Arrangement Select(std::span<const double> scores,
                     const ConflictGraph& conflicts,
                     const PlatformState& state,
                     std::int64_t user_capacity) override;

  /// Arrival-order batch resolution over a B × |V| score matrix: row i is
  /// selected against `state` as already mutated by rows 0..i−1 — each
  /// selected event consumes one seat the moment it is placed — so the
  /// batch's users contend for remaining capacity exactly as if they had
  /// been served one at a time in ticket order (`capacities[i]` is row
  /// i's user capacity). The caller passes its reservation view of the
  /// platform state; on return every proposed seat has been consumed
  /// from it. Rows with a non-null entry in `row_oracle` delegate
  /// selection to that oracle instead of the greedy heap (eGreedy
  /// exploration rows bring a ticket-seeded RandomOracle). Every row is
  /// checked feasible against its pre-consumption state.
  std::vector<Arrangement> SelectBatch(
      const Matrix& scores, const ConflictGraph& conflicts,
      PlatformState* state, std::span<const std::int64_t> capacities,
      std::span<ArrangementOracle* const> row_oracle = {});

  /// Reference implementation: full sort by (score desc, id asc), then a
  /// linear placement scan. Kept for the heap-vs-sort equivalence tests
  /// and the oracle benches; produces the same arrangement as Select.
  Arrangement SelectBySort(std::span<const double> scores,
                           const ConflictGraph& conflicts,
                           const PlatformState& state,
                           std::int64_t user_capacity);

  std::string_view name() const override { return "Oracle-Greedy"; }

 private:
  // Scratch buffers reused across rounds to avoid per-round allocation.
  std::vector<EventId> order_;
  EventBitset arranged_;
};

}  // namespace fasea

#endif  // FASEA_ORACLE_GREEDY_H_
