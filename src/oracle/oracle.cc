#include "oracle/oracle.h"

namespace fasea {

bool IsFeasibleArrangement(const Arrangement& arrangement,
                           const ConflictGraph& conflicts,
                           const PlatformState& state,
                           std::int64_t user_capacity) {
  if (static_cast<std::int64_t>(arrangement.size()) > user_capacity) {
    return false;
  }
  for (std::size_t i = 0; i < arrangement.size(); ++i) {
    const EventId v = arrangement[i];
    if (v >= state.num_events() || !state.HasCapacity(v)) return false;
    for (std::size_t j = i + 1; j < arrangement.size(); ++j) {
      if (arrangement[j] == v) return false;  // Duplicate.
      if (conflicts.Conflicts(v, arrangement[j])) return false;
    }
  }
  return true;
}

double PositiveScoreSum(const Arrangement& arrangement,
                        std::span<const double> scores) {
  double sum = 0.0;
  for (EventId v : arrangement) {
    if (scores[v] > 0.0) sum += scores[v];
  }
  return sum;
}

}  // namespace fasea
