#include "oracle/greedy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fasea {

namespace {

// True when `v` is masked out of the round (ApplyAvailabilityMask writes
// kExcludedScore = −∞ for unavailable events).
inline bool IsExcluded(std::span<const double> scores, EventId v) {
  return std::isinf(scores[v]) && scores[v] < 0;
}

}  // namespace

Arrangement GreedyOracle::Select(std::span<const double> scores,
                                 const ConflictGraph& conflicts,
                                 const PlatformState& state,
                                 std::int64_t user_capacity) {
  const std::size_t n = scores.size();
  FASEA_DCHECK(n == state.num_events());
  FASEA_CHECK(user_capacity >= 0);

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  // `worse(a, b)` ⇔ a comes after b in the (score desc, id asc) visit
  // order, so the max-heap's top is always the next event the sorted
  // reference scan would visit.
  const auto worse = [&](EventId a, EventId b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a > b;
  };
  std::make_heap(order_.begin(), order_.end(), worse);

  if (arranged_.size() != n) arranged_ = EventBitset(n);
  arranged_.Reset();

  Arrangement result;
  result.reserve(static_cast<std::size_t>(user_capacity));
  auto heap_end = order_.end();
  while (static_cast<std::int64_t>(result.size()) < user_capacity &&
         heap_end != order_.begin()) {
    const EventId v = order_.front();
    // Top is −∞ ⇒ every remaining event is −∞ (excluded); the sorted
    // scan would skip them all, so stop popping.
    if (IsExcluded(scores, v)) break;
    std::pop_heap(order_.begin(), heap_end, worse);
    --heap_end;
    if (!state.HasCapacity(v)) continue;
    if (conflicts.ConflictsWithAny(v, arranged_)) continue;
    arranged_.Set(v);
    result.push_back(v);
  }
  return result;
}

std::vector<Arrangement> GreedyOracle::SelectBatch(
    const Matrix& scores, const ConflictGraph& conflicts,
    PlatformState* state, std::span<const std::int64_t> capacities,
    std::span<ArrangementOracle* const> row_oracle) {
  const std::size_t batch = scores.rows();
  FASEA_CHECK(capacities.size() == batch);
  FASEA_CHECK(row_oracle.empty() || row_oracle.size() == batch);
  std::vector<Arrangement> out(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    ArrangementOracle* oracle =
        row_oracle.empty() ? nullptr : row_oracle[i];
    out[i] = oracle != nullptr
                 ? oracle->Select(scores.Row(i), conflicts, *state,
                                  capacities[i])
                 : Select(scores.Row(i), conflicts, *state, capacities[i]);
    FASEA_CHECK(
        IsFeasibleArrangement(out[i], conflicts, *state, capacities[i]));
    // Consume before the next row: later arrivals see this user's
    // proposed seats as taken, which is what makes the batch equal the
    // one-at-a-time sequence.
    for (EventId v : out[i]) state->ConsumeOne(v);
  }
  return out;
}

Arrangement GreedyOracle::SelectBySort(std::span<const double> scores,
                                       const ConflictGraph& conflicts,
                                       const PlatformState& state,
                                       std::int64_t user_capacity) {
  const std::size_t n = scores.size();
  FASEA_DCHECK(n == state.num_events());
  FASEA_CHECK(user_capacity >= 0);

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  // Non-increasing score; ties broken by event id for determinism.
  std::sort(order_.begin(), order_.end(), [&](EventId a, EventId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  if (arranged_.size() != n) arranged_ = EventBitset(n);
  arranged_.Reset();

  Arrangement result;
  result.reserve(static_cast<std::size_t>(user_capacity));
  for (EventId v : order_) {
    if (static_cast<std::int64_t>(result.size()) >= user_capacity) break;
    if (IsExcluded(scores, v)) continue;
    if (!state.HasCapacity(v)) continue;
    if (conflicts.ConflictsWithAny(v, arranged_)) continue;
    arranged_.Set(v);
    result.push_back(v);
  }
  return result;
}

}  // namespace fasea
