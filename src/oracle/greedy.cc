#include "oracle/greedy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fasea {

Arrangement GreedyOracle::Select(std::span<const double> scores,
                                 const ConflictGraph& conflicts,
                                 const PlatformState& state,
                                 std::int64_t user_capacity) {
  const std::size_t n = scores.size();
  FASEA_DCHECK(n == state.num_events());
  FASEA_CHECK(user_capacity >= 0);

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  // Non-increasing score; ties broken by event id for determinism.
  std::sort(order_.begin(), order_.end(), [&](EventId a, EventId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  if (arranged_.size() != n) arranged_ = EventBitset(n);
  arranged_.Reset();

  Arrangement result;
  result.reserve(static_cast<std::size_t>(user_capacity));
  for (EventId v : order_) {
    if (static_cast<std::int64_t>(result.size()) >= user_capacity) break;
    if (std::isinf(scores[v]) && scores[v] < 0) continue;  // Excluded.
    if (!state.HasCapacity(v)) continue;
    if (conflicts.ConflictsWithAny(v, arranged_)) continue;
    arranged_.Set(v);
    result.push_back(v);
  }
  return result;
}

}  // namespace fasea
