#include "oracle/exact.h"

#include <algorithm>
#include <numeric>

namespace fasea {

namespace {

struct SearchState {
  std::span<const double> scores;
  const ConflictGraph* conflicts;
  const std::vector<EventId>* candidates;  // Sorted by score desc.
  std::int64_t capacity;
  std::int64_t node_limit;
  std::int64_t nodes = 0;

  double best_score = 0.0;
  Arrangement best;
  Arrangement current;
};

// Upper bound for completing `current` from candidates[idx..]: take the
// next best scores ignoring conflicts.
double UpperBound(const SearchState& s, std::size_t idx, double current_sum) {
  double bound = current_sum;
  std::int64_t slots =
      s.capacity - static_cast<std::int64_t>(s.current.size());
  for (std::size_t i = idx; i < s.candidates->size() && slots > 0;
       ++i, --slots) {
    bound += s.scores[(*s.candidates)[i]];
  }
  return bound;
}

void Search(SearchState& s, std::size_t idx, double current_sum) {
  FASEA_CHECK(++s.nodes <= s.node_limit);
  if (current_sum > s.best_score) {
    s.best_score = current_sum;
    s.best = s.current;
  }
  if (idx >= s.candidates->size()) return;
  if (static_cast<std::int64_t>(s.current.size()) >= s.capacity) return;
  if (UpperBound(s, idx, current_sum) <= s.best_score) return;

  const EventId v = (*s.candidates)[idx];
  // Branch 1: include v if it is compatible with the current set.
  bool compatible = true;
  for (EventId u : s.current) {
    if (s.conflicts->Conflicts(u, v)) {
      compatible = false;
      break;
    }
  }
  if (compatible) {
    s.current.push_back(v);
    Search(s, idx + 1, current_sum + s.scores[v]);
    s.current.pop_back();
  }
  // Branch 2: exclude v.
  Search(s, idx + 1, current_sum);
}

}  // namespace

Arrangement ExactOracle::Select(std::span<const double> scores,
                                const ConflictGraph& conflicts,
                                const PlatformState& state,
                                std::int64_t user_capacity) {
  FASEA_CHECK(user_capacity >= 0);
  // Only positive-score, non-full events can improve the objective; the
  // optimum over positive scores never benefits from a non-positive event.
  std::vector<EventId> candidates;
  for (std::size_t v = 0; v < scores.size(); ++v) {
    if (scores[v] > 0.0 && state.HasCapacity(static_cast<EventId>(v))) {
      candidates.push_back(static_cast<EventId>(v));
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](EventId a, EventId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  SearchState s{scores, &conflicts, &candidates, user_capacity, node_limit_,
                /*nodes=*/0, /*best_score=*/0.0, /*best=*/{}, /*current=*/{}};
  Search(s, 0, 0.0);
  return s.best;
}

}  // namespace fasea
