#include "core/eps_greedy_policy.h"

#include "obs/trace.h"
#include "rng/distributions.h"
#include "rng/seed.h"

namespace fasea {

EpsGreedyPolicy::EpsGreedyPolicy(const ProblemInstance* instance,
                                 const EpsGreedyParams& params, Pcg64 rng)
    : LinearPolicyBase(instance, params.lambda, params.learner),
      params_(params),
      coin_rng_(rng),
      random_oracle_(Pcg64(rng.Next(), HashTag("egreedy-oracle"))),
      propensity_salt_(DeriveSeed(rng.Next(), "egreedy-propensity")),
      batch_salt_(DeriveSeed(rng.Next(), "egreedy-batch")) {
  FASEA_CHECK(params.epsilon >= 0.0 && params.epsilon <= 1.0);
}

void EpsGreedyPolicy::ScoreBatchSnapshot(
    const LearnerSnapshot& snapshot, std::span<const SnapshotRound> rows,
    Matrix* scores, std::span<RowResolve> resolve) const {
  // Exploitation scores for every row first (one stacked θ̂ GEMV via the
  // base), then the per-ticket coins overwrite exploration rows with the
  // availability-only scores the random oracle expects.
  LinearPolicyBase::ScoreBatchSnapshot(snapshot, rows, scores, resolve);
  if (params_.epsilon <= 0.0) return;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    Pcg64 coin(DeriveSeed(batch_salt_, "coin",
                          static_cast<std::uint64_t>(rows[i].ticket)),
               HashTag("egreedy-batch-coin"));
    if (coin.NextDouble() <= params_.epsilon) {
      resolve[i] = RowResolve::kRandom;
      std::span<double> row = scores->Row(i);
      std::fill(row.begin(), row.end(), 0.0);
      ApplyAvailabilityMask(*rows[i].round, row);
    }
  }
}

Arrangement EpsGreedyPolicy::Propose(std::int64_t t,
                                     const RoundContext& round,
                                     const PlatformState& state) {
  // Lazy rounds carry no dense contexts; exploration only needs the
  // availability mask over all |V| events, so either way the score
  // buffer spans the full event set.
  const std::size_t n = round.IsLazy() ? instance_->num_events()
                                       : round.contexts.rows();
  std::span<double> scores = Scores(n);
  if (params_.epsilon > 0.0 &&
      coin_rng_.NextDouble() <= params_.epsilon) {
    // Exploration: a random feasible arrangement. Scores only mark
    // availability for the random oracle.
    std::fill(scores.begin(), scores.end(), 0.0);
    ApplyAvailabilityMask(round, scores);
    const std::int64_t random_start = SpanStart();
    Arrangement arrangement = random_oracle_.Select(
        scores, conflicts(), state, round.user_capacity);
    RecordSpanSince("oracle.random", t, random_start);
    return arrangement;
  }
  if (round.IsLazy()) {
    // Exploitation on a lazy round: α = 0 lazy top-k on x ᵀ θ̂ — the
    // arrangement is bit-identical to the eager path below.
    const std::int64_t lazy_start = SpanStart();
    Arrangement arrangement = ProposeLazy(t, round, state, /*alpha=*/0.0);
    RecordSpanSince("policy.lazy_propose", t, lazy_start);
    return arrangement;
  }
  // Exploitation: greedy on estimated expected rewards.
  const std::int64_t score_start = SpanStart();
  if (scoring_mode() == ScoringMode::kBatched) {
    ridge_.PredictBatch(round.contexts, scores);
  } else {
    const Vector& theta = ridge_.ThetaHat();
    for (std::size_t v = 0; v < round.contexts.rows(); ++v) {
      scores[v] = Dot(round.contexts.Row(v), theta.span());
    }
  }
  ApplyAvailabilityMask(round, scores);
  RecordSpanSince("policy.score", t, score_start);
  const std::int64_t greedy_start = SpanStart();
  Arrangement arrangement =
      greedy_.Select(scores, conflicts(), state, round.user_capacity);
  RecordSpanSince("oracle.greedy", t, greedy_start);
  return arrangement;
}

double EpsGreedyPolicy::PropensityOf(std::int64_t t, const RoundContext& round,
                                     const PlatformState& state,
                                     const Arrangement& arrangement) {
  // Exploit component: deterministic greedy on x ᵀ θ̂ — exact. Lazy
  // rounds fall back to the cache's materialize-once dense matrix (the
  // propensity needs every event's score, not a top-k).
  const ContextMatrix& contexts = RoundContexts(round);
  std::span<double> scores = Scores(contexts.rows());
  if (scoring_mode() == ScoringMode::kBatched) {
    ridge_.PredictBatch(contexts, scores);
  } else {
    const Vector& theta = ridge_.ThetaHat();
    for (std::size_t v = 0; v < contexts.rows(); ++v) {
      scores[v] = Dot(contexts.Row(v), theta.span());
    }
  }
  ApplyAvailabilityMask(round, scores);
  const bool greedy_match =
      greedy_.Select(scores, conflicts(), state, round.user_capacity) ==
      arrangement;
  double p = greedy_match ? 1.0 - params_.epsilon : 0.0;
  if (params_.epsilon > 0.0) {
    // Exploration component: availability-only scores, same filter the
    // exploration branch of Propose hands its RandomOracle.
    std::fill(scores.begin(), scores.end(), 0.0);
    ApplyAvailabilityMask(round, scores);
    p += params_.epsilon *
         McRandomArrangementMass(
             DeriveSeed(propensity_salt_, "mc",
                        static_cast<std::uint64_t>(t)),
             scores, conflicts(), state, round.user_capacity, arrangement);
  }
  return p;
}

std::unique_ptr<EpsGreedyPolicy> MakeExploitPolicy(
    const ProblemInstance* instance, double lambda,
    const LearnerConfig& learner) {
  EpsGreedyParams params;
  params.lambda = lambda;
  params.epsilon = 0.0;
  params.learner = learner;
  // ε = 0 never consults the rng; any seed works.
  return std::make_unique<EpsGreedyPolicy>(instance, params, Pcg64(0));
}

}  // namespace fasea
