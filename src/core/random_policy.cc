#include "core/random_policy.h"

#include <algorithm>

namespace fasea {

Arrangement RandomPolicy::Propose(std::int64_t /*t*/,
                                  const RoundContext& round,
                                  const PlatformState& state) {
  scores_.resize(round.contexts.rows());
  std::fill(scores_.begin(), scores_.end(), 0.0);
  ApplyAvailabilityMask(round, scores_);
  return oracle_.Select(scores_, instance_->conflicts(), state,
                        round.user_capacity);
}

void RandomPolicy::EstimateRewards(const ContextMatrix& contexts,
                                   std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  std::fill(out.begin(), out.end(), 0.0);
}

}  // namespace fasea
