#include "core/random_policy.h"

#include <algorithm>

#include "rng/seed.h"

namespace fasea {

RandomPolicy::RandomPolicy(const ProblemInstance* instance, Pcg64 rng)
    : instance_(instance),
      oracle_(rng),
      propensity_salt_(DeriveSeed(rng.Next(), "random-propensity")) {
  FASEA_CHECK(instance != nullptr);
}

Arrangement RandomPolicy::Propose(std::int64_t /*t*/,
                                  const RoundContext& round,
                                  const PlatformState& state) {
  // Context-free: only the availability mask matters, so lazy rounds
  // (empty contexts) still score the full event set.
  scores_.resize(round.IsLazy() ? instance_->num_events()
                                : round.contexts.rows());
  std::fill(scores_.begin(), scores_.end(), 0.0);
  ApplyAvailabilityMask(round, scores_);
  return oracle_.Select(scores_, instance_->conflicts(), state,
                        round.user_capacity);
}

double RandomPolicy::PropensityOf(std::int64_t t, const RoundContext& round,
                                  const PlatformState& state,
                                  const Arrangement& arrangement) {
  scores_.resize(round.IsLazy() ? instance_->num_events()
                                : round.contexts.rows());
  std::fill(scores_.begin(), scores_.end(), 0.0);
  ApplyAvailabilityMask(round, scores_);
  return McRandomArrangementMass(
      DeriveSeed(propensity_salt_, "mc", static_cast<std::uint64_t>(t)),
      scores_, instance_->conflicts(), state, round.user_capacity,
      arrangement);
}

void RandomPolicy::EstimateRewards(const ContextMatrix& contexts,
                                   std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  std::fill(out.begin(), out.end(), 0.0);
}

}  // namespace fasea
