#include "core/ridge.h"

#include "linalg/kernels.h"

namespace fasea {

RidgeState::RidgeState(std::size_t dim, double lambda,
                       std::int64_t refactor_every)
    : lambda_(lambda),
      inverse_(dim, lambda, refactor_every),
      b_(dim),
      factor_(Cholesky::ScaledIdentity(dim, lambda)),
      refactor_every_(refactor_every),
      factor_work_(dim),
      theta_hat_(dim) {
  FASEA_CHECK(lambda > 0.0);
}

StatusOr<RidgeState> RidgeState::FromComponents(double lambda, Matrix y,
                                                Vector b,
                                                std::int64_t num_observations,
                                                std::int64_t refactor_every) {
  if (lambda <= 0.0) {
    return InvalidArgumentError("RidgeState: lambda must be positive");
  }
  if (y.rows() != b.size()) {
    return InvalidArgumentError("RidgeState: Y and b dimension mismatch");
  }
  auto inverse =
      SymmetricInverse::FromMatrix(std::move(y), num_observations,
                                   refactor_every);
  if (!inverse.ok()) return inverse.status();
  RidgeState state(b.size(), lambda, refactor_every);
  state.inverse_ = std::move(inverse).value();
  state.b_ = std::move(b);
  state.theta_dirty_ = true;
  // FromMatrix already factorized Y once to derive the inverse, so this
  // second factorization cannot fail; it seeds the maintained factor.
  auto factor = Cholesky::Factorize(state.inverse_.y());
  FASEA_CHECK(factor.ok());
  state.factor_ = std::move(factor).value();
  return state;
}

void RidgeState::Update(std::span<const double> x, double reward) {
  FASEA_CHECK(x.size() == dim());
  inverse_.RankOneUpdate(x);
  if (factor_healthy_ && !factor_.RankOneUpdate(x, factor_work_.span())) {
    ++num_factor_failures_;
    factor_healthy_ = false;
  }
  Axpy(reward, x, b_.span());
  theta_dirty_ = true;
  // Same cadence as the inverse: the periodic exact re-derivation clears
  // rank-1 rounding drift and doubles as the recovery path after a
  // failed update left the factor unusable.
  if (refactor_every_ > 0 &&
      inverse_.num_updates() % refactor_every_ == 0) {
    RefactorizeFactor();
  }
}

void RidgeState::ApplyBlock(const Matrix& x_block,
                            std::span<const double> rewards) {
  FASEA_CHECK(x_block.cols() == dim());
  FASEA_CHECK(x_block.rows() == rewards.size());
  if (x_block.rows() == 0) return;
  inverse_.ApplyBlock(x_block);
  for (std::size_t i = 0; i < x_block.rows(); ++i) {
    Axpy(rewards[i], x_block.Row(i), b_.span());
  }
  RefactorizeFactor();
  theta_dirty_ = true;
}

void RidgeState::RefactorizeFactor() {
  auto chol = Cholesky::Factorize(inverse_.y());
  if (!chol.ok()) {
    ++num_factor_failures_;
    factor_healthy_ = false;
    return;
  }
  factor_ = std::move(chol).value();
  ++num_factor_refactorizations_;
  factor_healthy_ = true;
}

const Vector& RidgeState::ThetaHat() const {
  if (theta_dirty_) {
    theta_hat_ = inverse_.inverse().MatVec(b_);
    theta_dirty_ = false;
  }
  return theta_hat_;
}

double RidgeState::PredictedReward(std::span<const double> x) const {
  return Dot(ThetaHat().span(), x);
}

void RidgeState::PredictBatch(const Matrix& contexts,
                              std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  GemvRows(contexts, ThetaHat().span(), out);
}

void RidgeState::ConfidenceWidthSqBatch(const Matrix& contexts,
                                        std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  BatchedQuadForm(contexts, inverse_.inverse(), out, &batch_at_, &batch_g_);
}

}  // namespace fasea
