#include "core/ridge.h"

namespace fasea {

RidgeState::RidgeState(std::size_t dim, double lambda,
                       std::int64_t refactor_every)
    : lambda_(lambda),
      inverse_(dim, lambda, refactor_every),
      b_(dim),
      theta_hat_(dim) {
  FASEA_CHECK(lambda > 0.0);
}

StatusOr<RidgeState> RidgeState::FromComponents(double lambda, Matrix y,
                                                Vector b,
                                                std::int64_t num_observations,
                                                std::int64_t refactor_every) {
  if (lambda <= 0.0) {
    return InvalidArgumentError("RidgeState: lambda must be positive");
  }
  if (y.rows() != b.size()) {
    return InvalidArgumentError("RidgeState: Y and b dimension mismatch");
  }
  auto inverse =
      SymmetricInverse::FromMatrix(std::move(y), num_observations,
                                   refactor_every);
  if (!inverse.ok()) return inverse.status();
  RidgeState state(b.size(), lambda, refactor_every);
  state.inverse_ = std::move(inverse).value();
  state.b_ = std::move(b);
  state.theta_dirty_ = true;
  return state;
}

void RidgeState::Update(std::span<const double> x, double reward) {
  FASEA_CHECK(x.size() == dim());
  inverse_.RankOneUpdate(x);
  Axpy(reward, x, b_.span());
  theta_dirty_ = true;
}

const Vector& RidgeState::ThetaHat() const {
  if (theta_dirty_) {
    theta_hat_ = inverse_.inverse().MatVec(b_);
    theta_dirty_ = false;
  }
  return theta_hat_;
}

double RidgeState::PredictedReward(std::span<const double> x) const {
  return Dot(ThetaHat().span(), x);
}

}  // namespace fasea
