// LearnerSnapshot: one immutable epoch of a linear policy's learning
// state, published RCU-style by the batched serving path.
//
// The FASEA protocol updates the learner on every feedback, so scoring
// against the live RidgeState requires the round mutex. A snapshot
// decouples the two: SubmitBatchedFeedback builds a fresh snapshot after
// each Learn and swaps it in behind a shared_ptr (readers hold the old
// epoch until they drop it — no reader ever sees a half-written state),
// and ServeUserBatched scores whole batches against the snapshot with no
// lock held. Scoring against epoch E while E+1 commits is the
// deliberately accepted staleness (one round of feedback, the same
// slack epoch-based learners tolerate by design); capacities are NOT
// part of the snapshot — they resolve under the short critical section.
//
// Everything a policy's scoring pass needs is precomputed here once per
// commit instead of once per request: θ̂, Y⁻¹ and its transpose (the
// confidence-width GEMM operand), and the Cholesky factor of Y for
// posterior sampling.
#ifndef FASEA_CORE_LEARNER_SNAPSHOT_H_
#define FASEA_CORE_LEARNER_SNAPSHOT_H_

#include <cstdint>
#include <optional>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fasea {

struct LearnerSnapshot {
  /// Observation count at capture (num_observations of the ridge) — the
  /// same monotone version the decision log calls theta_version.
  std::int64_t epoch = 0;

  /// ridge.healthy() at capture; when false the serving layer proposes
  /// statelessly instead of scoring through a corrupt inverse.
  bool healthy = true;
  /// ridge.factor_healthy() at capture; `factor` is set iff true.
  bool factor_healthy = false;

  Vector theta_hat;   // θ̂ = Y⁻¹ b.
  Matrix y_inverse;   // Y⁻¹ (for parity with the sequential width path).
  Matrix y_inverse_t; // (Y⁻¹)ᵀ — BatchedQuadFormPre's operand.
  std::optional<Cholesky> factor;  // L with L·Lᵀ = Y, for TS sampling.

  /// Σᵢ θ̂ᵢ, computed at capture. A torn read of a mutating θ̂ would
  /// break this identity with overwhelming probability; the staleness
  /// invariant tests recompute it to prove snapshots are never partial.
  double theta_checksum = 0.0;
};

}  // namespace fasea

#endif  // FASEA_CORE_LEARNER_SNAPSHOT_H_
