// Convenience constructors: build the paper's five algorithms (plus OPT)
// with their Table 4 default parameters from one spec. The benches and
// examples use this to stay in sync on defaults.
#ifndef FASEA_CORE_POLICY_FACTORY_H_
#define FASEA_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/learner_config.h"
#include "core/policy.h"
#include "model/instance.h"
#include "model/round_provider.h"

namespace fasea {

/// The paper's five algorithms plus the Boltzmann/softmax explorer (a
/// stochastic behavior policy with closed-form propensities; not part of
/// AllPolicyKinds so the paper-figure sweeps are unchanged).
enum class PolicyKind { kUcb, kTs, kEpsGreedy, kExploit, kRandom, kBoltzmann };

std::string_view PolicyKindName(PolicyKind kind);

/// Parameters covering all algorithms; unused fields are ignored by each
/// kind. Defaults are the paper's bold defaults (Table 4).
struct PolicyParams {
  double lambda = 1.0;  // All ridge learners.
  double alpha = 2.0;   // UCB.
  double delta = 0.1;   // TS.
  double epsilon = 0.1; // eGreedy.
  double temperature = 0.2; // Boltzmann softmax τ.
  // Use the pre-batching per-event scoring loops (ScoringMode::kScalar)
  // instead of the fused kernels — the reference path for equivalence
  // tests and the scalar-vs-batched benches.
  bool scalar_scoring = false;
  // Learner maintenance mode for the ridge policies (exact / epoch /
  // sketch; core/learner_config.h). Random ignores it.
  LearnerConfig learner;
  // Hot-partition row budget of the lazy-round ContextCache; 0 picks the
  // default max(64, |V|/8). Only consulted on lazy rounds.
  std::size_t cache_budget = 0;
};

/// Builds one policy. `seed` feeds the policy's private randomness
/// (TS sampling, eGreedy coin, Random order); deterministic kinds ignore
/// it. `instance` must outlive the policy.
std::unique_ptr<Policy> MakePolicy(PolicyKind kind,
                                   const ProblemInstance* instance,
                                   const PolicyParams& params,
                                   std::uint64_t seed);

/// All five algorithms in the paper's reporting order:
/// UCB, TS, eGreedy, Exploit, Random.
std::vector<PolicyKind> AllPolicyKinds();

}  // namespace fasea

#endif  // FASEA_CORE_POLICY_FACTORY_H_
