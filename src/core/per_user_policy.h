// PerUserPolicyBank: the Remark 1 extension of the paper.
//
// Instead of one shared θ, an individual θ is learned per user id, while
// the platform information (capacities, conflicts) stays shared: an
// accepted event consumes a seat for everyone. The bank lazily creates a
// per-user inner policy via a user-supplied factory and routes each round
// by round.user_id.
#ifndef FASEA_CORE_PER_USER_POLICY_H_
#define FASEA_CORE_PER_USER_POLICY_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/policy.h"

namespace fasea {

class PerUserPolicyBank final : public Policy {
 public:
  using Factory = std::function<std::unique_ptr<Policy>(std::int64_t user_id)>;

  explicit PerUserPolicyBank(Factory factory, std::string name = "PerUser")
      : factory_(std::move(factory)), name_(std::move(name)) {
    FASEA_CHECK(factory_ != nullptr);
  }

  std::string_view name() const override { return name_; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override {
    return PolicyFor(round.user_id).Propose(t, round, state);
  }

  void Learn(std::int64_t t, const RoundContext& round,
             const Arrangement& arrangement,
             const Feedback& feedback) override {
    PolicyFor(round.user_id).Learn(t, round, arrangement, feedback);
  }

  /// Reports the estimates of the most recently routed user's policy
  /// (zeros before any round was routed).
  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override;

  std::size_t num_users() const { return policies_.size(); }

  /// The inner policy of `user_id`, or nullptr if never routed.
  const Policy* UserPolicy(std::int64_t user_id) const;

 private:
  Policy& PolicyFor(std::int64_t user_id);

  Factory factory_;
  std::string name_;
  std::unordered_map<std::int64_t, std::unique_ptr<Policy>> policies_;
  std::int64_t last_user_id_ = -1;
};

}  // namespace fasea

#endif  // FASEA_CORE_PER_USER_POLICY_H_
