#include "core/boltzmann_policy.h"

#include <cmath>
#include <limits>

#include "obs/trace.h"

namespace fasea {

BoltzmannPolicy::BoltzmannPolicy(const ProblemInstance* instance,
                                 const BoltzmannParams& params, Pcg64 rng)
    : LinearPolicyBase(instance, params.lambda, params.learner),
      params_(params),
      rng_(rng) {
  FASEA_CHECK(params.temperature > 0.0);
}

std::span<double> BoltzmannPolicy::ScoreRound(const RoundContext& round) {
  // Softmax sampling needs every event's weight, which defeats cached
  // score bounds — lazy rounds read the cache's materialize-once dense
  // matrix instead.
  const ContextMatrix& contexts = RoundContexts(round);
  std::span<double> scores = Scores(contexts.rows());
  if (scoring_mode() == ScoringMode::kBatched) {
    ridge_.PredictBatch(contexts, scores);
  } else {
    const Vector& theta = ridge_.ThetaHat();
    for (std::size_t v = 0; v < contexts.rows(); ++v) {
      scores[v] = Dot(contexts.Row(v), theta.span());
    }
  }
  ApplyAvailabilityMask(round, scores);
  return scores;
}

double BoltzmannPolicy::FeasibleSoftmax(std::span<const double> scores,
                                        const PlatformState& state) {
  feasible_.clear();
  double max_score = -std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < scores.size(); ++v) {
    if (std::isinf(scores[v]) && scores[v] < 0) continue;  // Excluded.
    if (picked_[v]) continue;
    if (!state.HasCapacity(static_cast<EventId>(v))) continue;
    if (conflicts().ConflictsWithAny(v, chosen_)) continue;
    feasible_.push_back(static_cast<EventId>(v));
    if (scores[v] > max_score) max_score = scores[v];
  }
  weights_.resize(feasible_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < feasible_.size(); ++i) {
    weights_[i] =
        std::exp((scores[feasible_[i]] - max_score) / params_.temperature);
    total += weights_[i];
  }
  return total;
}

Arrangement BoltzmannPolicy::Propose(std::int64_t t,
                                     const RoundContext& round,
                                     const PlatformState& state) {
  const std::int64_t score_start = SpanStart();
  std::span<double> scores = ScoreRound(round);
  RecordSpanSince("policy.score", t, score_start);

  const std::size_t n = scores.size();
  picked_.assign(n, 0);
  if (chosen_.size() != n) chosen_ = EventBitset(n);
  chosen_.Reset();

  const std::int64_t sample_start = SpanStart();
  Arrangement result;
  result.reserve(static_cast<std::size_t>(round.user_capacity));
  while (static_cast<std::int64_t>(result.size()) < round.user_capacity) {
    const double total = FeasibleSoftmax(scores, state);
    if (feasible_.empty()) break;
    // Inverse-CDF draw over the feasible weights; the final clamp absorbs
    // float round-off in the cumulative sum.
    const double u = rng_.NextDouble() * total;
    double cumulative = 0.0;
    std::size_t pick = feasible_.size() - 1;
    for (std::size_t i = 0; i < feasible_.size(); ++i) {
      cumulative += weights_[i];
      if (u < cumulative) {
        pick = i;
        break;
      }
    }
    const EventId v = feasible_[pick];
    picked_[v] = 1;
    chosen_.Set(v);
    result.push_back(v);
  }
  RecordSpanSince("oracle.softmax", t, sample_start);
  return result;
}

double BoltzmannPolicy::PropensityOf(std::int64_t /*t*/,
                                     const RoundContext& round,
                                     const PlatformState& state,
                                     const Arrangement& arrangement) {
  if (static_cast<std::int64_t>(arrangement.size()) > round.user_capacity) {
    return 0.0;
  }
  std::span<double> scores = ScoreRound(round);
  const std::size_t n = scores.size();
  picked_.assign(n, 0);
  if (chosen_.size() != n) chosen_ = EventBitset(n);
  chosen_.Reset();

  double prob = 1.0;
  for (EventId v : arrangement) {
    const double total = FeasibleSoftmax(scores, state);
    std::size_t pick = feasible_.size();
    for (std::size_t i = 0; i < feasible_.size(); ++i) {
      if (feasible_[i] == v) {
        pick = i;
        break;
      }
    }
    if (pick == feasible_.size()) return 0.0;  // Infeasible position.
    prob *= weights_[pick] / total;
    picked_[v] = 1;
    chosen_.Set(v);
  }
  if (static_cast<std::int64_t>(arrangement.size()) < round.user_capacity) {
    // Propose only stops early when nothing is feasible; a shorter
    // arrangement with feasible events remaining has zero mass.
    FeasibleSoftmax(scores, state);
    if (!feasible_.empty()) return 0.0;
  }
  return prob;
}

}  // namespace fasea
