// Shared machinery of the four ridge learners (TS, UCB, eGreedy, Exploit):
// the RidgeState, the greedy arrangement oracle, the score scratch buffer,
// and the common Learn step (Y ← Y + Σ x xᵀ, b ← b + Σ r x).
#ifndef FASEA_CORE_LINEAR_POLICY_BASE_H_
#define FASEA_CORE_LINEAR_POLICY_BASE_H_

#include <vector>

#include "core/policy.h"
#include "core/ridge.h"
#include "model/instance.h"
#include "obs/metrics.h"
#include "oracle/greedy.h"

namespace fasea {

/// Which implementation the linear policies score rounds with. kBatched
/// (default) runs one fused kernel over the whole context matrix per
/// round; kScalar preserves the per-event loops those kernels replaced —
/// the reference path for equivalence tests and the A/B benches. For UCB,
/// eGreedy and Exploit the two modes are bit-identical; TS differs only
/// in which Cholesky factor it samples through (maintained incremental
/// vs fresh per-round), equal up to rank-1 rounding drift.
enum class ScoringMode { kBatched, kScalar };

class LinearPolicyBase : public Policy {
 public:
  void Learn(std::int64_t t, const RoundContext& round,
             const Arrangement& arrangement,
             const Feedback& feedback) override;

  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override;

  const RidgeState& ridge() const { return ridge_; }

  /// Mutable learning state — for recovery tooling and fault-injection
  /// tests; production serving paths only read.
  RidgeState& mutable_ridge() { return ridge_; }

  /// Replaces the learning state (checkpoint restore). The new state must
  /// have the instance's dimension.
  void RestoreRidge(RidgeState state) {
    FASEA_CHECK(state.dim() == ridge_.dim());
    ridge_ = std::move(state);
  }

  ScoringMode scoring_mode() const { return scoring_mode_; }
  void set_scoring_mode(ScoringMode mode) { scoring_mode_ = mode; }

 protected:
  /// `instance` must outlive the policy.
  LinearPolicyBase(const ProblemInstance* instance, double lambda,
                   std::int64_t refactor_every = 4096)
      : instance_(instance), ridge_(instance->dim(), lambda, refactor_every) {
    FASEA_CHECK(instance != nullptr);
  }

  // Process-wide learner telemetry, shared by every linear policy: how
  // much learning went through the O(d²) incremental path vs the O(d³)
  // full re-solve, and whether any re-solve failed (numerical health).
  Counter* sm_updates_metric_ =
      Metrics()->GetCounter("fasea.policy.sm_updates");
  Counter* refactorizations_metric_ =
      Metrics()->GetCounter("fasea.policy.refactorizations");
  Counter* refactor_failures_metric_ =
      Metrics()->GetCounter("fasea.policy.refactor_failures");

  const ConflictGraph& conflicts() const { return instance_->conflicts(); }

  /// Resizes the scratch score buffer to n and returns it.
  std::span<double> Scores(std::size_t n) {
    scores_.resize(n);
    return scores_;
  }

  const ProblemInstance* instance_;
  RidgeState ridge_;
  GreedyOracle greedy_;

 private:
  std::vector<double> scores_;
  ScoringMode scoring_mode_ = ScoringMode::kBatched;
};

}  // namespace fasea

#endif  // FASEA_CORE_LINEAR_POLICY_BASE_H_
