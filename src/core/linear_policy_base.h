// Shared machinery of the four ridge learners (TS, UCB, eGreedy, Exploit):
// the RidgeState, the greedy arrangement oracle, the score scratch buffer,
// and the common Learn step (Y ← Y + Σ x xᵀ, b ← b + Σ r x).
#ifndef FASEA_CORE_LINEAR_POLICY_BASE_H_
#define FASEA_CORE_LINEAR_POLICY_BASE_H_

#include <memory>
#include <span>
#include <vector>

#include "core/epoch_ridge.h"
#include "core/lazy_scorer.h"
#include "core/learner_snapshot.h"
#include "core/policy.h"
#include "core/ridge.h"
#include "model/context_cache.h"
#include "model/instance.h"
#include "obs/metrics.h"
#include "oracle/greedy.h"

namespace fasea {

/// Which implementation the linear policies score rounds with. kBatched
/// (default) runs one fused kernel over the whole context matrix per
/// round; kScalar preserves the per-event loops those kernels replaced —
/// the reference path for equivalence tests and the A/B benches. For UCB,
/// eGreedy and Exploit the two modes are bit-identical; TS differs only
/// in which Cholesky factor it samples through (maintained incremental
/// vs fresh per-round), equal up to rank-1 rounding drift.
enum class ScoringMode { kBatched, kScalar };

/// One user of a cross-user batch handed to ScoreBatchSnapshot. `ticket`
/// is the arrival-order id the serving layer assigned — stochastic
/// policies derive their per-user randomness from it, so a batch's
/// scores depend only on (snapshot, tickets, rounds), never on timing.
struct SnapshotRound {
  std::int64_t ticket = 0;
  const RoundContext* round = nullptr;
};

/// How the serving layer must turn one scored row into an arrangement:
/// greedily over the row's scores (the normal case), or via a
/// ticket-seeded RandomOracle (an eGreedy exploration row — its "scores"
/// are just the availability mask).
enum class RowResolve { kGreedy, kRandom };

class LinearPolicyBase : public Policy {
 public:
  void Learn(std::int64_t t, const RoundContext& round,
             const Arrangement& arrangement,
             const Feedback& feedback) override;

  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override;

  /// The exact learning state, for checkpointing and the serving layers.
  /// CHECK-fails for sketch-mode learners (they have no d×d state; see
  /// core/epoch_ridge.h).
  const RidgeState& ridge() const { return ridge_.exact(); }

  /// Mutable learning state — for recovery tooling and fault-injection
  /// tests; production serving paths only read.
  RidgeState& mutable_ridge() { return ridge_.mutable_exact(); }

  /// Replaces the learning state (checkpoint restore). The new state must
  /// have the instance's dimension.
  void RestoreRidge(RidgeState state) {
    ridge_.RestoreExact(std::move(state));
  }

  /// The bounded-scale learner facade wrapping the exact state.
  const EpochRidgeState& learner() const { return ridge_; }
  EpochRidgeState& mutable_learner() { return ridge_; }

  /// Hot-partition row budget of the lazily created ContextCache; 0 (the
  /// default) picks max(64, |V|/8). Takes effect before the first lazy
  /// round.
  void set_cache_budget(std::size_t budget) { cache_budget_ = budget; }
  /// The context cache, once a lazy round created it (else nullptr).
  const ContextCache* context_cache() const { return cache_.get(); }
  /// The lazy scorer, once a lazy propose created it (else nullptr).
  const LazyScorer* lazy_scorer() const { return lazy_scorer_.get(); }

  ScoringMode scoring_mode() const { return scoring_mode_; }
  void set_scoring_mode(ScoringMode mode) { scoring_mode_ = mode; }

  /// Captures the current learning state as an immutable epoch snapshot
  /// (see core/learner_snapshot.h). Caller must hold whatever lock
  /// serializes Learn — the capture itself reads the live ridge.
  std::shared_ptr<const LearnerSnapshot> MakeSnapshot() const;

  /// Scores every batch row against `snapshot` — no live learner state is
  /// read, so this runs with no lock held. `scores` must be pre-shaped
  /// rows.size() × |V|; `resolve` (same length, pre-filled kGreedy) tells
  /// the caller how to turn each row into an arrangement. Per-row scores
  /// are bit-identical to what the sequential batched Propose computes
  /// from the same learner state, availability masks included (batched
  /// rounds carry none today, but the mask is applied for parity). The
  /// base implementation is pure exploitation (one stacked θ̂ GEMV over
  /// all B·|V| rows); UCB adds the confidence width via the snapshot's
  /// precomputed (Y⁻¹)ᵀ, TS samples a per-ticket θ̃ through the
  /// snapshot's factor, eGreedy flips a per-ticket coin and marks
  /// exploration rows kRandom. Requires snapshot.healthy — the serving
  /// layer falls back to stateless proposals otherwise.
  virtual void ScoreBatchSnapshot(const LearnerSnapshot& snapshot,
                                  std::span<const SnapshotRound> rows,
                                  Matrix* scores,
                                  std::span<RowResolve> resolve) const;

 protected:
  /// `instance` must outlive the policy. `learner` selects the
  /// maintenance mode (exact / epoch / sketch; learner_config.h).
  LinearPolicyBase(const ProblemInstance* instance, double lambda,
                   const LearnerConfig& learner = {})
      : instance_(instance), ridge_(instance->dim(), lambda, learner) {
    FASEA_CHECK(instance != nullptr);
  }

  // Process-wide learner telemetry, shared by every linear policy: how
  // much learning went through the O(d²) incremental path vs the O(d³)
  // full re-solve, and whether any re-solve failed (numerical health).
  Counter* sm_updates_metric_ =
      Metrics()->GetCounter("fasea.policy.sm_updates");
  Counter* refactorizations_metric_ =
      Metrics()->GetCounter("fasea.policy.refactorizations");
  Counter* refactor_failures_metric_ =
      Metrics()->GetCounter("fasea.policy.refactor_failures");
  // Bounded-scale telemetry: context-cache partition behavior and epoch
  // boundary applications (DESIGN.md §8).
  Counter* cache_hits_metric_ = Metrics()->GetCounter("fasea.cache.hits");
  Counter* cache_misses_metric_ =
      Metrics()->GetCounter("fasea.cache.misses");
  Counter* cache_evictions_metric_ =
      Metrics()->GetCounter("fasea.cache.evictions");
  Counter* epoch_applies_metric_ =
      Metrics()->GetCounter("fasea.learner.epoch_applies");

  const ConflictGraph& conflicts() const { return instance_->conflicts(); }

  /// Resizes the scratch score buffer to n and returns it.
  std::span<double> Scores(std::size_t n) {
    scores_.resize(n);
    return scores_;
  }

  /// Stacks the batch's context matrices into one (B·|V|) × d operand so
  /// one kernel call scores every user.
  static void StackContexts(std::span<const SnapshotRound> rows,
                            Matrix* stacked);
  /// Applies each round's availability mask to its score row.
  static void MaskBatchRows(std::span<const SnapshotRound> rows,
                            Matrix* scores);

  /// The policy's context cache for `source`, created on first use.
  ContextCache* EnsureCache(const ContextSource* source);

  /// Dense-context fallback for lazy rounds: TS and Boltzmann score all
  /// |V| events against a per-round θ̃, which defeats cached score
  /// bounds, so they read the cache's materialize-once Dense() matrix.
  /// Returns round.contexts unchanged for dense rounds.
  const ContextMatrix& RoundContexts(const RoundContext& round);

  /// Lazy-round propose for the fixed-θ̂ policies: greedy arrangement
  /// over score(v) = pred(v) + α·√width²(v) through the LazyScorer +
  /// ContextCache, materializing only popped events. Bit-identical to
  /// scoring all |V| rows and running GreedyOracle (lazy_scorer.h).
  Arrangement ProposeLazy(std::int64_t t, const RoundContext& round,
                          const PlatformState& state, double alpha);

  const ProblemInstance* instance_;
  EpochRidgeState ridge_;
  GreedyOracle greedy_;

 private:
  std::vector<double> scores_;
  ScoringMode scoring_mode_ = ScoringMode::kBatched;
  std::size_t cache_budget_ = 0;
  std::unique_ptr<ContextCache> cache_;
  std::unique_ptr<LazyScorer> lazy_scorer_;
  // 1×d scratch for lazy rescores in batched mode: the rescore must run
  // through the same batch kernels eager scoring uses, because under
  // -march=native FMA contraction the batched quad form is NOT bit-equal
  // to the scalar one (it IS batch-size-invariant per row, so a 1-row
  // call reproduces the full-matrix result exactly).
  Matrix lazy_row_;
  // Last-synced cache counter values: Learn publishes deltas to the
  // process-wide metrics so the per-row hot loop stays atomics-free.
  std::int64_t synced_cache_hits_ = 0;
  std::int64_t synced_cache_misses_ = 0;
  std::int64_t synced_cache_evictions_ = 0;
  std::int64_t synced_epoch_applies_ = 0;
};

}  // namespace fasea

#endif  // FASEA_CORE_LINEAR_POLICY_BASE_H_
