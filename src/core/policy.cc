#include "core/policy.h"

namespace fasea {

void ApplyAvailabilityMask(const RoundContext& round,
                           std::span<double> scores) {
  if (round.available.empty()) return;
  FASEA_CHECK(round.available.size() == scores.size());
  for (std::size_t v = 0; v < scores.size(); ++v) {
    if (!round.available[v]) scores[v] = kExcludedScore;
  }
}

}  // namespace fasea
