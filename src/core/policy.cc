#include "core/policy.h"

#include "oracle/random_oracle.h"
#include "rng/seed.h"

namespace fasea {

double Policy::PropensityOf(std::int64_t t, const RoundContext& round,
                            const PlatformState& state,
                            const Arrangement& arrangement) {
  // Point mass: valid only because the deterministic policies' Propose
  // consumes no randomness — re-proposing is a pure read of learner state.
  return Propose(t, round, state) == arrangement ? 1.0 : 0.0;
}

double McRandomArrangementMass(std::uint64_t seed,
                               std::span<const double> scores,
                               const ConflictGraph& conflicts,
                               const PlatformState& state,
                               std::int64_t user_capacity,
                               const Arrangement& arrangement) {
  RandomOracle oracle(Pcg64(seed, HashTag("propensity-mc")));
  int hits = 0;
  for (int k = 0; k < kPropensityMcDraws; ++k) {
    if (oracle.Select(scores, conflicts, state, user_capacity) ==
        arrangement) {
      ++hits;
    }
  }
  return (hits + 1.0) / (kPropensityMcDraws + 1.0);
}

void ApplyAvailabilityMask(const RoundContext& round,
                           std::span<double> scores) {
  if (round.available.empty()) return;
  FASEA_CHECK(round.available.size() == scores.size());
  for (std::size_t v = 0; v < scores.size(); ++v) {
    if (!round.available[v]) scores[v] = kExcludedScore;
  }
}

}  // namespace fasea
