#include "core/linear_policy_base.h"

#include <algorithm>

#include "linalg/kernels.h"

namespace fasea {

std::shared_ptr<const LearnerSnapshot> LinearPolicyBase::MakeSnapshot()
    const {
  auto snap = std::make_shared<LearnerSnapshot>();
  snap->epoch = ridge_.num_observations();
  snap->healthy = ridge_.healthy();
  snap->factor_healthy = ridge_.factor_healthy();
  snap->theta_hat = ridge_.ThetaHat();
  snap->y_inverse = ridge_.YInverse();
  TransposeInto(snap->y_inverse, &snap->y_inverse_t);
  if (snap->factor_healthy) snap->factor.emplace(ridge_.Factor());
  double checksum = 0.0;
  for (double v : snap->theta_hat.span()) checksum += v;
  snap->theta_checksum = checksum;
  return snap;
}

void LinearPolicyBase::StackContexts(std::span<const SnapshotRound> rows,
                                     Matrix* stacked) {
  FASEA_CHECK(!rows.empty());
  const std::size_t n = rows.front().round->contexts.rows();
  const std::size_t d = rows.front().round->contexts.cols();
  if (stacked->rows() != rows.size() * n || stacked->cols() != d) {
    *stacked = Matrix(rows.size() * n, d);
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Matrix& contexts = rows[i].round->contexts;
    FASEA_CHECK(contexts.rows() == n && contexts.cols() == d);
    std::copy(contexts.data(), contexts.data() + n * d,
              stacked->data() + i * n * d);
  }
}

void LinearPolicyBase::MaskBatchRows(std::span<const SnapshotRound> rows,
                                     Matrix* scores) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ApplyAvailabilityMask(*rows[i].round, scores->Row(i));
  }
}

void LinearPolicyBase::ScoreBatchSnapshot(
    const LearnerSnapshot& snapshot, std::span<const SnapshotRound> rows,
    Matrix* scores, std::span<RowResolve> resolve) const {
  FASEA_CHECK(snapshot.healthy);
  FASEA_CHECK(scores->rows() == rows.size() &&
              resolve.size() == rows.size());
  if (rows.empty()) return;
  // Pure exploitation: one stacked GEMV over all B·|V| context rows.
  // Each score row is the same flat storage GemvRows writes, and each
  // row's dot is computed independently in sequential j-order, so the
  // results are bit-identical to B separate PredictBatch calls.
  Matrix stacked;
  StackContexts(rows, &stacked);
  GemvRows(stacked, snapshot.theta_hat.span(),
           std::span<double>(scores->data(),
                             scores->rows() * scores->cols()));
  MaskBatchRows(rows, scores);
}

void LinearPolicyBase::Learn(std::int64_t /*t*/, const RoundContext& round,
                             const Arrangement& arrangement,
                             const Feedback& feedback) {
  FASEA_CHECK(arrangement.size() == feedback.size());
  const std::int64_t refactors_before = ridge_.num_refactorizations();
  const std::int64_t failures_before = ridge_.num_refactor_failures();
  for (std::size_t i = 0; i < arrangement.size(); ++i) {
    ridge_.Update(round.contexts.Row(arrangement[i]),
                  static_cast<double>(feedback[i]));
  }
  // One batched sync per Learn call keeps the per-observation hot loop
  // free of atomics.
  sm_updates_metric_->Add(static_cast<std::int64_t>(arrangement.size()));
  refactorizations_metric_->Add(ridge_.num_refactorizations() -
                                refactors_before);
  refactor_failures_metric_->Add(ridge_.num_refactor_failures() -
                                 failures_before);
}

void LinearPolicyBase::EstimateRewards(const ContextMatrix& contexts,
                                       std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  if (scoring_mode() == ScoringMode::kBatched) {
    ridge_.PredictBatch(contexts, out);
    return;
  }
  const Vector& theta = ridge_.ThetaHat();
  for (std::size_t v = 0; v < contexts.rows(); ++v) {
    out[v] = Dot(contexts.Row(v), theta.span());
  }
}

std::size_t LinearPolicyBase::MemoryBytes() const {
  return ridge_.MemoryBytes() + scores_.capacity() * sizeof(double);
}

}  // namespace fasea
