#include "core/linear_policy_base.h"

#include <algorithm>

#include "linalg/kernels.h"

namespace fasea {

std::shared_ptr<const LearnerSnapshot> LinearPolicyBase::MakeSnapshot()
    const {
  // Sketch learners keep no Y⁻¹/factor to snapshot; the batched serving
  // protocol requires an exact-backed learner. Epoch learners snapshot
  // their APPLIED state — the same state their live Propose scores with,
  // which is exactly the consistency the snapshot protocol needs (a
  // snapshot round and a live round against the same epoch score
  // identically); epoch counts applied observations accordingly.
  FASEA_CHECK(ridge_.mode() != LearnerMode::kSketch);
  auto snap = std::make_shared<LearnerSnapshot>();
  snap->epoch = ridge_.num_observations();
  snap->healthy = ridge_.healthy();
  snap->factor_healthy = ridge_.factor_healthy();
  snap->theta_hat = ridge_.ThetaHat();
  snap->y_inverse = ridge_.YInverse();
  TransposeInto(snap->y_inverse, &snap->y_inverse_t);
  if (snap->factor_healthy) snap->factor.emplace(ridge_.Factor());
  double checksum = 0.0;
  for (double v : snap->theta_hat.span()) checksum += v;
  snap->theta_checksum = checksum;
  return snap;
}

void LinearPolicyBase::StackContexts(std::span<const SnapshotRound> rows,
                                     Matrix* stacked) {
  FASEA_CHECK(!rows.empty());
  const std::size_t n = rows.front().round->contexts.rows();
  const std::size_t d = rows.front().round->contexts.cols();
  if (stacked->rows() != rows.size() * n || stacked->cols() != d) {
    *stacked = Matrix(rows.size() * n, d);
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Matrix& contexts = rows[i].round->contexts;
    FASEA_CHECK(contexts.rows() == n && contexts.cols() == d);
    std::copy(contexts.data(), contexts.data() + n * d,
              stacked->data() + i * n * d);
  }
}

void LinearPolicyBase::MaskBatchRows(std::span<const SnapshotRound> rows,
                                     Matrix* scores) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ApplyAvailabilityMask(*rows[i].round, scores->Row(i));
  }
}

void LinearPolicyBase::ScoreBatchSnapshot(
    const LearnerSnapshot& snapshot, std::span<const SnapshotRound> rows,
    Matrix* scores, std::span<RowResolve> resolve) const {
  FASEA_CHECK(snapshot.healthy);
  FASEA_CHECK(scores->rows() == rows.size() &&
              resolve.size() == rows.size());
  if (rows.empty()) return;
  // Pure exploitation: one stacked GEMV over all B·|V| context rows.
  // Each score row is the same flat storage GemvRows writes, and each
  // row's dot is computed independently in sequential j-order, so the
  // results are bit-identical to B separate PredictBatch calls.
  Matrix stacked;
  StackContexts(rows, &stacked);
  GemvRows(stacked, snapshot.theta_hat.span(),
           std::span<double>(scores->data(),
                             scores->rows() * scores->cols()));
  MaskBatchRows(rows, scores);
}

void LinearPolicyBase::Learn(std::int64_t /*t*/, const RoundContext& round,
                             const Arrangement& arrangement,
                             const Feedback& feedback) {
  FASEA_CHECK(arrangement.size() == feedback.size());
  const std::int64_t refactors_before = ridge_.num_refactorizations();
  const std::int64_t failures_before = ridge_.num_refactor_failures();
  const bool lazy = round.IsLazy();
  ContextCache* cache = lazy ? EnsureCache(round.source) : nullptr;
  for (std::size_t i = 0; i < arrangement.size(); ++i) {
    // Lazy rounds learn from cache rows: events arranged by the lazy
    // propose are still stashed from this round, and rows an exploration
    // oracle picked without scoring materialize here on demand.
    std::span<const double> x = lazy
                                    ? cache->Row(arrangement[i])
                                    : round.contexts.Row(arrangement[i]);
    ridge_.Update(x, static_cast<double>(feedback[i]));
  }
  // The lazy scorer's cached scores stay exact until the learner's
  // scoring-visible state changes; one drift note per Learn is sound
  // because scoring only ever happens between Learn calls.
  if (lazy_scorer_ != nullptr) {
    lazy_scorer_->NoteLearn(ridge_.ThetaHat(), ridge_.scoring_version());
  }
  // One batched sync per Learn call keeps the per-observation hot loop
  // free of atomics.
  sm_updates_metric_->Add(static_cast<std::int64_t>(arrangement.size()));
  refactorizations_metric_->Add(ridge_.num_refactorizations() -
                                refactors_before);
  refactor_failures_metric_->Add(ridge_.num_refactor_failures() -
                                 failures_before);
  epoch_applies_metric_->Add(ridge_.num_epoch_applies() -
                             synced_epoch_applies_);
  synced_epoch_applies_ = ridge_.num_epoch_applies();
  if (cache_ != nullptr) {
    cache_hits_metric_->Add(cache_->hits() - synced_cache_hits_);
    cache_misses_metric_->Add(cache_->misses() - synced_cache_misses_);
    cache_evictions_metric_->Add(cache_->evictions() -
                                 synced_cache_evictions_);
    synced_cache_hits_ = cache_->hits();
    synced_cache_misses_ = cache_->misses();
    synced_cache_evictions_ = cache_->evictions();
  }
}

ContextCache* LinearPolicyBase::EnsureCache(const ContextSource* source) {
  FASEA_CHECK(source != nullptr);
  if (cache_ == nullptr) {
    const std::size_t budget =
        cache_budget_ > 0
            ? cache_budget_
            : std::max<std::size_t>(64, instance_->num_events() / 8);
    cache_ = std::make_unique<ContextCache>(source, budget);
  }
  return cache_.get();
}

const ContextMatrix& LinearPolicyBase::RoundContexts(
    const RoundContext& round) {
  if (!round.IsLazy()) return round.contexts;
  return EnsureCache(round.source)->Dense();
}

Arrangement LinearPolicyBase::ProposeLazy(std::int64_t /*t*/,
                                          const RoundContext& round,
                                          const PlatformState& state,
                                          double alpha) {
  ContextCache* cache = EnsureCache(round.source);
  cache->BeginRound();
  if (lazy_scorer_ == nullptr) {
    // width0 = 1/λ: xᵀY⁻¹x ≤ ‖x‖²/λ at Y = λI and widths only shrink —
    // except under a sketch, whose shrinks can grow them (lazy_scorer.h).
    lazy_scorer_ = std::make_unique<LazyScorer>(
        instance_->num_events(), 1.0 / ridge_.lambda(),
        /*widths_monotone=*/ridge_.mode() != LearnerMode::kSketch);
  }
  // Rescores must reproduce the eager scoring path bit for bit in BOTH
  // modes. Scalar mode calls the per-event functions; batched mode runs
  // the batch kernels on a 1-row matrix — their per-row results are
  // batch-size-invariant, while the scalar quad form is NOT bit-equal to
  // the batched one under -march=native FMA contraction.
  const bool batched = scoring_mode() == ScoringMode::kBatched;
  if (batched && lazy_row_.rows() != 1) {
    lazy_row_ = Matrix(1, instance_->dim());
  }
  const auto rescore = [&](EventId v) {
    std::span<const double> x = cache->Row(v);
    LazyEventScore s;
    if (batched) {
      std::copy(x.begin(), x.end(), lazy_row_.Row(0).begin());
      ridge_.PredictBatch(lazy_row_, std::span<double>(&s.pred, 1));
      if (alpha > 0.0) {
        ridge_.ConfidenceWidthSqBatch(lazy_row_,
                                      std::span<double>(&s.width_sq, 1));
      }
    } else {
      s.pred = ridge_.PredictedReward(x);
      if (alpha > 0.0) s.width_sq = ridge_.ConfidenceWidthSq(x);
    }
    return s;
  };
  return lazy_scorer_->Select(alpha, rescore, round, conflicts(), state,
                              round.user_capacity);
}

void LinearPolicyBase::EstimateRewards(const ContextMatrix& contexts,
                                       std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  if (scoring_mode() == ScoringMode::kBatched) {
    ridge_.PredictBatch(contexts, out);
    return;
  }
  const Vector& theta = ridge_.ThetaHat();
  for (std::size_t v = 0; v < contexts.rows(); ++v) {
    out[v] = Dot(contexts.Row(v), theta.span());
  }
}

std::size_t LinearPolicyBase::MemoryBytes() const {
  std::size_t bytes = ridge_.MemoryBytes() + scores_.capacity() * sizeof(double);
  if (cache_ != nullptr) bytes += cache_->MemoryBytes();
  if (lazy_scorer_ != nullptr) bytes += lazy_scorer_->MemoryBytes();
  return bytes;
}

}  // namespace fasea
