#include "core/linear_policy_base.h"

namespace fasea {

void LinearPolicyBase::Learn(std::int64_t /*t*/, const RoundContext& round,
                             const Arrangement& arrangement,
                             const Feedback& feedback) {
  FASEA_CHECK(arrangement.size() == feedback.size());
  const std::int64_t refactors_before = ridge_.num_refactorizations();
  const std::int64_t failures_before = ridge_.num_refactor_failures();
  for (std::size_t i = 0; i < arrangement.size(); ++i) {
    ridge_.Update(round.contexts.Row(arrangement[i]),
                  static_cast<double>(feedback[i]));
  }
  // One batched sync per Learn call keeps the per-observation hot loop
  // free of atomics.
  sm_updates_metric_->Add(static_cast<std::int64_t>(arrangement.size()));
  refactorizations_metric_->Add(ridge_.num_refactorizations() -
                                refactors_before);
  refactor_failures_metric_->Add(ridge_.num_refactor_failures() -
                                 failures_before);
}

void LinearPolicyBase::EstimateRewards(const ContextMatrix& contexts,
                                       std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  if (scoring_mode() == ScoringMode::kBatched) {
    ridge_.PredictBatch(contexts, out);
    return;
  }
  const Vector& theta = ridge_.ThetaHat();
  for (std::size_t v = 0; v < contexts.rows(); ++v) {
    out[v] = Dot(contexts.Row(v), theta.span());
  }
}

std::size_t LinearPolicyBase::MemoryBytes() const {
  return ridge_.MemoryBytes() + scores_.capacity() * sizeof(double);
}

}  // namespace fasea
