#include "core/ucb_policy.h"

#include <cmath>
#include <vector>

#include "linalg/kernels.h"
#include "obs/trace.h"

namespace fasea {

UcbPolicy::UcbPolicy(const ProblemInstance* instance, const UcbParams& params)
    : LinearPolicyBase(instance, params.lambda, params.learner),
      params_(params) {
  FASEA_CHECK(params.alpha >= 0.0);
}

void UcbPolicy::ScoreBatchSnapshot(const LearnerSnapshot& snapshot,
                                   std::span<const SnapshotRound> rows,
                                   Matrix* scores,
                                   std::span<RowResolve> resolve) const {
  FASEA_CHECK(snapshot.healthy);
  FASEA_CHECK(scores->rows() == rows.size() &&
              resolve.size() == rows.size());
  if (rows.empty()) return;
  Matrix stacked;
  StackContexts(rows, &stacked);
  const std::size_t total = scores->rows() * scores->cols();
  std::span<double> flat(scores->data(), total);
  // Predictions and widths over all B·|V| rows in two kernel calls; the
  // combine mirrors the sequential batched Propose term for term, and
  // both kernels are row-independent, so each user's scores equal a
  // lone PredictBatch + ConfidenceWidthSqBatch against this state.
  GemvRows(stacked, snapshot.theta_hat.span(), flat);
  std::vector<double> width(total);
  Matrix g;
  BatchedQuadFormPre(stacked, snapshot.y_inverse_t, width, &g);
  for (std::size_t k = 0; k < total; ++k) {
    flat[k] = flat[k] + params_.alpha * std::sqrt(width[k]);
  }
  MaskBatchRows(rows, scores);
}

double UcbPolicy::UpperConfidenceBound(std::span<const double> x) const {
  return ridge_.PredictedReward(x) +
         params_.alpha * std::sqrt(ridge_.ConfidenceWidthSq(x));
}

Arrangement UcbPolicy::Propose(std::int64_t t, const RoundContext& round,
                               const PlatformState& state) {
  if (round.IsLazy()) {
    // Cached-context round: lazy top-k over drift-bounded cached scores;
    // the arrangement is bit-identical to the eager path below.
    const std::int64_t lazy_start = SpanStart();
    Arrangement arrangement = ProposeLazy(t, round, state, params_.alpha);
    RecordSpanSince("policy.lazy_propose", t, lazy_start);
    return arrangement;
  }
  const std::size_t n = round.contexts.rows();
  std::span<double> scores = Scores(n);
  const std::int64_t score_start = SpanStart();
  if (scoring_mode() == ScoringMode::kBatched) {
    // One GEMV + one blocked GEMM for the whole round; the combine loop
    // mirrors UpperConfidenceBound term for term, so the scores are
    // bit-identical to the scalar path.
    pred_.resize(n);
    width_.resize(n);
    ridge_.PredictBatch(round.contexts, pred_);
    ridge_.ConfidenceWidthSqBatch(round.contexts, width_);
    for (std::size_t v = 0; v < n; ++v) {
      scores[v] = pred_[v] + params_.alpha * std::sqrt(width_[v]);
    }
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      scores[v] = UpperConfidenceBound(round.contexts.Row(v));
    }
  }
  ApplyAvailabilityMask(round, scores);
  RecordSpanSince("policy.score", t, score_start);
  const std::int64_t greedy_start = SpanStart();
  Arrangement arrangement =
      greedy_.Select(scores, conflicts(), state, round.user_capacity);
  RecordSpanSince("oracle.greedy", t, greedy_start);
  return arrangement;
}

}  // namespace fasea
