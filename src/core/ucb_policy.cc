#include "core/ucb_policy.h"

#include <cmath>

namespace fasea {

UcbPolicy::UcbPolicy(const ProblemInstance* instance, const UcbParams& params)
    : LinearPolicyBase(instance, params.lambda), params_(params) {
  FASEA_CHECK(params.alpha >= 0.0);
}

double UcbPolicy::UpperConfidenceBound(std::span<const double> x) const {
  return ridge_.PredictedReward(x) +
         params_.alpha * std::sqrt(ridge_.ConfidenceWidthSq(x));
}

Arrangement UcbPolicy::Propose(std::int64_t /*t*/, const RoundContext& round,
                               const PlatformState& state) {
  std::span<double> scores = Scores(round.contexts.rows());
  for (std::size_t v = 0; v < round.contexts.rows(); ++v) {
    scores[v] = UpperConfidenceBound(round.contexts.Row(v));
  }
  ApplyAvailabilityMask(round, scores);
  return greedy_.Select(scores, conflicts(), state, round.user_capacity);
}

}  // namespace fasea
