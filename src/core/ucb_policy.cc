#include "core/ucb_policy.h"

#include <cmath>

#include "obs/trace.h"

namespace fasea {

UcbPolicy::UcbPolicy(const ProblemInstance* instance, const UcbParams& params)
    : LinearPolicyBase(instance, params.lambda), params_(params) {
  FASEA_CHECK(params.alpha >= 0.0);
}

double UcbPolicy::UpperConfidenceBound(std::span<const double> x) const {
  return ridge_.PredictedReward(x) +
         params_.alpha * std::sqrt(ridge_.ConfidenceWidthSq(x));
}

Arrangement UcbPolicy::Propose(std::int64_t t, const RoundContext& round,
                               const PlatformState& state) {
  const std::size_t n = round.contexts.rows();
  std::span<double> scores = Scores(n);
  const std::int64_t score_start = SpanStart();
  if (scoring_mode() == ScoringMode::kBatched) {
    // One GEMV + one blocked GEMM for the whole round; the combine loop
    // mirrors UpperConfidenceBound term for term, so the scores are
    // bit-identical to the scalar path.
    pred_.resize(n);
    width_.resize(n);
    ridge_.PredictBatch(round.contexts, pred_);
    ridge_.ConfidenceWidthSqBatch(round.contexts, width_);
    for (std::size_t v = 0; v < n; ++v) {
      scores[v] = pred_[v] + params_.alpha * std::sqrt(width_[v]);
    }
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      scores[v] = UpperConfidenceBound(round.contexts.Row(v));
    }
  }
  ApplyAvailabilityMask(round, scores);
  RecordSpanSince("policy.score", t, score_start);
  const std::int64_t greedy_start = SpanStart();
  Arrangement arrangement =
      greedy_.Select(scores, conflicts(), state, round.user_capacity);
  RecordSpanSince("oracle.greedy", t, greedy_start);
  return arrangement;
}

}  // namespace fasea
