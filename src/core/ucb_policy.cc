#include "core/ucb_policy.h"

#include <cmath>

#include "obs/trace.h"

namespace fasea {

UcbPolicy::UcbPolicy(const ProblemInstance* instance, const UcbParams& params)
    : LinearPolicyBase(instance, params.lambda), params_(params) {
  FASEA_CHECK(params.alpha >= 0.0);
}

double UcbPolicy::UpperConfidenceBound(std::span<const double> x) const {
  return ridge_.PredictedReward(x) +
         params_.alpha * std::sqrt(ridge_.ConfidenceWidthSq(x));
}

Arrangement UcbPolicy::Propose(std::int64_t t, const RoundContext& round,
                               const PlatformState& state) {
  std::span<double> scores = Scores(round.contexts.rows());
  const std::int64_t score_start = SpanStart();
  for (std::size_t v = 0; v < round.contexts.rows(); ++v) {
    scores[v] = UpperConfidenceBound(round.contexts.Row(v));
  }
  ApplyAvailabilityMask(round, scores);
  RecordSpanSince("policy.score", t, score_start);
  const std::int64_t greedy_start = SpanStart();
  Arrangement arrangement =
      greedy_.Select(scores, conflicts(), state, round.user_capacity);
  RecordSpanSince("oracle.greedy", t, greedy_start);
  return arrangement;
}

}  // namespace fasea
