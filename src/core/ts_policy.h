// TS: Thompson Sampling for FASEA (Algorithm 1 of the paper).
//
// Extends the Agrawal–Goyal linear-payoff Thompson sampler [1][2] to the
// contextual combinatorial setting. Each round:
//   1. θ̂_t = Y⁻¹ b                       (ridge estimate)
//   2. q   = R √(9 d ln(t/δ))             (posterior scale)
//   3. θ̃_t ~ N(θ̂_t, q² Y⁻¹)              (posterior sample)
//   4. r̂_{t,v} = x_{t,v}ᵀ θ̃_t             per event
//   5. A_t = Oracle-Greedy(r̂, CF, c_v, c_u)
// R = 1 under FASEA (rewards are 0/1, so r − xᵀθ ∈ [−1, 1] is 1-sub-
// Gaussian).
//
// The paper's headline empirical finding is that this sampler — strong
// under basic MAB — performs poorly under FASEA because the sampled θ̃
// perturbs the estimates of ALL events at once.
#ifndef FASEA_CORE_TS_POLICY_H_
#define FASEA_CORE_TS_POLICY_H_

#include "core/linear_policy_base.h"
#include "linalg/vector.h"
#include "rng/pcg64.h"

namespace fasea {

struct TsParams {
  double lambda = 1.0;  // Ridge regularizer λ.
  double delta = 0.1;   // Confidence parameter δ.
  double r_scale = 1.0; // Sub-Gaussian scale R (1 under FASEA).
  LearnerConfig learner;  // Exact / epoch / sketch maintenance.
};

class TsPolicy final : public LinearPolicyBase {
 public:
  /// `instance` must outlive the policy; `rng` is the policy's private
  /// posterior-sampling stream.
  TsPolicy(const ProblemInstance* instance, const TsParams& params, Pcg64 rng);

  std::string_view name() const override { return "TS"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  /// Batched TS over a snapshot: each user gets an independent posterior
  /// draw θ̃ ~ N(θ̂, q² Y⁻¹) through the snapshot's Cholesky factor, on a
  /// private stream derived from the user's ticket — deterministic given
  /// the arrival order, untouched by the sequential stream `rng_`. Uses
  /// the ticket as the round index in the posterior-scale formula. A
  /// snapshot without a usable factor degrades every row to θ̃ = θ̂
  /// exactly as Propose would.
  void ScoreBatchSnapshot(const LearnerSnapshot& snapshot,
                          std::span<const SnapshotRound> rows,
                          Matrix* scores,
                          std::span<RowResolve> resolve) const override;

  /// Sample-count Monte-Carlo estimate: the fraction of fresh posterior
  /// draws θ̃ ~ N(θ̂, q² Y⁻¹) whose greedy arrangement equals the action
  /// (Laplace-smoothed), on a derived per-round stream — the private
  /// posterior stream `rng_` and the cached `sampled_theta_` are never
  /// touched. Degrades to the θ̃ = θ̂ point mass exactly when Propose would.
  double PropensityOf(std::int64_t t, const RoundContext& round,
                      const PlatformState& state,
                      const Arrangement& arrangement) override;

  /// TS's per-round reward estimate is x ᵀ θ̃ with the *sampled* θ̃ — the
  /// source of the ranking noise Figure 2 visualizes.
  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  /// Most recent posterior sample θ̃_t (zeros before the first round).
  const Vector& SampledTheta() const { return sampled_theta_; }

  /// Rounds that could not sample (no usable Cholesky factor of Y) and
  /// fell back to the degraded θ̃ = θ̂ proposal.
  std::int64_t num_degraded_samples() const { return num_degraded_samples_; }

 private:
  /// Fallback when Y has no usable factor (corruption / lost positive-
  /// definiteness): propose from the posterior mean instead of aborting —
  /// the round degrades to Exploit behaviour.
  void DegradedSample();

  TsParams params_;
  Pcg64 rng_;
  std::uint64_t propensity_salt_;
  // Declared (and thus initialized) after propensity_salt_: its extra
  // draw from the constructor's rng parameter happens after every
  // pre-existing stream was derived, so adding it changed no sequential
  // behavior.
  std::uint64_t batch_salt_;
  Vector sampled_theta_;
  std::int64_t num_degraded_samples_ = 0;
  Counter* sample_factor_failures_metric_ =
      Metrics()->GetCounter("fasea.policy.sample_factor_failures");
};

}  // namespace fasea

#endif  // FASEA_CORE_TS_POLICY_H_
