// Random: the paper's weakest baseline (§5.1). Visits events in a random
// order and applies the same feasibility filter as Oracle-Greedy; never
// learns from feedback.
#ifndef FASEA_CORE_RANDOM_POLICY_H_
#define FASEA_CORE_RANDOM_POLICY_H_

#include <vector>

#include "core/policy.h"
#include "model/instance.h"
#include "oracle/random_oracle.h"

namespace fasea {

class RandomPolicy final : public Policy {
 public:
  RandomPolicy(const ProblemInstance* instance, Pcg64 rng);

  std::string_view name() const override { return "Random"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  void Learn(std::int64_t, const RoundContext&, const Arrangement&,
             const Feedback&) override {}

  /// Random has no model: every event is estimated at zero.
  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override {
    return scores_.capacity() * sizeof(double);
  }

  /// Monte-Carlo arrangement mass under the uniform feasibility-filtered
  /// oracle, on a derived per-round stream (the serving oracle stream is
  /// untouched).
  double PropensityOf(std::int64_t t, const RoundContext& round,
                      const PlatformState& state,
                      const Arrangement& arrangement) override;

 private:
  const ProblemInstance* instance_;
  RandomOracle oracle_;
  std::uint64_t propensity_salt_;
  std::vector<double> scores_;
};

}  // namespace fasea

#endif  // FASEA_CORE_RANDOM_POLICY_H_
