#include "core/policy_factory.h"

#include "core/boltzmann_policy.h"
#include "core/eps_greedy_policy.h"
#include "core/random_policy.h"
#include "core/ts_policy.h"
#include "core/ucb_policy.h"
#include "rng/seed.h"

namespace fasea {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kUcb:
      return "UCB";
    case PolicyKind::kTs:
      return "TS";
    case PolicyKind::kEpsGreedy:
      return "eGreedy";
    case PolicyKind::kExploit:
      return "Exploit";
    case PolicyKind::kRandom:
      return "Random";
    case PolicyKind::kBoltzmann:
      return "Boltzmann";
  }
  return "Unknown";
}

std::unique_ptr<Policy> MakePolicy(PolicyKind kind,
                                   const ProblemInstance* instance,
                                   const PolicyParams& params,
                                   std::uint64_t seed) {
  const ScoringMode mode =
      params.scalar_scoring ? ScoringMode::kScalar : ScoringMode::kBatched;
  switch (kind) {
    case PolicyKind::kUcb: {
      UcbParams p;
      p.lambda = params.lambda;
      p.alpha = params.alpha;
      p.learner = params.learner;
      auto policy = std::make_unique<UcbPolicy>(instance, p);
      policy->set_scoring_mode(mode);
      policy->set_cache_budget(params.cache_budget);
      return policy;
    }
    case PolicyKind::kTs: {
      TsParams p;
      p.lambda = params.lambda;
      p.delta = params.delta;
      p.learner = params.learner;
      auto policy =
          std::make_unique<TsPolicy>(instance, p, MakeEngine(seed, "ts"));
      policy->set_scoring_mode(mode);
      policy->set_cache_budget(params.cache_budget);
      return policy;
    }
    case PolicyKind::kEpsGreedy: {
      EpsGreedyParams p;
      p.lambda = params.lambda;
      p.epsilon = params.epsilon;
      p.learner = params.learner;
      auto policy = std::make_unique<EpsGreedyPolicy>(
          instance, p, MakeEngine(seed, "egreedy"));
      policy->set_scoring_mode(mode);
      policy->set_cache_budget(params.cache_budget);
      return policy;
    }
    case PolicyKind::kExploit: {
      auto policy =
          MakeExploitPolicy(instance, params.lambda, params.learner);
      policy->set_scoring_mode(mode);
      policy->set_cache_budget(params.cache_budget);
      return policy;
    }
    case PolicyKind::kRandom:
      // Random has no learning state; scoring mode does not apply.
      return std::make_unique<RandomPolicy>(instance,
                                            MakeEngine(seed, "random"));
    case PolicyKind::kBoltzmann: {
      BoltzmannParams p;
      p.lambda = params.lambda;
      p.temperature = params.temperature;
      p.learner = params.learner;
      auto policy = std::make_unique<BoltzmannPolicy>(
          instance, p, MakeEngine(seed, "boltzmann"));
      policy->set_scoring_mode(mode);
      policy->set_cache_budget(params.cache_budget);
      return policy;
    }
  }
  FASEA_CHECK(false && "unknown policy kind");
  return nullptr;
}

std::vector<PolicyKind> AllPolicyKinds() {
  return {PolicyKind::kUcb, PolicyKind::kTs, PolicyKind::kEpsGreedy,
          PolicyKind::kExploit, PolicyKind::kRandom};
}

}  // namespace fasea
