#include "core/ts_policy.h"

#include <cmath>
#include <optional>

#include "linalg/cholesky.h"
#include "linalg/kernels.h"
#include "linalg/mvn.h"
#include "obs/trace.h"
#include "rng/seed.h"

namespace fasea {

TsPolicy::TsPolicy(const ProblemInstance* instance, const TsParams& params,
                   Pcg64 rng)
    : LinearPolicyBase(instance, params.lambda, params.learner),
      params_(params),
      rng_(rng),
      propensity_salt_(DeriveSeed(rng.Next(), "ts-propensity")),
      batch_salt_(DeriveSeed(rng.Next(), "ts-batch")),
      sampled_theta_(instance->dim()) {
  FASEA_CHECK(params.delta > 0.0 && params.delta < 1.0);
  FASEA_CHECK(params.r_scale >= 0.0);
}

Arrangement TsPolicy::Propose(std::int64_t t, const RoundContext& round,
                              const PlatformState& state) {
  const std::size_t d = ridge_.dim();
  // Posterior scale q = R sqrt(9 d ln(t / δ)) from [2]; ln(t/δ) > 0 for
  // every t >= 1 since δ < 1.
  const double q =
      params_.r_scale *
      std::sqrt(9.0 * static_cast<double>(d) *
                std::log(static_cast<double>(t) / params_.delta));

  {
    // Sample θ̃ ~ N(θ̂, q² Y⁻¹) through the Cholesky factor of Y — the
    // O(d³)-per-round step of the paper's complexity analysis. The
    // batched path reuses the incrementally maintained O(d²)-per-update
    // factor instead; the scalar path keeps the fresh per-round
    // factorization as the reference. Either way a missing factor (Y
    // corrupt / not SPD) degrades the round instead of aborting.
    static Histogram* const sample_hist =
        Metrics()->GetHistogram("fasea.policy.ts_sample_ns");
    TraceSpan span("policy.sample_theta", t, TraceRing::Global(),
                   sample_hist);
    if (ridge_.mode() == LearnerMode::kSketch) {
      // Sketch learners keep no d×d factor; the draw goes through the
      // sketch's Woodbury square root — an exact N(θ̂, q²Y⁻¹) sample for
      // the sketched Y (core/epoch_ridge.h) — and never degrades.
      const bool ok = ridge_.SamplePosterior(rng_, q, &sampled_theta_);
      FASEA_CHECK(ok);
    } else if (scoring_mode() == ScoringMode::kScalar) {
      auto chol = Cholesky::Factorize(ridge_.Y());
      if (chol.ok()) {
        sampled_theta_ =
            SampleMvnFromPrecision(rng_, ridge_.ThetaHat(), q, chol.value());
      } else {
        DegradedSample();
      }
    } else if (ridge_.factor_healthy()) {
      sampled_theta_ =
          SampleMvnFromPrecision(rng_, ridge_.ThetaHat(), q, ridge_.Factor());
    } else {
      DegradedSample();
    }
  }

  // TS scores every event against a fresh per-round θ̃, which defeats
  // cached score bounds — lazy rounds read the cache's materialize-once
  // dense matrix instead.
  const ContextMatrix& contexts = RoundContexts(round);
  std::span<double> scores = Scores(contexts.rows());
  const std::int64_t score_start = SpanStart();
  if (scoring_mode() == ScoringMode::kBatched) {
    GemvRows(contexts, sampled_theta_.span(), scores);
  } else {
    for (std::size_t v = 0; v < contexts.rows(); ++v) {
      scores[v] = Dot(contexts.Row(v), sampled_theta_.span());
    }
  }
  ApplyAvailabilityMask(round, scores);
  RecordSpanSince("policy.score", t, score_start);
  const std::int64_t greedy_start = SpanStart();
  Arrangement arrangement =
      greedy_.Select(scores, conflicts(), state, round.user_capacity);
  RecordSpanSince("oracle.greedy", t, greedy_start);
  return arrangement;
}

void TsPolicy::ScoreBatchSnapshot(const LearnerSnapshot& snapshot,
                                  std::span<const SnapshotRound> rows,
                                  Matrix* scores,
                                  std::span<RowResolve> resolve) const {
  FASEA_CHECK(snapshot.healthy);
  FASEA_CHECK(scores->rows() == rows.size() &&
              resolve.size() == rows.size());
  const std::size_t d = snapshot.theta_hat.size();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SnapshotRound& user = rows[i];
    FASEA_CHECK(user.ticket >= 1);
    const double q =
        params_.r_scale *
        std::sqrt(9.0 * static_cast<double>(d) *
                  std::log(static_cast<double>(user.ticket) /
                           params_.delta));
    Vector theta;
    if (snapshot.factor.has_value()) {
      Pcg64 sample_rng(
          DeriveSeed(batch_salt_, "sample",
                     static_cast<std::uint64_t>(user.ticket)),
          HashTag("ts-batch-sample"));
      theta = SampleMvnFromPrecision(sample_rng, snapshot.theta_hat, q,
                                     *snapshot.factor);
    } else {
      theta = snapshot.theta_hat;
      sample_factor_failures_metric_->Increment();
    }
    // Per-user θ̃ means per-user GEMV — TS's posterior draws cannot share
    // one stacked multiply the way the fixed-θ̂ policies do.
    GemvRows(user.round->contexts, theta.span(), scores->Row(i));
    ApplyAvailabilityMask(*user.round, scores->Row(i));
  }
}

double TsPolicy::PropensityOf(std::int64_t t, const RoundContext& round,
                              const PlatformState& state,
                              const Arrangement& arrangement) {
  const std::size_t d = ridge_.dim();
  const double q =
      params_.r_scale *
      std::sqrt(9.0 * static_cast<double>(d) *
                std::log(static_cast<double>(t) / params_.delta));

  // Mirror Propose's factor choice per scoring mode, so the propensity
  // model is the distribution the behavior draw actually came from.
  // Sketch learners have no factor at all; their MC draws go through the
  // same Woodbury sampler Propose uses.
  const bool sketch = ridge_.mode() == LearnerMode::kSketch;
  std::optional<StatusOr<Cholesky>> fresh;
  const Cholesky* factor = nullptr;
  if (!sketch) {
    if (scoring_mode() == ScoringMode::kScalar) {
      fresh.emplace(Cholesky::Factorize(ridge_.Y()));
      if (fresh->ok()) factor = &fresh->value();
    } else if (ridge_.factor_healthy()) {
      factor = &ridge_.Factor();
    }
  }

  const ContextMatrix& contexts = RoundContexts(round);
  std::span<double> scores = Scores(contexts.rows());
  const auto score_with = [&](const Vector& theta) {
    if (scoring_mode() == ScoringMode::kBatched) {
      GemvRows(contexts, theta.span(), scores);
    } else {
      for (std::size_t v = 0; v < contexts.rows(); ++v) {
        scores[v] = Dot(contexts.Row(v), theta.span());
      }
    }
    ApplyAvailabilityMask(round, scores);
  };

  if (!sketch && factor == nullptr) {
    // Degraded rounds propose deterministically from θ̂ — point mass.
    score_with(ridge_.ThetaHat());
    return greedy_.Select(scores, conflicts(), state,
                          round.user_capacity) == arrangement
               ? 1.0
               : 0.0;
  }

  Pcg64 mc(DeriveSeed(propensity_salt_, "mc", static_cast<std::uint64_t>(t)),
           HashTag("ts-propensity-mc"));
  int hits = 0;
  Vector sketch_theta;
  for (int k = 0; k < kPropensityMcDraws; ++k) {
    const Vector theta =
        sketch ? (ridge_.SamplePosterior(mc, q, &sketch_theta),
                  sketch_theta)
               : SampleMvnFromPrecision(mc, ridge_.ThetaHat(), q, *factor);
    score_with(theta);
    if (greedy_.Select(scores, conflicts(), state, round.user_capacity) ==
        arrangement) {
      ++hits;
    }
  }
  return (hits + 1.0) / (kPropensityMcDraws + 1.0);
}

void TsPolicy::DegradedSample() {
  sampled_theta_ = ridge_.ThetaHat();
  ++num_degraded_samples_;
  sample_factor_failures_metric_->Increment();
}

void TsPolicy::EstimateRewards(const ContextMatrix& contexts,
                               std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  if (scoring_mode() == ScoringMode::kBatched) {
    GemvRows(contexts, sampled_theta_.span(), out);
    return;
  }
  for (std::size_t v = 0; v < contexts.rows(); ++v) {
    out[v] = Dot(contexts.Row(v), sampled_theta_.span());
  }
}

}  // namespace fasea
