#include "core/lazy_scorer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace fasea {

LazyScorer::LazyScorer(std::size_t num_events, double width0,
                       bool widths_monotone)
    : width0_(width0),
      widths_monotone_(widths_monotone),
      pred_(num_events, 0.0),
      width_(num_events, width0),
      drift_at_(num_events, 0.0),
      version_(num_events, -1),
      arranged_(num_events) {
  FASEA_CHECK(num_events > 0);
  FASEA_CHECK(width0 > 0.0);
}

void LazyScorer::NoteLearn(const Vector& theta_hat,
                           std::int64_t scoring_version) {
  if (scoring_version == learner_version_) return;
  if (theta_prev_.size() != theta_hat.size()) {
    theta_prev_ = Vector(theta_hat.size());  // θ̂₀ = 0.
  }
  double norm_sq = 0.0;
  for (std::size_t j = 0; j < theta_hat.size(); ++j) {
    const double diff = theta_hat[j] - theta_prev_[j];
    norm_sq += diff * diff;
  }
  drift_sum_ += std::sqrt(norm_sq);
  theta_prev_ = theta_hat;
  learner_version_ = scoring_version;
}

double LazyScorer::Key(EventId v, double alpha) const {
  if (version_[v] == learner_version_) {
    // Cached score is exact under the current learner state.
    return pred_[v] + alpha * std::sqrt(width_[v]);
  }
  const double width_bound = widths_monotone_ ? width_[v] : width0_;
  return pred_[v] + (drift_sum_ - drift_at_[v]) +
         alpha * std::sqrt(width_bound) + kBoundSlack;
}

Arrangement LazyScorer::Select(
    double alpha, const std::function<LazyEventScore(EventId)>& rescore,
    const RoundContext& round, const ConflictGraph& conflicts,
    const PlatformState& state, std::int64_t user_capacity) {
  const std::size_t n = pred_.size();
  FASEA_DCHECK(n == state.num_events());
  FASEA_CHECK(user_capacity >= 0);
  ++num_selects_;

  keys_.resize(n);
  for (EventId v = 0; v < n; ++v) keys_[v] = Key(v, alpha);
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  // Same visit order as GreedyOracle::Select: (key desc, id asc).
  const auto worse = [&](EventId a, EventId b) {
    if (keys_[a] != keys_[b]) return keys_[a] < keys_[b];
    return a > b;
  };
  std::make_heap(order_.begin(), order_.end(), worse);
  arranged_.Reset();

  Arrangement result;
  result.reserve(static_cast<std::size_t>(user_capacity));
  auto heap_end = order_.end();
  while (static_cast<std::int64_t>(result.size()) < user_capacity &&
         heap_end != order_.begin()) {
    const EventId v = order_.front();
    std::pop_heap(order_.begin(), heap_end, worse);
    --heap_end;
    ++num_pops_;
    // Capacity / conflict / availability skips are final even on a stale
    // bound: a bound pops no later than the exact score would, so the
    // arranged set here is a subset of what the eager scan would hold on
    // reaching v — an event conflicting with the subset conflicts with
    // the superset, and capacity/availability are round-constants.
    if (!round.IsAvailable(v)) continue;
    if (!state.HasCapacity(v)) continue;
    if (conflicts.ConflictsWithAny(v, arranged_)) continue;
    if (version_[v] == learner_version_) {
      // Exact and on top: dominates every remaining bound, which
      // dominate every remaining true score — a true maximum.
      arranged_.Set(v);
      result.push_back(v);
      continue;
    }
    const LazyEventScore s = rescore(v);
    pred_[v] = s.pred;
    width_[v] = s.width_sq;
    drift_at_[v] = drift_sum_;
    version_[v] = learner_version_;
    keys_[v] = pred_[v] + alpha * std::sqrt(width_[v]);
    ++num_rescores_;
    // pop_heap left v at *heap_end; re-admit it with its exact key.
    ++heap_end;
    std::push_heap(order_.begin(), heap_end, worse);
  }
  return result;
}

}  // namespace fasea
