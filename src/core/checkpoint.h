// Policy checkpointing: serialize a ridge learner's state so a production
// platform can stop and resume learning across process restarts.
//
// What is saved: the policy kind, its parameters (λ, α, δ, ε), the exact
// Gram matrix Y, the reward vector b, and the observation count — the
// complete sufficient statistics of every ridge learner. What is NOT
// saved: the exploration RNG position (TS's sampler and eGreedy's coin
// restart from a caller-provided seed; their learning state is intact).
//
// Format: a little-endian binary blob with magic/version header; the
// payload is independent of platform word size. Load validates magic,
// version, kind, dimensions, and the SPD property of Y.
#ifndef FASEA_CORE_CHECKPOINT_H_
#define FASEA_CORE_CHECKPOINT_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/linear_policy_base.h"
#include "core/policy_factory.h"

namespace fasea {

/// The deserialized contents of a checkpoint blob.
struct PolicyCheckpoint {
  PolicyKind kind = PolicyKind::kUcb;
  PolicyParams params;
  Matrix y;
  Vector b;
  std::int64_t num_observations = 0;
};

/// Serializes a ridge learner (UCB, TS, eGreedy, Exploit). `kind` and
/// `params` must be the values the policy was built with.
std::string SaveCheckpoint(PolicyKind kind, const PolicyParams& params,
                           const LinearPolicyBase& policy);

/// Parses a blob; fails on corrupt/truncated data or version mismatch.
StatusOr<PolicyCheckpoint> ParseCheckpoint(std::string_view data);

/// Rebuilds a policy from a checkpoint: constructs it via MakePolicy with
/// `seed` for the (non-persisted) exploration stream, then restores the
/// learning state. Fails if the checkpoint's dimension does not match the
/// instance or the kind is not a ridge learner.
StatusOr<std::unique_ptr<Policy>> RestorePolicy(
    const PolicyCheckpoint& checkpoint, const ProblemInstance* instance,
    std::uint64_t seed);

}  // namespace fasea

#endif  // FASEA_CORE_CHECKPOINT_H_
