// EpochRidgeState: the bounded-scale learner behind every linear policy.
//
// A facade with RidgeState's scoring surface and three maintenance modes
// (learner_config.h, after Bento et al., arXiv:1207.3024):
//
//  * kExact — forwards every observation to the inner RidgeState
//    immediately. Bit-identical to the pre-existing learner.
//  * kEpoch — observations buffer into epochs of `epoch_length` and are
//    applied at the boundary as one rank-k block (RidgeState::ApplyBlock:
//    Y += XᵀX by GEMM + exact refactorization). Scoring between
//    boundaries reads the state of the last applied epoch — bounded
//    staleness of < epoch_length observations, the regret-preserving
//    delay the epoch analysis allows. epoch_length == 1 routes through
//    the exact rank-1 path and is bit-identical to kExact.
//  * kSketch — no d×d state at all: a frequent-directions sketch (V, s²)
//    of Σ x xᵀ plus the exact b. θ̂, widths and posterior samples come
//    from the Woodbury identity
//
//        Y⁻¹ = (1/λ)(I − Vᵀ diag(s²/(λ+s²)) V),
//
//    in O(m·d) per score and O(m·d) memory. Y()/YInverse()/Factor()/
//    exact() are unavailable (checked), so sketch learners cannot be
//    checkpointed or snapshotted — they are a scoring-scale tool, not a
//    durability tier.
#ifndef FASEA_CORE_EPOCH_RIDGE_H_
#define FASEA_CORE_EPOCH_RIDGE_H_

#include <cstdint>
#include <optional>

#include "core/learner_config.h"
#include "core/ridge.h"
#include "linalg/frequent_directions.h"
#include "rng/pcg64.h"

namespace fasea {

class EpochRidgeState {
 public:
  EpochRidgeState(std::size_t dim, double lambda,
                  const LearnerConfig& config = {});

  std::size_t dim() const { return dim_; }
  double lambda() const { return lambda_; }
  LearnerMode mode() const { return config_.mode; }
  const LearnerConfig& config() const { return config_; }

  /// Folds one observation in. kExact applies it immediately; kEpoch
  /// buffers until the epoch boundary; kSketch appends to the sketch
  /// stream and to the exact b.
  void Update(std::span<const double> x, double reward);

  /// Applies any buffered epoch observations now (kEpoch; no-op
  /// otherwise). The simulator never needs this — boundaries fire inside
  /// Update — but tests and shutdown paths do.
  void Flush();

  // ---- Scoring surface (identical semantics to RidgeState) ----
  const Vector& ThetaHat() const;
  double PredictedReward(std::span<const double> x) const;
  double ConfidenceWidthSq(std::span<const double> x) const;
  void PredictBatch(const Matrix& contexts, std::span<double> out) const;
  void ConfidenceWidthSqBatch(const Matrix& contexts,
                              std::span<double> out) const;

  /// Draws θ̃ ~ N(θ̂, q²·Y⁻¹) for Thompson sampling. Exact-backed modes
  /// use the maintained Cholesky factor and return false when it is
  /// unhealthy (caller falls back to its degraded proposal); kSketch
  /// samples through the Woodbury square root and always succeeds.
  bool SamplePosterior(Pcg64& rng, double q, Vector* out) const;

  // ---- Exact-backed state (CHECK-fails under kSketch) ----
  const Cholesky& Factor() const { return exact_ref().Factor(); }
  const Matrix& Y() const { return exact_ref().Y(); }
  const Matrix& YInverse() const { return exact_ref().YInverse(); }
  const Vector& b() const;

  bool factor_healthy() const {
    return inner_.has_value() && inner_->factor_healthy();
  }
  bool healthy() const { return !inner_.has_value() || inner_->healthy(); }

  /// Observations visible to scoring (applied epochs). Under kEpoch this
  /// lags total_observations() by up to epoch_length − 1.
  std::int64_t num_observations() const;
  /// Observations ever folded in, including any still buffered.
  std::int64_t total_observations() const { return total_observations_; }

  /// Bumps whenever the scoring-visible state (θ̂ / widths) may have
  /// changed; mid-epoch updates do not bump it. The lazy top-k scorer
  /// keys its cached-score validity on this.
  std::int64_t scoring_version() const { return scoring_version_; }

  /// Epoch-boundary block applications so far (kEpoch; with
  /// epoch_length == 1 every observation is its own boundary).
  std::int64_t num_epoch_applies() const { return num_epoch_applies_; }

  std::int64_t num_refactorizations() const {
    return inner_ ? inner_->num_refactorizations() : 0;
  }
  std::int64_t num_refactor_failures() const {
    return inner_ ? inner_->num_refactor_failures() : 0;
  }
  std::int64_t num_factor_refactorizations() const {
    return inner_ ? inner_->num_factor_refactorizations() : 0;
  }
  std::int64_t num_factor_failures() const {
    return inner_ ? inner_->num_factor_failures() : 0;
  }

  /// Exact re-derivation (exact-backed) / forced sketch compression.
  void Refactorize();

  /// The inner exact learner, for checkpointing, delta-merging and the
  /// serving layers that predate the facade. CHECK-fails under kSketch.
  const RidgeState& exact() const { return exact_ref(); }
  RidgeState& mutable_exact();
  void RestoreExact(RidgeState state);
  bool has_exact() const { return inner_.has_value(); }

  const FrequentDirections& sketch() const;

  /// Test hooks (exact-backed).
  void SetUnhealthyForTesting() { mutable_exact().SetUnhealthyForTesting(); }
  void CorruptYForTesting() { mutable_exact().CorruptYForTesting(); }

  std::size_t MemoryBytes() const;

 private:
  const RidgeState& exact_ref() const;
  void ApplyPending();
  /// Rebuilds the cached Woodbury coefficients after a sketch shrink.
  void RefreshSketch() const;

  std::size_t dim_;
  double lambda_;
  LearnerConfig config_;

  // kExact / kEpoch: the applied state. Disengaged under kSketch so a
  // sketch learner never allocates O(d²).
  std::optional<RidgeState> inner_;
  Matrix pending_;    // epoch_length × d buffered contexts.
  Vector pending_r_;  // Matching rewards.
  std::size_t pending_count_ = 0;

  // kSketch state.
  std::optional<FrequentDirections> fd_;
  Vector b_;  // Exact Σ r·x (kSketch only; exact modes keep b in inner_).
  mutable std::int64_t seen_shrinks_ = -1;
  mutable Matrix vt_;       // dim × rank transpose of the directions.
  mutable Vector coeff_;    // cᵢ = s²ᵢ / (λ + s²ᵢ).
  mutable Vector samp_;     // dᵢ = 1 − √(λ / (λ + s²ᵢ)) (sampling).
  mutable Vector theta_hat_;
  mutable bool theta_dirty_ = true;
  mutable Vector proj_;     // Scratch: V·x / V·b / V·z.
  mutable Matrix batch_g_;  // Scratch: X · Vᵀ for batched widths.
  mutable Vector z_;        // Scratch: the standard-normal draw.

  std::int64_t total_observations_ = 0;
  std::int64_t scoring_version_ = 0;
  std::int64_t num_epoch_applies_ = 0;
};

}  // namespace fasea

#endif  // FASEA_CORE_EPOCH_RIDGE_H_
