// Policy: the interface every FASEA arrangement strategy implements.
//
// The simulation engine drives a policy through the online protocol of
// Definition 3: for each arriving user it calls Propose (which must
// return a feasible arrangement for the given platform state), shows the
// arrangement to the ground-truth feedback model, and hands the observed
// 0/1 feedbacks back through Learn.
#ifndef FASEA_CORE_POLICY_H_
#define FASEA_CORE_POLICY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "graph/conflict_graph.h"
#include "model/context.h"
#include "model/platform_state.h"
#include "model/types.h"

namespace fasea {

/// Monte-Carlo draws behind the stochastic policies' PropensityOf
/// estimates. The estimates are Laplace-smoothed ((hits+1)/(draws+1)) so a
/// logged action never reports zero behavior propensity — an MC miss would
/// otherwise silently drop the round from every importance-weighted
/// estimator.
inline constexpr int kPropensityMcDraws = 32;

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string_view name() const = 0;

  /// Proposes an arrangement for the user arriving at step t. Must respect
  /// the three constraints of Definition 3 (user capacity, event
  /// capacities in `state`, no conflicting pair) plus the round's
  /// availability mask.
  virtual Arrangement Propose(std::int64_t t, const RoundContext& round,
                              const PlatformState& state) = 0;

  /// Observes the user's feedback for the proposed arrangement. Called
  /// exactly once after each Propose, with `feedback[i]` the 0/1 response
  /// to `arrangement[i]`.
  virtual void Learn(std::int64_t t, const RoundContext& round,
                     const Arrangement& arrangement,
                     const Feedback& feedback) = 0;

  /// Writes this policy's current estimate of the *expected reward* of
  /// every event under `contexts` into `out` — the quantity whose ranking
  /// Figure 2 correlates with the ground truth. For TS this is the most
  /// recent sampled θ̃ (its ranking noise is the paper's explanation of
  /// TS's poor performance); for the ridge learners it is x ᵀ θ̂; Random
  /// has no estimate and writes zeros.
  virtual void EstimateRewards(const ContextMatrix& contexts,
                               std::span<double> out) const = 0;

  /// Bytes of learner state (the paper's memory metric tracks how state
  /// scales with |V| and d).
  virtual std::size_t MemoryBytes() const = 0;

  /// Probability that this policy, in its CURRENT learner state, would
  /// propose exactly `arrangement` (ordered — the arrangement IS the
  /// action under Definition 3) for this round. This is the behavior
  /// propensity the decision log records and the IPS/DR replay estimators
  /// divide by.
  ///
  /// Contract: the value must be a pure function of (learner state, round,
  /// platform state, arrangement) — it must NOT consume any of the
  /// policy's serving RNG streams, so recording it at serve time and
  /// recomputing it during offline replay (after feeding the same Learn
  /// sequence) yield the identical double. Stochastic policies derive
  /// private per-round MC streams from a construction-time salt instead.
  ///
  /// The default implementation treats the policy as deterministic — a
  /// point mass on whatever Propose returns — which is exact for UCB,
  /// Exploit, and OPT. Stochastic policies (eGreedy, TS, Random,
  /// Boltzmann) override it.
  virtual double PropensityOf(std::int64_t t, const RoundContext& round,
                              const PlatformState& state,
                              const Arrangement& arrangement);
};

/// Shared by the eGreedy and Random overrides: Laplace-smoothed Monte-Carlo
/// estimate of the probability that a RandomOracle (uniform visit order +
/// feasibility filter) emits exactly `arrangement`, in order. `scores` only
/// carry the availability mask (kExcludedScore = skip). Deterministic given
/// `seed`.
double McRandomArrangementMass(std::uint64_t seed,
                               std::span<const double> scores,
                               const ConflictGraph& conflicts,
                               const PlatformState& state,
                               std::int64_t user_capacity,
                               const Arrangement& arrangement);

/// Overwrites scores of unavailable events with kExcludedScore.
void ApplyAvailabilityMask(const RoundContext& round,
                           std::span<double> scores);

}  // namespace fasea

#endif  // FASEA_CORE_POLICY_H_
