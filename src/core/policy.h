// Policy: the interface every FASEA arrangement strategy implements.
//
// The simulation engine drives a policy through the online protocol of
// Definition 3: for each arriving user it calls Propose (which must
// return a feasible arrangement for the given platform state), shows the
// arrangement to the ground-truth feedback model, and hands the observed
// 0/1 feedbacks back through Learn.
#ifndef FASEA_CORE_POLICY_H_
#define FASEA_CORE_POLICY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "model/context.h"
#include "model/platform_state.h"
#include "model/types.h"

namespace fasea {

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string_view name() const = 0;

  /// Proposes an arrangement for the user arriving at step t. Must respect
  /// the three constraints of Definition 3 (user capacity, event
  /// capacities in `state`, no conflicting pair) plus the round's
  /// availability mask.
  virtual Arrangement Propose(std::int64_t t, const RoundContext& round,
                              const PlatformState& state) = 0;

  /// Observes the user's feedback for the proposed arrangement. Called
  /// exactly once after each Propose, with `feedback[i]` the 0/1 response
  /// to `arrangement[i]`.
  virtual void Learn(std::int64_t t, const RoundContext& round,
                     const Arrangement& arrangement,
                     const Feedback& feedback) = 0;

  /// Writes this policy's current estimate of the *expected reward* of
  /// every event under `contexts` into `out` — the quantity whose ranking
  /// Figure 2 correlates with the ground truth. For TS this is the most
  /// recent sampled θ̃ (its ranking noise is the paper's explanation of
  /// TS's poor performance); for the ridge learners it is x ᵀ θ̂; Random
  /// has no estimate and writes zeros.
  virtual void EstimateRewards(const ContextMatrix& contexts,
                               std::span<double> out) const = 0;

  /// Bytes of learner state (the paper's memory metric tracks how state
  /// scales with |V| and d).
  virtual std::size_t MemoryBytes() const = 0;
};

/// Overwrites scores of unavailable events with kExcludedScore.
void ApplyAvailabilityMask(const RoundContext& round,
                           std::span<double> scores);

}  // namespace fasea

#endif  // FASEA_CORE_POLICY_H_
