// Boltzmann (softmax) exploration for FASEA.
//
// Not one of the paper's five algorithms: a genuinely stochastic behavior
// policy whose action probabilities are known in CLOSED FORM, added so the
// decision log has a propensity worth recording and the offline IPS/DR
// replay has an exactly-computable behavior policy to divide by (the
// RlMarket-style policy-zoo explorer named in ROADMAP).
//
// Propose builds the arrangement by sequential sampling without
// replacement: at each position it draws one event from the softmax
// distribution exp(xᵀθ̂ / τ) restricted to the currently feasible set
// (available, non-full, non-conflicting with the prefix, not yet chosen),
// until the user capacity is reached or nothing remains feasible. τ → 0
// approaches Exploit's greedy; large τ approaches the Random baseline.
//
// PropensityOf is exact — the product of the per-position conditional
// softmax probabilities — no Monte-Carlo estimate involved.
#ifndef FASEA_CORE_BOLTZMANN_POLICY_H_
#define FASEA_CORE_BOLTZMANN_POLICY_H_

#include <vector>

#include "core/linear_policy_base.h"
#include "rng/pcg64.h"

namespace fasea {

struct BoltzmannParams {
  double lambda = 1.0;       // Ridge regularizer λ.
  double temperature = 0.2;  // Softmax temperature τ > 0.
  LearnerConfig learner;  // Exact / epoch / sketch maintenance.
};

class BoltzmannPolicy final : public LinearPolicyBase {
 public:
  /// `rng` drives the per-position softmax draws; `instance` must outlive
  /// the policy.
  BoltzmannPolicy(const ProblemInstance* instance,
                  const BoltzmannParams& params, Pcg64 rng);

  std::string_view name() const override { return "Boltzmann"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  /// Exact sequential-softmax mass of `arrangement`: Π_i P(v_i | v_<i).
  /// Zero if the arrangement is inconsistent with Propose's fill-until-
  /// blocked semantics (an infeasible pick, or stopping early while a
  /// feasible event remained).
  double PropensityOf(std::int64_t t, const RoundContext& round,
                      const PlatformState& state,
                      const Arrangement& arrangement) override;

 private:
  /// Scores the round with x ᵀ θ̂ (batched or scalar per scoring_mode())
  /// and applies the availability mask; returns the score span.
  std::span<double> ScoreRound(const RoundContext& round);

  /// Collects the events feasible at the current position into feasible_
  /// and their softmax weights (max-subtracted for stability) into
  /// weights_; returns the total weight.
  double FeasibleSoftmax(std::span<const double> scores,
                         const PlatformState& state);

  BoltzmannParams params_;
  Pcg64 rng_;
  // Per-position scratch: membership + conflict state of the prefix.
  std::vector<std::uint8_t> picked_;
  EventBitset chosen_;
  std::vector<EventId> feasible_;
  std::vector<double> weights_;
};

}  // namespace fasea

#endif  // FASEA_CORE_BOLTZMANN_POLICY_H_
