#include "core/per_user_policy.h"

#include <algorithm>

namespace fasea {

Policy& PerUserPolicyBank::PolicyFor(std::int64_t user_id) {
  last_user_id_ = user_id;
  auto it = policies_.find(user_id);
  if (it == policies_.end()) {
    auto policy = factory_(user_id);
    FASEA_CHECK(policy != nullptr);
    it = policies_.emplace(user_id, std::move(policy)).first;
  }
  return *it->second;
}

void PerUserPolicyBank::EstimateRewards(const ContextMatrix& contexts,
                                        std::span<double> out) const {
  const Policy* policy = UserPolicy(last_user_id_);
  if (policy == nullptr) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  policy->EstimateRewards(contexts, out);
}

std::size_t PerUserPolicyBank::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [id, policy] : policies_) {
    total += sizeof(id) + policy->MemoryBytes();
  }
  return total;
}

const Policy* PerUserPolicyBank::UserPolicy(std::int64_t user_id) const {
  auto it = policies_.find(user_id);
  return it == policies_.end() ? nullptr : it->second.get();
}

}  // namespace fasea
