#include "core/epoch_ridge.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/mvn.h"

namespace fasea {

EpochRidgeState::EpochRidgeState(std::size_t dim, double lambda,
                                 const LearnerConfig& config)
    : dim_(dim), lambda_(lambda), config_(config) {
  FASEA_CHECK(dim > 0);
  FASEA_CHECK(lambda > 0.0);
  FASEA_CHECK(config.epoch_length >= 1);
  FASEA_CHECK(config.sketch_size >= 1);
  if (config_.mode == LearnerMode::kSketch) {
    fd_.emplace(dim, config_.sketch_size);
    b_ = Vector(dim);
    theta_hat_ = Vector(dim);
  } else {
    inner_.emplace(dim, lambda, config_.refactor_every);
    if (config_.mode == LearnerMode::kEpoch && config_.epoch_length > 1) {
      pending_ = Matrix(static_cast<std::size_t>(config_.epoch_length), dim);
      pending_r_ = Vector(static_cast<std::size_t>(config_.epoch_length));
    }
  }
}

void EpochRidgeState::Update(std::span<const double> x, double reward) {
  FASEA_CHECK(x.size() == dim_);
  ++total_observations_;
  switch (config_.mode) {
    case LearnerMode::kExact:
      inner_->Update(x, reward);
      ++scoring_version_;
      return;
    case LearnerMode::kEpoch:
      if (config_.epoch_length <= 1) {
        // Degenerate epoch: every observation is its own boundary, and
        // the rank-1 path keeps this bit-identical to kExact.
        inner_->Update(x, reward);
        ++num_epoch_applies_;
        ++scoring_version_;
        return;
      }
      std::copy(x.begin(), x.end(), pending_.Row(pending_count_).begin());
      pending_r_[pending_count_] = reward;
      ++pending_count_;
      if (pending_count_ ==
          static_cast<std::size_t>(config_.epoch_length)) {
        ApplyPending();
      }
      return;
    case LearnerMode::kSketch:
      fd_->Append(x);
      Axpy(reward, x, b_.span());
      theta_dirty_ = true;
      ++scoring_version_;
      return;
  }
}

void EpochRidgeState::Flush() {
  if (config_.mode == LearnerMode::kEpoch) ApplyPending();
}

void EpochRidgeState::ApplyPending() {
  if (pending_count_ == 0) return;
  if (pending_count_ == 1) {
    inner_->Update(pending_.Row(0), pending_r_[0]);
  } else if (pending_count_ == pending_.rows()) {
    inner_->ApplyBlock(pending_,
                       pending_r_.span().first(pending_count_));
  } else {
    // Partial flush (shutdown / test boundary): the block kernel wants
    // exactly-sized operands, and partial epochs are rare enough that a
    // copy beats threading a row-count through every kernel.
    Matrix block(pending_count_, dim_);
    for (std::size_t i = 0; i < pending_count_; ++i) {
      std::span<const double> src = pending_.Row(i);
      std::copy(src.begin(), src.end(), block.Row(i).begin());
    }
    inner_->ApplyBlock(block, pending_r_.span().first(pending_count_));
  }
  pending_count_ = 0;
  ++num_epoch_applies_;
  ++scoring_version_;
}

void EpochRidgeState::RefreshSketch() const {
  if (seen_shrinks_ == fd_->num_shrinks()) return;
  const std::size_t rank = fd_->rank();
  const Matrix& v = fd_->directions();
  std::span<const double> s2 = fd_->weights_sq();
  vt_ = Matrix(dim_, rank);
  coeff_.Resize(rank);
  samp_.Resize(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    coeff_[i] = s2[i] / (lambda_ + s2[i]);
    samp_[i] = 1.0 - std::sqrt(lambda_ / (lambda_ + s2[i]));
    std::span<const double> row = v.Row(i);
    for (std::size_t j = 0; j < dim_; ++j) vt_(j, i) = row[j];
  }
  seen_shrinks_ = fd_->num_shrinks();
  theta_dirty_ = true;
}

const Vector& EpochRidgeState::ThetaHat() const {
  if (config_.mode != LearnerMode::kSketch) return inner_->ThetaHat();
  RefreshSketch();
  if (theta_dirty_) {
    // Woodbury: θ̂ = Y⁻¹ b = (1/λ)(b − Vᵀ diag(c) V b).
    const std::size_t rank = fd_->rank();
    const Matrix& v = fd_->directions();
    proj_.Resize(rank);
    for (std::size_t i = 0; i < rank; ++i) {
      proj_[i] = Dot(v.Row(i), b_.span());
    }
    theta_hat_ = b_;
    for (std::size_t i = 0; i < rank; ++i) {
      Axpy(-coeff_[i] * proj_[i], v.Row(i), theta_hat_.span());
    }
    theta_hat_.Scale(1.0 / lambda_);
    theta_dirty_ = false;
  }
  return theta_hat_;
}

double EpochRidgeState::PredictedReward(std::span<const double> x) const {
  if (config_.mode != LearnerMode::kSketch) {
    return inner_->PredictedReward(x);
  }
  return Dot(ThetaHat().span(), x);
}

double EpochRidgeState::ConfidenceWidthSq(std::span<const double> x) const {
  if (config_.mode != LearnerMode::kSketch) {
    return inner_->ConfidenceWidthSq(x);
  }
  RefreshSketch();
  const std::size_t rank = fd_->rank();
  const Matrix& v = fd_->directions();
  double w = Dot(x, x);
  for (std::size_t i = 0; i < rank; ++i) {
    const double p = Dot(v.Row(i), x);
    w -= coeff_[i] * p * p;
  }
  // Bessel guarantees w ≥ 0 in exact arithmetic (c < 1, V orthonormal);
  // clamp the last-ulp negatives so UCB's sqrt stays defined.
  return std::max(w, 0.0) / lambda_;
}

void EpochRidgeState::PredictBatch(const Matrix& contexts,
                                   std::span<double> out) const {
  if (config_.mode != LearnerMode::kSketch) {
    inner_->PredictBatch(contexts, out);
    return;
  }
  FASEA_CHECK(out.size() == contexts.rows());
  GemvRows(contexts, ThetaHat().span(), out);
}

void EpochRidgeState::ConfidenceWidthSqBatch(const Matrix& contexts,
                                             std::span<double> out) const {
  if (config_.mode != LearnerMode::kSketch) {
    inner_->ConfidenceWidthSqBatch(contexts, out);
    return;
  }
  FASEA_CHECK(out.size() == contexts.rows());
  RefreshSketch();
  const std::size_t rank = fd_->rank();
  if (rank == 0) {
    for (std::size_t r = 0; r < contexts.rows(); ++r) {
      std::span<const double> row = contexts.Row(r);
      out[r] = Dot(row, row) / lambda_;
    }
    return;
  }
  // G = X · Vᵀ — the O(n·m·d) bulk — then O(m) per row to combine.
  Gemm(contexts, vt_, &batch_g_);
  for (std::size_t r = 0; r < contexts.rows(); ++r) {
    std::span<const double> row = contexts.Row(r);
    double w = Dot(row, row);
    std::span<const double> g = batch_g_.Row(r);
    for (std::size_t i = 0; i < rank; ++i) w -= coeff_[i] * g[i] * g[i];
    out[r] = std::max(w, 0.0) / lambda_;
  }
}

bool EpochRidgeState::SamplePosterior(Pcg64& rng, double q,
                                      Vector* out) const {
  if (config_.mode != LearnerMode::kSketch) {
    if (!inner_->factor_healthy()) return false;
    *out = SampleMvnFromPrecision(rng, inner_->ThetaHat(), q,
                                  inner_->Factor());
    return true;
  }
  // θ̃ = θ̂ + (q/√λ)(I − Vᵀ diag(d) V) z with dᵢ = 1 − √(λ/(λ+s²ᵢ))
  // gives cov(θ̃) = q²·(1/λ)(I − Vᵀ diag(c) V) = q²·Y⁻¹ exactly.
  RefreshSketch();
  *out = ThetaHat();
  z_ = StandardNormalVector(rng, dim_);
  const std::size_t rank = fd_->rank();
  const Matrix& v = fd_->directions();
  proj_.Resize(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    proj_[i] = Dot(v.Row(i), z_.span());
  }
  for (std::size_t i = 0; i < rank; ++i) {
    Axpy(-samp_[i] * proj_[i], v.Row(i), z_.span());
  }
  Axpy(q / std::sqrt(lambda_), z_.span(), out->span());
  return true;
}

const Vector& EpochRidgeState::b() const {
  if (config_.mode == LearnerMode::kSketch) return b_;
  return inner_->b();
}

std::int64_t EpochRidgeState::num_observations() const {
  // kSketch keeps b exact, so every observation is "applied" for the
  // observation-count contract even while the sketch lags by a buffer.
  return inner_ ? inner_->num_observations() : total_observations_;
}

void EpochRidgeState::Refactorize() {
  if (inner_) {
    inner_->Refactorize();
  } else {
    fd_->ForceShrink();
  }
  ++scoring_version_;
}

const RidgeState& EpochRidgeState::exact_ref() const {
  FASEA_CHECK(inner_.has_value());  // Unavailable under LearnerMode::kSketch.
  return *inner_;
}

RidgeState& EpochRidgeState::mutable_exact() {
  FASEA_CHECK(inner_.has_value());  // Unavailable under LearnerMode::kSketch.
  // External mutation (delta merges, checkpoint restore, test hooks) can
  // change scoring-visible bits; invalidate any cached lazy scores.
  ++scoring_version_;
  return *inner_;
}

void EpochRidgeState::RestoreExact(RidgeState state) {
  FASEA_CHECK(inner_.has_value());
  FASEA_CHECK(state.dim() == dim_);
  inner_ = std::move(state);
  pending_count_ = 0;
  total_observations_ = inner_->num_observations();
  ++scoring_version_;
}

const FrequentDirections& EpochRidgeState::sketch() const {
  FASEA_CHECK(fd_.has_value());
  return *fd_;
}

std::size_t EpochRidgeState::MemoryBytes() const {
  std::size_t bytes = pending_.MemoryBytes() + pending_r_.MemoryBytes() +
                      b_.MemoryBytes() + vt_.MemoryBytes() +
                      coeff_.MemoryBytes() + samp_.MemoryBytes() +
                      theta_hat_.MemoryBytes() + proj_.MemoryBytes() +
                      batch_g_.MemoryBytes() + z_.MemoryBytes();
  if (inner_) bytes += inner_->MemoryBytes();
  if (fd_) bytes += fd_->MemoryBytes();
  return bytes;
}

}  // namespace fasea
