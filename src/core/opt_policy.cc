#include "core/opt_policy.h"

namespace fasea {

Arrangement OptPolicy::Propose(std::int64_t t, const RoundContext& round,
                               const PlatformState& state) {
  // Lazy rounds carry no dense contexts; OPT consults the ground truth
  // per event anyway (static-context truth models ignore the matrix).
  scores_.resize(round.IsLazy() ? instance_->num_events()
                                : round.contexts.rows());
  for (std::size_t v = 0; v < scores_.size(); ++v) {
    scores_[v] =
        truth_->ExpectedReward(t, round.contexts, static_cast<EventId>(v));
  }
  ApplyAvailabilityMask(round, scores_);
  last_t_ = t;
  return greedy_.Select(scores_, instance_->conflicts(), state,
                        round.user_capacity);
}

void OptPolicy::EstimateRewards(const ContextMatrix& contexts,
                                std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = truth_->ExpectedReward(last_t_, contexts,
                                    static_cast<EventId>(v));
  }
}

Arrangement FullKnowledgePolicy::Propose(std::int64_t /*t*/,
                                         const RoundContext& round,
                                         const PlatformState& state) {
  if (round.user_capacity != cached_capacity_) {
    std::vector<double> scores(row_.begin(), row_.end());
    ApplyAvailabilityMask(round, scores);
    ExactOracle exact;
    cached_ = exact.Select(scores, instance_->conflicts(), state,
                           round.user_capacity);
    // The paper still arranges c_u events even when fewer can all be
    // accepted ("otherwise the accept ratio of Full Knowledge would
    // always be 1, which would be meaningless"): pad with feasible
    // "No" events until c_u is reached or nothing feasible remains.
    EventBitset arranged(instance_->num_events());
    for (EventId v : cached_) arranged.Set(v);
    for (EventId v = 0;
         v < instance_->num_events() &&
         static_cast<std::int64_t>(cached_.size()) < round.user_capacity;
         ++v) {
      if (arranged.Test(v) || !round.IsAvailable(v)) continue;
      if (!state.HasCapacity(v)) continue;
      if (instance_->conflicts().ConflictsWithAny(v, arranged)) continue;
      arranged.Set(v);
      cached_.push_back(v);
    }
    cached_capacity_ = round.user_capacity;
  }
  // Replay is always feasible: real-dataset capacities never bind.
  for (EventId v : cached_) FASEA_DCHECK(state.HasCapacity(v));
  return cached_;
}

void FullKnowledgePolicy::EstimateRewards(const ContextMatrix& contexts,
                                          std::span<double> out) const {
  FASEA_CHECK(out.size() == contexts.rows());
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = static_cast<double>(row_[v]);
  }
}

}  // namespace fasea
