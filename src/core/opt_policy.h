// Reference strategies that know the ground truth.
//
// OptPolicy — the paper's "OPT" for synthetic data: reads the true
// expected reward of every event from the FeedbackModel and runs
// Oracle-Greedy on them.
//
// FullKnowledgePolicy — the paper's "Full Knowledge" for the real
// dataset: the frozen feedbacks and fixed contexts make the optimal
// arrangement a constant, so it is computed once with the exact
// branch-and-bound oracle (max non-conflicting set of "Yes" events,
// capped at c_u) and replayed. Following §5.1, the arrangement is padded
// up to c_u with feasible "No" events so that its accept ratio is
// (max non-conflicting Yes-set)/c_u rather than a meaningless 1.
#ifndef FASEA_CORE_OPT_POLICY_H_
#define FASEA_CORE_OPT_POLICY_H_

#include <vector>

#include "core/policy.h"
#include "model/instance.h"
#include "model/round_provider.h"
#include "oracle/exact.h"
#include "oracle/greedy.h"

namespace fasea {

class OptPolicy final : public Policy {
 public:
  /// `instance` and `truth` must outlive the policy.
  OptPolicy(const ProblemInstance* instance, const FeedbackModel* truth)
      : instance_(instance), truth_(truth) {
    FASEA_CHECK(instance != nullptr && truth != nullptr);
  }

  std::string_view name() const override { return "OPT"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  void Learn(std::int64_t, const RoundContext&, const Arrangement&,
             const Feedback&) override {}

  /// OPT's estimates are the true expected rewards.
  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override {
    return scores_.capacity() * sizeof(double);
  }

 private:
  const ProblemInstance* instance_;
  const FeedbackModel* truth_;
  GreedyOracle greedy_;
  std::vector<double> scores_;
  std::int64_t last_t_ = 0;
};

class FullKnowledgePolicy final : public Policy {
 public:
  /// `feedback_row[v]` is the user's frozen Yes/No answer to event v.
  FullKnowledgePolicy(const ProblemInstance* instance,
                      std::vector<std::uint8_t> feedback_row)
      : instance_(instance), row_(std::move(feedback_row)) {
    FASEA_CHECK(instance != nullptr);
    FASEA_CHECK(row_.size() == instance->num_events());
  }

  std::string_view name() const override { return "Full Knowledge"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  void Learn(std::int64_t, const RoundContext&, const Arrangement&,
             const Feedback&) override {}

  void EstimateRewards(const ContextMatrix& contexts,
                       std::span<double> out) const override;

  std::size_t MemoryBytes() const override {
    return row_.capacity() + cached_.capacity() * sizeof(EventId);
  }

 private:
  const ProblemInstance* instance_;
  std::vector<std::uint8_t> row_;
  Arrangement cached_;
  std::int64_t cached_capacity_ = -1;
};

}  // namespace fasea

#endif  // FASEA_CORE_OPT_POLICY_H_
