// eGreedy and Exploit (Algorithm 4 and §4.1).
//
// eGreedy: with probability ε arrange a random feasible set of events
// (exploration); otherwise arrange greedily by the estimated expected
// rewards x ᵀ θ̂ (exploitation). Either way the feedbacks update Y and b.
//
// Exploit is the ε = 0 special case: pure exploitation. The paper shows
// it is strong on synthetic data but can lock into an all-rejected
// arrangement forever on the real dataset (u8 / u10 / u16), because with
// only 0-feedbacks and fixed contexts θ̂ never changes.
#ifndef FASEA_CORE_EPS_GREEDY_POLICY_H_
#define FASEA_CORE_EPS_GREEDY_POLICY_H_

#include <memory>

#include "core/linear_policy_base.h"
#include "oracle/random_oracle.h"
#include "rng/pcg64.h"

namespace fasea {

struct EpsGreedyParams {
  double lambda = 1.0;   // Ridge regularizer λ.
  double epsilon = 0.1;  // Exploration probability ε ∈ [0, 1].
  LearnerConfig learner;  // Exact / epoch / sketch maintenance.
};

class EpsGreedyPolicy : public LinearPolicyBase {
 public:
  /// `rng` drives both the ε coin flips and the random arrangements.
  EpsGreedyPolicy(const ProblemInstance* instance,
                  const EpsGreedyParams& params, Pcg64 rng);

  std::string_view name() const override {
    return params_.epsilon == 0.0 ? "Exploit" : "eGreedy";
  }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  /// Batched eGreedy over a snapshot: each user's ε coin comes from a
  /// private stream derived from the ticket (the sequential coin stream
  /// is untouched). Exploitation rows carry x ᵀ θ̂; exploration rows are
  /// marked kRandom with availability-only scores — the serving layer
  /// resolves them through a ticket-seeded RandomOracle.
  void ScoreBatchSnapshot(const LearnerSnapshot& snapshot,
                          std::span<const SnapshotRound> rows,
                          Matrix* scores,
                          std::span<RowResolve> resolve) const override;

  /// ε-mixture: (1−ε)·𝟙[A = greedy(θ̂)] + ε·P_random(A), the random mass
  /// Monte-Carlo estimated on a derived per-round stream (never the coin
  /// or oracle streams, so serving draws are untouched).
  double PropensityOf(std::int64_t t, const RoundContext& round,
                      const PlatformState& state,
                      const Arrangement& arrangement) override;

 private:
  EpsGreedyParams params_;
  Pcg64 coin_rng_;
  RandomOracle random_oracle_;
  std::uint64_t propensity_salt_;
  // Declared (and thus initialized) after propensity_salt_: its extra
  // draw from the constructor's rng parameter happens after every
  // pre-existing stream was derived, so adding it changed no sequential
  // behavior.
  std::uint64_t batch_salt_;
};

/// The pure-exploitation special case (ε = 0); needs no randomness.
std::unique_ptr<EpsGreedyPolicy> MakeExploitPolicy(
    const ProblemInstance* instance, double lambda,
    const LearnerConfig& learner = {});

}  // namespace fasea

#endif  // FASEA_CORE_EPS_GREEDY_POLICY_H_
