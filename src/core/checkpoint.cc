#include "core/checkpoint.h"

#include <cmath>

#include "common/bytes.h"
#include "common/strings.h"

namespace fasea {

namespace {

constexpr std::uint32_t kMagic = 0x46534541;  // "FSEA".
constexpr std::uint32_t kVersion = 1;

constexpr const char* kTruncated = "checkpoint: truncated data";

}  // namespace

std::string SaveCheckpoint(PolicyKind kind, const PolicyParams& params,
                           const LinearPolicyBase& policy) {
  const RidgeState& ridge = policy.ridge();
  const std::size_t d = ridge.dim();

  std::string out;
  out.reserve(48 + (d * d + d) * 8);
  AppendU32(&out, kMagic);
  AppendU32(&out, kVersion);
  AppendU32(&out, static_cast<std::uint32_t>(kind));
  AppendU32(&out, 0);  // Reserved.
  AppendDouble(&out, params.lambda);
  AppendDouble(&out, params.alpha);
  AppendDouble(&out, params.delta);
  AppendDouble(&out, params.epsilon);
  AppendU64(&out, d);
  AppendU64(&out, static_cast<std::uint64_t>(ridge.num_observations()));
  const Matrix& y = ridge.Y();
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) AppendDouble(&out, y(i, j));
  }
  for (std::size_t i = 0; i < d; ++i) AppendDouble(&out, ridge.b()[i]);
  return out;
}

StatusOr<PolicyCheckpoint> ParseCheckpoint(std::string_view data) {
  ByteReader reader(data, kTruncated);
  auto magic = reader.ReadU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return InvalidArgumentError("checkpoint: bad magic");
  }
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return InvalidArgumentError(
        StrFormat("checkpoint: unsupported version %u", *version));
  }
  auto kind_raw = reader.ReadU32();
  if (!kind_raw.ok()) return kind_raw.status();
  if (*kind_raw > static_cast<std::uint32_t>(PolicyKind::kRandom)) {
    return InvalidArgumentError("checkpoint: unknown policy kind");
  }
  auto reserved = reader.ReadU32();
  if (!reserved.ok()) return reserved.status();

  PolicyCheckpoint cp;
  cp.kind = static_cast<PolicyKind>(*kind_raw);
  // Every stored double must be finite: a flipped bit can smuggle in a
  // NaN/Inf that would silently poison Y (and every Cholesky behind it).
  const auto read_double = [&](double* out) -> Status {
    auto v = reader.ReadDouble();
    if (!v.ok()) return v.status();
    if (!std::isfinite(*v)) {
      return InvalidArgumentError("checkpoint: non-finite value");
    }
    *out = *v;
    return Status::Ok();
  };
  if (Status st = read_double(&cp.params.lambda); !st.ok()) return st;
  if (Status st = read_double(&cp.params.alpha); !st.ok()) return st;
  if (Status st = read_double(&cp.params.delta); !st.ok()) return st;
  if (Status st = read_double(&cp.params.epsilon); !st.ok()) return st;
  // Mirror the policy constructors' preconditions: a corrupted parameter
  // must surface as a Status here, not as an abort inside MakePolicy.
  if (cp.params.lambda <= 0.0) {
    return InvalidArgumentError("checkpoint: lambda must be positive");
  }
  if (cp.params.alpha < 0.0) {
    return InvalidArgumentError("checkpoint: alpha must be non-negative");
  }
  if (cp.params.delta <= 0.0 || cp.params.delta >= 1.0) {
    return InvalidArgumentError("checkpoint: delta must be in (0, 1)");
  }
  if (cp.params.epsilon < 0.0 || cp.params.epsilon > 1.0) {
    return InvalidArgumentError("checkpoint: epsilon must be in [0, 1]");
  }

  auto dim = reader.ReadU64();
  if (!dim.ok()) return dim.status();
  if (*dim == 0 || *dim > (1u << 20)) {
    return InvalidArgumentError("checkpoint: implausible dimension");
  }
  auto num_obs = reader.ReadU64();
  if (!num_obs.ok()) return num_obs.status();
  if (*num_obs > (1ull << 62)) {
    return InvalidArgumentError("checkpoint: implausible observation count");
  }
  cp.num_observations = static_cast<std::int64_t>(*num_obs);

  const std::size_t d = static_cast<std::size_t>(*dim);
  // Match the payload size before allocating d×d doubles: a flipped bit
  // in `dim` must not trigger a gigabyte allocation or mis-sliced reads.
  if (reader.remaining() != (d * d + d) * 8) {
    return InvalidArgumentError(reader.remaining() < (d * d + d) * 8
                                    ? kTruncated
                                    : "checkpoint: trailing bytes");
  }
  cp.y = Matrix(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (Status st = read_double(&cp.y(i, j)); !st.ok()) return st;
    }
  }
  cp.b = Vector(d);
  for (std::size_t i = 0; i < d; ++i) {
    if (Status st = read_double(&cp.b[i]); !st.ok()) return st;
  }
  FASEA_CHECK(reader.AtEnd());
  return cp;
}

StatusOr<std::unique_ptr<Policy>> RestorePolicy(
    const PolicyCheckpoint& checkpoint, const ProblemInstance* instance,
    std::uint64_t seed) {
  FASEA_CHECK(instance != nullptr);
  if (checkpoint.kind == PolicyKind::kRandom) {
    return InvalidArgumentError(
        "checkpoint: Random has no learning state to restore");
  }
  if (checkpoint.y.rows() != instance->dim()) {
    return InvalidArgumentError(StrFormat(
        "checkpoint dimension %zu does not match instance dimension %zu",
        checkpoint.y.rows(), instance->dim()));
  }
  auto ridge = RidgeState::FromComponents(
      checkpoint.params.lambda, checkpoint.y, checkpoint.b,
      checkpoint.num_observations);
  if (!ridge.ok()) return ridge.status();
  std::unique_ptr<Policy> policy =
      MakePolicy(checkpoint.kind, instance, checkpoint.params, seed);
  auto* base = dynamic_cast<LinearPolicyBase*>(policy.get());
  FASEA_CHECK(base != nullptr);
  base->RestoreRidge(std::move(ridge).value());
  return policy;
}

}  // namespace fasea
