// RidgeState: the shared learning state of every linear-payoff policy.
//
// All four learners of the paper (TS, UCB, eGreedy, Exploit) maintain the
// same sufficient statistics (Algorithms 1, 3, 4 lines 1-2 and 13-14):
//
//     Y = λ I + Σ x xᵀ      over all arranged events so far,
//     b = Σ r x             over all arranged events so far,
//     θ̂ = Y⁻¹ b             (ridge regression, [26]).
//
// RidgeState tracks Y exactly, keeps Y⁻¹ current via Sherman–Morrison
// rank-1 updates (with periodic re-factorization for numerical hygiene),
// and caches θ̂ lazily.
#ifndef FASEA_CORE_RIDGE_H_
#define FASEA_CORE_RIDGE_H_

#include <cstdint>

#include "common/status.h"
#include "linalg/sherman_morrison.h"
#include "linalg/vector.h"

namespace fasea {

class RidgeState {
 public:
  /// `lambda` is the ridge regularizer (Y starts at λI, must be > 0).
  /// `refactor_every` controls the periodic exact re-inversion cadence;
  /// 0 disables it (pure incremental mode, used by the ablation bench).
  RidgeState(std::size_t dim, double lambda,
             std::int64_t refactor_every = 4096);

  /// Restores a state from previously accumulated components (checkpoint
  /// loading). `y` must be SPD and shaped like `b`.
  static StatusOr<RidgeState> FromComponents(double lambda, Matrix y,
                                             Vector b,
                                             std::int64_t num_observations,
                                             std::int64_t refactor_every =
                                                 4096);

  std::size_t dim() const { return b_.size(); }
  double lambda() const { return lambda_; }

  /// Folds one observation (context x, reward r ∈ {0,1}) into Y and b.
  void Update(std::span<const double> x, double reward);

  /// θ̂ = Y⁻¹ b, cached until the next Update.
  const Vector& ThetaHat() const;

  /// x ᵀ θ̂ — the estimated expected reward of a context.
  double PredictedReward(std::span<const double> x) const;

  /// xᵀ Y⁻¹ x — squared confidence width of a context (LinUCB bonus).
  double ConfidenceWidthSq(std::span<const double> x) const {
    return inverse_.InverseQuadraticForm(x);
  }

  /// The tracked Gram matrix Y and maintained inverse.
  const Matrix& Y() const { return inverse_.y(); }
  const Matrix& YInverse() const { return inverse_.inverse(); }
  const Vector& b() const { return b_; }

  /// Number of (x, r) observations folded in so far.
  std::int64_t num_observations() const { return inverse_.num_updates(); }

  /// Full Cholesky re-factorizations performed / failed so far (every
  /// observation also costs one O(d²) Sherman–Morrison update).
  std::int64_t num_refactorizations() const {
    return inverse_.num_refactorizations();
  }
  std::int64_t num_refactor_failures() const {
    return inverse_.num_refactor_failures();
  }

  /// False once a periodic Cholesky refactorization of Y has failed
  /// (numerical corruption). Estimates may then be stale; serving layers
  /// fall back to a stateless proposal (see ArrangementService).
  bool healthy() const { return inverse_.healthy(); }

  /// Test hook: simulates numerical corruption of Y.
  void SetUnhealthyForTesting() { inverse_.SetUnhealthyForTesting(); }

  std::size_t MemoryBytes() const {
    return inverse_.MemoryBytes() + b_.MemoryBytes() +
           theta_hat_.MemoryBytes();
  }

 private:
  double lambda_;
  SymmetricInverse inverse_;
  Vector b_;
  mutable Vector theta_hat_;
  mutable bool theta_dirty_ = true;
};

}  // namespace fasea

#endif  // FASEA_CORE_RIDGE_H_
