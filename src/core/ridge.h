// RidgeState: the shared learning state of every linear-payoff policy.
//
// All four learners of the paper (TS, UCB, eGreedy, Exploit) maintain the
// same sufficient statistics (Algorithms 1, 3, 4 lines 1-2 and 13-14):
//
//     Y = λ I + Σ x xᵀ      over all arranged events so far,
//     b = Σ r x             over all arranged events so far,
//     θ̂ = Y⁻¹ b             (ridge regression, [26]).
//
// RidgeState tracks Y exactly, keeps Y⁻¹ current via Sherman–Morrison
// rank-1 updates (with periodic re-factorization for numerical hygiene),
// maintains the Cholesky factor of Y the same way (rank-1 updates, same
// re-factorization cadence) so TS never pays a per-round O(d³)
// factorization, and caches θ̂ lazily.
#ifndef FASEA_CORE_RIDGE_H_
#define FASEA_CORE_RIDGE_H_

#include <cstdint>

#include "common/status.h"
#include "core/learner_config.h"
#include "linalg/cholesky.h"
#include "linalg/sherman_morrison.h"
#include "linalg/vector.h"

namespace fasea {

class RidgeState {
 public:
  /// `lambda` is the ridge regularizer (Y starts at λI, must be > 0).
  /// `refactor_every` controls the periodic exact re-inversion cadence;
  /// 0 disables it (pure incremental mode, used by the ablation bench).
  RidgeState(std::size_t dim, double lambda,
             std::int64_t refactor_every = kDefaultRefactorEvery);

  /// Restores a state from previously accumulated components (checkpoint
  /// loading). `y` must be SPD and shaped like `b`.
  static StatusOr<RidgeState> FromComponents(double lambda, Matrix y,
                                             Vector b,
                                             std::int64_t num_observations,
                                             std::int64_t refactor_every =
                                                 kDefaultRefactorEvery);

  std::size_t dim() const { return b_.size(); }
  double lambda() const { return lambda_; }

  /// Folds one observation (context x, reward r ∈ {0,1}) into Y and b.
  void Update(std::span<const double> x, double reward);

  /// Folds a k×d block of observations in one amortized rank-k step:
  /// Y += XᵀX by blocked GEMM, b += Σ rᵢ xᵢ, then an exact
  /// re-factorization of both the inverse and the Cholesky factor (the
  /// epoch boundary — no incremental drift survives a block). Used by
  /// EpochRidgeState; per-observation cost amortizes to O(d²·k/k + d³/k)
  /// vs k separate O(d²) Sherman–Morrison + factor updates.
  void ApplyBlock(const Matrix& x_block, std::span<const double> rewards);

  /// θ̂ = Y⁻¹ b, cached until the next Update.
  const Vector& ThetaHat() const;

  /// x ᵀ θ̂ — the estimated expected reward of a context.
  double PredictedReward(std::span<const double> x) const;

  /// xᵀ Y⁻¹ x — squared confidence width of a context (LinUCB bonus).
  double ConfidenceWidthSq(std::span<const double> x) const {
    return inverse_.InverseQuadraticForm(x);
  }

  /// Batched x ᵀ θ̂ over every row of `contexts`: one vectorized GEMV
  /// instead of |V| dots. Bit-identical to PredictedReward per row.
  void PredictBatch(const Matrix& contexts, std::span<double> out) const;

  /// Batched xᵀ Y⁻¹ x over every row of `contexts`: one blocked GEMM plus
  /// row-dots instead of |V| d×d quadratic forms. Bit-identical to
  /// ConfidenceWidthSq per row. Mutates internal scratch — a RidgeState
  /// was never shareable across threads without a lock anyway (Update).
  void ConfidenceWidthSqBatch(const Matrix& contexts,
                              std::span<double> out) const;

  /// The maintained Cholesky factor of Y: rank-1 updated in O(d²) per
  /// observation and re-derived exactly on the refactor cadence, so it
  /// equals the fresh factor of Y up to rank-1 rounding drift. Only
  /// meaningful while factor_healthy().
  const Cholesky& Factor() const { return factor_; }

  /// False once a rank-1 factor update or a periodic re-derivation failed
  /// (Y numerically corrupt). A later successful re-derivation restores
  /// health. TS falls back to a degraded proposal while false.
  bool factor_healthy() const { return factor_healthy_; }

  std::int64_t num_factor_refactorizations() const {
    return num_factor_refactorizations_;
  }
  std::int64_t num_factor_failures() const { return num_factor_failures_; }

  /// The tracked Gram matrix Y and maintained inverse.
  const Matrix& Y() const { return inverse_.y(); }
  const Matrix& YInverse() const { return inverse_.inverse(); }
  const Vector& b() const { return b_; }

  /// Number of (x, r) observations folded in so far.
  std::int64_t num_observations() const { return inverse_.num_updates(); }

  /// Full Cholesky re-factorizations performed / failed so far (every
  /// observation also costs one O(d²) Sherman–Morrison update).
  std::int64_t num_refactorizations() const {
    return inverse_.num_refactorizations();
  }
  std::int64_t num_refactor_failures() const {
    return inverse_.num_refactor_failures();
  }

  /// False once a periodic Cholesky refactorization of Y has failed
  /// (numerical corruption). Estimates may then be stale; serving layers
  /// fall back to a stateless proposal (see ArrangementService).
  bool healthy() const { return inverse_.healthy(); }

  /// On-demand exact re-derivation of the inverse and the Cholesky
  /// factor from the tracked Y (O(d³)): clears every bit of rank-1
  /// drift and restores health if Y is still SPD. The sharded serving
  /// layer calls this after absorbing a peer shard's observation delta
  /// — a merged batch of rank-1 updates can drift the factor further
  /// than the periodic cadence anticipates, and the exact restart is
  /// the repair path.
  void Refactorize() {
    inverse_.Refactorize();
    RefactorizeFactor();
    theta_dirty_ = true;
  }

  /// Test hook: simulates numerical corruption of Y.
  void SetUnhealthyForTesting() {
    inverse_.SetUnhealthyForTesting();
    factor_healthy_ = false;
  }

  /// Test hook: corrupts the tracked Y itself (negative diagonal) so every
  /// subsequent factorization attempt fails, and marks the maintained
  /// factor unhealthy — the state a real corruption would be detected in.
  void CorruptYForTesting() {
    inverse_.CorruptYForTesting();
    factor_healthy_ = false;
  }

  std::size_t MemoryBytes() const {
    return inverse_.MemoryBytes() + b_.MemoryBytes() +
           theta_hat_.MemoryBytes() + factor_.L().MemoryBytes() +
           factor_work_.MemoryBytes() + batch_at_.MemoryBytes() +
           batch_g_.MemoryBytes();
  }

 private:
  /// Re-derives the factor from the tracked Y (O(d³)); clears rank-1
  /// drift, restores health on success.
  void RefactorizeFactor();

  double lambda_;
  SymmetricInverse inverse_;
  Vector b_;
  Cholesky factor_;
  std::int64_t refactor_every_;
  std::int64_t num_factor_refactorizations_ = 0;
  std::int64_t num_factor_failures_ = 0;
  bool factor_healthy_ = true;
  mutable Vector factor_work_;  // Scratch for the rank-1 factor update.
  mutable Matrix batch_at_;     // Scratch: (Y⁻¹)ᵀ for the batched widths.
  mutable Matrix batch_g_;      // Scratch: X · (Y⁻¹)ᵀ.
  mutable Vector theta_hat_;
  mutable bool theta_dirty_ = true;
};

}  // namespace fasea

#endif  // FASEA_CORE_RIDGE_H_
