// UCB: the C²UCB-style upper-confidence-bound policy (Algorithm 3),
// adapting [36] (contextual combinatorial bandit) built on LinUCB [26][13].
//
// Each round:
//   θ̂_t = Y⁻¹ b
//   r̃_{t,v} = x_{t,v}ᵀ θ̂_t
//   r̂_{t,v} = r̃_{t,v} + α √(x_{t,v}ᵀ Y⁻¹ x_{t,v})
//   A_t = Oracle-Greedy(r̂, CF, c_v, c_u)
//
// The α√(xᵀY⁻¹x) bonus is the concentration-inequality width [48][26]:
// under-explored directions keep large widths, so UCB can escape the
// all-zero-feedback lock-in that traps Exploit on the real dataset.
#ifndef FASEA_CORE_UCB_POLICY_H_
#define FASEA_CORE_UCB_POLICY_H_

#include "core/linear_policy_base.h"

namespace fasea {

struct UcbParams {
  double lambda = 1.0;  // Ridge regularizer λ.
  double alpha = 2.0;   // Exploration weight α.
  LearnerConfig learner;  // Exact / epoch / sketch maintenance.
};

class UcbPolicy final : public LinearPolicyBase {
 public:
  UcbPolicy(const ProblemInstance* instance, const UcbParams& params);

  std::string_view name() const override { return "UCB"; }

  Arrangement Propose(std::int64_t t, const RoundContext& round,
                      const PlatformState& state) override;

  /// Batched UCB over a snapshot: one stacked GEMV for the predictions
  /// plus one stacked width GEMM against the snapshot's precomputed
  /// (Y⁻¹)ᵀ, then the same per-event combine as Propose — bit-identical
  /// to scoring each user separately against that learner state.
  void ScoreBatchSnapshot(const LearnerSnapshot& snapshot,
                          std::span<const SnapshotRound> rows,
                          Matrix* scores,
                          std::span<RowResolve> resolve) const override;

  /// The upper confidence bound r̂ of one context under the current state
  /// (exposed for tests of the bound's shrinking behaviour).
  double UpperConfidenceBound(std::span<const double> x) const;

 private:
  UcbParams params_;
  // Per-round scratch for the batched kernels (sized lazily, reused).
  std::vector<double> pred_;
  std::vector<double> width_;
};

}  // namespace fasea

#endif  // FASEA_CORE_UCB_POLICY_H_
