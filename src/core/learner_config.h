// Learner configuration shared by RidgeState and EpochRidgeState.
//
// The exact learner pays O(d²) per observation (Sherman–Morrison +
// incremental Cholesky) and O(d²) memory. Bento et al., "A Time and
// Space Efficient Algorithm for Contextual Linear Bandits"
// (arXiv:1207.3024) shows both can be bounded below that: fold
// observations into a buffer and apply them in epochs (amortized rank-k
// instead of per-round rank-1), and/or keep only a frequent-directions
// sketch of Y so state is O(d·m) with m ≪ d. LearnerMode selects the
// trade-off; kExact is bit-identical to the pre-existing behaviour.
#ifndef FASEA_CORE_LEARNER_CONFIG_H_
#define FASEA_CORE_LEARNER_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace fasea {

/// Periodic exact re-factorization cadence of the incrementally
/// maintained Y⁻¹ / Cholesky factor. One constant instead of a default
/// duplicated across RidgeState's constructor, FromComponents, and the
/// epoch learner: drift hygiene must not silently diverge between the
/// rank-1 and rank-k paths.
inline constexpr std::int64_t kDefaultRefactorEvery = 4096;

enum class LearnerMode {
  /// Per-observation rank-1 maintenance (the paper's learner).
  kExact,
  /// Observations buffer into epochs of `epoch_length`; the boundary
  /// applies them as one rank-k update (Y += XᵀX via GEMM) followed by
  /// the exact refactorization. Scoring between boundaries reads the
  /// state of the last applied epoch (bounded staleness < epoch_length
  /// observations). epoch_length == 1 routes through the exact rank-1
  /// path and is bit-identical to kExact.
  kEpoch,
  /// Frequent-directions sketch of Y: state is O(d·sketch_size) instead
  /// of O(d²). θ̂, confidence widths and posterior samples come from the
  /// Woodbury identity against the sketch; b = Σ r·x stays exact.
  kSketch,
};

struct LearnerConfig {
  LearnerMode mode = LearnerMode::kExact;
  /// kEpoch: observations applied per boundary (>= 1).
  std::int64_t epoch_length = 1;
  /// kSketch: number of retained directions m (>= 1). Memory and
  /// per-score cost scale with m; approximation error shrinks as m
  /// approaches the effective rank of the context stream.
  std::size_t sketch_size = 16;
  /// Exact re-factorization cadence of the rank-1 paths (0 disables).
  std::int64_t refactor_every = kDefaultRefactorEvery;
};

}  // namespace fasea

#endif  // FASEA_CORE_LEARNER_CONFIG_H_
