// Lazy top-k scoring: the arrangement loop that makes propose cost
// sublinear in |V| on cached-context rounds.
//
// GreedyOracle::Select already pops a heap lazily, but every policy
// still SCORES all |V| events first — the Θ(|V|·d) that walls out
// Table 5. On static-context rounds (RoundContext::IsLazy) the exact
// scores of the previous rounds remain useful: between learner changes,
// an event's exact score is unchanged, and across changes it moves by at
// most the accumulated drift of θ̂ (|x·θ − x·θ'| ≤ ‖x‖·‖θ−θ'‖ ≤ ‖θ−θ'‖,
// the paper's ‖x‖ ≤ 1 bound) while its UCB width only shrinks (Y grows
// monotonically, so xᵀY⁻¹x is non-increasing). That yields a per-event
// upper bound
//
//     bound(v) = pred_cached(v) + (drift_now − drift_cached(v))
//                + α·√(width_cached(v)) + slack
//
// requiring no context materialization at all. The selection loop runs
// the same (key desc, id asc) heap as GreedyOracle over these bounds,
// re-scoring an event (one ContextCache row + O(d²) exact score) only
// when its bound actually reaches the top. A popped-and-exact event is a
// true maximum over the remaining set (its exact key dominates every
// other bound, and bounds dominate true scores), so the arrangement is
// IDENTICAL — bit for bit, tie order included — to scoring all |V| rows
// eagerly and running GreedyOracle. Typical rounds rescore a few dozen
// events out of tens of thousands.
//
// The slack term absorbs the floating-point error of the accumulated
// drift sum (each ‖Δθ̂‖ is computed in FP); it only makes bounds looser
// (more rescores), never affects returned scores — arrangement decisions
// compare exact scores only.
#ifndef FASEA_CORE_LAZY_SCORER_H_
#define FASEA_CORE_LAZY_SCORER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/conflict_graph.h"
#include "linalg/vector.h"
#include "model/context.h"
#include "model/platform_state.h"
#include "model/types.h"

namespace fasea {

/// An exact (pred, width²) pair for one event, produced on demand by the
/// policy's rescore callback.
struct LazyEventScore {
  double pred = 0.0;
  double width_sq = 0.0;
};

class LazyScorer {
 public:
  /// `width0` is the a-priori width bound (xᵀY⁻¹x ≤ ‖x‖²/λ ≤ 1/λ at
  /// Y = λI, and widths only shrink from there). `widths_monotone` must
  /// be false for sketch-backed learners — a frequent-directions shrink
  /// can INCREASE widths, so their bounds fall back to width0.
  LazyScorer(std::size_t num_events, double width0,
             bool widths_monotone = true);

  /// Tells the scorer the learner may have changed. Call once after every
  /// Learn with the current θ̂ and the learner's scoring_version(); a
  /// version it has already seen is a no-op (mid-epoch updates keep every
  /// cached score exact — the epoch learner's staleness is the lazy
  /// scorer's friend).
  void NoteLearn(const Vector& theta_hat, std::int64_t scoring_version);

  /// Runs the greedy arrangement over score(v) = pred(v) + α·√width²(v)
  /// without scoring all |V| events: cached-exact events place directly,
  /// stale events re-score through `rescore` only when their bound tops
  /// the heap. Availability, event capacity and conflicts follow
  /// GreedyOracle::Select exactly.
  Arrangement Select(double alpha,
                     const std::function<LazyEventScore(EventId)>& rescore,
                     const RoundContext& round,
                     const ConflictGraph& conflicts,
                     const PlatformState& state, std::int64_t user_capacity);

  std::int64_t num_pops() const { return num_pops_; }
  std::int64_t num_rescores() const { return num_rescores_; }
  std::int64_t num_selects() const { return num_selects_; }

  std::size_t MemoryBytes() const {
    return (pred_.capacity() + width_.capacity() + drift_at_.capacity() +
            keys_.capacity()) *
               sizeof(double) +
           version_.capacity() * sizeof(version_[0]) +
           order_.capacity() * sizeof(order_[0]) +
           theta_prev_.MemoryBytes() + arranged_.MemoryBytes();
  }

 private:
  double Key(EventId v, double alpha) const;

  // Bounds must only ever err upward; the slack dominates the ~1e-16
  // relative error of the FP drift accumulation at fig1 scales.
  static constexpr double kBoundSlack = 1e-9;

  double width0_;
  bool widths_monotone_;

  std::vector<double> pred_;      // Cached exact prediction.
  std::vector<double> width_;     // Cached exact width² (at cache time).
  std::vector<double> drift_at_;  // drift_sum_ when the cache was taken.
  std::vector<std::int64_t> version_;  // Learner version of the cache.

  std::int64_t learner_version_ = 0;
  double drift_sum_ = 0.0;
  Vector theta_prev_;  // θ̂ at the last NoteLearn (starts at 0 = θ̂₀).

  std::vector<EventId> order_;  // Heap storage.
  std::vector<double> keys_;
  EventBitset arranged_;

  std::int64_t num_pops_ = 0;
  std::int64_t num_rescores_ = 0;
  std::int64_t num_selects_ = 0;
};

}  // namespace fasea

#endif  // FASEA_CORE_LAZY_SCORER_H_
