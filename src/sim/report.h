// Table builders turning SimulationResults into the series and summary
// tables the paper's figures/tables report.
#ifndef FASEA_SIM_REPORT_H_
#define FASEA_SIM_REPORT_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "sim/simulator.h"

namespace fasea {

enum class SeriesMetric {
  kAcceptRatio,
  kTotalRewards,
  kTotalRegret,
  kRegretRatio,
  kKendallTau,
};

std::string_view SeriesMetricName(SeriesMetric metric);

/// One row per checkpoint t, one column per policy (reference first when
/// `include_reference`). `max_rows` thins the series evenly for printing
/// (0 = all checkpoints).
TextTable SeriesTable(const SimulationResult& result, SeriesMetric metric,
                      bool include_reference = true, std::size_t max_rows = 0);

/// Final aggregates: one row per policy with accept ratio, total rewards,
/// total regret, regret ratio, avg round time, memory.
TextTable SummaryTable(const SimulationResult& result,
                       bool include_reference = true);

/// Efficiency comparison across labelled runs (paper Tables 5 and 6):
/// one row per policy, one column pair (time, memory) per labelled run.
TextTable EfficiencyTable(
    const std::vector<std::pair<std::string, SimulationResult>>& runs);

/// Writes one CSV per metric (`<prefix>_accept_ratio.csv`,
/// `<prefix>_total_regrets.csv`, ...) plus `<prefix>_summary.csv`.
/// Aborts on I/O failure. Returns the written paths.
std::vector<std::string> WriteResultCsvs(const SimulationResult& result,
                                         const std::string& prefix);

}  // namespace fasea

#endif  // FASEA_SIM_REPORT_H_
