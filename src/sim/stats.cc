#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace fasea {

SummaryStats Summarize(std::span<const double> values) {
  SummaryStats stats;
  stats.count = values.size();
  if (values.empty()) return stats;
  double sum = 0.0;
  stats.min = values[0];
  stats.max = values[0];
  for (double v : values) {
    sum += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return stats;
}

double OlsSlope(std::span<const double> x, std::span<const double> y) {
  FASEA_CHECK(x.size() == y.size() && x.size() >= 2);
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(x.size());
  mean_y /= static_cast<double>(x.size());
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mean_x) * (x[i] - mean_x);
    sxy += (x[i] - mean_x) * (y[i] - mean_y);
  }
  FASEA_CHECK(sxx > 0.0 && "x must not be constant");
  return sxy / sxx;
}

}  // namespace fasea
