// Small summary-statistics helpers for multi-seed experiment aggregation.
#ifndef FASEA_SIM_STATS_H_
#define FASEA_SIM_STATS_H_

#include <cstddef>
#include <span>

namespace fasea {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/sample-stddev/min/max of `values`; empty input
/// returns all zeros.
SummaryStats Summarize(std::span<const double> values);

/// Ordinary least squares slope of y against x (equal sizes, >= 2 points
/// with non-constant x required; aborts otherwise). Used to fit regret
/// growth exponents on log-log scales.
double OlsSlope(std::span<const double> x, std::span<const double> y);

}  // namespace fasea

#endif  // FASEA_SIM_STATS_H_
