// Evaluation metrics of §5.1: accept ratio, total rewards, total regrets,
// regret ratio, Kendall's rank correlation, and per-round time/memory.
#ifndef FASEA_SIM_METRICS_H_
#define FASEA_SIM_METRICS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fasea {

/// Kendall rank correlation (τ-a with tie-neutral pairs):
///     (#concordant − #discordant) / (n(n−1)/2).
/// Pairs tied in either input contribute 0, matching the paper's
/// definition on continuous reward estimates. O(n log n) via merge-sort
/// inversion counting.
double KendallTau(std::span<const double> a, std::span<const double> b);

/// O(n²) reference implementation; used by tests to validate KendallTau.
double KendallTauNaive(std::span<const double> a, std::span<const double> b);

/// The paper's checkpoint grid for a horizon T: 100, 200, ..., 1000, then
/// 2000, 3000, ... up to T (scaled down proportionally when T < 100000),
/// always including T itself.
std::vector<std::int64_t> CheckpointSchedule(std::int64_t horizon);

/// Time series of one policy's run, sampled at the checkpoint grid.
struct TrajectoryResult {
  std::string name;

  std::vector<std::int64_t> checkpoints;
  std::vector<double> cum_rewards;    // Σ accepted events up to t.
  std::vector<double> cum_arranged;   // Σ |A_t| up to t.
  std::vector<double> accept_ratio;   // cum_rewards / cum_arranged.
  std::vector<double> total_regret;   // ref cum_rewards − cum_rewards.
  std::vector<double> regret_ratio;   // total_regret / cum_rewards.
  std::vector<double> kendall_tau;    // Ranking correlation vs truth.

  // Final whole-run aggregates.
  double final_reward = 0.0;
  double final_arranged = 0.0;
  double final_regret = 0.0;
  double avg_round_seconds = 0.0;
  std::size_t memory_bytes = 0;

  // Per-round decision latency (Propose + Learn) percentiles over the
  // whole run, from the trajectory's log-scale histogram (obs/metrics.h).
  // Unlike avg_round_seconds these expose the tail, which the mean hides.
  std::int64_t latency_p50_ns = 0;
  std::int64_t latency_p95_ns = 0;
  std::int64_t latency_p99_ns = 0;
  std::int64_t latency_max_ns = 0;

  double FinalAcceptRatio() const {
    return final_arranged > 0 ? final_reward / final_arranged : 0.0;
  }
  double FinalRegretRatio() const {
    return final_reward > 0 ? final_regret / final_reward : 0.0;
  }
};

}  // namespace fasea

#endif  // FASEA_SIM_METRICS_H_
