// High-level experiment drivers shared by the bench binaries, tests, and
// examples: one call builds the world, instantiates the paper's policies,
// runs the simulator, and returns the metric trajectories.
#ifndef FASEA_SIM_EXPERIMENT_H_
#define FASEA_SIM_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "core/policy_factory.h"
#include "datagen/real_surrogate.h"
#include "datagen/synthetic.h"
#include "sim/simulator.h"

namespace fasea {

/// A synthetic-data experiment: Table 4 data configuration + algorithm
/// parameters + which policies to run. The reference is OPT.
struct SyntheticExperiment {
  SyntheticConfig data;
  PolicyParams params;
  std::vector<PolicyKind> kinds = AllPolicyKinds();
  /// Seeds policy randomness and feedback sampling (the data seed lives
  /// in `data.seed`).
  std::uint64_t run_seed = 42;
  bool compute_kendall = false;
  bool validate_arrangements = true;
  /// See SimOptions::emit_metrics_every.
  std::int64_t emit_metrics_every = 0;
  /// See SimOptions::threads (per-round trajectory fan-out; results are
  /// bit-identical for every value).
  int threads = 1;
};

SimulationResult RunSyntheticExperiment(const SyntheticExperiment& exp);

/// Runs a batch of independent experiments — a seed sweep, a |V|/d/cr
/// figure sweep — fanning whole experiments out across `threads` workers
/// (<= 0 = one per hardware thread). Results come back in input order and
/// are bit-identical to running each experiment alone: every experiment
/// builds its own world, policies, and RNG streams. This is the outer
/// parallelism axis; per-experiment `exp.threads` is the inner one —
/// prefer the outer for sweeps (better locality, no per-round barrier).
std::vector<SimulationResult> RunSyntheticExperiments(
    const std::vector<SyntheticExperiment>& exps, int threads);

/// A real-dataset experiment for one user (Fig 10 / Table 7). The
/// reference is Full Knowledge; the OnlineGreedy baseline of [39] can be
/// appended to the policy list.
struct RealExperiment {
  std::size_t user = 0;
  std::int64_t horizon = 1000;
  /// c_u for every round; kFullCapacity uses the user's Yes-count
  /// (the paper's "c_u = full" setting).
  std::int64_t user_capacity = 5;
  static constexpr std::int64_t kFullCapacity = -1;

  PolicyParams params;
  std::vector<PolicyKind> kinds = AllPolicyKinds();
  bool include_online_baseline = true;
  std::uint64_t run_seed = 42;
  bool compute_kendall = false;
  /// See SimOptions::emit_metrics_every.
  std::int64_t emit_metrics_every = 0;
  /// See SimOptions::threads.
  int threads = 1;
};

SimulationResult RunRealExperiment(const RealDataset& dataset,
                                   const RealExperiment& exp);

/// Scale factor from the FASEA_SCALE environment variable (default 1.0,
/// accepted range (0, 1]). Bench binaries use it to shrink the paper's
/// T = 100000 runs proportionally on small machines. A value that is not
/// a plain number in (0, 1] — trailing garbage included — aborts with a
/// message naming the offending text.
double EnvScale();

/// Scales an experiment down: horizon and event capacities shrink by
/// `scale` so the capacity-exhaustion dynamics keep their shape. The
/// scaled capacity mean is floored at 1.0 (and the stddev shrunk no
/// further than the mean) so extreme scales cannot drive every sampled
/// capacity to zero and make all arrangements empty.
void ApplyScale(double scale, SyntheticConfig* config);

}  // namespace fasea

#endif  // FASEA_SIM_EXPERIMENT_H_
