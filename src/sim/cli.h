// The fasea_cli command-line driver, as a library so tests can exercise
// flag parsing and experiment construction without spawning a process.
//
//   fasea_cli --mode=synthetic --num_events=500 --dim=20 --horizon=100000
//             --policies=ucb,ts,egreedy,exploit,random --csv_prefix=out/run
//   fasea_cli --mode=real --user=1 --user_capacity=full --horizon=1000
#ifndef FASEA_SIM_CLI_H_
#define FASEA_SIM_CLI_H_

#include <string>

#include "common/flags.h"
#include "sim/experiment.h"

namespace fasea {

/// Declares every fasea_cli flag on `flags`.
void RegisterCliFlags(FlagSet* flags);

/// Parses --policies=ucb,ts,... into kinds (case-insensitive). Rejects
/// unknown names and empty lists.
StatusOr<std::vector<PolicyKind>> ParsePolicyList(const std::string& text);

/// Builds the synthetic experiment from parsed flags.
StatusOr<SyntheticExperiment> SyntheticExperimentFromFlags(
    const FlagSet& flags);

/// Builds the real-dataset experiment from parsed flags.
StatusOr<RealExperiment> RealExperimentFromFlags(const FlagSet& flags);

/// Full driver: parse, run, print, optionally export CSVs. Returns the
/// process exit code.
int CliMain(int argc, const char* const* argv);

}  // namespace fasea

#endif  // FASEA_SIM_CLI_H_
