#include "sim/cli.h"

#include <cstdio>

#include "common/strings.h"
#include "sim/report.h"

namespace fasea {

namespace {

std::string ToLower(std::string text) {
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return text;
}

StatusOr<ValueDistribution> ParseDistribution(const std::string& text) {
  const std::string lower = ToLower(text);
  if (lower == "uniform") return ValueDistribution::kUniform;
  if (lower == "normal") return ValueDistribution::kNormal;
  if (lower == "power") return ValueDistribution::kPower;
  if (lower == "shuffle") return ValueDistribution::kShuffle;
  return InvalidArgumentError("unknown distribution '" + text +
                              "' (uniform|normal|power|shuffle)");
}

}  // namespace

void RegisterCliFlags(FlagSet* flags) {
  flags->DefineBool("help", false, "Print usage and exit.");
  flags->DefineString("mode", "synthetic",
                      "Experiment mode: synthetic | real.");
  // Shared.
  flags->DefineString("policies", "ucb,ts,egreedy,exploit,random",
                      "Comma-separated policy list.");
  flags->DefineInt("horizon", 100000, "Number of rounds T.");
  flags->DefineInt("seed", 20170514, "Dataset seed.");
  flags->DefineInt("run_seed", 42,
                   "Seed for policy randomness and feedback draws.");
  flags->DefineBool("kendall", false,
                    "Compute Kendall tau vs the reference ranking.");
  flags->DefineString("csv_prefix", "",
                      "If set, write <prefix>_<metric>.csv files.");
  flags->DefineInt("series_rows", 14,
                   "Rows to print per metric series (0 = all).");
  flags->DefineInt("emit_metrics_every", 0,
                   "Print per-policy progress/latency lines to stderr every "
                   "N rounds (0 = off).");
  flags->DefineInt("threads", 1,
                   "Worker threads for the per-round trajectory fan-out "
                   "(1 = sequential, <= 0 = one per hardware thread); "
                   "results are identical for every value.");
  // Algorithm parameters (paper defaults).
  flags->DefineDouble("lambda", 1.0, "Ridge regularizer lambda.");
  flags->DefineDouble("alpha", 2.0, "UCB exploration weight alpha.");
  flags->DefineDouble("delta", 0.1, "TS confidence parameter delta.");
  flags->DefineDouble("epsilon", 0.1, "eGreedy exploration rate epsilon.");
  // Synthetic data (Table 4).
  flags->DefineInt("num_events", 500, "|V|: number of events.");
  flags->DefineInt("dim", 20, "d: context dimension.");
  flags->DefineString("theta_dist", "uniform",
                      "theta distribution: uniform|normal|power.");
  flags->DefineString("context_dist", "uniform",
                      "Feature distribution: uniform|normal|power|shuffle.");
  flags->DefineDouble("cv_mean", 200.0, "Event capacity mean.");
  flags->DefineDouble("cv_stddev", 100.0, "Event capacity stddev.");
  flags->DefineInt("cu_min", 1, "User capacity lower bound.");
  flags->DefineInt("cu_max", 5, "User capacity upper bound.");
  flags->DefineDouble("conflict_ratio", 0.25, "Conflict ratio cr.");
  flags->DefineBool("basic_bandit", false,
                    "Basic contextual bandit mode (no caps/conflicts, one "
                    "event per round).");
  // Real dataset.
  flags->DefineInt("user", 1, "Real mode: user index 1..19.");
  flags->DefineString("user_capacity", "5",
                      "Real mode: c_u per round, or 'full'.");
  flags->DefineBool("online_baseline", true,
                    "Real mode: include the OnlineGreedy [39] baseline.");
}

StatusOr<std::vector<PolicyKind>> ParsePolicyList(const std::string& text) {
  std::vector<PolicyKind> kinds;
  for (const std::string& raw : StrSplit(text, ',')) {
    const std::string name = ToLower(std::string(StripAsciiWhitespace(raw)));
    if (name.empty()) continue;
    if (name == "ucb") {
      kinds.push_back(PolicyKind::kUcb);
    } else if (name == "ts") {
      kinds.push_back(PolicyKind::kTs);
    } else if (name == "egreedy") {
      kinds.push_back(PolicyKind::kEpsGreedy);
    } else if (name == "exploit") {
      kinds.push_back(PolicyKind::kExploit);
    } else if (name == "random") {
      kinds.push_back(PolicyKind::kRandom);
    } else if (name == "boltzmann") {
      kinds.push_back(PolicyKind::kBoltzmann);
    } else {
      return InvalidArgumentError(
          "unknown policy '" + name +
          "' (ucb|ts|egreedy|exploit|random|boltzmann)");
    }
  }
  if (kinds.empty()) {
    return InvalidArgumentError("--policies must name at least one policy");
  }
  return kinds;
}

StatusOr<SyntheticExperiment> SyntheticExperimentFromFlags(
    const FlagSet& flags) {
  SyntheticExperiment exp;
  exp.data.num_events = static_cast<std::size_t>(flags.GetInt("num_events"));
  exp.data.dim = static_cast<std::size_t>(flags.GetInt("dim"));
  exp.data.horizon = flags.GetInt("horizon");
  auto theta_dist = ParseDistribution(flags.GetString("theta_dist"));
  if (!theta_dist.ok()) return theta_dist.status();
  exp.data.theta_dist = *theta_dist;
  auto context_dist = ParseDistribution(flags.GetString("context_dist"));
  if (!context_dist.ok()) return context_dist.status();
  exp.data.context_dist = *context_dist;
  exp.data.event_capacity_mean = flags.GetDouble("cv_mean");
  exp.data.event_capacity_stddev = flags.GetDouble("cv_stddev");
  exp.data.user_capacity_min = flags.GetInt("cu_min");
  exp.data.user_capacity_max = flags.GetInt("cu_max");
  exp.data.conflict_ratio = flags.GetDouble("conflict_ratio");
  exp.data.basic_bandit = flags.GetBool("basic_bandit");
  exp.data.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  if (Status st = exp.data.Validate(); !st.ok()) return st;

  exp.params.lambda = flags.GetDouble("lambda");
  exp.params.alpha = flags.GetDouble("alpha");
  exp.params.delta = flags.GetDouble("delta");
  exp.params.epsilon = flags.GetDouble("epsilon");
  auto kinds = ParsePolicyList(flags.GetString("policies"));
  if (!kinds.ok()) return kinds.status();
  exp.kinds = *kinds;
  exp.run_seed = static_cast<std::uint64_t>(flags.GetInt("run_seed"));
  exp.compute_kendall = flags.GetBool("kendall");
  exp.emit_metrics_every = flags.GetInt("emit_metrics_every");
  exp.threads = static_cast<int>(flags.GetInt("threads"));
  return exp;
}

StatusOr<RealExperiment> RealExperimentFromFlags(const FlagSet& flags) {
  RealExperiment exp;
  const std::int64_t user = flags.GetInt("user");
  if (user < 1 || user > static_cast<std::int64_t>(RealDataset::kNumUsers)) {
    return InvalidArgumentError(
        StrFormat("--user must be in 1..%zu", RealDataset::kNumUsers));
  }
  exp.user = static_cast<std::size_t>(user - 1);
  exp.horizon = flags.GetInt("horizon");
  const std::string cu = flags.GetString("user_capacity");
  if (cu == "full") {
    exp.user_capacity = RealExperiment::kFullCapacity;
  } else {
    const std::int64_t value = std::atoll(cu.c_str());
    if (value < 1) {
      return InvalidArgumentError("--user_capacity must be >= 1 or 'full'");
    }
    exp.user_capacity = value;
  }
  exp.params.lambda = flags.GetDouble("lambda");
  exp.params.alpha = flags.GetDouble("alpha");
  exp.params.delta = flags.GetDouble("delta");
  exp.params.epsilon = flags.GetDouble("epsilon");
  auto kinds = ParsePolicyList(flags.GetString("policies"));
  if (!kinds.ok()) return kinds.status();
  exp.kinds = *kinds;
  exp.include_online_baseline = flags.GetBool("online_baseline");
  exp.run_seed = static_cast<std::uint64_t>(flags.GetInt("run_seed"));
  exp.compute_kendall = flags.GetBool("kendall");
  exp.emit_metrics_every = flags.GetInt("emit_metrics_every");
  exp.threads = static_cast<int>(flags.GetInt("threads"));
  return exp;
}

int CliMain(int argc, const char* const* argv) {
  FlagSet flags;
  RegisterCliFlags(&flags);
  if (Status st = flags.Parse(argc - 1, argv + 1); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::fputs(flags.HelpText(argv[0]).c_str(), stdout);
    return 0;
  }

  SimulationResult result;
  const std::string mode = flags.GetString("mode");
  if (mode == "synthetic") {
    auto exp = SyntheticExperimentFromFlags(flags);
    if (!exp.ok()) {
      std::fprintf(stderr, "%s\n", exp.status().ToString().c_str());
      return 2;
    }
    std::printf("mode=synthetic |V|=%zu d=%zu T=%lld cr=%g\n\n",
                exp->data.num_events, exp->data.dim,
                static_cast<long long>(exp->data.horizon),
                exp->data.conflict_ratio);
    result = RunSyntheticExperiment(*exp);
  } else if (mode == "real") {
    auto exp = RealExperimentFromFlags(flags);
    if (!exp.ok()) {
      std::fprintf(stderr, "%s\n", exp.status().ToString().c_str());
      return 2;
    }
    std::printf("mode=real user=u%zu T=%lld c_u=%s\n\n", exp->user + 1,
                static_cast<long long>(exp->horizon),
                flags.GetString("user_capacity").c_str());
    const RealDataset dataset =
        RealDataset::Create(static_cast<std::uint64_t>(flags.GetInt("seed")));
    result = RunRealExperiment(dataset, *exp);
  } else {
    std::fprintf(stderr, "unknown --mode '%s' (synthetic|real)\n",
                 mode.c_str());
    return 2;
  }

  const std::size_t rows =
      static_cast<std::size_t>(flags.GetInt("series_rows"));
  std::printf("--- Accept ratio (cumulative) ---\n");
  SeriesTable(result, SeriesMetric::kAcceptRatio, true, rows).Print();
  std::printf("\n--- Total regrets ---\n");
  SeriesTable(result, SeriesMetric::kTotalRegret, false, rows).Print();
  std::printf("\n--- Summary ---\n");
  SummaryTable(result).Print();

  const std::string prefix = flags.GetString("csv_prefix");
  if (!prefix.empty()) {
    const auto paths = WriteResultCsvs(result, prefix);
    std::printf("\nwrote %zu CSV files:\n", paths.size());
    for (const auto& path : paths) std::printf("  %s\n", path.c_str());
  }
  return 0;
}

}  // namespace fasea
