#include "sim/simulator.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "oracle/oracle.h"
#include "rng/seed.h"

namespace fasea {

namespace {

/// Mutable bookkeeping of one trajectory during a run.
struct Trajectory {
  Policy* policy = nullptr;
  PlatformState state;
  Pcg64 feedback_rng{0};
  Stopwatch watch;
  /// Per-round Propose+Learn latency distribution (private to this
  /// trajectory, not the process registry — concurrent runs must not mix).
  Histogram latency;

  double cum_reward = 0.0;
  double cum_arranged = 0.0;

  TrajectoryResult result;
};

void InitTrajectory(Policy* policy, const ProblemInstance& instance,
                    std::uint64_t seed, std::uint64_t stream_index,
                    Trajectory* traj) {
  traj->policy = policy;
  traj->state = PlatformState(instance);
  traj->feedback_rng =
      Pcg64(DeriveSeed(seed, "feedback", stream_index), stream_index);
  traj->result.name = std::string(policy->name());
}

}  // namespace

Simulator::Simulator(const ProblemInstance* instance, RoundProvider* provider,
                     FeedbackModel* feedback, SimOptions options)
    : instance_(instance),
      provider_(provider),
      feedback_(feedback),
      options_(std::move(options)) {
  FASEA_CHECK(instance != nullptr && provider != nullptr &&
              feedback != nullptr);
  FASEA_CHECK(options_.horizon >= 1);
  if (options_.checkpoints.empty()) {
    options_.checkpoints = CheckpointSchedule(options_.horizon);
  }
  FASEA_CHECK(std::is_sorted(options_.checkpoints.begin(),
                             options_.checkpoints.end()));
  for (std::int64_t cp : options_.checkpoints) FASEA_CHECK(cp >= 1);
  // A duplicate checkpoint would emit the same metric row twice and one
  // past the horizon would never be sampled at all; normalize the grid so
  // every surviving entry yields exactly one row.
  options_.checkpoints.erase(std::unique(options_.checkpoints.begin(),
                                         options_.checkpoints.end()),
                             options_.checkpoints.end());
  options_.checkpoints.erase(
      std::upper_bound(options_.checkpoints.begin(),
                       options_.checkpoints.end(), options_.horizon),
      options_.checkpoints.end());
}

SimulationResult Simulator::Run(Policy* reference,
                                const std::vector<Policy*>& policies) {
  FASEA_CHECK(reference != nullptr);

  Trajectory ref;
  InitTrajectory(reference, *instance_, options_.seed, 0, &ref);
  std::vector<Trajectory> algs(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    FASEA_CHECK(policies[i] != nullptr);
    InitTrajectory(policies[i], *instance_, options_.seed, i + 1, &algs[i]);
  }

  std::vector<double> est_scores(instance_->num_events());
  std::vector<double> ref_scores(instance_->num_events());

  std::size_t next_checkpoint = 0;
  const auto play_round = [&](std::int64_t t, const RoundContext& round,
                              Trajectory& traj) {
    const std::int64_t round_start_ns = traj.watch.ElapsedNanos();
    traj.watch.Start();
    const Arrangement arrangement =
        traj.policy->Propose(t, round, traj.state);
    traj.watch.Stop();
    if (options_.validate_arrangements) {
      FASEA_CHECK(IsFeasibleArrangement(arrangement, instance_->conflicts(),
                                        traj.state, round.user_capacity));
      for (EventId v : arrangement) FASEA_CHECK(round.IsAvailable(v));
    }
    const Feedback feedback = feedback_->Sample(t, round.contexts,
                                                arrangement,
                                                traj.feedback_rng);
    for (std::size_t i = 0; i < arrangement.size(); ++i) {
      if (feedback[i]) traj.state.ConsumeOne(arrangement[i]);
    }
    traj.watch.Start();
    traj.policy->Learn(t, round, arrangement, feedback);
    traj.watch.Stop();
    // The watch only runs inside Propose and Learn, so the accumulated
    // delta is exactly this round's decision latency.
    traj.latency.Record(traj.watch.ElapsedNanos() - round_start_ns);
    traj.cum_arranged += static_cast<double>(arrangement.size());
    traj.cum_reward += static_cast<double>(NumAccepted(feedback));
  };

  const auto emit_progress = [&](std::int64_t t, const Trajectory& traj) {
    const HistogramSnapshot lat = traj.latency.Snapshot();
    std::fprintf(
        stderr,
        "[sim] t=%lld/%lld policy=%s accept=%.4f p50_ns=%lld p99_ns=%lld "
        "max_ns=%lld\n",
        static_cast<long long>(t),
        static_cast<long long>(options_.horizon),
        traj.result.name.c_str(),
        traj.cum_arranged > 0 ? traj.cum_reward / traj.cum_arranged : 0.0,
        static_cast<long long>(lat.ValueAtPercentile(50)),
        static_cast<long long>(lat.ValueAtPercentile(99)),
        static_cast<long long>(lat.max));
  };

  // Parallel execution: per round, the reference + policy trajectories
  // fan out across the pool and barrier before metric sampling. Each task
  // touches only its own Trajectory (state, RNG stream, latency
  // histogram) plus shared *read-only* inputs (instance, the round's
  // context matrix), so the result is bit-identical for every thread
  // count; only wall-clock changes. The round context is produced
  // sequentially because providers may reuse their buffers.
  std::vector<Trajectory*> trajectories;
  trajectories.push_back(&ref);
  for (Trajectory& traj : algs) trajectories.push_back(&traj);
  const int requested =
      options_.threads <= 0 ? ThreadPool::HardwareThreads() : options_.threads;
  std::unique_ptr<ThreadPool> pool;
  if (requested > 1 && trajectories.size() > 1) {
    pool = std::make_unique<ThreadPool>(std::min<int>(
        requested, static_cast<int>(trajectories.size())));
  }

  for (std::int64_t t = 1; t <= options_.horizon; ++t) {
    const RoundContext& round = provider_->NextRound(t);
    ParallelFor(pool.get(), trajectories.size(), [&](std::size_t i) {
      play_round(t, round, *trajectories[i]);
    });

    if (options_.emit_metrics_every > 0 &&
        t % options_.emit_metrics_every == 0) {
      emit_progress(t, ref);
      for (const Trajectory& traj : algs) emit_progress(t, traj);
    }

    if (next_checkpoint < options_.checkpoints.size() &&
        options_.checkpoints[next_checkpoint] == t) {
      ++next_checkpoint;
      if (options_.compute_kendall) {
        ref.policy->EstimateRewards(round.contexts, ref_scores);
      }
      const auto record = [&](Trajectory& traj, bool is_ref) {
        TrajectoryResult& r = traj.result;
        r.checkpoints.push_back(t);
        r.cum_rewards.push_back(traj.cum_reward);
        r.cum_arranged.push_back(traj.cum_arranged);
        r.accept_ratio.push_back(
            traj.cum_arranged > 0 ? traj.cum_reward / traj.cum_arranged
                                  : 0.0);
        const double regret = is_ref ? 0.0 : ref.cum_reward - traj.cum_reward;
        r.total_regret.push_back(regret);
        r.regret_ratio.push_back(
            traj.cum_reward > 0 ? regret / traj.cum_reward : 0.0);
        if (options_.compute_kendall) {
          if (is_ref) {
            r.kendall_tau.push_back(1.0);
          } else {
            traj.policy->EstimateRewards(round.contexts, est_scores);
            r.kendall_tau.push_back(KendallTau(est_scores, ref_scores));
          }
        }
      };
      record(ref, /*is_ref=*/true);
      for (Trajectory& traj : algs) record(traj, /*is_ref=*/false);
    }
  }

  const auto finalize = [&](Trajectory& traj, bool is_ref) {
    TrajectoryResult& r = traj.result;
    r.final_reward = traj.cum_reward;
    r.final_arranged = traj.cum_arranged;
    r.final_regret = is_ref ? 0.0 : ref.cum_reward - traj.cum_reward;
    r.avg_round_seconds =
        traj.watch.ElapsedSeconds() / static_cast<double>(options_.horizon);
    const HistogramSnapshot lat = traj.latency.Snapshot();
    r.latency_p50_ns = lat.ValueAtPercentile(50);
    r.latency_p95_ns = lat.ValueAtPercentile(95);
    r.latency_p99_ns = lat.ValueAtPercentile(99);
    r.latency_max_ns = lat.max;
    // The paper's memory metric covers learner state plus the input data
    // held resident (instance + one round's context matrix).
    r.memory_bytes = traj.policy->MemoryBytes() + traj.state.MemoryBytes() +
                     instance_->MemoryBytes() +
                     instance_->num_events() * instance_->dim() *
                         sizeof(double);
  };
  finalize(ref, /*is_ref=*/true);
  SimulationResult result;
  for (Trajectory& traj : algs) {
    finalize(traj, /*is_ref=*/false);
    result.policies.push_back(std::move(traj.result));
  }
  result.reference = std::move(ref.result);
  return result;
}

}  // namespace fasea
