#include "sim/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baseline/online_greedy.h"
#include "common/thread_pool.h"
#include "core/opt_policy.h"
#include "rng/seed.h"

namespace fasea {

SimulationResult RunSyntheticExperiment(const SyntheticExperiment& exp) {
  // Kendall checkpoints call EstimateRewards over the round's dense
  // context matrix, which lazy rounds don't carry.
  FASEA_CHECK(!(exp.data.lazy_contexts && exp.compute_kendall));
  auto world = SyntheticWorld::Create(exp.data);
  FASEA_CHECK(world.ok());

  OptPolicy opt(&(*world)->instance(), &(*world)->feedback());
  std::vector<std::unique_ptr<Policy>> owned;
  std::vector<Policy*> policies;
  for (PolicyKind kind : exp.kinds) {
    owned.push_back(MakePolicy(kind, &(*world)->instance(), exp.params,
                               DeriveSeed(exp.run_seed, "policy",
                                          static_cast<std::uint64_t>(kind))));
    policies.push_back(owned.back().get());
  }

  SimOptions options;
  options.horizon = exp.data.horizon;
  options.seed = exp.run_seed;
  options.compute_kendall = exp.compute_kendall;
  options.validate_arrangements = exp.validate_arrangements;
  options.emit_metrics_every = exp.emit_metrics_every;
  options.threads = exp.threads;
  Simulator sim(&(*world)->instance(), &(*world)->provider(),
                &(*world)->feedback(), options);
  return sim.Run(&opt, policies);
}

std::vector<SimulationResult> RunSyntheticExperiments(
    const std::vector<SyntheticExperiment>& exps, int threads) {
  std::vector<SimulationResult> results(exps.size());
  if (threads <= 0) threads = ThreadPool::HardwareThreads();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && exps.size() > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min<int>(threads, static_cast<int>(exps.size())));
  }
  ParallelFor(pool.get(), exps.size(), [&](std::size_t i) {
    results[i] = RunSyntheticExperiment(exps[i]);
  });
  return results;
}

SimulationResult RunRealExperiment(const RealDataset& dataset,
                                   const RealExperiment& exp) {
  FASEA_CHECK(exp.user < RealDataset::kNumUsers);
  const std::int64_t capacity =
      exp.user_capacity == RealExperiment::kFullCapacity
          ? dataset.YesCount(exp.user)
          : exp.user_capacity;
  FASEA_CHECK(capacity >= 1);

  ProblemInstance instance = dataset.MakeInstance(exp.horizon);
  FixedRoundProvider provider(dataset.ContextsFor(exp.user), capacity);
  FrozenFeedbackModel feedback(dataset.FeedbackRow(exp.user));
  FullKnowledgePolicy full_knowledge(
      &instance,
      std::vector<std::uint8_t>(dataset.FeedbackRow(exp.user)));

  std::vector<std::unique_ptr<Policy>> owned;
  std::vector<Policy*> policies;
  for (PolicyKind kind : exp.kinds) {
    owned.push_back(MakePolicy(kind, &instance, exp.params,
                               DeriveSeed(exp.run_seed, "policy",
                                          static_cast<std::uint64_t>(kind))));
    policies.push_back(owned.back().get());
  }
  if (exp.include_online_baseline) {
    std::vector<std::vector<int>> event_tags(RealDataset::kNumEvents);
    for (std::size_t v = 0; v < RealDataset::kNumEvents; ++v) {
      event_tags[v] = {dataset.EventTag(v)};
    }
    owned.push_back(std::make_unique<OnlineGreedyPolicy>(
        &instance,
        TagInterestingness(event_tags, dataset.PreferredTags(exp.user))));
    policies.push_back(owned.back().get());
  }

  SimOptions options;
  options.horizon = exp.horizon;
  options.seed = exp.run_seed;
  options.compute_kendall = exp.compute_kendall;
  options.emit_metrics_every = exp.emit_metrics_every;
  options.threads = exp.threads;
  Simulator sim(&instance, &provider, &feedback, options);
  return sim.Run(&full_knowledge, policies);
}

double EnvScale() {
  const char* env = std::getenv("FASEA_SCALE");
  if (env == nullptr || env[0] == '\0') return 1.0;
  // strtod, not atof: atof swallows trailing garbage ("0.5x5" -> 0.5) and
  // maps non-numbers to 0.0, which then aborts with no hint of the cause.
  char* end = nullptr;
  const double scale = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(scale > 0.0 && scale <= 1.0)) {
    std::fprintf(stderr,
                 "FASEA_SCALE='%s' is not a number in (0, 1]; set a plain "
                 "decimal like FASEA_SCALE=0.05 or unset it\n",
                 env);
    std::fflush(stderr);
    std::abort();
  }
  return scale;
}

void ApplyScale(double scale, SyntheticConfig* config) {
  FASEA_CHECK(scale > 0.0 && scale <= 1.0);
  if (scale == 1.0) return;
  config->horizon = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(config->horizon * scale));
  // Floor the scaled capacity mean at one seat: with no floor a small
  // scale sends the mean to ~0, the N(mean, stddev) draws round/clamp to
  // zero seats, and every arrangement comes back empty. Keep the stddev
  // at most the mean so the floored configuration still samples mostly
  // positive capacities.
  config->event_capacity_mean =
      std::max(1.0, config->event_capacity_mean * scale);
  config->event_capacity_stddev = std::min(
      config->event_capacity_mean, config->event_capacity_stddev * scale);
}

}  // namespace fasea
