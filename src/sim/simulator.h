// Simulator: drives policies through the online FASEA protocol.
//
// Each run pushes a reference strategy (OPT / Full Knowledge) and any
// number of learning policies through the SAME stream of arriving users
// and contexts — exactly the paper's setup, where every algorithm is
// evaluated on one shared workload. Every trajectory owns:
//   - its own PlatformState (capacities deplete according to what ITS
//     users accepted),
//   - its own feedback-sampling RNG stream (acceptances are independent
//     across trajectories, conditionally on the shared contexts).
//
// Per round and per policy the simulator: asks for an arrangement,
// validates feasibility (Definition 3), samples the user's feedback from
// the ground-truth model, consumes capacities of accepted events, hands
// the feedback to the policy, and accumulates metrics. Regret at time t
// is the reference's cumulative reward minus the policy's (Eq. 2).
#ifndef FASEA_SIM_SIMULATOR_H_
#define FASEA_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "model/instance.h"
#include "model/round_provider.h"
#include "sim/metrics.h"

namespace fasea {

struct SimOptions {
  std::int64_t horizon = 100000;
  /// Seeds the per-trajectory feedback streams.
  std::uint64_t seed = 42;
  /// Metric sampling grid; empty = CheckpointSchedule(horizon). Entries
  /// must be sorted and >= 1; duplicates are collapsed and entries past
  /// `horizon` dropped (each surviving checkpoint yields exactly one
  /// metric row).
  std::vector<std::int64_t> checkpoints;
  /// Worker threads for the per-round trajectory fan-out: each round the
  /// reference and policy trajectories step concurrently, with a barrier
  /// before checkpoint sampling. 1 = sequential (no pool); <= 0 = one per
  /// hardware thread. Results are bit-identical for every value — each
  /// trajectory owns its state and RNG stream, so only wall-clock
  /// changes.
  int threads = 1;
  /// Compute Kendall's τ of estimated-reward rankings vs the reference at
  /// each checkpoint (costs O(|V| log |V|) per checkpoint per policy).
  bool compute_kendall = true;
  /// Validate every proposed arrangement against Definition 3 (cheap:
  /// O(|A_t|²) with |A_t| ≤ c_u); disable only in micro-benchmarks.
  bool validate_arrangements = true;
  /// Every N rounds, print one progress line per trajectory to stderr
  /// (round, accept ratio so far, latency p50/p99/max). 0 disables.
  std::int64_t emit_metrics_every = 0;
};

struct SimulationResult {
  TrajectoryResult reference;
  std::vector<TrajectoryResult> policies;
};

class Simulator {
 public:
  /// All pointers must outlive the simulator. The provider must yield
  /// contexts shaped |V| × d matching the instance.
  Simulator(const ProblemInstance* instance, RoundProvider* provider,
            FeedbackModel* feedback, SimOptions options);

  /// Runs `reference` and `policies` in lockstep for `options.horizon`
  /// rounds. Policies are identified by their name() in the result.
  SimulationResult Run(Policy* reference,
                       const std::vector<Policy*>& policies);

 private:
  const ProblemInstance* instance_;
  RoundProvider* provider_;
  FeedbackModel* feedback_;
  SimOptions options_;
};

}  // namespace fasea

#endif  // FASEA_SIM_SIMULATOR_H_
