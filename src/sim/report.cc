#include "sim/report.h"

#include "common/strings.h"

namespace fasea {

namespace {

const std::vector<double>& MetricSeries(const TrajectoryResult& traj,
                                        SeriesMetric metric) {
  switch (metric) {
    case SeriesMetric::kAcceptRatio:
      return traj.accept_ratio;
    case SeriesMetric::kTotalRewards:
      return traj.cum_rewards;
    case SeriesMetric::kTotalRegret:
      return traj.total_regret;
    case SeriesMetric::kRegretRatio:
      return traj.regret_ratio;
    case SeriesMetric::kKendallTau:
      return traj.kendall_tau;
  }
  FASEA_CHECK(false && "unknown metric");
  static const std::vector<double> kEmpty;
  return kEmpty;
}

}  // namespace

std::string_view SeriesMetricName(SeriesMetric metric) {
  switch (metric) {
    case SeriesMetric::kAcceptRatio:
      return "accept_ratio";
    case SeriesMetric::kTotalRewards:
      return "total_rewards";
    case SeriesMetric::kTotalRegret:
      return "total_regrets";
    case SeriesMetric::kRegretRatio:
      return "regret_ratio";
    case SeriesMetric::kKendallTau:
      return "kendall_tau";
  }
  return "unknown";
}

TextTable SeriesTable(const SimulationResult& result, SeriesMetric metric,
                      bool include_reference, std::size_t max_rows) {
  std::vector<const TrajectoryResult*> trajs;
  if (include_reference) trajs.push_back(&result.reference);
  for (const auto& p : result.policies) trajs.push_back(&p);
  FASEA_CHECK(!trajs.empty());

  TextTable table;
  std::vector<std::string> header = {"t"};
  for (const auto* traj : trajs) header.push_back(traj->name);
  table.SetHeader(std::move(header));

  const auto& checkpoints = trajs[0]->checkpoints;
  const std::size_t n = checkpoints.size();
  const std::size_t rows = (max_rows == 0 || max_rows >= n) ? n : max_rows;
  for (std::size_t r = 0; r < rows; ++r) {
    // Even thinning that always includes the last checkpoint.
    const std::size_t i =
        rows == 1 ? n - 1 : r * (n - 1) / (rows - 1);
    std::vector<std::string> row = {
        StrFormat("%lld", static_cast<long long>(checkpoints[i]))};
    for (const auto* traj : trajs) {
      const auto& series = MetricSeries(*traj, metric);
      row.push_back(i < series.size() ? FormatDouble(series[i], 4) : "-");
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TextTable SummaryTable(const SimulationResult& result,
                       bool include_reference) {
  std::vector<const TrajectoryResult*> trajs;
  if (include_reference) trajs.push_back(&result.reference);
  for (const auto& p : result.policies) trajs.push_back(&p);

  TextTable table;
  table.SetHeader({"algorithm", "accept_ratio", "total_rewards",
                   "total_regrets", "regret_ratio", "avg_time_ms",
                   "p50_us", "p99_us", "memory_KB"});
  for (const auto* traj : trajs) {
    table.AddRow({traj->name, FormatDouble(traj->FinalAcceptRatio(), 4),
                  FormatDouble(traj->final_reward, 6),
                  FormatDouble(traj->final_regret, 6),
                  FormatDouble(traj->FinalRegretRatio(), 4),
                  FormatDouble(traj->avg_round_seconds * 1e3, 4),
                  FormatDouble(static_cast<double>(traj->latency_p50_ns) /
                                   1e3,
                               3),
                  FormatDouble(static_cast<double>(traj->latency_p99_ns) /
                                   1e3,
                               3),
                  FormatDouble(static_cast<double>(traj->memory_bytes) /
                                   1024.0,
                               5)});
  }
  return table;
}

TextTable EfficiencyTable(
    const std::vector<std::pair<std::string, SimulationResult>>& runs) {
  FASEA_CHECK(!runs.empty());
  TextTable table;
  std::vector<std::string> header = {"algorithm"};
  for (const auto& [label, result] : runs) {
    header.push_back("time_ms(" + label + ")");
  }
  for (const auto& [label, result] : runs) {
    header.push_back("mem_KB(" + label + ")");
  }
  table.SetHeader(std::move(header));

  const std::size_t num_policies = runs[0].second.policies.size();
  for (std::size_t p = 0; p < num_policies; ++p) {
    std::vector<std::string> row = {runs[0].second.policies[p].name};
    for (const auto& [label, result] : runs) {
      FASEA_CHECK(result.policies.size() == num_policies);
      row.push_back(
          FormatDouble(result.policies[p].avg_round_seconds * 1e3, 4));
    }
    for (const auto& [label, result] : runs) {
      row.push_back(FormatDouble(
          static_cast<double>(result.policies[p].memory_bytes) / 1024.0, 5));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::vector<std::string> WriteResultCsvs(const SimulationResult& result,
                                         const std::string& prefix) {
  std::vector<std::string> paths;
  for (SeriesMetric metric :
       {SeriesMetric::kAcceptRatio, SeriesMetric::kTotalRewards,
        SeriesMetric::kTotalRegret, SeriesMetric::kRegretRatio,
        SeriesMetric::kKendallTau}) {
    if (metric == SeriesMetric::kKendallTau &&
        result.reference.kendall_tau.empty()) {
      continue;  // τ was not computed for this run.
    }
    const std::string path =
        prefix + "_" + std::string(SeriesMetricName(metric)) + ".csv";
    WriteFileOrDie(path, SeriesTable(result, metric).ToCsv());
    paths.push_back(path);
  }
  const std::string summary_path = prefix + "_summary.csv";
  WriteFileOrDie(summary_path, SummaryTable(result).ToCsv());
  paths.push_back(summary_path);
  return paths;
}

}  // namespace fasea
