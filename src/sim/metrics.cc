#include "sim/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace fasea {

namespace {

/// Counts inversions of `values` by merge sort (pairs i < j with
/// values[i] > values[j]); `buffer` is scratch of the same size.
std::int64_t CountInversions(std::vector<double>& values,
                             std::vector<double>& buffer, std::size_t lo,
                             std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::int64_t count = CountInversions(values, buffer, lo, mid) +
                       CountInversions(values, buffer, mid, hi);
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (values[i] <= values[j]) {
      buffer[k++] = values[i++];
    } else {
      count += static_cast<std::int64_t>(mid - i);
      buffer[k++] = values[j++];
    }
  }
  while (i < mid) buffer[k++] = values[i++];
  while (j < hi) buffer[k++] = values[j++];
  std::copy(buffer.begin() + lo, buffer.begin() + hi, values.begin() + lo);
  return count;
}

/// Σ over groups of equal values of c(group size, 2).
template <typename Iter, typename Equal>
std::int64_t CountTiedPairs(Iter begin, Iter end, Equal equal) {
  std::int64_t tied = 0;
  auto run_start = begin;
  for (auto it = begin; it != end; ++it) {
    if (it == run_start || equal(*run_start, *it)) continue;
    const std::int64_t len = it - run_start;
    tied += len * (len - 1) / 2;
    run_start = it;
  }
  const std::int64_t len = end - run_start;
  tied += len * (len - 1) / 2;
  return tied;
}

}  // namespace

double KendallTau(std::span<const double> a, std::span<const double> b) {
  FASEA_CHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  const std::int64_t total = static_cast<std::int64_t>(n) * (n - 1) / 2;

  // Sort indices by (a asc, b asc).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    if (a[i] != a[j]) return a[i] < a[j];
    return b[i] < b[j];
  });

  // Tie bookkeeping. Pairs tied in a (n1), tied in b (n2), tied in both
  // (n3). Discordant pairs D are inversions of b in a-sorted order; pairs
  // tied in a contribute no inversion because ties were broken by b asc.
  std::vector<std::pair<double, double>> sorted(n);
  for (std::size_t k = 0; k < n; ++k) sorted[k] = {a[order[k]], b[order[k]]};
  const std::int64_t n1 = CountTiedPairs(
      sorted.begin(), sorted.end(),
      [](const auto& x, const auto& y) { return x.first == y.first; });
  const std::int64_t n3 = CountTiedPairs(
      sorted.begin(), sorted.end(), [](const auto& x, const auto& y) {
        return x.first == y.first && x.second == y.second;
      });
  std::vector<double> b_sorted_by_b(n);
  for (std::size_t k = 0; k < n; ++k) b_sorted_by_b[k] = b[k];
  std::sort(b_sorted_by_b.begin(), b_sorted_by_b.end());
  const std::int64_t n2 =
      CountTiedPairs(b_sorted_by_b.begin(), b_sorted_by_b.end(),
                     [](double x, double y) { return x == y; });

  std::vector<double> b_in_a_order(n);
  for (std::size_t k = 0; k < n; ++k) b_in_a_order[k] = b[order[k]];
  std::vector<double> buffer(n);
  const std::int64_t discordant =
      CountInversions(b_in_a_order, buffer, 0, n);

  // C + D = total − n1 − n2 + n3 (pairs untied in both coordinates).
  const std::int64_t concordant = total - n1 - n2 + n3 - discordant;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(total);
}

double KendallTauNaive(std::span<const double> a, std::span<const double> b) {
  FASEA_CHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  std::int64_t numerator = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 || db == 0.0) continue;
      numerator += ((da > 0) == (db > 0)) ? 1 : -1;
    }
  }
  return static_cast<double>(numerator) /
         (static_cast<double>(n) * (n - 1) / 2.0);
}

std::vector<std::int64_t> CheckpointSchedule(std::int64_t horizon) {
  FASEA_CHECK(horizon >= 1);
  // The paper samples at 100..1000 step 100, then 2000..T step 1000 for
  // T = 100000. Scale the two step sizes with the horizon so shorter
  // (test) runs keep ~110 checkpoints.
  const double scale = static_cast<double>(horizon) / 100000.0;
  const std::int64_t fine_step =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(100 * scale));
  const std::int64_t coarse_step =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(1000 * scale));
  std::vector<std::int64_t> checkpoints;
  for (std::int64_t t = fine_step; t <= 10 * fine_step && t <= horizon;
       t += fine_step) {
    checkpoints.push_back(t);
  }
  for (std::int64_t t = 2 * coarse_step; t <= horizon; t += coarse_step) {
    if (checkpoints.empty() || t > checkpoints.back()) {
      checkpoints.push_back(t);
    }
  }
  if (checkpoints.empty() || checkpoints.back() != horizon) {
    checkpoints.push_back(horizon);
  }
  return checkpoints;
}

}  // namespace fasea
