#include "linalg/sherman_morrison.h"

#include "linalg/cholesky.h"
#include "linalg/kernels.h"

namespace fasea {

SymmetricInverse::SymmetricInverse(std::size_t dim, double diag,
                                   std::int64_t refactor_every)
    : y_(Matrix::ScaledIdentity(dim, diag)),
      y_inv_(Matrix::ScaledIdentity(dim, 1.0 / diag)),
      work_(dim),
      refactor_every_(refactor_every) {
  FASEA_CHECK(diag > 0.0);
}

StatusOr<SymmetricInverse> SymmetricInverse::FromMatrix(
    Matrix y, std::int64_t num_updates, std::int64_t refactor_every) {
  if (y.rows() != y.cols() || y.rows() == 0) {
    return InvalidArgumentError("SymmetricInverse: matrix must be square");
  }
  if (num_updates < 0) {
    return InvalidArgumentError("SymmetricInverse: negative update count");
  }
  auto chol = Cholesky::Factorize(y);
  if (!chol.ok()) return chol.status();
  SymmetricInverse inv(y.rows(), 1.0, refactor_every);
  inv.y_ = std::move(y);
  inv.y_inv_ = chol->Inverse();
  inv.num_updates_ = num_updates;
  return inv;
}

void SymmetricInverse::RankOneUpdate(std::span<const double> x) {
  FASEA_CHECK(x.size() == dim());
  y_.AddOuter(1.0, x);
  // u = Y⁻¹ x; denom = 1 + xᵀ Y⁻¹ x (> 0 for SPD Y).
  y_inv_.MatVec(x, work_.span());
  const double denom = 1.0 + Dot(x, work_.span());
  y_inv_.AddOuter(-1.0 / denom, work_.span());
  ++num_updates_;
  if (refactor_every_ > 0 && num_updates_ % refactor_every_ == 0) {
    Refactorize();
  }
}

void SymmetricInverse::ApplyBlock(const Matrix& x_block) {
  FASEA_CHECK(x_block.cols() == dim());
  if (x_block.rows() == 0) return;
  TransposeInto(x_block, &block_t_);
  GemmAccumulate(block_t_, x_block, &y_);
  num_updates_ += static_cast<std::int64_t>(x_block.rows());
  // The exact re-derivation IS the epoch boundary: the inverse is never
  // incrementally approximated across a block, so the periodic cadence
  // does not apply here.
  Refactorize();
}

Vector SymmetricInverse::Solve(const Vector& rhs) const {
  return y_inv_.MatVec(rhs);
}

double SymmetricInverse::InverseQuadraticForm(
    std::span<const double> x) const {
  return y_inv_.QuadraticForm(x);
}

void SymmetricInverse::Refactorize() {
  auto chol = Cholesky::Factorize(y_);
  if (!chol.ok()) {
    ++num_refactor_failures_;
    healthy_ = false;
    return;
  }
  y_inv_ = chol->Inverse();
  ++num_refactorizations_;
  healthy_ = true;
}

}  // namespace fasea
