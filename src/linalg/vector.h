// Dense double vector with BLAS-1 style kernels.
//
// FASEA's dimensions are small (d ≤ a few dozen in the paper, |V| ≤ a few
// thousand), so the implementation favours clarity and cache-friendly
// contiguous storage over blocking tricks. Storage is 64-byte aligned
// (aligned.h) so the batched kernels in kernels.h can stream it through
// full-width SIMD loads; the element-wise kernels here stay scalar loops
// the compiler can auto-vectorize.
#ifndef FASEA_LINALG_VECTOR_H_
#define FASEA_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "linalg/aligned.h"

namespace fasea {

class Vector {
 public:
  Vector() = default;
  /// Zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  Vector(std::size_t n, double fill) : data_(n, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  /// Copies into aligned storage (the input's allocation cannot be kept).
  explicit Vector(const std::vector<double>& values)
      : data_(values.begin(), values.end()) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    FASEA_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    FASEA_DCHECK(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Resizes to n, zero-filling new entries.
  void Resize(std::size_t n) { data_.resize(n, 0.0); }

  /// Euclidean norm.
  double Norm() const;

  /// Sum of entries.
  double Sum() const;

  /// Scales in place: this *= s.
  void Scale(double s);

  /// Rescales to unit Euclidean norm; a zero vector is left unchanged.
  void Normalize();

  /// Heap bytes owned by this vector.
  std::size_t MemoryBytes() const { return data_.capacity() * sizeof(double); }

  std::string ToString(int digits = 6) const;

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double, AlignedAllocator<double>> data_;
};

/// Dot product; dimensions must match.
double Dot(const Vector& a, const Vector& b);
double Dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector* y);
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Element-wise a + b, a - b.
Vector Add(const Vector& a, const Vector& b);
Vector Sub(const Vector& a, const Vector& b);

/// Max |a_i - b_i|; dimensions must match.
double MaxAbsDiff(const Vector& a, const Vector& b);

}  // namespace fasea

#endif  // FASEA_LINALG_VECTOR_H_
