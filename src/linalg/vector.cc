#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace fasea {

void Vector::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Vector::Norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Vector::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

void Vector::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Vector::Normalize() {
  const double norm = Norm();
  if (norm > 0.0) Scale(1.0 / norm);
}

std::string Vector::ToString(int digits) const {
  std::string out = "[";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i != 0) out += ", ";
    out += FormatDouble(data_[i], digits);
  }
  out += "]";
  return out;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  FASEA_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Dot(const Vector& a, const Vector& b) {
  return Dot(a.span(), b.span());
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  FASEA_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  Axpy(alpha, x.span(), y->span());
}

Vector Add(const Vector& a, const Vector& b) {
  FASEA_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  FASEA_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  FASEA_CHECK(a.size() == b.size());
  double max = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max = std::max(max, std::fabs(a[i] - b[i]));
  }
  return max;
}

}  // namespace fasea
