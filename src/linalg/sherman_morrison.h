// Incrementally-maintained inverse of an SPD matrix under rank-1 updates.
//
// The bandit policies update Y ← Y + x xᵀ once per arranged event. Instead
// of re-inverting Y per round (the O(d³) cost the paper's complexity
// analysis assumes), SymmetricInverse applies the Sherman–Morrison
// identity
//
//     (Y + x xᵀ)⁻¹ = Y⁻¹ − (Y⁻¹x)(Y⁻¹x)ᵀ / (1 + xᵀ Y⁻¹ x)
//
// at O(d²) per update. Floating-point drift accumulates slowly, so the
// inverse is re-derived from the tracked Y by a fresh Cholesky
// factorization every `refactor_every` updates (and on demand).
// bench_ablation_incremental quantifies the speedup.
#ifndef FASEA_LINALG_SHERMAN_MORRISON_H_
#define FASEA_LINALG_SHERMAN_MORRISON_H_

#include <cmath>
#include <cstdint>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fasea {

class SymmetricInverse {
 public:
  /// Starts from Y = diag * I (diag > 0). `refactor_every` = 0 disables
  /// periodic re-factorization (pure Sherman–Morrison).
  SymmetricInverse(std::size_t dim, double diag,
                   std::int64_t refactor_every = 4096);

  /// Restores from a previously accumulated Y (must be SPD); the inverse
  /// is re-derived by Cholesky. Used by checkpoint loading.
  static StatusOr<SymmetricInverse> FromMatrix(
      Matrix y, std::int64_t num_updates, std::int64_t refactor_every = 4096);

  std::size_t dim() const { return y_.rows(); }

  /// The tracked matrix Y (exact: maintained by direct accumulation).
  const Matrix& y() const { return y_; }

  /// The maintained inverse Y⁻¹.
  const Matrix& inverse() const { return y_inv_; }

  /// Applies Y ← Y + x xᵀ and updates the inverse in O(d²).
  void RankOneUpdate(std::span<const double> x);

  /// Applies Y ← Y + XᵀX for a k×d block of contexts as one blocked GEMM,
  /// then re-derives the inverse exactly (the epoch boundary of the
  /// rank-k learner). Amortized over k observations this is cheaper than
  /// k Sherman–Morrison updates once k approaches d, and the exact
  /// re-factorization means a block application never accumulates
  /// incremental drift. Counts as `x_block.rows()` updates.
  void ApplyBlock(const Matrix& x_block);

  /// Solves Y a = rhs using the maintained inverse (O(d²)).
  Vector Solve(const Vector& rhs) const;

  /// xᵀ Y⁻¹ x — the LinUCB confidence width squared.
  double InverseQuadraticForm(std::span<const double> x) const;

  /// Re-derives Y⁻¹ from Y by Cholesky; clears accumulated drift. If the
  /// factorization fails (Y lost positive-definiteness to drift or
  /// corruption), the previous inverse is kept and the instance is marked
  /// unhealthy instead of aborting — callers consult healthy() and fall
  /// back (see ArrangementService's degraded proposal path).
  void Refactorize();

  /// False once a refactorization has failed. The maintained inverse is
  /// then the last good one; results may be stale.
  bool healthy() const { return healthy_; }

  /// Test hook: simulates a failed refactorization.
  void SetUnhealthyForTesting() { healthy_ = false; }

  /// Test hook: corrupts the tracked Y itself (negates the first diagonal
  /// entry) so every subsequent factorization attempt fails.
  void CorruptYForTesting() { y_(0, 0) = -std::abs(y_(0, 0)) - 1.0; }

  /// Number of rank-1 updates applied so far.
  std::int64_t num_updates() const { return num_updates_; }

  /// Number of successful full Cholesky re-factorizations (the O(d³)
  /// "full solve" path, vs the O(d²) Sherman–Morrison updates above).
  std::int64_t num_refactorizations() const { return num_refactorizations_; }

  /// Number of re-factorization attempts that failed (Y not SPD).
  std::int64_t num_refactor_failures() const {
    return num_refactor_failures_;
  }

  std::size_t MemoryBytes() const {
    return y_.MemoryBytes() + y_inv_.MemoryBytes() + work_.MemoryBytes() +
           block_t_.MemoryBytes();
  }

 private:
  Matrix y_;
  Matrix y_inv_;
  Vector work_;           // Scratch for Y⁻¹ x.
  mutable Matrix block_t_;  // Scratch: Xᵀ for ApplyBlock.
  std::int64_t refactor_every_;
  std::int64_t num_updates_ = 0;
  std::int64_t num_refactorizations_ = 0;
  std::int64_t num_refactor_failures_ = 0;
  bool healthy_ = true;
};

}  // namespace fasea

#endif  // FASEA_LINALG_SHERMAN_MORRISON_H_
