#include "linalg/cholesky.h"

#include <cmath>

#include "linalg/kernels.h"

namespace fasea {

Cholesky Cholesky::ScaledIdentity(std::size_t n, double diag) {
  FASEA_CHECK(diag > 0.0);
  return Cholesky(Matrix::ScaledIdentity(n, std::sqrt(diag)));
}

bool Cholesky::RankOneUpdate(std::span<const double> x,
                             std::span<double> work) {
  return CholUpdate(&l_, x, work);
}

StatusOr<Cholesky> Cholesky::Factorize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("Cholesky: matrix is not square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return InvalidArgumentError(
              "Cholesky: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::SolveLower(const Vector& rhs) const {
  FASEA_CHECK(rhs.size() == dim());
  const std::size_t n = dim();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = rhs[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector Cholesky::SolveUpper(const Vector& rhs) const {
  FASEA_CHECK(rhs.size() == dim());
  const std::size_t n = dim();
  Vector y(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = rhs[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector Cholesky::Solve(const Vector& rhs) const {
  return SolveUpper(SolveLower(rhs));
}

Matrix Cholesky::Inverse() const {
  const std::size_t n = dim();
  Matrix inv(n, n);
  Vector unit(n);
  for (std::size_t j = 0; j < n; ++j) {
    unit.Fill(0.0);
    unit[j] = 1.0;
    const Vector col = Solve(unit);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

double Cholesky::LogDet() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

double Cholesky::InverseQuadraticForm(const Vector& x) const {
  const Vector y = SolveLower(x);
  return Dot(y, y);
}

}  // namespace fasea
