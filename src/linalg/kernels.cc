#include "linalg/kernels.h"

#include <cmath>

namespace fasea {

namespace {

// Rows of X processed per sweep of BatchedQuadForm's GEMM stage. A block
// of G rows (kRowBlock × d doubles, ≤ 12.5 KB at d = 100) stays L1/L2
// resident while every row of Aᵀ streams through it once.
constexpr std::size_t kRowBlock = 16;

}  // namespace

void GemvRows(const Matrix& a, std::span<const double> x,
              std::span<double> y) {
  const std::size_t rows = a.rows(), cols = a.cols();
  FASEA_CHECK(x.size() == cols && y.size() == rows);
  const double* FASEA_RESTRICT xp = x.data();
  // Four independent accumulators (one per row) break the add-latency
  // chain of a single dot product; each row's own sum still accumulates
  // in sequential j-order, so results match per-row Dot() bit-for-bit.
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* FASEA_RESTRICT r0 = a.data() + (i + 0) * cols;
    const double* FASEA_RESTRICT r1 = a.data() + (i + 1) * cols;
    const double* FASEA_RESTRICT r2 = a.data() + (i + 2) * cols;
    const double* FASEA_RESTRICT r3 = a.data() + (i + 3) * cols;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      const double xj = xp[j];
      s0 += r0[j] * xj;
      s1 += r1[j] * xj;
      s2 += r2[j] * xj;
      s3 += r3[j] * xj;
    }
    y[i + 0] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
  }
  for (; i < rows; ++i) {
    const double* FASEA_RESTRICT row = a.data() + i * cols;
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) sum += row[j] * xp[j];
    y[i] = sum;
  }
}

void TransposeInto(const Matrix& a, Matrix* out) {
  if (out->rows() != a.cols() || out->cols() != a.rows()) {
    *out = Matrix(a.cols(), a.rows());
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* FASEA_RESTRICT row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      (*out)(j, i) = row[j];
    }
  }
}

void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  FASEA_CHECK(a.cols() == b.rows() && c->rows() == a.rows() &&
              c->cols() == b.cols());
  const std::size_t n = b.cols(), kdim = a.cols();
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kRowBlock) {
    const std::size_t i1 = std::min(i0 + kRowBlock, a.rows());
    for (std::size_t k = 0; k < kdim; ++k) {
      const double* FASEA_RESTRICT brow = b.data() + k * n;
      for (std::size_t i = i0; i < i1; ++i) {
        const double aik = a.data()[i * kdim + k];
        double* FASEA_RESTRICT crow = c->data() + i * n;
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* c) {
  if (c->rows() != a.rows() || c->cols() != b.cols()) {
    *c = Matrix(a.rows(), b.cols());
  }
  c->Fill(0.0);
  GemmAccumulate(a, b, c);
}

void BatchedQuadForm(const Matrix& x, const Matrix& a, std::span<double> out,
                     Matrix* at, Matrix* g) {
  FASEA_CHECK(a.rows() == x.cols() && a.cols() == x.cols());
  // G(v, i) must accumulate A(i, 0)·x₀ + A(i, 1)·x₁ + … in that order to
  // match QuadraticForm's row traversal; with B = Aᵀ the i-k-j GEMM
  // produces exactly G(v, i) = Σ_k x(v, k)·B(k, i) = Σ_k x(v, k)·A(i, k)
  // in sequential k-order. (A is symmetric up to ulps here — Y⁻¹ from
  // Sherman–Morrison — but bit-compatibility cannot ride on that, hence
  // the explicit transpose; it is O(d²) per round, noise next to the
  // O(n·d²) GEMM.)
  TransposeInto(a, at);
  BatchedQuadFormPre(x, *at, out, g);
}

void BatchedQuadFormPre(const Matrix& x, const Matrix& at,
                        std::span<double> out, Matrix* g) {
  const std::size_t n = x.rows(), d = x.cols();
  FASEA_CHECK(at.rows() == d && at.cols() == d && out.size() == n);
  if (g->rows() != n || g->cols() != d) *g = Matrix(n, d);
  g->Fill(0.0);
  GemmAccumulate(x, at, g);
  // Cheap O(n·d) epilogue: w_v = Σ_i x(v, i)·G(v, i), scalar i-order —
  // the same products QuadraticForm's outer loop adds, in the same order.
  for (std::size_t v = 0; v < n; ++v) {
    const double* FASEA_RESTRICT xrow = x.data() + v * d;
    const double* FASEA_RESTRICT grow = g->data() + v * d;
    double total = 0.0;
    for (std::size_t i = 0; i < d; ++i) total += xrow[i] * grow[i];
    out[v] = total;
  }
}

bool CholUpdate(Matrix* l, std::span<const double> x,
                std::span<double> work) {
  const std::size_t n = l->rows();
  FASEA_CHECK(l->cols() == n && x.size() == n && work.size() == n);
  double* FASEA_RESTRICT w = work.data();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i];
  // Column k of the Givens sweep: rotate (L_kk, w_k) onto the diagonal,
  // then apply the same rotation to the remaining column below it.
  for (std::size_t k = 0; k < n; ++k) {
    double* FASEA_RESTRICT colk = l->data() + k * n;  // Row-major: L(k, :).
    const double lkk = colk[k];
    if (!(lkk > 0.0)) return false;  // Catches corrupt and NaN pivots.
    const double r = std::sqrt(lkk * lkk + w[k] * w[k]);
    if (!(r > 0.0) || !std::isfinite(r)) return false;
    const double c = r / lkk;
    const double s = w[k] / lkk;
    colk[k] = r;
    if (!std::isfinite(c) || !std::isfinite(s)) return false;
    const double inv_c = 1.0 / c;
#pragma omp simd
    for (std::size_t i = k + 1; i < n; ++i) {
      // L(i, k) lives at column k of row i.
      double* lik = l->data() + i * n + k;
      const double updated = (*lik + s * w[i]) * inv_c;
      w[i] = c * w[i] - s * updated;
      *lik = updated;
    }
  }
  return true;
}

}  // namespace fasea
