// Cache-line-aligned storage for the dense linear-algebra types.
//
// The batched scoring kernels (kernels.h) stream rows of |V| × d context
// matrices through SIMD lanes; 64-byte alignment guarantees every row-major
// buffer starts on a cache-line boundary so vector loads never straddle
// lines and the compiler may emit aligned moves. The allocator is a drop-in
// for std::allocator<double> inside std::vector.
#ifndef FASEA_LINALG_ALIGNED_H_
#define FASEA_LINALG_ALIGNED_H_

#include <cstddef>
#include <new>

namespace fasea {

/// Alignment of every Vector/Matrix buffer, in bytes. One x86 cache line;
/// also the widest vector register (AVX-512) a -march=native build can use.
inline constexpr std::size_t kLinalgAlignment = 64;

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(kLinalgAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kLinalgAlignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace fasea

#endif  // FASEA_LINALG_ALIGNED_H_
