// Frequent-directions sketch of a Gram matrix stream (Liberty 2013;
// Ghashami et al. 2015), the low-rank state behind LearnerMode::kSketch.
//
// The exact learner tracks Y = λI + Σ x xᵀ in O(d²) memory. The sketch
// keeps only m weighted orthonormal directions (V, s²) with the
// deterministic guarantee
//
//     0 ≼ Σ x xᵀ − Vᵀ diag(s²) V ≼ (‖X‖_F² / m) · I,
//
// i.e. the sketch under-counts every direction's energy by at most the
// average squared row norm over m. With unit-normalized contexts that
// bound is T/m — small relative to the spectrum whenever the context
// stream has effective rank below m. All downstream quantities (θ̂,
// confidence widths, posterior samples) then come from the Woodbury
// identity against (V, s²) in O(m·d) instead of O(d²); see
// core/epoch_ridge.h.
//
// Appended rows accumulate in a buffer of m raw rows; when it fills, one
// shrink step eigendecomposes the combined 2m-row sketch via its 2m×2m
// Gram matrix (the "Gram trick" keeps the eigenproblem tiny — O(m²d) to
// form, O(m³) to solve) and subtracts the (m+1)-th eigenvalue from every
// retained direction. Rows appended since the last shrink are not yet
// visible to readers — the same bounded-staleness contract as the epoch
// learner.
#ifndef FASEA_LINALG_FREQUENT_DIRECTIONS_H_
#define FASEA_LINALG_FREQUENT_DIRECTIONS_H_

#include <cstdint>
#include <span>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fasea {

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations:
/// a = W diag(e) Wᵀ with eigenvalues descending and eigenvectors in the
/// COLUMNS of `eigvecs`. O(n³) per sweep; intended for the small (≤ 2m)
/// Gram matrices of the sketch, not for d×d state.
void SymmetricEigen(const Matrix& a, Matrix* eigvecs, Vector* eigvals);

class FrequentDirections {
 public:
  FrequentDirections(std::size_t dim, std::size_t sketch_size);

  std::size_t dim() const { return dim_; }
  std::size_t sketch_size() const { return m_; }

  /// Folds one row into the stream. Triggers a shrink once m rows have
  /// buffered since the last one.
  void Append(std::span<const double> row);

  /// Compresses any buffered rows into the sketch now (epoch boundary /
  /// pre-read flush). No-op when nothing is buffered.
  void ForceShrink();

  /// Retained orthonormal directions; only the first rank() rows are
  /// valid. Rows appended since the last shrink are NOT reflected.
  const Matrix& directions() const { return v_; }
  /// Squared weights s²ᵢ matching directions() rows.
  std::span<const double> weights_sq() const {
    return {s2_.span().data(), rank_};
  }
  std::size_t rank() const { return rank_; }

  /// Rows buffered since the last shrink (not yet visible to readers).
  std::size_t buffered_rows() const { return buffer_count_; }

  std::int64_t num_shrinks() const { return num_shrinks_; }
  std::int64_t num_appends() const { return num_appends_; }

  std::size_t MemoryBytes() const {
    return v_.MemoryBytes() + buffer_.MemoryBytes() + s2_.MemoryBytes();
  }

 private:
  void Shrink();

  std::size_t dim_;
  std::size_t m_;
  Matrix v_;       // m × d; first rank_ rows orthonormal.
  Vector s2_;      // m; first rank_ entries valid.
  std::size_t rank_ = 0;
  Matrix buffer_;  // m × d raw rows awaiting the next shrink.
  std::size_t buffer_count_ = 0;
  std::int64_t num_shrinks_ = 0;
  std::int64_t num_appends_ = 0;
};

}  // namespace fasea

#endif  // FASEA_LINALG_FREQUENT_DIRECTIONS_H_
