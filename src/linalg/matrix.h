// Dense row-major double matrix with the BLAS-2/3 kernels FASEA needs:
// mat-vec, mat-mat, transpose, symmetric rank-1 update, quadratic forms.
// Storage is 64-byte aligned (aligned.h) for the SIMD kernels in
// kernels.h; batched/blocked variants of the hot-path kernels live there.
#ifndef FASEA_LINALG_MATRIX_H_
#define FASEA_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "linalg/aligned.h"
#include "linalg/vector.h"

namespace fasea {

class Matrix {
 public:
  Matrix() = default;
  /// Zero matrix of shape rows x cols.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// n x n identity scaled by `diag`.
  static Matrix ScaledIdentity(std::size_t n, double diag);
  static Matrix Identity(std::size_t n) { return ScaledIdentity(n, 1.0); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    FASEA_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    FASEA_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Mutable / const view of row i (contiguous storage).
  std::span<double> Row(std::size_t i) {
    FASEA_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> Row(std::size_t i) const {
    FASEA_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double value);

  /// this += alpha * x xᵀ (x must have size == rows == cols).
  void AddOuter(double alpha, std::span<const double> x);

  /// this += alpha * other (same shape).
  void AddScaled(double alpha, const Matrix& other);

  /// y = this * x.
  Vector MatVec(const Vector& x) const;
  void MatVec(std::span<const double> x, std::span<double> y) const;

  /// y = thisᵀ * x.
  Vector TransposeMatVec(const Vector& x) const;

  /// Quadratic form xᵀ * this * x (this must be square).
  double QuadraticForm(std::span<const double> x) const;

  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max |a_ij - b_ij| against another matrix of the same shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// Heap bytes owned by this matrix.
  std::size_t MemoryBytes() const { return data_.capacity() * sizeof(double); }

  std::string ToString(int digits = 6) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double, AlignedAllocator<double>> data_;
};

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);

}  // namespace fasea

#endif  // FASEA_LINALG_MATRIX_H_
