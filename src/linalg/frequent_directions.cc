#include "linalg/frequent_directions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/macros.h"
#include "linalg/kernels.h"

namespace fasea {

void SymmetricEigen(const Matrix& a, Matrix* eigvecs, Vector* eigvals) {
  FASEA_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  // Cyclic Jacobi: rotate away each off-diagonal element in turn until
  // the off-diagonal mass is negligible against the diagonal. The Gram
  // matrices this sees are ≤ 2m × 2m, so a handful of O(n³) sweeps is
  // cheap; 64 sweeps is far beyond the ~log(ε)·n convergence bound.
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    double diag = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      diag += std::abs(work(p, p));
      for (std::size_t q = p + 1; q < n; ++q) off += std::abs(work(p, q));
    }
    if (off <= 1e-14 * (diag + 1e-300)) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::abs(apq) <= 1e-18 * (diag + 1e-300)) continue;
        const double tau = (work(q, q) - work(p, p)) / (2.0 * apq);
        const double t =
            (tau >= 0.0 ? 1.0 : -1.0) /
            (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply the rotation G(p, q, θ) on both sides of `work` and on
        // the right of the accumulated eigenvector matrix.
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = work(k, p);
          const double wkq = work(k, q);
          work(k, p) = c * wkp - s * wkq;
          work(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = work(p, k);
          const double wqk = work(q, k);
          work(p, k) = c * wpk - s * wqk;
          work(q, k) = s * wpk + c * wqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return work(i, i) > work(j, j);
  });
  *eigvals = Vector(n);
  Matrix sorted(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    (*eigvals)[i] = work(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) sorted(k, i) = v(k, order[i]);
  }
  *eigvecs = std::move(sorted);
}

FrequentDirections::FrequentDirections(std::size_t dim,
                                       std::size_t sketch_size)
    : dim_(dim),
      m_(sketch_size),
      v_(sketch_size, dim),
      s2_(sketch_size),
      buffer_(sketch_size, dim) {
  FASEA_CHECK(dim > 0);
  FASEA_CHECK(sketch_size > 0);
}

void FrequentDirections::Append(std::span<const double> row) {
  FASEA_CHECK(row.size() == dim_);
  std::span<double> dst = buffer_.Row(buffer_count_);
  std::copy(row.begin(), row.end(), dst.begin());
  ++buffer_count_;
  ++num_appends_;
  if (buffer_count_ == m_) Shrink();
}

void FrequentDirections::ForceShrink() {
  if (buffer_count_ > 0) Shrink();
}

void FrequentDirections::Shrink() {
  // Combined sketch S: current directions re-weighted back to rows
  // √(s²ᵢ)·vᵢ, followed by the raw buffered rows. total ≤ 2m.
  const std::size_t total = rank_ + buffer_count_;
  Matrix s(total, dim_);
  for (std::size_t i = 0; i < rank_; ++i) {
    const double w = std::sqrt(s2_[i]);
    std::span<const double> src = v_.Row(i);
    std::span<double> dst = s.Row(i);
    for (std::size_t j = 0; j < dim_; ++j) dst[j] = w * src[j];
  }
  for (std::size_t i = 0; i < buffer_count_; ++i) {
    std::span<const double> src = buffer_.Row(i);
    std::span<double> dst = s.Row(rank_ + i);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  // Gram trick: SᵀS shares its nonzero spectrum with G = S·Sᵀ (total ×
  // total), and the right singular vectors are recovered as
  // V = diag(1/√e) Wᵀ S — no d×d eigenproblem ever forms.
  Matrix st;
  TransposeInto(s, &st);
  Matrix gram;
  Gemm(s, st, &gram);
  Matrix w;
  Vector e;
  SymmetricEigen(gram, &w, &e);

  // δ = the (m+1)-th largest eigenvalue: subtracting it from every kept
  // direction is exactly the FD shrink step. With fewer than m+1
  // positive eigenvalues the compression is lossless (δ = 0).
  const double delta = (total > m_) ? std::max(e[m_], 0.0) : 0.0;
  const double tol = 1e-12 * std::max(e[0], 1.0);
  std::size_t new_rank = 0;
  for (std::size_t i = 0; i < std::min(m_, total); ++i) {
    if (e[i] <= tol) break;
    const double s2_new = std::max(e[i] - delta, 0.0);
    if (s2_new <= 0.0) continue;
    const double inv_norm = 1.0 / std::sqrt(e[i]);
    std::span<double> row = v_.Row(new_rank);
    std::fill(row.begin(), row.end(), 0.0);
    for (std::size_t j = 0; j < total; ++j) {
      Axpy(w(j, i) * inv_norm, s.Row(j), row);
    }
    s2_[new_rank] = s2_new;
    ++new_rank;
  }
  rank_ = new_rank;
  buffer_count_ = 0;
  ++num_shrinks_;
}

}  // namespace fasea
