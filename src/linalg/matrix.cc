#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace fasea {

Matrix Matrix::ScaledIdentity(std::size_t n, double diag) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = diag;
  return m;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddOuter(double alpha, std::span<const double> x) {
  FASEA_CHECK(rows_ == cols_ && x.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double axi = alpha * x[i];
    double* row = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) row[j] += axi * x[j];
  }
}

void Matrix::AddScaled(double alpha, const Matrix& other) {
  FASEA_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::MatVec(std::span<const double> x, std::span<double> y) const {
  FASEA_CHECK(x.size() == cols_ && y.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
}

Vector Matrix::MatVec(const Vector& x) const {
  Vector y(rows_);
  MatVec(x.span(), y.span());
  return y;
}

Vector Matrix::TransposeMatVec(const Vector& x) const {
  FASEA_CHECK(x.size() == rows_);
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    const double xi = x[i];
    for (std::size_t j = 0; j < cols_; ++j) y[j] += xi * row[j];
  }
  return y;
}

double Matrix::QuadraticForm(std::span<const double> x) const {
  FASEA_CHECK(rows_ == cols_ && x.size() == rows_);
  double total = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += row[j] * x[j];
    total += x[i] * sum;
  }
  return total;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  FASEA_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    max = std::max(max, std::fabs(data_[i] - other.data_[i]));
  }
  return max;
}

std::string Matrix::ToString(int digits) const {
  std::string out = "[";
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i != 0) out += ",\n ";
    out += "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j != 0) out += ", ";
      out += FormatDouble((*this)(i, j), digits);
    }
    out += "]";
  }
  out += "]";
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  FASEA_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      double* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

}  // namespace fasea
