// Batched, blocked, SIMD-friendly kernels for the bandit scoring hot path.
//
// The paper's per-round cost is O(d³ + |V|·d²): every policy scores |V|
// events, UCB pays a d×d quadratic form per event, and TS re-factorizes
// Y per round. These kernels restructure that work so it vectorizes
// WITHOUT changing a single result bit relative to the per-event scalar
// loops they replace:
//
//  * Reductions stay scalar, accumulations become axpy. A row-wise dot
//    (Σ_j a_j·x_j) cannot be SIMD-vectorized without reassociating the
//    sum (illegal under IEEE without -ffast-math, and it would break the
//    batched-vs-scalar bit-compatibility the simulator tests assert).
//    An axpy (y[:] += s·a[:]) has no cross-lane dependence, so the
//    compiler vectorizes it freely while every y[i] still accumulates
//    its terms in exactly the scalar order.
//  * BatchedQuadForm therefore computes G = X·Aᵀ in axpy form (the
//    O(|V|·d²) bulk, fully vectorized; the explicit transpose makes the
//    inner loop contiguous AND makes the per-element accumulation order
//    identical to Matrix::QuadraticForm's row-major traversal), then
//    finishes with the cheap O(|V|·d) row-dots in scalar order.
//  * GemvRows keeps each row's reduction sequential but interleaves four
//    independent rows, breaking the add-latency dependency chain that
//    makes one long dot product latency-bound.
//  * CholUpdate maintains L(Y + xxᵀ) from L(Y) in O(d²) via Givens-style
//    rotations, replacing the O(d³) per-round re-factorization in TS.
//
// All pointer kernels require non-aliasing arguments (FASEA_RESTRICT).
#ifndef FASEA_LINALG_KERNELS_H_
#define FASEA_LINALG_KERNELS_H_

#include <cstddef>
#include <span>

#include "linalg/matrix.h"
#include "linalg/vector.h"

// GCC/Clang spelling; kernels are compiled with -fopenmp-simd so the
// `#pragma omp simd` hints apply without an OpenMP runtime dependency.
#define FASEA_RESTRICT __restrict__

namespace fasea {

/// y[i] = Row(a, i) · x for every row of `a` (rows × cols, row-major).
/// Per-row accumulation order is the sequential j-order of Dot(); rows
/// are processed four at a time for instruction-level parallelism.
/// Bit-identical to calling Dot(a.Row(i), x) per row.
void GemvRows(const Matrix& a, std::span<const double> x,
              std::span<double> y);

/// out = aᵀ (resized/reshaped as needed).
void TransposeInto(const Matrix& a, Matrix* out);

/// c += a · b in blocked i-k-j axpy form (c must be pre-shaped
/// a.rows() × b.cols() — zero it first for a plain product). The inner
/// j-loop is a contiguous vectorizable axpy; each c(i,j) accumulates its
/// k-terms in sequential k-order.
void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

/// c = a · b — the plain GEMM entry (reshapes and zeroes `c`, then runs
/// GemmAccumulate). The batched serving path stacks B users' context
/// matrices into one (B·|V|) × d operand and scores them in this single
/// call instead of B GEMVs.
void Gemm(const Matrix& a, const Matrix& b, Matrix* c);

/// out[v] = Row(x, v)ᵀ · a · Row(x, v) for every row of x (n × d), with
/// `a` square d × d. Equivalent to — and bit-identical with — calling
/// a.QuadraticForm(x.Row(v)) per row, but the O(n·d²) bulk runs as a
/// blocked vectorized GEMM against aᵀ. `at` and `g` are caller scratch
/// (reshaped as needed) so per-round calls allocate nothing.
void BatchedQuadForm(const Matrix& x, const Matrix& a, std::span<double> out,
                     Matrix* at, Matrix* g);

/// BatchedQuadForm with the transpose already in hand: out[v] =
/// Row(x, v)ᵀ · atᵀ · Row(x, v) where `at` is the d × d transpose of the
/// quadratic-form matrix. Bit-identical to BatchedQuadForm(x, atᵀ, ...) —
/// it IS that function minus the TransposeInto — so callers that reuse
/// one matrix across many batches (epoch snapshots precompute (Y⁻¹)ᵀ
/// once per feedback commit) skip the per-call transpose.
void BatchedQuadFormPre(const Matrix& x, const Matrix& at,
                        std::span<double> out, Matrix* g);

/// Rank-1 Cholesky update: given lower-triangular `l` with L·Lᵀ = Y,
/// rewrites it in place so L·Lᵀ = Y + x·xᵀ, in O(d²) (vs O(d³) for a
/// fresh factorization). `work` is caller scratch of size d. Returns
/// false (leaving `l` in an unspecified state the caller must discard or
/// re-factorize) if a pivot turns non-finite or non-positive — possible
/// only when `l` or `x` is already corrupt, since a genuine rank-1
/// *update* of an SPD matrix stays SPD.
[[nodiscard]] bool CholUpdate(Matrix* l, std::span<const double> x,
                              std::span<double> work);

}  // namespace fasea

#endif  // FASEA_LINALG_KERNELS_H_
