// Cholesky (L Lᵀ) factorization of symmetric positive-definite matrices,
// with triangular solves, SPD linear solve, inverse, and log-determinant.
//
// The ridge Gram matrix Y = λI + Σ x xᵀ of the bandit policies is always
// SPD (λ > 0), so Cholesky is the natural factorization: it backs θ̂ = Y⁻¹b,
// the UCB quadratic form, and Thompson sampling from N(θ̂, q²Y⁻¹).
#ifndef FASEA_LINALG_CHOLESKY_H_
#define FASEA_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fasea {

/// Holds the lower-triangular factor L with A = L Lᵀ.
class Cholesky {
 public:
  /// Factorizes SPD matrix `a` (only the lower triangle is read). Fails
  /// with InvalidArgument if `a` is not square or a pivot is not positive.
  static StatusOr<Cholesky> Factorize(const Matrix& a);

  /// The factor of A = diag·I, i.e. L = √diag·I (diag > 0). The starting
  /// point for incrementally maintained factors of Y = λI + Σ x xᵀ.
  static Cholesky ScaledIdentity(std::size_t n, double diag);

  /// Rank-1 update in O(d²): after the call, L Lᵀ = A + x xᵀ. `work` is
  /// caller scratch of size dim(). Returns false — leaving the factor
  /// unusable until re-factorized — only if a pivot turns non-finite or
  /// non-positive (corrupt input); see kernels.h CholUpdate.
  [[nodiscard]] bool RankOneUpdate(std::span<const double> x,
                                   std::span<double> work);

  std::size_t dim() const { return l_.rows(); }
  const Matrix& L() const { return l_; }

  /// Solves L y = rhs (forward substitution).
  Vector SolveLower(const Vector& rhs) const;

  /// Solves Lᵀ y = rhs (backward substitution).
  Vector SolveUpper(const Vector& rhs) const;

  /// Solves A x = rhs, A = L Lᵀ.
  Vector Solve(const Vector& rhs) const;

  /// A⁻¹ via d solves against unit vectors (O(d³)).
  Matrix Inverse() const;

  /// log det(A) = 2 Σ log L_ii.
  double LogDet() const;

  /// Quadratic form xᵀ A⁻¹ x computed as ‖L⁻¹x‖² without forming A⁻¹.
  double InverseQuadraticForm(const Vector& x) const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

}  // namespace fasea

#endif  // FASEA_LINALG_CHOLESKY_H_
