// Multivariate normal sampling for Thompson Sampling.
//
// Algorithm 1 of the paper samples θ̃ ~ N(θ̂, q² Y⁻¹). Given the Cholesky
// factor Y = L Lᵀ, a sample is θ̂ + q · L⁻ᵀ z with z ~ N(0, I): the
// covariance of L⁻ᵀ z is L⁻ᵀ L⁻¹ = (L Lᵀ)⁻¹ = Y⁻¹. This avoids forming or
// factorizing the d×d inverse.
#ifndef FASEA_LINALG_MVN_H_
#define FASEA_LINALG_MVN_H_

#include "linalg/cholesky.h"
#include "linalg/vector.h"
#include "rng/pcg64.h"

namespace fasea {

/// Vector of n iid standard normal deviates.
Vector StandardNormalVector(Pcg64& rng, std::size_t n);

/// Sample from N(mean, scale² · Y⁻¹) where `chol_y` factorizes Y.
Vector SampleMvnFromPrecision(Pcg64& rng, const Vector& mean, double scale,
                              const Cholesky& chol_y);

/// Sample from N(mean, cov) where `chol_cov` factorizes the covariance
/// itself (mean + L z).
Vector SampleMvnFromCovariance(Pcg64& rng, const Vector& mean,
                               const Cholesky& chol_cov);

}  // namespace fasea

#endif  // FASEA_LINALG_MVN_H_
