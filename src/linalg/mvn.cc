#include "linalg/mvn.h"

#include "rng/distributions.h"

namespace fasea {

Vector StandardNormalVector(Pcg64& rng, std::size_t n) {
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = StandardNormal(rng);
  return z;
}

Vector SampleMvnFromPrecision(Pcg64& rng, const Vector& mean, double scale,
                              const Cholesky& chol_y) {
  FASEA_CHECK(mean.size() == chol_y.dim());
  const Vector z = StandardNormalVector(rng, mean.size());
  Vector sample = chol_y.SolveUpper(z);  // L⁻ᵀ z ~ N(0, Y⁻¹).
  sample.Scale(scale);
  for (std::size_t i = 0; i < sample.size(); ++i) sample[i] += mean[i];
  return sample;
}

Vector SampleMvnFromCovariance(Pcg64& rng, const Vector& mean,
                               const Cholesky& chol_cov) {
  FASEA_CHECK(mean.size() == chol_cov.dim());
  const Vector z = StandardNormalVector(rng, mean.size());
  // L z ~ N(0, L Lᵀ) = N(0, cov).
  const Matrix& l = chol_cov.L();
  Vector sample(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    double sum = mean[i];
    for (std::size_t k = 0; k <= i; ++k) sum += l(i, k) * z[k];
    sample[i] = sum;
  }
  return sample;
}

}  // namespace fasea
