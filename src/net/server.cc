#include "net/server.h"

#include <optional>
#include <utility>

#include "common/strings.h"

namespace fasea {

ShardServer::ShardServer(SimulatedNetwork* net, int node,
                         ShardServerOptions options)
    : net_(net), node_(node), options_(options) {
  net_->RegisterHandler(node_,
                        [this](const Envelope& request) { Dispatch(request); });
}

ShardServer::~ShardServer() { net_->UnregisterNode(node_); }

void ShardServer::Handle(MessageKind kind, Method method) {
  std::lock_guard<std::mutex> lock(mu_);
  methods_[kind] = std::move(method);
}

std::int64_t ShardServer::dup_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dup_suppressed_;
}

std::int64_t ShardServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_served_;
}

void ShardServer::Dispatch(const Envelope& request) {
  if (request.response) return;  // Servers only consume requests.

  Method method;
  std::optional<Envelope> replay;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto cached = replay_cache_.find(request.request_id);
    if (cached != replay_cache_.end()) {
      ++dup_suppressed_;
      dup_suppressed_metric_->Increment();
      replay = cached->second;
      replay->dst = request.src;
    } else {
      auto it = methods_.find(request.kind);
      if (it != methods_.end()) method = it->second;
    }
  }
  if (replay.has_value()) {
    net_->Send(*replay);
    return;
  }

  Envelope response;
  if (!method) {
    response = MakeResponse(
        request,
        UnimplementedError(StrFormat("node %d has no method for %s", node_,
                                     MessageKindName(request.kind))),
        "");
  } else {
    StatusOr<std::string> body = method(request);
    response = body.ok() ? MakeResponse(request, Status::Ok(),
                                        std::move(body.value()))
                         : MakeResponse(request, body.status(), "");
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_served_;
    replay_cache_[request.request_id] = response;
    replay_order_.push_back(request.request_id);
    while (replay_order_.size() > options_.replay_cache_capacity) {
      replay_cache_.erase(replay_order_.front());
      replay_order_.pop_front();
    }
  }
  net_->Send(response);
}

}  // namespace fasea
