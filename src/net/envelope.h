// Typed request/response envelopes for the shard transport.
//
// Every message between the arrangement gateway and a shard node travels
// as one Envelope: a fixed header (64-bit request id, message kind,
// request/response flag, source and destination node, transaction id,
// trace id, status code) plus a kind-specific opaque body. Envelopes are
// encoded to bytes before they enter the SimulatedNetwork and decoded on
// delivery, so the wire format is exercised on every hop — a message that
// cannot round-trip through EncodeEnvelope/DecodeEnvelope cannot be sent.
//
// The request id is the unit of idempotency: a client retries a timed-out
// call with the SAME request id, and the server's replay cache answers
// retries of an already-executed request from memory instead of
// re-executing it (see net/server.h). Ids are assigned once per logical
// call, never per attempt.

#ifndef FASEA_NET_ENVELOPE_H_
#define FASEA_NET_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fasea {

/// Message kinds of the two-phase arrangement protocol plus the
/// operational verbs (health probe, migration transfer).
enum class MessageKind : std::uint8_t {
  /// Gateway -> home shard: open a coordinator round (propose the home
  /// partition's portion of an arrangement).
  kServe = 1,
  /// Gateway -> participant shard: propose a spillover portion AND
  /// durably reserve it under a lease in one message (phase 1).
  kReserve = 2,
  /// Gateway -> shard: phase 2. To the home shard first as a decision
  /// append (the commit point), then to every shard as a portion apply.
  kCommit = 3,
  /// Gateway -> shard: release a reservation / abort a pending stage.
  kAbort = 4,
  /// Any node -> coordinator: in-doubt re-query against the decision
  /// index ("did txn T commit?"), optionally force-aborting an
  /// undecided transaction whose lease expired (presumed abort).
  kQueryDecision = 5,
  /// Liveness probe; response carries the shard's health state.
  kHealth = 6,
  /// Rebalance transfer: durably hand a set of events (consumed
  /// capacity + learner delta) to their new owner shard.
  kMigrate = 7,
};

/// Stable lowercase name ("serve", "reserve", ...) for logs and tests.
const char* MessageKindName(MessageKind kind);

/// One message. `body` is a kind-specific payload; for error responses it
/// carries the human-readable status message instead.
struct Envelope {
  std::uint64_t request_id = 0;
  MessageKind kind = MessageKind::kHealth;
  bool response = false;
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::uint64_t txn = 0;
  std::uint64_t trace_id = 0;
  StatusCode status_code = StatusCode::kOk;  // Meaningful on responses.
  std::string body;

  /// The status a response envelope carries (OK, or the error code with
  /// the body as message).
  Status ToStatus() const;
};

/// Builds the response envelope for `request`: same request id, kind,
/// txn and trace, src/dst swapped, `response` set. An OK status puts
/// `body` on the wire; an error status puts its message in the body.
Envelope MakeResponse(const Envelope& request, const Status& status,
                      std::string body);

std::string EncodeEnvelope(const Envelope& envelope);

/// Rejects short buffers, trailing bytes, unknown kinds and status
/// codes with kInvalidArgument.
StatusOr<Envelope> DecodeEnvelope(std::string_view bytes);

}  // namespace fasea

#endif  // FASEA_NET_ENVELOPE_H_
