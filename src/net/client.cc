#include "net/client.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "rng/seed.h"

namespace fasea {

ShardClient::ShardClient(SimulatedNetwork* net, int node,
                         ShardClientOptions options)
    : net_(net),
      node_(node),
      options_(options),
      retry_policy_(options.retry, DeriveSeed(options.seed, "shard-client")),
      next_request_id_(DeriveSeed(options.seed, "request-id") | 1ULL) {
  net_->RegisterHandler(
      node_, [this](const Envelope& envelope) { OnDelivery(envelope); });
}

ShardClient::~ShardClient() { net_->UnregisterNode(node_); }

std::int64_t ShardClient::timeouts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeouts_;
}

std::int64_t ShardClient::retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retries_;
}

void ShardClient::OnDelivery(const Envelope& envelope) {
  if (!envelope.response) return;  // Clients only consume responses.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = awaiting_.find(envelope.request_id);
  // A missing slot is a stale duplicate of a call that already finished;
  // a filled slot is a duplicate of the response itself. Keep the first.
  if (it == awaiting_.end() || it->second.has_value()) return;
  it->second = envelope;
}

StatusOr<Envelope> ShardClient::Call(MessageKind kind, int dst,
                                     std::uint64_t txn,
                                     std::uint64_t trace_id, std::string body,
                                     const Deadline& deadline) {
  Envelope request;
  request.kind = kind;
  request.response = false;
  request.src = node_;
  request.dst = dst;
  request.txn = txn;
  request.trace_id = trace_id;
  request.body = std::move(body);

  Deadline call_deadline = deadline;
  if (call_deadline.infinite()) {
    call_deadline =
        Deadline::AtNanos(net_->now() + options_.call_timeout_ticks);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    request.request_id = next_request_id_++;
    awaiting_[request.request_id] = std::nullopt;
  }

  // Ensure the awaiting slot is reclaimed on every exit path.
  const auto finish = [&](StatusOr<Envelope> result) {
    std::lock_guard<std::mutex> lock(mu_);
    awaiting_.erase(request.request_id);
    return result;
  };

  retry_policy_.Reset();
  for (;;) {
    net_->Send(request);
    const std::int64_t attempt_start = net_->now();
    std::optional<Envelope> response;
    for (;;) {
      net_->Pump();
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = awaiting_.find(request.request_id);
        if (it != awaiting_.end() && it->second.has_value()) {
          response = it->second;
        }
      }
      if (response.has_value()) break;
      if (net_->now() - attempt_start >= options_.attempt_timeout_ticks) break;
      net_->Tick();
    }
    if (response.has_value()) {
      return finish(std::move(*response));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++timeouts_;
    }
    timeouts_metric_->Increment();
    const Status timeout = UnavailableError(StrFormat(
        "%s to node %d timed out after %lld ticks", MessageKindName(kind),
        dst, static_cast<long long>(options_.attempt_timeout_ticks)));
    // The attempt/backoff budget comes from RetryPolicy; the wall
    // deadline lives on the network's logical clock, so it is checked
    // here with ExpiredAt rather than inside ShouldRetry.
    if (!retry_policy_.ShouldRetry(timeout)) {
      return finish(timeout);
    }
    if (call_deadline.ExpiredAt(net_->now())) {
      return finish(DeadlineExceededError(StrFormat(
          "%s to node %d: call deadline expired after %d attempts",
          MessageKindName(kind), dst, retry_policy_.attempts())));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++retries_;
    }
    retries_metric_->Increment();
    // Backoff in logical ticks, clamped so the retry fires before the
    // deadline rather than oversleeping past it.
    std::int64_t backoff_ticks = retry_policy_.NextDelayNanos();
    const std::int64_t remaining =
        call_deadline.RemainingAtNanos(net_->now());
    backoff_ticks = std::max<std::int64_t>(
        0, std::min(backoff_ticks, remaining));
    net_->PumpFor(backoff_ticks);
  }
}

}  // namespace fasea
