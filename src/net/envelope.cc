#include "net/envelope.h"

#include "common/bytes.h"
#include "common/strings.h"

namespace fasea {
namespace {

// Leading byte of every encoded envelope; catches frames from other
// subsystems (WAL bytes, checkpoint bytes) handed to DecodeEnvelope.
constexpr std::uint8_t kEnvelopeMagic = 0xE7;

constexpr std::uint8_t kFlagResponse = 0x01;

bool ValidKind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(MessageKind::kServe) &&
         kind <= static_cast<std::uint8_t>(MessageKind::kMigrate);
}

bool ValidStatusCode(std::uint8_t code) {
  return code <= static_cast<std::uint8_t>(StatusCode::kDeadlineExceeded);
}

}  // namespace

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kServe:
      return "serve";
    case MessageKind::kReserve:
      return "reserve";
    case MessageKind::kCommit:
      return "commit";
    case MessageKind::kAbort:
      return "abort";
    case MessageKind::kQueryDecision:
      return "query-decision";
    case MessageKind::kHealth:
      return "health";
    case MessageKind::kMigrate:
      return "migrate";
  }
  return "unknown";
}

Status Envelope::ToStatus() const {
  if (status_code == StatusCode::kOk) return Status::Ok();
  return Status(status_code,
                body.empty() ? StrFormat("%s failed", MessageKindName(kind))
                             : body);
}

Envelope MakeResponse(const Envelope& request, const Status& status,
                      std::string body) {
  Envelope response;
  response.request_id = request.request_id;
  response.kind = request.kind;
  response.response = true;
  response.src = request.dst;
  response.dst = request.src;
  response.txn = request.txn;
  response.trace_id = request.trace_id;
  response.status_code = status.code();
  response.body = status.ok() ? std::move(body) : std::string(status.message());
  return response;
}

std::string EncodeEnvelope(const Envelope& envelope) {
  std::string out;
  out.reserve(40 + envelope.body.size());
  AppendU8(&out, kEnvelopeMagic);
  AppendU64(&out, envelope.request_id);
  AppendU8(&out, static_cast<std::uint8_t>(envelope.kind));
  AppendU8(&out, envelope.response ? kFlagResponse : 0);
  AppendU32(&out, static_cast<std::uint32_t>(envelope.src));
  AppendU32(&out, static_cast<std::uint32_t>(envelope.dst));
  AppendU64(&out, envelope.txn);
  AppendU64(&out, envelope.trace_id);
  AppendU8(&out, static_cast<std::uint8_t>(envelope.status_code));
  AppendU32(&out, static_cast<std::uint32_t>(envelope.body.size()));
  out.append(envelope.body);
  return out;
}

StatusOr<Envelope> DecodeEnvelope(std::string_view bytes) {
  ByteReader reader(bytes, "truncated envelope");
  auto magic = reader.ReadU8();
  if (!magic.ok()) return magic.status();
  if (*magic != kEnvelopeMagic) {
    return InvalidArgumentError(
        StrFormat("not an envelope (magic 0x%02x)", *magic));
  }

  Envelope envelope;
  auto request_id = reader.ReadU64();
  if (!request_id.ok()) return request_id.status();
  envelope.request_id = *request_id;
  auto kind = reader.ReadU8();
  if (!kind.ok()) return kind.status();
  if (!ValidKind(*kind)) {
    return InvalidArgumentError(
        StrFormat("unknown message kind %u", static_cast<unsigned>(*kind)));
  }
  envelope.kind = static_cast<MessageKind>(*kind);
  auto flags = reader.ReadU8();
  if (!flags.ok()) return flags.status();
  envelope.response = (*flags & kFlagResponse) != 0;
  auto src = reader.ReadU32();
  if (!src.ok()) return src.status();
  auto dst = reader.ReadU32();
  if (!dst.ok()) return dst.status();
  envelope.src = static_cast<std::int32_t>(*src);
  envelope.dst = static_cast<std::int32_t>(*dst);
  auto txn = reader.ReadU64();
  if (!txn.ok()) return txn.status();
  envelope.txn = *txn;
  auto trace_id = reader.ReadU64();
  if (!trace_id.ok()) return trace_id.status();
  envelope.trace_id = *trace_id;
  auto status_code = reader.ReadU8();
  if (!status_code.ok()) return status_code.status();
  if (!ValidStatusCode(*status_code)) {
    return InvalidArgumentError(StrFormat(
        "unknown status code %u", static_cast<unsigned>(*status_code)));
  }
  envelope.status_code = static_cast<StatusCode>(*status_code);
  auto body_size = reader.ReadU32();
  if (!body_size.ok()) return body_size.status();
  if (reader.remaining() != *body_size) {
    return InvalidArgumentError(StrFormat(
        "envelope body size %u does not match %zu remaining bytes",
        *body_size, reader.remaining()));
  }
  envelope.body.assign(bytes.substr(reader.position(), *body_size));
  return envelope;
}

}  // namespace fasea
