// SimulatedNetwork: a deterministic message-passing fabric on a logical
// clock, with per-link fault injection.
//
// Nodes (shards, plus the arrangement gateway) register a handler; Send
// encodes an Envelope to bytes, rolls the fault dice (drop, delay,
// duplicate, reorder) from a seeded PCG64 stream, and enqueues the bytes
// with a delivery tick. Pump() delivers every message whose tick has
// arrived, in (deliver_at, sequence) order, decoding the bytes back into
// an Envelope at the destination — so the wire codec is exercised on
// every hop and a run is byte-reproducible from (seed, schedule, send
// order).
//
// Partitions are modeled as blocked directed links: PartitionNode(n)
// blocks every link touching n (full partition), BlockLink(a, b) blocks
// only a->b (one-way partition). Blocked messages are counted and
// dropped at send time; messages addressed to an unregistered (crashed)
// node are dropped at delivery time, mirroring a dead peer whose packets
// vanish after the switch.
//
// Faults follow the same declarative spec idiom as io/FaultSchedule:
// NetFaultSchedule::Parse("drop_rate=0.1;dup_rate=0.1;...") so chaos
// configurations stay printable, diffable, and seeded.

#ifndef FASEA_NET_NETWORK_H_
#define FASEA_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/envelope.h"
#include "obs/metrics.h"
#include "rng/pcg64.h"

namespace fasea {

/// Declarative network-fault configuration ("drop_rate=0.1;dup_rate=0.05;
/// reorder_rate=0.1;delay_ticks=2;jitter_ticks=3;seed=7"). All rates are
/// probabilities in [0, 1]; delays are logical ticks.
struct NetFaultSchedule {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  std::int64_t delay_ticks = 0;
  std::int64_t jitter_ticks = 0;
  std::uint64_t seed = 0;

  /// True when any fault can fire.
  bool Armed() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0 ||
           delay_ticks > 0 || jitter_ticks > 0;
  }

  static StatusOr<NetFaultSchedule> Parse(std::string_view spec);
  std::string ToString() const;
};

struct NetworkStats {
  std::int64_t sent = 0;             // Envelopes handed to Send.
  std::int64_t delivered = 0;        // Handler invocations.
  std::int64_t dropped = 0;          // Fault-schedule drops.
  std::int64_t duplicated = 0;       // Extra copies enqueued.
  std::int64_t reordered = 0;        // Messages given overtaking skew.
  std::int64_t partition_drops = 0;  // Blocked-link drops.
  std::int64_t dead_node_drops = 0;  // Delivered to an unregistered node.
  std::int64_t decode_failures = 0;  // Wire bytes that failed to decode.
};

class SimulatedNetwork {
 public:
  using Handler = std::function<void(const Envelope&)>;

  explicit SimulatedNetwork(std::uint64_t seed = 1);

  /// Installs (or replaces) the delivery handler for `node`. A node with
  /// no handler is "down": messages addressed to it vanish.
  void RegisterHandler(int node, Handler handler);
  void UnregisterNode(int node);
  bool NodeRegistered(int node) const;

  /// Arms / replaces the fault schedule. The schedule's own seed (when
  /// non-zero) reseeds the fault dice so a re-armed schedule replays
  /// identically regardless of prior traffic.
  void ApplySchedule(const NetFaultSchedule& schedule);
  void DisarmFaults();

  /// Blocks every link to and from `node` (full partition).
  void PartitionNode(int node);
  /// Blocks only src->dst (one-way partition).
  void BlockLink(int src, int dst);
  /// Unblocks every link touching `node`.
  void HealNode(int node);
  void HealAll();

  /// Encodes and enqueues `envelope` toward `envelope.dst`, applying
  /// partitions and the armed fault schedule. Never fails: lost
  /// messages are a normal network outcome, visible only in stats().
  void Send(const Envelope& envelope);

  /// Delivers every message due at the current tick, in deterministic
  /// (deliver_at, sequence) order. Handlers run outside the network
  /// lock and may Send (responses); newly due messages are picked up by
  /// the next Pump. Returns the number of deliveries.
  int Pump();

  /// Advances the clock `ticks` steps, pumping after each. Returns
  /// total deliveries.
  int PumpFor(std::int64_t ticks);

  /// True when no message is queued (in flight).
  bool Idle() const;

  void Tick(std::int64_t ticks = 1);
  std::int64_t now() const;

  NetworkStats stats() const;

 private:
  struct InFlight {
    std::int64_t deliver_at = 0;
    std::uint64_t seq = 0;
    int dst = 0;
    std::string bytes;
  };

  bool LinkBlockedLocked(int src, int dst) const;
  void EnqueueLocked(int dst, const std::string& bytes,
                     std::int64_t deliver_at);

  mutable std::mutex mu_;
  std::int64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<int, Handler> handlers_;
  std::multimap<std::pair<std::int64_t, std::uint64_t>, InFlight> queue_;
  std::set<int> isolated_;
  std::set<std::pair<int, int>> blocked_links_;
  NetFaultSchedule schedule_;
  Pcg64 rng_;
  NetworkStats stats_;

  Counter* sent_metric_ = Metrics()->GetCounter("fasea.net.sent");
  Counter* dropped_metric_ = Metrics()->GetCounter("fasea.net.dropped");
};

}  // namespace fasea

#endif  // FASEA_NET_NETWORK_H_
