// ShardServer: per-node request dispatcher with idempotent replay cache.
//
// A server owns one node id on a SimulatedNetwork and dispatches incoming
// request envelopes to per-kind methods. Every produced response is
// remembered in a bounded FIFO replay cache keyed by request id: when a
// client's retry of an already-executed request arrives (its response was
// lost, delayed, or duplicated), the cached response is re-sent without
// re-invoking the method. This is what makes a retried RESERVE safe — the
// seat is reserved exactly once no matter how many copies of the request
// the network delivers.
//
// Methods run inline on the Pump thread and must not issue nested
// transport calls (the protocol is strictly client -> server).

#ifndef FASEA_NET_SERVER_H_
#define FASEA_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "net/envelope.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace fasea {

struct ShardServerOptions {
  /// Responses remembered for request-id dedup. Old entries fall off
  /// FIFO; a retry older than the window re-executes, so the window
  /// must exceed the client's retry horizon (it comfortably does: the
  /// horizon is a handful of in-flight calls).
  std::size_t replay_cache_capacity = 4096;
};

class ShardServer {
 public:
  /// A method consumes a request and returns the response body, or an
  /// error status to be relayed to the client.
  using Method = std::function<StatusOr<std::string>(const Envelope&)>;

  /// Registers this server as `node`'s handler on `net`. The server
  /// unregisters itself on destruction.
  ShardServer(SimulatedNetwork* net, int node,
              ShardServerOptions options = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Installs the method for `kind`. Requests of a kind with no method
  /// are answered with kUnimplemented.
  void Handle(MessageKind kind, Method method);

  int node() const { return node_; }
  std::int64_t dup_suppressed() const;
  std::int64_t requests_served() const;

 private:
  void Dispatch(const Envelope& request);

  SimulatedNetwork* const net_;
  const int node_;
  const ShardServerOptions options_;

  mutable std::mutex mu_;
  std::map<MessageKind, Method> methods_;
  std::map<std::uint64_t, Envelope> replay_cache_;
  std::deque<std::uint64_t> replay_order_;
  std::int64_t dup_suppressed_ = 0;
  std::int64_t requests_served_ = 0;

  Counter* dup_suppressed_metric_ =
      Metrics()->GetCounter("fasea.net.dup_suppressed");
};

}  // namespace fasea

#endif  // FASEA_NET_SERVER_H_
