// ShardClient: synchronous call stub over the simulated network.
//
// Call() assigns one 64-bit request id per logical call and drives the
// network (Pump + Tick) until the matching response arrives or the
// attempt times out. Timed-out attempts are retried with the SAME
// request id under a RetryPolicy (decorrelated-jitter backoff, bounded
// attempts), so the server's replay cache — not re-execution — answers a
// retry whose original did run. The overall call is bounded by a
// Deadline expressed on the network's logical clock: backoff never
// sleeps past it and an expired deadline fails the call with
// kDeadlineExceeded.
//
// Error responses from the server are returned to the caller as-is (the
// upper layer owns application-level retries); only transport silence
// (no response inside attempt_timeout_ticks) is retried here.

#ifndef FASEA_NET_CLIENT_H_
#define FASEA_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/deadline.h"
#include "common/retry.h"
#include "common/status.h"
#include "net/envelope.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace fasea {

struct ShardClientOptions {
  /// Ticks to wait for a response before declaring one attempt lost.
  std::int64_t attempt_timeout_ticks = 16;
  /// Default per-call budget (logical ticks) when the caller passes no
  /// deadline.
  std::int64_t call_timeout_ticks = 160;
  /// Backoff/attempt budget between retries of one call.
  RetryOptions retry;
  std::uint64_t seed = 1;

  ShardClientOptions() {
    retry.max_attempts = 8;
    // Backoff "nanos" are interpreted as logical ticks by the client.
    retry.initial_backoff_ns = 1;
    retry.max_backoff_ns = 4;
  }
};

class ShardClient {
 public:
  /// Registers `node` on `net` as the response sink for this client.
  /// The client unregisters itself on destruction.
  ShardClient(SimulatedNetwork* net, int node, ShardClientOptions options);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// One logical request/response exchange with node `dst`. `deadline`
  /// is interpreted against the network's logical clock (build it with
  /// Deadline::AtNanos(net->now() + budget_ticks), or pass
  /// Deadline::Infinite() to fall back to call_timeout_ticks).
  StatusOr<Envelope> Call(MessageKind kind, int dst, std::uint64_t txn,
                          std::uint64_t trace_id, std::string body,
                          const Deadline& deadline = Deadline::Infinite());

  int node() const { return node_; }
  std::int64_t timeouts() const;
  std::int64_t retries() const;

 private:
  void OnDelivery(const Envelope& envelope);

  SimulatedNetwork* const net_;
  const int node_;
  const ShardClientOptions options_;
  RetryPolicy retry_policy_;

  mutable std::mutex mu_;
  std::uint64_t next_request_id_;
  /// Awaited calls: request id -> response slot. A response with no
  /// slot (stale duplicate of a finished call) is dropped.
  std::map<std::uint64_t, std::optional<Envelope>> awaiting_;
  std::int64_t timeouts_ = 0;
  std::int64_t retries_ = 0;

  Counter* timeouts_metric_ = Metrics()->GetCounter("fasea.net.timeouts");
  Counter* retries_metric_ = Metrics()->GetCounter("fasea.net.retries");
};

}  // namespace fasea

#endif  // FASEA_NET_CLIENT_H_
