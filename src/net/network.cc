#include "net/network.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/strings.h"
#include "rng/distributions.h"
#include "rng/seed.h"

namespace fasea {
namespace {

bool ParseDoubleStrict(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseInt64Strict(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

}  // namespace

// --- NetFaultSchedule ----------------------------------------------------

StatusOr<NetFaultSchedule> NetFaultSchedule::Parse(std::string_view spec) {
  NetFaultSchedule schedule;
  for (const std::string& raw : StrSplit(spec, ';')) {
    const std::string_view piece = StripAsciiWhitespace(raw);
    if (piece.empty()) continue;
    const std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError(StrFormat(
          "net fault schedule: '%s' is not a key=value pair",
          std::string(piece).c_str()));
    }
    const std::string key(StripAsciiWhitespace(piece.substr(0, eq)));
    const std::string value(StripAsciiWhitespace(piece.substr(eq + 1)));
    const auto bad = [&](const char* why) {
      return InvalidArgumentError(StrFormat(
          "net fault schedule: %s '%s' for key '%s'", why, value.c_str(),
          key.c_str()));
    };

    if (key == "drop_rate" || key == "dup_rate" || key == "reorder_rate") {
      double rate = 0.0;
      if (!ParseDoubleStrict(value, &rate) || rate < 0.0 || rate > 1.0) {
        return bad("bad probability");
      }
      if (key == "drop_rate") schedule.drop_rate = rate;
      if (key == "dup_rate") schedule.dup_rate = rate;
      if (key == "reorder_rate") schedule.reorder_rate = rate;
      continue;
    }
    std::int64_t number = 0;
    if (!ParseInt64Strict(value, &number)) return bad("bad integer");
    if (key == "seed") {
      schedule.seed = static_cast<std::uint64_t>(number);
    } else if (key == "delay_ticks") {
      if (number < 0) return bad("negative value");
      schedule.delay_ticks = number;
    } else if (key == "jitter_ticks") {
      if (number < 0) return bad("negative value");
      schedule.jitter_ticks = number;
    } else {
      return InvalidArgumentError(StrFormat(
          "net fault schedule: unknown key '%s'", key.c_str()));
    }
  }
  return schedule;
}

std::string NetFaultSchedule::ToString() const {
  std::string out;
  const auto add = [&](const std::string& piece) {
    if (!out.empty()) out += ';';
    out += piece;
  };
  if (drop_rate > 0.0) add(StrFormat("drop_rate=%g", drop_rate));
  if (dup_rate > 0.0) add(StrFormat("dup_rate=%g", dup_rate));
  if (reorder_rate > 0.0) add(StrFormat("reorder_rate=%g", reorder_rate));
  if (delay_ticks > 0) {
    add(StrFormat("delay_ticks=%lld", static_cast<long long>(delay_ticks)));
  }
  if (jitter_ticks > 0) {
    add(StrFormat("jitter_ticks=%lld", static_cast<long long>(jitter_ticks)));
  }
  if (seed != 0) {
    add(StrFormat("seed=%llu", static_cast<unsigned long long>(seed)));
  }
  return out;
}

// --- SimulatedNetwork ----------------------------------------------------

SimulatedNetwork::SimulatedNetwork(std::uint64_t seed)
    : rng_(DeriveSeed(seed, "simulated-network"), 0x6e6574) {}

void SimulatedNetwork::RegisterHandler(int node, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[node] = std::move(handler);
}

void SimulatedNetwork::UnregisterNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(node);
}

bool SimulatedNetwork::NodeRegistered(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return handlers_.count(node) != 0;
}

void SimulatedNetwork::ApplySchedule(const NetFaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = schedule;
  if (schedule.seed != 0) {
    rng_ = Pcg64(DeriveSeed(schedule.seed, "simulated-network"), 0x6e6574);
  }
}

void SimulatedNetwork::DisarmFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = NetFaultSchedule{};
}

void SimulatedNetwork::PartitionNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.insert(node);
}

void SimulatedNetwork::BlockLink(int src, int dst) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_links_.insert({src, dst});
}

void SimulatedNetwork::HealNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.erase(node);
  for (auto it = blocked_links_.begin(); it != blocked_links_.end();) {
    if (it->first == node || it->second == node) {
      it = blocked_links_.erase(it);
    } else {
      ++it;
    }
  }
}

void SimulatedNetwork::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.clear();
  blocked_links_.clear();
}

bool SimulatedNetwork::LinkBlockedLocked(int src, int dst) const {
  if (isolated_.count(src) != 0 || isolated_.count(dst) != 0) return true;
  return blocked_links_.count({src, dst}) != 0;
}

void SimulatedNetwork::EnqueueLocked(int dst, const std::string& bytes,
                                     std::int64_t deliver_at) {
  const std::uint64_t seq = next_seq_++;
  InFlight in_flight;
  in_flight.deliver_at = deliver_at;
  in_flight.seq = seq;
  in_flight.dst = dst;
  in_flight.bytes = bytes;
  queue_.emplace(std::make_pair(deliver_at, seq), std::move(in_flight));
}

void SimulatedNetwork::Send(const Envelope& envelope) {
  const std::string bytes = EncodeEnvelope(envelope);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sent;
  sent_metric_->Increment();
  if (LinkBlockedLocked(envelope.src, envelope.dst)) {
    ++stats_.partition_drops;
    dropped_metric_->Increment();
    return;
  }
  if (schedule_.drop_rate > 0.0 && rng_.NextDouble() < schedule_.drop_rate) {
    ++stats_.dropped;
    dropped_metric_->Increment();
    return;
  }
  std::int64_t deliver_at = now_ + 1 + schedule_.delay_ticks;
  if (schedule_.jitter_ticks > 0) {
    deliver_at += UniformInt(rng_, 0, schedule_.jitter_ticks);
  }
  if (schedule_.reorder_rate > 0.0 &&
      rng_.NextDouble() < schedule_.reorder_rate) {
    // Reordering is modeled as extra skew on this message so messages
    // sent after it can overtake it.
    deliver_at += UniformInt(rng_, 1, 3);
    ++stats_.reordered;
  }
  EnqueueLocked(envelope.dst, bytes, deliver_at);
  if (schedule_.dup_rate > 0.0 && rng_.NextDouble() < schedule_.dup_rate) {
    std::int64_t dup_at = deliver_at + UniformInt(rng_, 0, 2);
    EnqueueLocked(envelope.dst, bytes, dup_at);
    ++stats_.duplicated;
  }
}

int SimulatedNetwork::Pump() {
  // Collect the due batch under the lock, dispatch outside it: handlers
  // Send their responses back through this network.
  std::vector<InFlight> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto end = queue_.upper_bound(
        std::make_pair(now_, std::numeric_limits<std::uint64_t>::max()));
    for (auto it = queue_.begin(); it != end; ++it) {
      due.push_back(std::move(it->second));
    }
    queue_.erase(queue_.begin(), end);
  }
  int delivered = 0;
  for (const InFlight& in_flight : due) {
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = handlers_.find(in_flight.dst);
      if (it == handlers_.end()) {
        ++stats_.dead_node_drops;
        dropped_metric_->Increment();
        continue;
      }
      handler = it->second;
    }
    StatusOr<Envelope> decoded = DecodeEnvelope(in_flight.bytes);
    if (!decoded.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.decode_failures;
      dropped_metric_->Increment();
      continue;
    }
    handler(decoded.value());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.delivered;
    }
    ++delivered;
  }
  return delivered;
}

int SimulatedNetwork::PumpFor(std::int64_t ticks) {
  int delivered = Pump();
  for (std::int64_t i = 0; i < ticks; ++i) {
    Tick();
    delivered += Pump();
  }
  return delivered;
}

bool SimulatedNetwork::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty();
}

void SimulatedNetwork::Tick(std::int64_t ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ += ticks;
}

std::int64_t SimulatedNetwork::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

NetworkStats SimulatedNetwork::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fasea
