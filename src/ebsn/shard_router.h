// ShardRouter: the static partitioning layer of sharded serving.
//
// Events are partitioned across N shards by a consistent hash of the
// event id (common/hash.h): shard ownership is a pure function of
// (event id, shard count), so a recovered shard owns exactly the events
// it owned before the crash, and growing the shard count moves only
// ~1/N of the events. Each shard gets a *sub-instance*: its owned
// events remapped to dense local ids 0..m-1, with capacities gathered
// from the global instance and the conflict graph induced on the
// partition. Conflict edges whose endpoints land on different shards —
// the reason shards cannot be naively independent — are enumerated by
// CrossShardEdges() and enforced at serve time by the sharded layer's
// availability masks (see sharded_service.h).
//
// Arriving users are routed to a *home* (coordinator) shard either by
// hashing the user id (per-user θ affinity, Remark 1 deployments) or
// round-robin by arrival (the base FASEA setting keeps user_id at 0 for
// every arrival, which would degenerate a hash route to one shard).
#ifndef FASEA_EBSN_SHARD_ROUTER_H_
#define FASEA_EBSN_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "model/instance.h"
#include "model/types.h"

namespace fasea {

enum class ShardRoutingMode {
  /// Home shard cycles with the arrival index — even load under the
  /// base setting's shared-θ arrivals. The default.
  kRoundRobin,
  /// Home shard = consistent hash of the user id (per-user affinity).
  kUserHash,
};

class ShardRouter {
 public:
  /// Partitions `instance` (which must outlive the router) across
  /// `num_shards` >= 1 shards and builds every sub-instance.
  ShardRouter(const ProblemInstance* instance, int num_shards);

  int num_shards() const { return num_shards_; }
  const ProblemInstance& global_instance() const { return *instance_; }

  /// Owner shard of a global event id (pure consistent hash).
  int OwnerShard(EventId v) const {
    FASEA_DCHECK(v < owner_.size());
    return owner_[v];
  }

  /// Home (coordinator) shard for an arrival. `arrival_index` is the
  /// global arrival counter; only one of the two inputs is consulted,
  /// per `mode`.
  int HomeShard(std::int64_t user_id, std::int64_t arrival_index,
                ShardRoutingMode mode) const;

  /// Local id of global event v within its owner's sub-instance.
  EventId LocalId(EventId v) const {
    FASEA_DCHECK(v < local_id_.size());
    return local_id_[v];
  }

  /// Global ids owned by `shard`, ascending (index = local id).
  const std::vector<EventId>& ShardEvents(int shard) const {
    FASEA_DCHECK(shard >= 0 && shard < num_shards_);
    return shard_events_[static_cast<std::size_t>(shard)];
  }

  /// The shard's sub-instance: ShardEvents(shard) remapped to local ids,
  /// capacities gathered, conflict graph induced on the partition.
  const ProblemInstance& SubInstance(int shard) const {
    FASEA_DCHECK(shard >= 0 && shard < num_shards_);
    return *sub_instances_[static_cast<std::size_t>(shard)];
  }

  /// Conflict edges {a, b} (global ids, a < b) whose endpoints live on
  /// different shards — the edges the two-phase protocol exists for.
  const std::vector<std::pair<EventId, EventId>>& CrossShardEdges() const {
    return cross_shard_edges_;
  }

 private:
  const ProblemInstance* instance_;
  int num_shards_;
  std::vector<int> owner_;        // global event -> shard
  std::vector<EventId> local_id_; // global event -> local id
  std::vector<std::vector<EventId>> shard_events_;
  std::vector<std::unique_ptr<ProblemInstance>> sub_instances_;
  std::vector<std::pair<EventId, EventId>> cross_shard_edges_;
};

}  // namespace fasea

#endif  // FASEA_EBSN_SHARD_ROUTER_H_
