// Typed WAL frames of the sharded serving layer.
//
// A shard's WAL carries more than interaction records: the two-phase
// cross-shard arrangement protocol needs durable traces of both phases.
// Every frame payload starts with a one-byte kind tag, the global
// transaction id, and the coordinator's trace id (the TraceRing
// correlation id stamped on every span and decision-log record of the
// same transaction, so one stats dump reconstructs the cross-shard
// timeline), then the kind-specific body:
//
//   kDecision [0x01][txn][trace][InteractionRecord]
//     The coordinator's commit record: the FULL round (global event
//     ids, record.t = the coordinator's local round counter). Appending
//     this frame durably IS the commit point of the transaction — on
//     replay the coordinator re-applies its home-owned portion, and
//     participants resolve in-doubt reservations against it. A
//     single-shard round is just a decision with no remote portions.
//
//   kReserve [0x02][txn][trace][coordinator_shard][coordinator_round]
//            [user_id][n][event]*n
//     Phase 1 on a participant: the listed (global-id) events are
//     reserved for the coordinator's round. A participant only votes
//     yes once this frame is durable; until a kPortion for the same txn
//     follows, the reservation is *in-doubt* and recovery must resolve
//     it (presumed-abort, see sharded_service.h).
//
//   kPortion [0x03][txn][trace][InteractionRecord]
//     Phase 2 on a participant: its slice of the round was applied
//     (record in LOCAL event ids, record.t = the participant's own
//     round counter). Closes the txn's in-doubt reservation. Only
//     written when the coordinator's decision was durable — a portion
//     must never outlive its decision record.
//
// The framing beneath (length + masked CRC, torn-tail truncation) is
// io/wal.h, unchanged; this is purely the payload layer.
#ifndef FASEA_EBSN_SHARD_WAL_H_
#define FASEA_EBSN_SHARD_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ebsn/interaction_log.h"
#include "model/types.h"

namespace fasea {

enum class ShardFrameKind : std::uint8_t {
  kDecision = 0x01,
  kReserve = 0x02,
  kPortion = 0x03,
};

/// Phase-1 reservation: `events` (global ids) held on the owner shard
/// for the coordinator's round until committed or aborted.
struct ReservationRecord {
  std::uint64_t txn = 0;
  std::uint64_t trace_id = 0;
  int coordinator_shard = 0;
  std::int64_t coordinator_round = 0;
  std::int64_t user_id = 0;
  Arrangement events;
};

/// One decoded shard-WAL frame (exactly one of the bodies is set,
/// per `kind`).
struct ShardFrame {
  ShardFrameKind kind = ShardFrameKind::kDecision;
  std::uint64_t txn = 0;
  std::uint64_t trace_id = 0;     // Coordinator's correlation id.
  InteractionRecord record;       // kDecision / kPortion.
  ReservationRecord reservation;  // kReserve.
};

std::string EncodeDecisionFrame(std::uint64_t txn, std::uint64_t trace_id,
                                const InteractionRecord& record);
std::string EncodeReserveFrame(const ReservationRecord& reservation);
std::string EncodePortionFrame(std::uint64_t txn, std::uint64_t trace_id,
                               const InteractionRecord& record);

/// Decodes any shard frame; kDataLoss on unknown kinds or malformed
/// bodies (the frame passed its checksum, so damage means a format bug
/// rather than bit rot).
StatusOr<ShardFrame> DecodeShardFrame(std::string_view payload);

}  // namespace fasea

#endif  // FASEA_EBSN_SHARD_WAL_H_
