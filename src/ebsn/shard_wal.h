// Typed WAL frames of the sharded serving layer.
//
// A shard's WAL carries more than interaction records: the two-phase
// cross-shard arrangement protocol needs durable traces of both phases.
// Every frame payload starts with a one-byte kind tag, the global
// transaction id, the coordinator's trace id (the TraceRing correlation
// id stamped on every span and decision-log record of the same
// transaction, so one stats dump reconstructs the cross-shard timeline),
// and the rebalance epoch the frame was written under (which ShardRouter
// generation owned the events at write time — replay maps event ids
// through the ownership history with it), then the kind-specific body:
//
//   kDecision [0x01][txn][trace][epoch][InteractionRecord]
//     The coordinator's commit record: the FULL round (global event
//     ids, record.t = the coordinator's local round counter). Appending
//     this frame durably IS the commit point of the transaction — on
//     replay the coordinator re-applies its home-owned portion, and
//     participants resolve in-doubt reservations against it. A
//     single-shard round is just a decision with no remote portions.
//
//   kReserve [0x02][txn][trace][epoch][coordinator_shard]
//            [coordinator_round][user_id][lease_expiry][n][event]*n
//     Phase 1 on a participant: the listed (global-id) events are
//     reserved for the coordinator's round. A participant only votes
//     yes once this frame is durable; until a kPortion for the same txn
//     follows, the reservation is *in-doubt* and recovery must resolve
//     it (presumed-abort, see sharded_service.h). `lease_expiry` is a
//     logical-clock tick: past it, the reservation may be queried
//     against the coordinator's decision index and, if still
//     undecided, force-aborted (presumed abort without waiting for a
//     crash).
//
//   kPortion [0x03][txn][trace][epoch][InteractionRecord]
//     Phase 2 on a participant: its slice of the round was applied
//     (record in the LOCAL event ids of the writing epoch's router,
//     record.t = the participant's own round counter). Closes the
//     txn's in-doubt reservation. Only written when the coordinator's
//     decision was durable — a portion must never outlive its decision
//     record.
//
//   kMigrate [0x04][txn=0][trace][epoch][src_shard][n_events]
//            { [event][consumed][n_obs][dim] { context*dim, reward }* }*
//     Rebalance transfer INTO this shard: each listed (global-id)
//     event arrives with its consumed capacity and the source
//     learner's observation rows for it. The epoch is the one the
//     migration creates; the frame only takes effect once the flip to
//     that epoch happened (frames from a migration that crashed before
//     its flip are superseded by the retry and ignored, last writer
//     per event wins).
//
// The framing beneath (length + masked CRC, torn-tail truncation) is
// io/wal.h, unchanged; this is purely the payload layer.
#ifndef FASEA_EBSN_SHARD_WAL_H_
#define FASEA_EBSN_SHARD_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ebsn/interaction_log.h"
#include "model/types.h"

namespace fasea {

enum class ShardFrameKind : std::uint8_t {
  kDecision = 0x01,
  kReserve = 0x02,
  kPortion = 0x03,
  kMigrate = 0x04,
};

/// Phase-1 reservation: `events` (global ids) held on the owner shard
/// for the coordinator's round until committed or aborted, or until the
/// lease expires to presumed-abort.
struct ReservationRecord {
  std::uint64_t txn = 0;
  std::uint64_t trace_id = 0;
  int coordinator_shard = 0;
  std::int64_t coordinator_round = 0;
  std::int64_t user_id = 0;
  /// Logical-clock tick after which the reservation is expired
  /// (0 = no lease, never expires on its own).
  std::int64_t lease_expiry = 0;
  /// Rebalance epoch the reservation was written under.
  std::uint32_t epoch = 0;
  Arrangement events;
};

/// One learner observation travelling with a migrated event.
struct MigratedObservation {
  std::vector<double> context;
  double reward = 0.0;
};

/// One event handed to a new owner shard: its consumed capacity so far
/// plus the source learner's rows for it.
struct MigratedEvent {
  EventId event = 0;
  std::int64_t consumed = 0;
  std::vector<MigratedObservation> observations;
};

/// Rebalance transfer payload (the body of one kMigrate frame).
struct MigrateRecord {
  int src_shard = 0;
  std::vector<MigratedEvent> events;
};

/// One decoded shard-WAL frame (exactly one of the bodies is set,
/// per `kind`).
struct ShardFrame {
  ShardFrameKind kind = ShardFrameKind::kDecision;
  std::uint64_t txn = 0;
  std::uint64_t trace_id = 0;     // Coordinator's correlation id.
  std::uint32_t epoch = 0;        // Rebalance epoch at write time.
  InteractionRecord record;       // kDecision / kPortion.
  ReservationRecord reservation;  // kReserve.
  MigrateRecord migrate;          // kMigrate.
};

std::string EncodeDecisionFrame(std::uint64_t txn, std::uint64_t trace_id,
                                std::uint32_t epoch,
                                const InteractionRecord& record);
std::string EncodeReserveFrame(const ReservationRecord& reservation);
std::string EncodePortionFrame(std::uint64_t txn, std::uint64_t trace_id,
                               std::uint32_t epoch,
                               const InteractionRecord& record);
std::string EncodeMigrateFrame(std::uint64_t trace_id, std::uint32_t epoch,
                               const MigrateRecord& migrate);

/// Decodes any shard frame; kDataLoss on unknown kinds or malformed
/// bodies (the frame passed its checksum, so damage means a format bug
/// rather than bit rot).
StatusOr<ShardFrame> DecodeShardFrame(std::string_view payload);

}  // namespace fasea

#endif  // FASEA_EBSN_SHARD_WAL_H_
