#include "ebsn/shard_router.h"

#include "common/hash.h"

namespace fasea {

ShardRouter::ShardRouter(const ProblemInstance* instance, int num_shards)
    : instance_(instance), num_shards_(num_shards) {
  FASEA_CHECK(instance != nullptr);
  FASEA_CHECK(num_shards >= 1);
  const std::size_t n = instance->num_events();
  owner_.resize(n);
  local_id_.resize(n);
  shard_events_.resize(static_cast<std::size_t>(num_shards));
  for (EventId v = 0; v < n; ++v) {
    const int shard = JumpConsistentHash(Mix64(v), num_shards);
    owner_[v] = shard;
    auto& events = shard_events_[static_cast<std::size_t>(shard)];
    local_id_[v] = static_cast<EventId>(events.size());
    events.push_back(v);
  }

  sub_instances_.reserve(static_cast<std::size_t>(num_shards));
  for (int shard = 0; shard < num_shards; ++shard) {
    const auto& events = shard_events_[static_cast<std::size_t>(shard)];
    std::vector<std::int64_t> capacities;
    capacities.reserve(events.size());
    for (EventId v : events) capacities.push_back(instance->capacity(v));
    ConflictGraph induced(events.size());
    for (const auto& [a, b] : instance->conflicts().edges()) {
      if (owner_[a] == shard && owner_[b] == shard) {
        induced.AddConflict(local_id_[a], local_id_[b]);
      }
    }
    auto sub = ProblemInstance::Create(std::move(capacities),
                                       std::move(induced), instance->dim());
    FASEA_CHECK_OK(sub.status());
    sub_instances_.push_back(
        std::make_unique<ProblemInstance>(std::move(sub).value()));
  }

  for (const auto& [a, b] : instance->conflicts().edges()) {
    if (owner_[a] != owner_[b]) cross_shard_edges_.emplace_back(a, b);
  }
}

int ShardRouter::HomeShard(std::int64_t user_id, std::int64_t arrival_index,
                           ShardRoutingMode mode) const {
  if (num_shards_ == 1) return 0;
  switch (mode) {
    case ShardRoutingMode::kRoundRobin:
      return static_cast<int>(
          ((arrival_index % num_shards_) + num_shards_) % num_shards_);
    case ShardRoutingMode::kUserHash:
      return JumpConsistentHash(
          Mix64(static_cast<std::uint64_t>(user_id)), num_shards_);
  }
  return 0;
}

}  // namespace fasea
