#include "ebsn/event_catalog.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace fasea {

StatusOr<EventId> EventCatalog::Add(EventSpec spec) {
  if (spec.name.empty()) {
    return InvalidArgumentError("event name must not be empty");
  }
  for (const EventSpec& existing : events_) {
    if (existing.name == spec.name) {
      return InvalidArgumentError("duplicate event name '" + spec.name + "'");
    }
  }
  if (spec.capacity < 0) {
    return InvalidArgumentError("event '" + spec.name +
                                "' has negative capacity");
  }
  if (spec.end_time < spec.start_time) {
    return InvalidArgumentError("event '" + spec.name +
                                "' ends before it starts");
  }
  events_.push_back(std::move(spec));
  return static_cast<EventId>(events_.size() - 1);
}

const EventSpec& EventCatalog::Get(EventId id) const {
  FASEA_CHECK(id < events_.size());
  return events_[id];
}

StatusOr<EventId> EventCatalog::Find(const std::string& name) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].name == name) return static_cast<EventId>(i);
  }
  return NotFoundError("no event named '" + name + "'");
}

StatusOr<ProblemInstance> EventCatalog::BuildInstance(
    std::size_t dim) const {
  if (events_.empty()) {
    return FailedPreconditionError("catalog has no events");
  }
  std::vector<std::int64_t> capacities;
  std::vector<double> starts, ends;
  capacities.reserve(events_.size());
  for (const EventSpec& e : events_) {
    capacities.push_back(e.capacity);
    starts.push_back(e.start_time);
    ends.push_back(e.end_time);
  }
  return ProblemInstance::Create(std::move(capacities),
                                 ConflictGraph::FromIntervals(starts, ends),
                                 dim);
}

std::vector<std::string> EventCatalog::TagVocabulary() const {
  std::set<std::string> vocab;
  for (const EventSpec& e : events_) {
    vocab.insert(e.tags.begin(), e.tags.end());
  }
  return std::vector<std::string>(vocab.begin(), vocab.end());
}

std::vector<std::vector<int>> EventCatalog::EventTagIds() const {
  const std::vector<std::string> vocab = TagVocabulary();
  std::vector<std::vector<int>> ids(events_.size());
  for (std::size_t v = 0; v < events_.size(); ++v) {
    for (const std::string& tag : events_[v].tags) {
      const auto it = std::lower_bound(vocab.begin(), vocab.end(), tag);
      ids[v].push_back(static_cast<int>(it - vocab.begin()));
    }
    std::sort(ids[v].begin(), ids[v].end());
  }
  return ids;
}

}  // namespace fasea
