// ArrangementService: the embeddable front door of a FASEA deployment.
//
// Owns the policy, the live platform state (remaining capacities), and
// the interaction log, and enforces the online protocol of Definition 3:
// each arriving user gets an immediate, feasible, irrevocable proposal;
// the user's feedback must be submitted before the next user is served;
// accepted events consume capacity; every interaction is logged and
// learned from.
//
// Recovery paths: Checkpoint()/service construction from a checkpoint
// blob (binary sufficient statistics), or InteractionLog::Replay over a
// persisted log.
#ifndef FASEA_EBSN_ARRANGEMENT_SERVICE_H_
#define FASEA_EBSN_ARRANGEMENT_SERVICE_H_

#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/policy_factory.h"
#include "ebsn/interaction_log.h"
#include "model/platform_state.h"

namespace fasea {

class ArrangementService {
 public:
  /// `instance` must outlive the service. `seed` feeds the policy's
  /// exploration randomness.
  ArrangementService(const ProblemInstance* instance, PolicyKind kind,
                     const PolicyParams& params, std::uint64_t seed);

  /// As above, but restores the policy's learning state from a checkpoint
  /// blob produced by Checkpoint().
  static StatusOr<std::unique_ptr<ArrangementService>> FromCheckpoint(
      const ProblemInstance* instance, std::string_view blob,
      std::uint64_t seed);

  /// Serves the next arriving user: proposes a feasible arrangement for
  /// the revealed contexts. Fails if the previous user's feedback has not
  /// been submitted yet or the round is malformed.
  StatusOr<Arrangement> ServeUser(std::int64_t user_id,
                                  std::int64_t user_capacity,
                                  const ContextMatrix& contexts);

  /// Submits the served user's feedback (aligned with the returned
  /// arrangement): consumes capacities, trains the policy, logs the
  /// interaction.
  Status SubmitFeedback(const Feedback& feedback);

  /// Serializes the policy's learning state (see core/checkpoint.h).
  std::string Checkpoint() const;

  const PlatformState& state() const { return state_; }
  const InteractionLog& log() const { return log_; }
  const Policy& policy() const { return *policy_; }
  std::int64_t rounds_served() const { return t_; }
  bool AwaitingFeedback() const { return pending_; }

 private:
  ArrangementService(const ProblemInstance* instance, PolicyKind kind,
                     const PolicyParams& params);

  const ProblemInstance* instance_;
  PolicyKind kind_;
  PolicyParams params_;
  std::unique_ptr<Policy> policy_;
  PlatformState state_;
  InteractionLog log_;

  std::int64_t t_ = 0;
  bool pending_ = false;
  RoundContext pending_round_;
  Arrangement pending_arrangement_;
};

}  // namespace fasea

#endif  // FASEA_EBSN_ARRANGEMENT_SERVICE_H_
