// ArrangementService: the embeddable front door of a FASEA deployment.
//
// Owns the policy, the live platform state (remaining capacities), and
// the interaction log, and enforces the online protocol of Definition 3:
// each arriving user gets an immediate, feasible, irrevocable proposal;
// the user's feedback must be submitted before the next user is served;
// accepted events consume capacity; every interaction is logged and
// learned from.
//
// Durability: with a WAL attached (AttachWal), SubmitFeedback persists
// the interaction *before* mutating any state — write-ahead — so a crash
// never loses an applied round. A WAL append/fsync failure is handled
// per DurabilityPolicy: fail the round with a retryable kUnavailable
// (nothing changed, the caller may retry), or degrade to
// serve-without-logging while wal_degraded() surfaces the condition to
// health checks.
//
// Self-healing (DurabilityPolicy::breaker_enabled): the WAL append path
// runs behind a CircuitBreaker. Consecutive append failures trip it open
// — the service keeps serving, acknowledging rounds as non-durable
// without touching the dying disk — and after the cooldown a half-open
// probe reopens the writer (fresh segment, via the WalReopenFn passed to
// AttachWal) and appends through it. A successful probe closes the
// breaker and durability re-attaches by itself; a failed probe restarts
// the cooldown. The whole cycle is observable: `fasea.breaker.state`
// gauge, `fasea.service.nondurable_rounds` / `.wal_reopens` counters,
// and Health().
//
// Overload protection: ConfigureOverload bounds ServeUser admission — a
// token-bucket rate limit and an in-flight cap, both shedding with a
// retryable kResourceExhausted *before* the round mutex is touched, so
// overload queues at the client, not inside the server. ServeUser and
// SubmitFeedback also accept a Deadline; a request whose deadline passes
// while waiting for the pipeline fails with kDeadlineExceeded (not
// retryable — the caller has moved on). EnterLameDuck() starts a drain:
// new rounds are rejected while the pending round's feedback is still
// accepted.
//
// Numerical resilience: if the policy's periodic Cholesky
// refactorization of Y ever fails (drift or corruption made Y lose
// positive-definiteness), ServeUser falls back to a stateless greedy
// proposal — feasibility is still guaranteed, learning quality is not —
// instead of crashing; stateless_fallbacks() counts such rounds.
//
// Recovery paths: Checkpoint() + WAL tail via RecoverArrangementService
// (ebsn/recovery_manager.h), checkpoint-only via FromCheckpoint, or
// InteractionLog::Replay over a persisted CSV log. After recovery the
// WAL may be re-attached (AttachWal allows re-attach whenever the
// current writer is broken or the service is degraded).
//
// Thread safety: ServeUser, SubmitFeedback, RestoreInteraction,
// Checkpoint, AttachWal, Health, and the health accessors are safe to
// call from any number of threads — one mutex serializes the round
// pipeline (the protocol itself is sequential: one pending arrangement
// at a time, so coarse locking costs no parallelism). A ServeUser racing
// a round that is mid-flight fails with the same retryable
// FailedPrecondition a single-threaded caller gets for an out-of-order
// call; closed-loop drivers (bench/load_service.cc) simply retry. The
// reference accessors state()/log()/policy() hand out unguarded views —
// take them only while no other thread is mutating (tests, recovery
// tooling). ConfigureOverload must be called before serving starts.
//
// Batched serving (ConfigureBatching): the snapshot-read alternative to
// the sequential protocol for multi-tenant deployments where many
// independent users arrive concurrently. ServeUserBatched coalesces
// arrivals within a small wait window into one batch, scores the whole
// batch against an immutable learner snapshot (no round mutex held),
// and resolves capacity in ticket (arrival) order during one short
// critical section over a reservation view of the platform state.
// Feedback is per-ticket (SubmitBatchedFeedback), may arrive in any
// order across tickets, and each commit publishes a fresh snapshot —
// scoring never blocks on learning, learning never blocks on scoring.
// The sequential entry points are rejected while batching is enabled
// (and vice versa the batched ones before), so a deployment runs
// exactly one protocol and the sequential path stays bit-identical to a
// build without this feature.
#ifndef FASEA_EBSN_ARRANGEMENT_SERVICE_H_
#define FASEA_EBSN_ARRANGEMENT_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/admission.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/rate_limiter.h"
#include "core/checkpoint.h"
#include "core/learner_snapshot.h"
#include "core/policy_factory.h"
#include "ebsn/interaction_log.h"
#include "io/wal.h"
#include "model/platform_state.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "oracle/greedy.h"

namespace fasea {

/// What SubmitFeedback does when the write-ahead guarantee cannot be met.
struct DurabilityPolicy {
  enum class OnWalError {
    /// Fail the round with kUnavailable and change nothing; the feedback
    /// may be resubmitted once the operator restores the log (the WAL
    /// writer stays broken until then).
    kFailRound,
    /// Stop logging, keep serving, and raise the wal_degraded() health
    /// flag — availability over durability.
    kDegrade,
  };
  OnWalError on_wal_error = OnWalError::kFailRound;

  /// Runs the append path behind a circuit breaker (see the class
  /// comment). on_wal_error then governs only closed/half-open failures:
  /// kFailRound fails those rounds retryably, kDegrade acknowledges them
  /// non-durably; once the breaker is open every round is acknowledged
  /// non-durably without touching the disk, and — unlike the plain
  /// kDegrade flag — the condition heals itself when a probe succeeds.
  bool breaker_enabled = false;
  CircuitBreakerOptions breaker;
};

/// Reopens the WAL after the writer broke (typically
/// `[=] { return WalWriter::Open(env, dir, options); }` — a fresh
/// segment; sealed frames are never rewritten).
using WalReopenFn =
    std::function<StatusOr<std::unique_ptr<WalWriter>>()>;

/// ServeUser admission bounds. Zero means "unlimited" for each knob.
struct OverloadOptions {
  /// ServeUser calls allowed past admission at once (including those
  /// waiting on the round mutex); excess calls shed kResourceExhausted.
  int max_inflight = 0;
  /// Sustained ServeUser admission rate (token bucket), and its burst.
  double max_rps = 0.0;
  double burst = 0.0;  // Defaults to max_rps when 0.
};

/// Cross-user batching knobs for ServeUserBatched.
struct BatchingOptions {
  /// Largest number of arrivals resolved as one batch.
  int max_batch = 8;
  /// How long an arrival may hold the batch open waiting for companions.
  /// A lone arrival (nothing else admitted) never waits.
  std::int64_t max_wait_us = 50;
  /// Batched rounds allowed to be awaiting feedback at once; 0 means
  /// unlimited. Excess arrivals shed kResourceExhausted.
  int max_pending = 0;
};

/// What ServeUserBatched returns: the proposal plus the ids tying the
/// later SubmitBatchedFeedback call and the telemetry to this round.
struct BatchedRound {
  /// Arrival-order id assigned at admission; identifies the round to
  /// SubmitBatchedFeedback and seeds the policy's per-user randomness.
  std::int64_t ticket = 0;
  /// Epoch (learner observation count) of the snapshot that scored the
  /// proposal — the staleness bound of its estimates.
  std::int64_t epoch = 0;
  Arrangement arrangement;
};

/// Coarse service condition, exported as the `fasea.service.health_state`
/// gauge (numeric values below) for dashboards and `fasea_cli stats`.
enum class HealthState {
  kHealthy = 0,   // Serving, durable (when a WAL is attached).
  kDegraded = 1,  // Serving, but non-durably or via the stateless
                  // fallback — investigate.
  kLameDuck = 2,  // Draining: no new rounds, pending feedback accepted.
};

std::string_view HealthStateName(HealthState state);

/// One consistent snapshot of everything a health check wants to know.
struct HealthSnapshot {
  HealthState state = HealthState::kHealthy;
  bool wal_attached = false;
  bool wal_degraded = false;
  bool learner_healthy = true;
  bool breaker_enabled = false;
  CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
  std::int64_t rounds_served = 0;
  std::int64_t rounds_shed = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t nondurable_rounds = 0;
  std::int64_t wal_reopens = 0;
  std::int64_t stateless_fallbacks = 0;
};

/// One peer-shard observation for delta-merge: the arranged event's
/// context row and its 0/1 reward (see AbsorbPeerObservations).
struct PeerObservation {
  std::vector<double> context;
  double reward = 0.0;
};

/// Per-round outcome detail for SubmitFeedback callers that track
/// durability (the chaos harness keeps a ledger of durable acks).
struct FeedbackResult {
  std::int64_t round = 0;
  /// True when the interaction reached the WAL under the writer's fsync
  /// policy. False when no WAL is attached, the service is degraded, or
  /// the breaker swallowed the append.
  bool durable = false;
};

class ArrangementService {
 public:
  /// `instance` must outlive the service. `seed` feeds the policy's
  /// exploration randomness.
  ArrangementService(const ProblemInstance* instance, PolicyKind kind,
                     const PolicyParams& params, std::uint64_t seed);

  /// As above, but restores the policy's learning state from a checkpoint
  /// blob produced by Checkpoint().
  static StatusOr<std::unique_ptr<ArrangementService>> FromCheckpoint(
      const ProblemInstance* instance, std::string_view blob,
      std::uint64_t seed);

  /// Attaches a write-ahead log: every subsequent SubmitFeedback encodes
  /// the interaction and appends it (with the writer's fsync policy)
  /// before any state changes. Re-attach is allowed when the current
  /// writer is broken or the service is WAL-degraded (post-recovery
  /// re-arm); it clears the degraded flag and rebuilds the breaker.
  /// `reopen` is required for breaker self-healing — without it a
  /// half-open probe over a broken writer fails and the breaker stays
  /// open until re-attach.
  void AttachWal(std::unique_ptr<WalWriter> wal,
                 DurabilityPolicy policy = {}, WalReopenFn reopen = {});

  /// Attaches a decision log (obs/decision_log.h): every subsequent
  /// ServeUser appends one record — round, user, context hash, proposed
  /// arrangement, the behavior policy's propensity for it, policy id, θ̂
  /// version, txn and trace ids — beside the feedback WAL. Logging is
  /// best-effort observability: an append failure counts
  /// fasea.decision.append_failures and serving continues.
  void AttachDecisionLog(std::unique_ptr<DecisionLogWriter> log);

  /// The transaction/trace ids the NEXT ServeUser stamps on its spans and
  /// decision record. The sharded coordinator calls this so per-shard
  /// records and spans carry the coordinator's ids; without it the
  /// unsharded service defaults to txn = t and trace = Mix64(t). Consumed
  /// by the next ServeUser (success or failure).
  void SetNextRoundTrace(std::uint64_t txn, std::uint64_t trace_id);

  /// Installs admission bounds for ServeUser. Call before serving
  /// starts (not thread-safe against in-flight requests).
  void ConfigureOverload(const OverloadOptions& options);

  /// Switches the service to batched serving (see the class comment):
  /// ServeUserBatched/SubmitBatchedFeedback become the entry points and
  /// the sequential ServeUser/SubmitFeedback are rejected. Call before
  /// serving starts, on a ridge-backed policy, with no decision log
  /// attached (decision propensities are defined against live state,
  /// which batched proposals never observe). Sticky.
  void ConfigureBatching(const BatchingOptions& options);
  bool batching_enabled() const {
    return batching_enabled_.load(std::memory_order_acquire);
  }

  /// Batched-mode ServeUser: joins the admission queue, gets an
  /// arrival-order ticket, is scored against the current learner
  /// snapshot together with every other arrival coalesced into its
  /// batch, and has its capacity resolved in ticket order against the
  /// reservation view of the platform state (so two concurrent batched
  /// users can never be promised the same last seat). Blocks up to
  /// BatchingOptions::max_wait_us waiting for companions; a lone
  /// arrival resolves immediately. Sheds and deadline semantics match
  /// ServeUser; an expired deadline fails before enqueueing, and a
  /// queued-but-unclaimed waiter whose deadline passes withdraws with
  /// kDeadlineExceeded.
  StatusOr<BatchedRound> ServeUserBatched(std::int64_t user_id,
                                          std::int64_t user_capacity,
                                          const ContextMatrix& contexts,
                                          const Deadline& deadline = {});

  /// Feedback for a batched round, by ticket; order across outstanding
  /// tickets is free. Runs the same write-ahead / consume / learn / log
  /// pipeline as SubmitFeedback (the committed record gets the next
  /// round id, so WAL replay order is commit order), releases the
  /// round's rejected-seat reservations, and publishes a fresh learner
  /// snapshot for subsequent batches. On kUnavailable nothing changed
  /// and the same call may be retried.
  Status SubmitBatchedFeedback(std::int64_t ticket,
                               const Feedback& feedback,
                               FeedbackResult* result = nullptr,
                               const Deadline& deadline = {});

  /// The snapshot batched scoring currently reads (nullptr before
  /// ConfigureBatching). Epochs are monotone across feedback commits.
  std::shared_ptr<const LearnerSnapshot> CurrentSnapshot() const;

  /// Batched rounds proposed but not yet fed back.
  std::int64_t pending_batched_rounds() const {
    return pending_batched_count_.load(std::memory_order_relaxed);
  }

  /// Begins draining: every later ServeUser is rejected (kUnavailable)
  /// while SubmitFeedback still completes the pending round. Sticky.
  void EnterLameDuck();

  /// Serves the next arriving user: proposes a feasible arrangement for
  /// the revealed contexts. Fails if the previous user's feedback has not
  /// been submitted yet or the round is malformed; sheds
  /// kResourceExhausted when admission bounds are hit and
  /// kDeadlineExceeded when `deadline` passes before the pipeline is
  /// acquired.
  StatusOr<Arrangement> ServeUser(std::int64_t user_id,
                                  std::int64_t user_capacity,
                                  const ContextMatrix& contexts,
                                  const Deadline& deadline = {});

  /// As above with a Remark 2 availability mask: only events with
  /// available[v] != 0 may be arranged this round (empty = all). The
  /// sharded serving layer uses this to exclude events that conflict
  /// with portions already arranged on other shards.
  StatusOr<Arrangement> ServeUser(std::int64_t user_id,
                                  std::int64_t user_capacity,
                                  const ContextMatrix& contexts,
                                  std::vector<std::uint8_t> available,
                                  const Deadline& deadline = {});

  /// Rolls back the round opened by the last ServeUser before any
  /// feedback was applied: the pending arrangement is discarded and the
  /// round counter returns to its pre-serve value. Nothing about the
  /// round reached the WAL (SubmitFeedback is the write-ahead point), so
  /// the rollback is purely in-memory. The two-phase cross-shard
  /// protocol uses this when a reservation cannot be obtained. Fails
  /// kFailedPrecondition when no round is pending.
  Status AbortPendingRound();

  /// Submits the served user's feedback (aligned with the returned
  /// arrangement): logs to the WAL (if attached), consumes capacities,
  /// trains the policy, records the interaction. On kUnavailable nothing
  /// has changed and the same feedback may be submitted again. `result`
  /// (optional) reports the round id and whether the ack is durable.
  Status SubmitFeedback(const Feedback& feedback,
                        FeedbackResult* result = nullptr,
                        const Deadline& deadline = {});

  /// Folds a peer shard's observation delta into the learner (ridge
  /// state is additive, so absorbing (x, r) pairs out of round order is
  /// exact) and then runs an exact Cholesky refactorization restart —
  /// the repair for the factor drift a merged batch of rank-1 updates
  /// can accumulate. Thread-safe against the round pipeline. No effect
  /// on capacities, the log, or the round counter; absorbed
  /// observations are soft state that crash recovery does not restore
  /// (the next merge re-syncs). kFailedPrecondition for policies
  /// without ridge state.
  Status AbsorbPeerObservations(const std::vector<PeerObservation>& delta);

  /// Serializes the policy's learning state (see core/checkpoint.h).
  std::string Checkpoint() const;

  /// Recovery hook: re-applies one previously logged interaction —
  /// capacity consumption, the in-memory log, and the round counter;
  /// policy learning only when `learn` is true (records already covered
  /// by a checkpoint were learned before it was cut). Records must
  /// arrive in strictly increasing `t` order (gaps are legal: rounds
  /// served non-durably leave none). On failure nothing has changed.
  /// Used by RecoverArrangementService.
  Status RestoreInteraction(const InteractionRecord& record, bool learn);

  /// Rebalance hook: folds a migrated event's consumed-so-far capacity
  /// into the state without a log record or a round-counter step — the
  /// consumption happened on another shard under a previous ownership
  /// epoch, and its per-round history stays in that shard's WAL. Fails
  /// (nothing changed) when the event is unknown, `consumed` is
  /// negative, or it exceeds the event's remaining capacity.
  Status RestoreMigratedCapacity(EventId event, std::int64_t consumed);

  /// Unguarded views — require external quiescence (see the thread-safety
  /// note above).
  const PlatformState& state() const { return state_; }
  const InteractionLog& log() const { return log_; }
  const Policy& policy() const { return *policy_; }
  /// Mutable policy access — for recovery tooling and fault-injection
  /// tests; production serving goes through ServeUser/SubmitFeedback.
  Policy* mutable_policy() { return policy_.get(); }
  /// The attached decision log (nullptr when none); mutable access for
  /// Sync/Close at shutdown.
  DecisionLogWriter* mutable_decision_log() { return decision_log_.get(); }
  std::int64_t rounds_served() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return t_;
  }
  bool AwaitingFeedback() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return pending_;
  }

  // --- Health -----------------------------------------------------------

  /// Consistent snapshot of the service's condition.
  HealthSnapshot Health() const;

  bool wal_attached() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return wal_ != nullptr;
  }
  /// True once a WAL failure switched the service to serve-without-
  /// logging (DurabilityPolicy::kDegrade). Rounds served past this point
  /// are not recoverable from the WAL.
  bool wal_degraded() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return wal_degraded_;
  }
  std::int64_t wal_append_failures() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return wal_append_failures_;
  }
  /// Rounds proposed by the stateless fallback because the learner's
  /// numerical state went unhealthy.
  std::int64_t stateless_fallbacks() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return stateless_fallbacks_;
  }
  /// Rounds acknowledged without reaching the WAL (breaker open or a
  /// swallowed append failure under kDegrade + breaker).
  std::int64_t nondurable_rounds() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return nondurable_rounds_;
  }
  /// Times a half-open probe reopened the broken writer.
  std::int64_t wal_reopens() const {
    std::lock_guard<std::timed_mutex> lock(mu_);
    return wal_reopens_;
  }
  std::int64_t rounds_shed() const {
    return rounds_shed_.load(std::memory_order_relaxed);
  }
  std::int64_t deadline_exceeded() const {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }
  bool lame_duck() const {
    return lame_duck_.load(std::memory_order_relaxed);
  }
  /// The append-path breaker, or nullptr when breaker_enabled is off.
  /// Stable once AttachWal returns; for tests and stats tooling.
  const CircuitBreaker* breaker() const { return breaker_.get(); }

 private:
  ArrangementService(const ProblemInstance* instance, PolicyKind kind,
                     const PolicyParams& params);

  /// One queued ServeUserBatched call (defined in the .cc; lives on the
  /// waiting thread's stack, so pointers in batch_queue_ stay valid
  /// until `done`).
  struct BatchWaiter;
  /// A batched round between proposal and feedback.
  struct PendingBatched {
    RoundContext round;
    Arrangement arrangement;
    std::int64_t epoch = 0;
  };

  /// Greedy feasible arrangement that consults no learned state: events
  /// in id order, skipping unavailable/full/conflicting ones, up to the
  /// user capacity.
  Arrangement StatelessProposal(const RoundContext& round) const;
  /// As above against an explicit capacity view (the batched path passes
  /// its reservation state).
  Arrangement StatelessProposal(const RoundContext& round,
                                const PlatformState& state) const;

  /// Leader-side batch resolution: snapshot scoring with no lock, then
  /// one short mu_ critical section — entered in `seq` (claim) order —
  /// for ticket-order capacity resolution and pending registration.
  /// Fills each waiter's result.
  void ProcessBatch(const std::vector<BatchWaiter*>& batch,
                    std::int64_t seq);
  /// Re-captures the learner state and swaps the published snapshot.
  /// No-op until batching is enabled.
  void PublishSnapshotLocked();

  /// The write-ahead step shared by both feedback paths: appends
  /// `encoded` per the durability policy (plain / degrade / breaker).
  /// A non-OK return means the round must fail retryably with nothing
  /// applied; `*durable` reports whether the bytes reached the WAL.
  Status WalWriteAheadLocked(const std::string& encoded, bool* durable);
  /// Reopens the writer if it is broken (via reopen_fn_), then appends.
  Status WalAppendLocked(std::string_view encoded);
  bool LearnerHealthyLocked() const;
  HealthState HealthStateLocked() const;
  void UpdateHealthGaugeLocked();

  /// Serializes the round pipeline and every mutable member below; the
  /// telemetry pointers are lock-free (the obs primitives are atomic).
  /// Timed so deadline-carrying requests can bound their wait.
  mutable std::timed_mutex mu_;

  const ProblemInstance* instance_;
  PolicyKind kind_;
  PolicyParams params_;
  std::unique_ptr<Policy> policy_;
  PlatformState state_;
  InteractionLog log_;

  std::unique_ptr<WalWriter> wal_;
  DurabilityPolicy durability_;
  WalReopenFn reopen_fn_;
  std::unique_ptr<CircuitBreaker> breaker_;
  bool wal_degraded_ = false;
  std::int64_t wal_append_failures_ = 0;
  std::int64_t stateless_fallbacks_ = 0;
  std::int64_t nondurable_rounds_ = 0;
  std::int64_t wal_reopens_ = 0;

  // Admission control runs before the round mutex, so its state is
  // atomic rather than mu_-guarded.
  OverloadOptions overload_;
  std::unique_ptr<RateLimiter> rate_limiter_;
  InflightLimiter inflight_;
  std::atomic<std::int64_t> rounds_shed_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<bool> lame_duck_{false};

  // --- Batched serving --------------------------------------------------
  std::atomic<bool> batching_enabled_{false};
  BatchingOptions batching_;
  // Seeds the per-ticket RandomOracle streams of eGreedy exploration
  // rows; derived from the service seed at construction.
  std::uint64_t batch_salt_ = 0;
  // Admission queue: guards the waiter deque, claim/done flags, and the
  // batch sequence counter. Leaf lock — never held together with mu_ or
  // snapshot_mu_.
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<BatchWaiter*> batch_queue_;
  std::int64_t next_ticket_ = 0;
  // Claim-order sequencing of concurrently scoring batches: each claim
  // takes the next seq (batch_mu_-guarded), and resolution waits its
  // turn (mu_-guarded, resolve_cv_), so capacity is always consumed in
  // global arrival order even though scoring overlaps.
  std::int64_t next_batch_seq_ = 0;
  std::int64_t resolve_turn_ = 0;
  std::condition_variable_any resolve_cv_;
  // Batched rounds between proposal and feedback, by ticket
  // (mu_-guarded); the count mirrors the map size for lock-free
  // admission checks.
  std::unordered_map<std::int64_t, PendingBatched> batched_pending_;
  std::atomic<std::int64_t> pending_batched_count_{0};
  // state_ minus outstanding batched reservations: batch resolution
  // consumes from this view at propose time so overlapping batches
  // cannot oversell a seat; feedback releases rejected seats back
  // (mu_-guarded). Equals state_ whenever no round is outstanding.
  PlatformState effective_state_;
  GreedyOracle batch_oracle_;
  // The published immutable learner snapshot: swapped on every feedback
  // commit under snapshot_mu_ (held only for the pointer swap), read by
  // scoring with no round-mutex involvement.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const LearnerSnapshot> snapshot_;

  std::unique_ptr<DecisionLogWriter> decision_log_;
  // Ids stamped on the next round's spans and decision record (0 = use
  // the unsharded defaults txn = t, trace = Mix64(t)).
  std::uint64_t next_txn_override_ = 0;
  std::uint64_t next_trace_override_ = 0;

  std::int64_t t_ = 0;
  bool pending_ = false;
  RoundContext pending_round_;
  Arrangement pending_arrangement_;
  std::uint64_t pending_txn_ = 0;
  std::uint64_t pending_trace_id_ = 0;

  // --- Telemetry (process-wide registry; see DESIGN.md §8) --------------
  Histogram* serve_latency_ =
      Metrics()->GetHistogram("fasea.serve.latency_ns");
  Histogram* feedback_latency_ =
      Metrics()->GetHistogram("fasea.feedback.latency_ns");
  Counter* serve_rounds_metric_ =
      Metrics()->GetCounter("fasea.serve.rounds");
  Counter* serve_errors_metric_ =
      Metrics()->GetCounter("fasea.serve.errors");
  Counter* proposed_events_metric_ =
      Metrics()->GetCounter("fasea.serve.proposed_events");
  Counter* aborted_rounds_metric_ =
      Metrics()->GetCounter("fasea.serve.aborted_rounds");
  Counter* fallbacks_metric_ =
      Metrics()->GetCounter("fasea.serve.stateless_fallbacks");
  Counter* feedback_rounds_metric_ =
      Metrics()->GetCounter("fasea.feedback.rounds");
  Counter* feedback_errors_metric_ =
      Metrics()->GetCounter("fasea.feedback.errors");
  Counter* accepted_events_metric_ =
      Metrics()->GetCounter("fasea.feedback.accepted_events");
  Counter* retryable_errors_metric_ =
      Metrics()->GetCounter("fasea.feedback.retryable_errors");
  Counter* degraded_entries_metric_ =
      Metrics()->GetCounter("fasea.service.degraded_entries");
  Counter* shed_metric_ = Metrics()->GetCounter("fasea.service.shed");
  Counter* deadline_exceeded_metric_ =
      Metrics()->GetCounter("fasea.service.deadline_exceeded");
  Counter* nondurable_metric_ =
      Metrics()->GetCounter("fasea.service.nondurable_rounds");
  Counter* wal_reopens_metric_ =
      Metrics()->GetCounter("fasea.service.wal_reopens");
  Gauge* wal_degraded_gauge_ =
      Metrics()->GetGauge("fasea.service.wal_degraded");
  Gauge* learner_healthy_gauge_ =
      Metrics()->GetGauge("fasea.service.learner_healthy");
  Gauge* rounds_served_gauge_ =
      Metrics()->GetGauge("fasea.service.rounds_served");
  Gauge* health_gauge_ =
      Metrics()->GetGauge("fasea.service.health_state");
  Histogram* batch_size_hist_ =
      Metrics()->GetHistogram("fasea.batch.size");
  Histogram* batch_wait_hist_ =
      Metrics()->GetHistogram("fasea.batch.wait_ns");
  Gauge* snapshot_epoch_gauge_ =
      Metrics()->GetGauge("fasea.snapshot.epoch");
};

}  // namespace fasea

#endif  // FASEA_EBSN_ARRANGEMENT_SERVICE_H_
