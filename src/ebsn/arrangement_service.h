// ArrangementService: the embeddable front door of a FASEA deployment.
//
// Owns the policy, the live platform state (remaining capacities), and
// the interaction log, and enforces the online protocol of Definition 3:
// each arriving user gets an immediate, feasible, irrevocable proposal;
// the user's feedback must be submitted before the next user is served;
// accepted events consume capacity; every interaction is logged and
// learned from.
//
// Durability: with a WAL attached (AttachWal), SubmitFeedback persists
// the interaction *before* mutating any state — write-ahead — so a crash
// never loses an applied round. A WAL append/fsync failure is handled
// per DurabilityPolicy: fail the round with a retryable kUnavailable
// (nothing changed, the caller may retry), or degrade to
// serve-without-logging while wal_degraded() surfaces the condition to
// health checks.
//
// Numerical resilience: if the policy's periodic Cholesky
// refactorization of Y ever fails (drift or corruption made Y lose
// positive-definiteness), ServeUser falls back to a stateless greedy
// proposal — feasibility is still guaranteed, learning quality is not —
// instead of crashing; stateless_fallbacks() counts such rounds.
//
// Recovery paths: Checkpoint() + WAL tail via RecoverArrangementService
// (ebsn/recovery_manager.h), checkpoint-only via FromCheckpoint, or
// InteractionLog::Replay over a persisted CSV log.
//
// Thread safety: ServeUser, SubmitFeedback, RestoreInteraction,
// Checkpoint, AttachWal, and the health accessors are safe to call from
// any number of threads — one mutex serializes the round pipeline (the
// protocol itself is sequential: one pending arrangement at a time, so
// coarse locking costs no parallelism). A ServeUser racing a round that
// is mid-flight fails with the same retryable FailedPrecondition a
// single-threaded caller gets for an out-of-order call; closed-loop
// drivers (bench/load_service.cc) simply retry. The reference accessors
// state()/log()/policy() hand out unguarded views — take them only while
// no other thread is mutating (tests, recovery tooling).
#ifndef FASEA_EBSN_ARRANGEMENT_SERVICE_H_
#define FASEA_EBSN_ARRANGEMENT_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>

#include "core/checkpoint.h"
#include "core/policy_factory.h"
#include "ebsn/interaction_log.h"
#include "io/wal.h"
#include "model/platform_state.h"
#include "obs/metrics.h"

namespace fasea {

/// What SubmitFeedback does when the write-ahead guarantee cannot be met.
struct DurabilityPolicy {
  enum class OnWalError {
    /// Fail the round with kUnavailable and change nothing; the feedback
    /// may be resubmitted once the operator restores the log (the WAL
    /// writer stays broken until then).
    kFailRound,
    /// Stop logging, keep serving, and raise the wal_degraded() health
    /// flag — availability over durability.
    kDegrade,
  };
  OnWalError on_wal_error = OnWalError::kFailRound;
};

class ArrangementService {
 public:
  /// `instance` must outlive the service. `seed` feeds the policy's
  /// exploration randomness.
  ArrangementService(const ProblemInstance* instance, PolicyKind kind,
                     const PolicyParams& params, std::uint64_t seed);

  /// As above, but restores the policy's learning state from a checkpoint
  /// blob produced by Checkpoint().
  static StatusOr<std::unique_ptr<ArrangementService>> FromCheckpoint(
      const ProblemInstance* instance, std::string_view blob,
      std::uint64_t seed);

  /// Attaches a write-ahead log: every subsequent SubmitFeedback encodes
  /// the interaction and appends it (with the writer's fsync policy)
  /// before any state changes. May be called at most once.
  void AttachWal(std::unique_ptr<WalWriter> wal,
                 DurabilityPolicy policy = {});

  /// Serves the next arriving user: proposes a feasible arrangement for
  /// the revealed contexts. Fails if the previous user's feedback has not
  /// been submitted yet or the round is malformed.
  StatusOr<Arrangement> ServeUser(std::int64_t user_id,
                                  std::int64_t user_capacity,
                                  const ContextMatrix& contexts);

  /// Submits the served user's feedback (aligned with the returned
  /// arrangement): logs to the WAL (if attached), consumes capacities,
  /// trains the policy, records the interaction. On kUnavailable nothing
  /// has changed and the same feedback may be submitted again.
  Status SubmitFeedback(const Feedback& feedback);

  /// Serializes the policy's learning state (see core/checkpoint.h).
  std::string Checkpoint() const;

  /// Recovery hook: re-applies one previously logged interaction —
  /// capacity consumption, the in-memory log, and the round counter;
  /// policy learning only when `learn` is true (records already covered
  /// by a checkpoint were learned before it was cut). Records must
  /// arrive in strictly increasing `t` order. On failure nothing has
  /// changed. Used by RecoverArrangementService.
  Status RestoreInteraction(const InteractionRecord& record, bool learn);

  /// Unguarded views — require external quiescence (see the thread-safety
  /// note above).
  const PlatformState& state() const { return state_; }
  const InteractionLog& log() const { return log_; }
  const Policy& policy() const { return *policy_; }
  /// Mutable policy access — for recovery tooling and fault-injection
  /// tests; production serving goes through ServeUser/SubmitFeedback.
  Policy* mutable_policy() { return policy_.get(); }
  std::int64_t rounds_served() const {
    std::lock_guard<std::mutex> lock(mu_);
    return t_;
  }
  bool AwaitingFeedback() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

  // --- Health -----------------------------------------------------------

  bool wal_attached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wal_ != nullptr;
  }
  /// True once a WAL failure switched the service to serve-without-
  /// logging (DurabilityPolicy::kDegrade). Rounds served past this point
  /// are not recoverable from the WAL.
  bool wal_degraded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wal_degraded_;
  }
  std::int64_t wal_append_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wal_append_failures_;
  }
  /// Rounds proposed by the stateless fallback because the learner's
  /// numerical state went unhealthy.
  std::int64_t stateless_fallbacks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stateless_fallbacks_;
  }

 private:
  ArrangementService(const ProblemInstance* instance, PolicyKind kind,
                     const PolicyParams& params);

  /// Greedy feasible arrangement that consults no learned state: events
  /// in id order, skipping unavailable/full/conflicting ones, up to the
  /// user capacity.
  Arrangement StatelessProposal(const RoundContext& round) const;

  /// Serializes the round pipeline and every mutable member below; the
  /// telemetry pointers are lock-free (the obs primitives are atomic).
  mutable std::mutex mu_;

  const ProblemInstance* instance_;
  PolicyKind kind_;
  PolicyParams params_;
  std::unique_ptr<Policy> policy_;
  PlatformState state_;
  InteractionLog log_;

  std::unique_ptr<WalWriter> wal_;
  DurabilityPolicy durability_;
  bool wal_degraded_ = false;
  std::int64_t wal_append_failures_ = 0;
  std::int64_t stateless_fallbacks_ = 0;

  std::int64_t t_ = 0;
  bool pending_ = false;
  RoundContext pending_round_;
  Arrangement pending_arrangement_;

  // --- Telemetry (process-wide registry; see DESIGN.md §8) --------------
  Histogram* serve_latency_ =
      Metrics()->GetHistogram("fasea.serve.latency_ns");
  Histogram* feedback_latency_ =
      Metrics()->GetHistogram("fasea.feedback.latency_ns");
  Counter* serve_rounds_metric_ =
      Metrics()->GetCounter("fasea.serve.rounds");
  Counter* serve_errors_metric_ =
      Metrics()->GetCounter("fasea.serve.errors");
  Counter* proposed_events_metric_ =
      Metrics()->GetCounter("fasea.serve.proposed_events");
  Counter* fallbacks_metric_ =
      Metrics()->GetCounter("fasea.serve.stateless_fallbacks");
  Counter* feedback_rounds_metric_ =
      Metrics()->GetCounter("fasea.feedback.rounds");
  Counter* feedback_errors_metric_ =
      Metrics()->GetCounter("fasea.feedback.errors");
  Counter* accepted_events_metric_ =
      Metrics()->GetCounter("fasea.feedback.accepted_events");
  Counter* retryable_errors_metric_ =
      Metrics()->GetCounter("fasea.feedback.retryable_errors");
  Counter* degraded_entries_metric_ =
      Metrics()->GetCounter("fasea.service.degraded_entries");
  Gauge* wal_degraded_gauge_ =
      Metrics()->GetGauge("fasea.service.wal_degraded");
  Gauge* learner_healthy_gauge_ =
      Metrics()->GetGauge("fasea.service.learner_healthy");
  Gauge* rounds_served_gauge_ =
      Metrics()->GetGauge("fasea.service.rounds_served");
};

}  // namespace fasea

#endif  // FASEA_EBSN_ARRANGEMENT_SERVICE_H_
