// RecoveryManager: rebuilds an ArrangementService after a crash from the
// two durable artifacts a deployment keeps — the latest policy checkpoint
// blob (optional) and the write-ahead log.
//
// Invariants enforced:
//   1. The WAL tail is truncated at the first torn frame (a crash mid-
//      append loses at most the unacknowledged record); mid-file
//      corruption is fatal (kDataLoss) or skipped-and-counted per
//      CorruptFramePolicy.
//   2. Records whose observations are already inside the checkpoint
//      restore only platform state (capacities), the in-memory log, and
//      the round counter; records past the checkpoint additionally
//      replay policy learning. The boundary must fall exactly on a round
//      boundary, and the WAL must reach the checkpoint's horizon —
//      anything else is kDataLoss.
//   3. After replay the policy's observation count is verified against
//      checkpoint header + replayed records; a mismatch is kDataLoss.
//
// The result is bit-identical to a service that ran uninterrupted
// through the last durable record: same (Y, b), same rounds_served(),
// same remaining capacities, same log.
#ifndef FASEA_EBSN_RECOVERY_MANAGER_H_
#define FASEA_EBSN_RECOVERY_MANAGER_H_

#include <memory>
#include <string>

#include "ebsn/arrangement_service.h"
#include "io/wal.h"

namespace fasea {

struct RecoveryOptions {
  /// How ScanWal treats corrupt frames that are not the torn tail.
  CorruptFramePolicy corrupt_frames = CorruptFramePolicy::kFail;
  /// Policy to construct when no checkpoint blob is supplied (with a
  /// checkpoint, kind/params come from the blob).
  PolicyKind kind = PolicyKind::kUcb;
  PolicyParams params;
  /// Exploration seed of the recovered policy (the RNG position is not
  /// part of the durable state; see core/checkpoint.h).
  std::uint64_t seed = 0;
};

/// What recovery did — returned on success, and printable for operators
/// (`fasea_cli recover`).
struct RecoveryReport {
  bool had_checkpoint = false;
  std::int64_t checkpoint_observations = 0;

  std::int64_t segments_scanned = 0;
  std::int64_t records_scanned = 0;   // Frames that decoded successfully.
  std::int64_t bytes_truncated = 0;   // Torn tail dropped by ScanWal.
  std::int64_t corrupt_frames_skipped = 0;  // Only under kSkip.
  /// Frames repeating the previous frame's round: an append whose fsync
  /// failed persisted the frame anyway, the acknowledgement was withheld,
  /// and the retry wrote the round again. Replaying once is exact.
  std::int64_t duplicate_frames_skipped = 0;

  std::int64_t records_restored = 0;  // Pre-checkpoint: state/log only.
  std::int64_t records_replayed = 0;  // Post-checkpoint: learned too.
  std::int64_t observations_replayed = 0;
  std::int64_t rounds_served = 0;     // Final round counter.

  std::string ToString() const;
};

struct RecoveredService {
  std::unique_ptr<ArrangementService> service;
  RecoveryReport report;
};

/// Restores a service from `checkpoint_blob` (empty → fresh policy from
/// `options`) plus the WAL in `wal_dir`. A missing/empty WAL is fine for
/// a fresh or zero-observation checkpoint; a checkpoint with learned
/// state and no WAL covering it is kDataLoss (invariant 2 — the platform
/// state behind those observations is unrecoverable).
/// The recovered service has no WAL attached; callers that
/// want to continue logging attach a fresh writer (WalWriter::Open picks
/// a new segment, never rewriting recovered frames).
StatusOr<RecoveredService> RecoverArrangementService(
    const ProblemInstance* instance, Env* env, const std::string& wal_dir,
    std::string_view checkpoint_blob, const RecoveryOptions& options = {});

/// Instance-free dry run: scans the WAL, decodes every frame, and fills
/// the scan/boundary fields of the report without constructing a service
/// (records_replayed etc. are computed as a full recovery would). Backs
/// the `fasea_cli recover` subcommand.
StatusOr<RecoveryReport> InspectWal(
    Env* env, const std::string& wal_dir, std::string_view checkpoint_blob,
    CorruptFramePolicy policy = CorruptFramePolicy::kFail);

}  // namespace fasea

#endif  // FASEA_EBSN_RECOVERY_MANAGER_H_
