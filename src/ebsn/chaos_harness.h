// Deterministic chaos harness: proves the serving layer's crash-safety
// and self-healing claims end to end, under injected storage faults and
// kill-and-recover cycles, with multi-threaded closed-loop load.
//
// One run executes `cycles` rounds of:
//
//   1. serve `rounds_per_cycle` rounds from `threads` closed-loop
//      workers, with a FaultSchedule armed on the WAL's
//      FaultInjectionEnv and the append path behind a circuit breaker
//      (ticking on a logical clock, one tick per served round, so
//      cooldowns elapse in rounds — bit-reproducible per seed);
//   2. disarm all faults and keep serving until the breaker re-closes
//      and a durable acknowledgement is observed (or a bounded budget
//      runs out — a violation);
//   3. "crash": snapshot the in-memory truth, destroy the service,
//      recover a fresh one from the WAL alone (RecoverArrangementService)
//      and verify the invariants below, then re-attach a fresh WAL
//      writer and continue into the next cycle.
//
// Invariants checked every cycle (violations are collected, not thrown):
//
//   - No durable acknowledgement is lost: every round SubmitFeedback
//     acked with FeedbackResult::durable is present in the recovered log.
//   - The recovered service is bit-identical to a shadow service that
//     replays exactly the recovered rounds from the in-memory truth:
//     same checkpoint blob (Y, b, observation count), same remaining
//     capacities, same log CSV, same round counter.
//   - The WAL never invents rounds: everything recovered was acked.
//   - Remaining capacities never go negative (live and recovered).
//   - The breaker re-closes after faults disarm.
//
// The harness is deliberately deterministic for threads=1: every RNG is
// seeded from ChaosOptions::seed, the breaker runs on the logical clock,
// and the report carries no wall-clock fields — two single-threaded runs
// with the same options produce byte-identical reports. Multi-threaded
// runs interleave differently but must pass the same invariants.
//
// Backs bench/chaos_soak.cc, `fasea_cli chaos`, and the gtest suite
// (tests/ebsn_chaos_harness_test.cc).
#ifndef FASEA_EBSN_CHAOS_HARNESS_H_
#define FASEA_EBSN_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/synthetic.h"
#include "io/fault_injection_env.h"

namespace fasea {

struct ChaosOptions {
  /// Faults armed during each cycle's driving phase (see
  /// NamedFaultSchedule for ready-made mixes). The harness overrides
  /// schedule.seed per cycle, derived from `seed`.
  FaultSchedule schedule;
  int threads = 2;
  std::int64_t rounds_per_cycle = 200;
  int cycles = 3;
  std::uint64_t seed = 1;
  /// WAL directory — must be empty/fresh; the run owns it.
  std::string wal_dir;

  /// Breaker tuning (logical-clock ticks, one per served round).
  int breaker_failure_threshold = 3;
  std::int64_t breaker_cooldown_ticks = 32;
  /// Extra rounds allowed for step 2 before "failed to re-close".
  std::int64_t reclose_budget = 500;

  /// ServeUser in-flight admission cap (0 = unlimited).
  int max_inflight = 0;

  /// Workload shape (kept small; capacities come from the defaults).
  std::size_t num_events = 24;
  std::size_t dim = 4;
};

struct ChaosReport {
  bool ok = false;
  std::vector<std::string> violations;

  int cycles_run = 0;
  std::int64_t rounds_acked = 0;      // Completed rounds, all cycles.
  std::int64_t durable_acked = 0;     // Rounds acked durable.
  std::int64_t nondurable_acked = 0;  // Rounds acked non-durably.
  std::int64_t rounds_shed = 0;       // kResourceExhausted rejections.
  std::int64_t contention_rejects = 0;  // Racing ServeUser rejections.
  std::int64_t retries_exhausted = 0;   // RetryPolicy budgets spent.
  std::int64_t faults_injected = 0;     // Fired by the FaultInjectionEnv.
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_closes = 0;
  std::int64_t breaker_probes = 0;
  std::int64_t wal_reopens = 0;
  std::int64_t records_recovered = 0;   // Last recovery's restored rounds.
  std::int64_t duplicate_frames_skipped = 0;  // Across all recoveries.
  std::int64_t bytes_truncated = 0;           // Across all recoveries.

  std::string ToString() const;
};

/// Runs the harness; fails (Status) only on setup errors — invariant
/// violations land in the report (`ok` false, `violations` non-empty).
StatusOr<ChaosReport> RunChaos(const ChaosOptions& options);

/// Ready-made schedules: "clean", "flaky-appends", "dying-disk",
/// "torn-tail", "slow-disk". Unknown names fail kInvalidArgument.
StatusOr<FaultSchedule> NamedFaultSchedule(std::string_view name);
const std::vector<std::string_view>& NamedFaultScheduleNames();

/// Resolves `spec` as a named fault schedule, else — when it contains
/// '=' — as an inline FaultSchedule spec. The one schedule parser
/// shared by `fasea_cli chaos` and the soak drivers; errors name the
/// bad value.
StatusOr<FaultSchedule> ResolveFaultSchedule(std::string_view spec);

// --- Sharded chaos -------------------------------------------------------
//
// RunShardedChaos drives a ShardedArrangementService the same way, plus
// per-shard kill schedules. Every cycle: arm faults and serve (the kill
// mode injects its crash mid-cycle — faults are disarmed around the
// kill/recover/re-arm window, like swapping a dying disk), then disarm
// and drive until every shard's breaker re-closes, then kill ALL shards
// and recover each from its own WAL alone. Invariants, checked per
// cycle (all seven must hold):
//
//   1. recovered decisions never invent rounds (every decision txn was
//      acknowledged, or proven committed after a mid-commit crash);
//   2. no durable acknowledgement is lost (durable txns ⊆ recovered
//      decisions);
//   3. the union of the shards' recovered decision records, replayed in
//      txn order into a fresh UNSHARDED service over the full instance,
//      is bit-identical (checkpoint, log CSV, capacities, round count)
//      to the same replay of the harness's own truth ledger;
//   4. per-event capacities on the recovered shards agree exactly with
//      that unsharded shadow (cross-shard portions land where the
//      decisions say);
//   5. remaining capacities never go negative, live or recovered;
//   6. every per-shard breaker re-closes after faults are disarmed;
//   7. no in-doubt reservation survives any recovery;
//   8. (kPartition) after the partitions heal, pumping clears every
//      parked portion and open reservation within the heal budget —
//      zero stuck transactions;
//   9. (kRebalance) after a grow — including one whose first attempt
//      crashed mid-protocol — every event's new owner holds exactly
//      the capacity the drain snapshot recorded.
//
// Runs are single-threaded and bit-reproducible per seed (kills fire at
// fixed round indexes, the breakers tick on the logical clock, and the
// simulated network's fault dice are re-derived per cycle).

enum class ShardKillMode {
  /// Kill one shard mid-cycle (round-robin victim across cycles),
  /// recover it later the same cycle while traffic continues around it.
  kOneShard,
  /// Crash the coordinator between the two commit phases (after its
  /// decision frame is durable, before any portion applies) and verify
  /// recovery completes the transaction on the participants. Pair with
  /// the "clean" schedule so the decision is always durable.
  kCoordinatorMidCommit,
  /// Kill every shard at once mid-cycle and recover them all.
  kAll,
  /// Run over the message transport with drop/dup/reorder faults armed
  /// cycle-long, and partition the round-robin victim mid-cycle (full
  /// isolation on even cycles, a one-way gateway->victim cut on odd
  /// ones). After the heal, draining must leave zero stuck
  /// transactions (invariant 8).
  kPartition,
  /// Grow the topology by one shard mid-cycle: first with a crash
  /// injected at protocol step cycle%3 (after-drain / mid-transfer /
  /// pre-flip — the attempt must abort cleanly and leave the old
  /// topology serving), then for real, with capacity conservation
  /// audited against the drain snapshot (invariant 9).
  kRebalance,
};

/// The one kill-mode parser shared by `fasea_cli chaos` and the chaos
/// harnesses; errors name the bad value and list the valid modes.
StatusOr<ShardKillMode> ParseKillMode(std::string_view name);
/// Back-compat alias for ParseKillMode.
StatusOr<ShardKillMode> ParseShardKillMode(std::string_view name);
const std::vector<std::string_view>& ShardKillModeNames();

struct ShardedChaosOptions {
  FaultSchedule schedule;
  int shards = 4;
  ShardKillMode kill_mode = ShardKillMode::kOneShard;
  std::int64_t rounds_per_cycle = 120;
  int cycles = 3;
  std::uint64_t seed = 1;
  /// Base directory; shard WALs live in `<wal_dir>/shard-NNN/`.
  std::string wal_dir;

  int breaker_failure_threshold = 3;
  std::int64_t breaker_cooldown_ticks = 32;
  std::int64_t reclose_budget = 500;
  /// Delta-merge cadence forwarded to the service (0 = off). Merged
  /// learner state is soft and deliberately outside the replay
  /// invariants.
  std::int64_t merge_every = 0;

  /// Deliberately tiny partitions (~num_events/shards events each) so
  /// spillover — and with it the two-phase protocol — fires constantly.
  std::size_t num_events = 12;
  std::size_t dim = 4;

  /// kPartition only: NetFaultSchedule spec armed for the whole cycle
  /// (the seed is re-derived per cycle, so runs stay reproducible).
  std::string net_schedule =
      "drop_rate=0.12;dup_rate=0.1;reorder_rate=0.1;jitter_ticks=2";
  /// kPartition only: reservation/serve-stage lease, in network ticks.
  std::int64_t lease_ticks = 48;
  /// kPartition only: max pump/tick iterations for the post-heal drain
  /// before open work counts as stuck (invariant 8).
  std::int64_t heal_budget_ticks = 4096;
};

struct ShardedChaosReport {
  bool ok = false;
  std::vector<std::string> violations;

  int cycles_run = 0;
  std::int64_t rounds_acked = 0;
  std::int64_t durable_acked = 0;
  std::int64_t nondurable_acked = 0;
  std::int64_t serves_unavailable = 0;  // Dead-home arrivals re-routed.
  std::int64_t retries_exhausted = 0;
  std::int64_t faults_injected = 0;

  std::int64_t cross_shard_rounds = 0;
  std::int64_t reservations_made = 0;
  std::int64_t reservation_refusals = 0;
  std::int64_t in_doubt_seen = 0;  // Reservations open at recovery.
  std::int64_t resolved_committed = 0;
  std::int64_t resolved_aborted = 0;
  std::int64_t interrupted_completed = 0;
  std::int64_t interrupted_aborted = 0;
  std::int64_t mid_commit_crashes = 0;

  std::int64_t shard_kills = 0;
  std::int64_t shard_recoveries = 0;
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_closes = 0;
  std::int64_t breaker_probes = 0;
  std::int64_t wal_reopens = 0;
  std::int64_t duplicate_frames_skipped = 0;
  std::int64_t bytes_truncated = 0;
  std::int64_t merges = 0;

  // Transport telemetry (kPartition; zero otherwise).
  std::int64_t messages_sent = 0;
  std::int64_t messages_dropped = 0;
  std::int64_t messages_duplicated = 0;
  std::int64_t dup_suppressed = 0;
  std::int64_t net_timeouts = 0;
  std::int64_t net_retries = 0;
  std::int64_t partitions_injected = 0;
  std::int64_t leases_expired = 0;
  std::int64_t force_aborted_stages = 0;  // Presumed-abort expiries.
  std::int64_t force_aborted_rounds = 0;  // Arrivals lost to them.
  std::int64_t redelivered_portions = 0;

  // Rebalance telemetry (kRebalance; zero otherwise).
  std::int64_t rebalances = 0;
  std::int64_t rebalances_aborted = 0;
  std::int64_t events_moved = 0;

  std::string ToString() const;
};

/// Runs the sharded harness; Status only on setup errors — invariant
/// violations land in the report.
StatusOr<ShardedChaosReport> RunShardedChaos(
    const ShardedChaosOptions& options);

}  // namespace fasea

#endif  // FASEA_EBSN_CHAOS_HARNESS_H_
