// Deterministic chaos harness: proves the serving layer's crash-safety
// and self-healing claims end to end, under injected storage faults and
// kill-and-recover cycles, with multi-threaded closed-loop load.
//
// One run executes `cycles` rounds of:
//
//   1. serve `rounds_per_cycle` rounds from `threads` closed-loop
//      workers, with a FaultSchedule armed on the WAL's
//      FaultInjectionEnv and the append path behind a circuit breaker
//      (ticking on a logical clock, one tick per served round, so
//      cooldowns elapse in rounds — bit-reproducible per seed);
//   2. disarm all faults and keep serving until the breaker re-closes
//      and a durable acknowledgement is observed (or a bounded budget
//      runs out — a violation);
//   3. "crash": snapshot the in-memory truth, destroy the service,
//      recover a fresh one from the WAL alone (RecoverArrangementService)
//      and verify the invariants below, then re-attach a fresh WAL
//      writer and continue into the next cycle.
//
// Invariants checked every cycle (violations are collected, not thrown):
//
//   - No durable acknowledgement is lost: every round SubmitFeedback
//     acked with FeedbackResult::durable is present in the recovered log.
//   - The recovered service is bit-identical to a shadow service that
//     replays exactly the recovered rounds from the in-memory truth:
//     same checkpoint blob (Y, b, observation count), same remaining
//     capacities, same log CSV, same round counter.
//   - The WAL never invents rounds: everything recovered was acked.
//   - Remaining capacities never go negative (live and recovered).
//   - The breaker re-closes after faults disarm.
//
// The harness is deliberately deterministic for threads=1: every RNG is
// seeded from ChaosOptions::seed, the breaker runs on the logical clock,
// and the report carries no wall-clock fields — two single-threaded runs
// with the same options produce byte-identical reports. Multi-threaded
// runs interleave differently but must pass the same invariants.
//
// Backs bench/chaos_soak.cc, `fasea_cli chaos`, and the gtest suite
// (tests/ebsn_chaos_harness_test.cc).
#ifndef FASEA_EBSN_CHAOS_HARNESS_H_
#define FASEA_EBSN_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/synthetic.h"
#include "io/fault_injection_env.h"

namespace fasea {

struct ChaosOptions {
  /// Faults armed during each cycle's driving phase (see
  /// NamedFaultSchedule for ready-made mixes). The harness overrides
  /// schedule.seed per cycle, derived from `seed`.
  FaultSchedule schedule;
  int threads = 2;
  std::int64_t rounds_per_cycle = 200;
  int cycles = 3;
  std::uint64_t seed = 1;
  /// WAL directory — must be empty/fresh; the run owns it.
  std::string wal_dir;

  /// Breaker tuning (logical-clock ticks, one per served round).
  int breaker_failure_threshold = 3;
  std::int64_t breaker_cooldown_ticks = 32;
  /// Extra rounds allowed for step 2 before "failed to re-close".
  std::int64_t reclose_budget = 500;

  /// ServeUser in-flight admission cap (0 = unlimited).
  int max_inflight = 0;

  /// Workload shape (kept small; capacities come from the defaults).
  std::size_t num_events = 24;
  std::size_t dim = 4;
};

struct ChaosReport {
  bool ok = false;
  std::vector<std::string> violations;

  int cycles_run = 0;
  std::int64_t rounds_acked = 0;      // Completed rounds, all cycles.
  std::int64_t durable_acked = 0;     // Rounds acked durable.
  std::int64_t nondurable_acked = 0;  // Rounds acked non-durably.
  std::int64_t rounds_shed = 0;       // kResourceExhausted rejections.
  std::int64_t contention_rejects = 0;  // Racing ServeUser rejections.
  std::int64_t retries_exhausted = 0;   // RetryPolicy budgets spent.
  std::int64_t faults_injected = 0;     // Fired by the FaultInjectionEnv.
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_closes = 0;
  std::int64_t breaker_probes = 0;
  std::int64_t wal_reopens = 0;
  std::int64_t records_recovered = 0;   // Last recovery's restored rounds.
  std::int64_t duplicate_frames_skipped = 0;  // Across all recoveries.
  std::int64_t bytes_truncated = 0;           // Across all recoveries.

  std::string ToString() const;
};

/// Runs the harness; fails (Status) only on setup errors — invariant
/// violations land in the report (`ok` false, `violations` non-empty).
StatusOr<ChaosReport> RunChaos(const ChaosOptions& options);

/// Ready-made schedules: "clean", "flaky-appends", "dying-disk",
/// "torn-tail", "slow-disk". Unknown names fail kInvalidArgument.
StatusOr<FaultSchedule> NamedFaultSchedule(std::string_view name);
const std::vector<std::string_view>& NamedFaultScheduleNames();

}  // namespace fasea

#endif  // FASEA_EBSN_CHAOS_HARNESS_H_
