#include "ebsn/chaos_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/retry.h"
#include "common/strings.h"
#include "ebsn/arrangement_service.h"
#include "ebsn/recovery_manager.h"
#include "ebsn/sharded_service.h"
#include "net/network.h"
#include "rng/seed.h"

namespace fasea {

namespace {

// The breaker's logical clock: one tick per completed round, shared
// process-wide. Only tick *differences* matter (cooldowns), so the
// absence of a reset keeps concurrent harnesses safe while leaving
// single-threaded runs bit-reproducible.
std::atomic<std::int64_t> g_chaos_clock{1};

std::int64_t ChaosClockNow() {
  return g_chaos_clock.load(std::memory_order_relaxed);
}

void TickChaosClock() {
  g_chaos_clock.fetch_add(1, std::memory_order_relaxed);
}

void SleepNanos(std::int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

constexpr std::uint64_t kPerCycleStride = 1024;  // threads < stride.

/// Mutable state one chaos run threads through its phases.
struct ChaosRun {
  const ChaosOptions* options = nullptr;
  SyntheticWorld* world = nullptr;
  FaultInjectionEnv* env = nullptr;
  std::unique_ptr<ArrangementService> service;
  std::vector<RoundContext> ring;  // Pre-generated round contexts.
  std::uint64_t policy_seed = 0;

  // The run-level truth: every acknowledged round keyed by t. A round id
  // re-served after a crash lost its non-durable predecessor — the new
  // record overwrites it, exactly as the recovered world re-decided it.
  std::map<std::int64_t, InteractionRecord> truth;
  std::set<std::int64_t> durable;  // Round ids acked durable.
  std::mutex ledger_mu;

  std::atomic<bool> stop{false};
  ChaosReport report;
  std::mutex report_mu;

  void Violation(std::string message) {
    std::lock_guard<std::mutex> lock(report_mu);
    report.violations.push_back(std::move(message));
    stop.store(true, std::memory_order_relaxed);
  }
};

RetryOptions ChaosRetryOptions(const ChaosOptions& options) {
  RetryOptions retry;
  // Enough budget that consecutive failures trip the breaker before the
  // budget runs out (the open breaker then acknowledges non-durably, so
  // every submit loop terminates).
  retry.max_attempts = options.breaker_failure_threshold + 5;
  retry.initial_backoff_ns = 50'000;   // 50 µs
  retry.max_backoff_ns = 1'000'000;    // 1 ms
  return retry;
}

/// Submits `feedback` until acknowledged; counts exhausted retry budgets.
/// Returns false (with a violation recorded) on a non-retryable failure.
bool SubmitUntilAcked(ChaosRun* run, RetryPolicy* retry,
                      const Feedback& feedback, FeedbackResult* result) {
  retry->Reset();
  Status st = run->service->SubmitFeedback(feedback, result);
  while (!st.ok()) {
    if (!IsRetryable(st)) {
      run->Violation("feedback failed non-retryably: " + st.ToString());
      return false;
    }
    if (retry->ShouldRetry(st)) {
      SleepNanos(retry->NextDelayNanos());
    } else {
      // Budget spent with the round still pending: report it, then keep
      // going — abandoning the round would wedge the protocol, and the
      // breaker guarantees forward progress (consecutive failures trip
      // it, and an open breaker acknowledges non-durably).
      std::lock_guard<std::mutex> lock(run->report_mu);
      ++run->report.retries_exhausted;
      retry->Reset();
    }
    st = run->service->SubmitFeedback(feedback, result);
  }
  return true;
}

/// Records the acknowledged round in the truth ledger. The record is
/// rebuilt from the worker's own round/arrangement/feedback — exactly
/// the fields the service encodes — rather than read back from the
/// shared log, which other workers may append to between this worker's
/// acknowledgement and the read.
void RecordAck(ChaosRun* run, const FeedbackResult& result,
               const RoundContext& round, const Arrangement& arrangement,
               const Feedback& feedback) {
  InteractionRecord record;
  record.t = result.round;
  record.user_id = round.user_id;
  record.user_capacity = round.user_capacity;
  record.arrangement = arrangement;
  record.feedback = feedback;
  for (EventId v : arrangement) {
    const auto row = round.contexts.Row(v);
    record.contexts.emplace_back(row.begin(), row.end());
  }
  std::lock_guard<std::mutex> lock(run->ledger_mu);
  run->truth[result.round] = std::move(record);
  if (result.durable) {
    run->durable.insert(result.round);
  }
}

/// Closed-loop drive: `threads` workers complete `target` rounds.
void DrivePhase(ChaosRun* run, int cycle, int threads,
                std::int64_t target) {
  std::atomic<std::int64_t> completed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([run, cycle, w, target, &completed] {
      const std::uint64_t lane =
          static_cast<std::uint64_t>(cycle) * kPerCycleStride +
          static_cast<std::uint64_t>(w);
      Pcg64 fb_rng(DeriveSeed(run->options->seed, "chaos-fb", lane),
                   static_cast<std::uint64_t>(w));
      RetryPolicy retry(ChaosRetryOptions(*run->options),
                        DeriveSeed(run->options->seed, "chaos-retry", lane));
      while (!run->stop.load(std::memory_order_relaxed) &&
             completed.load(std::memory_order_relaxed) < target) {
        const RoundContext& round =
            run->ring[static_cast<std::size_t>(
                          completed.load(std::memory_order_relaxed)) %
                      run->ring.size()];
        auto arrangement = run->service->ServeUser(
            round.user_id, round.user_capacity, round.contexts);
        if (!arrangement.ok()) {
          const StatusCode code = arrangement.status().code();
          if (code == StatusCode::kFailedPrecondition) {
            std::lock_guard<std::mutex> lock(run->report_mu);
            ++run->report.contention_rejects;
          } else if (code == StatusCode::kResourceExhausted) {
            std::lock_guard<std::mutex> lock(run->report_mu);
            ++run->report.rounds_shed;
          } else {
            run->Violation("serve failed unexpectedly: " +
                           arrangement.status().ToString());
            return;
          }
          std::this_thread::yield();
          continue;
        }
        const Feedback feedback = run->world->feedback().Sample(
            1, round.contexts, *arrangement, fb_rng);
        FeedbackResult result;
        if (!SubmitUntilAcked(run, &retry, feedback, &result)) return;
        RecordAck(run, result, round, *arrangement, feedback);
        TickChaosClock();
        {
          std::lock_guard<std::mutex> lock(run->report_mu);
          ++run->report.rounds_acked;
          if (result.durable) {
            ++run->report.durable_acked;
          } else {
            ++run->report.nondurable_acked;
          }
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

/// Step 2: faults are disarmed; drive single-threaded until the breaker
/// is closed and a durable acknowledgement proves the WAL is live again.
void DriveUntilReclosed(ChaosRun* run, int cycle) {
  RetryPolicy retry(
      ChaosRetryOptions(*run->options),
      DeriveSeed(run->options->seed, "chaos-reclose",
                 static_cast<std::uint64_t>(cycle)));
  Pcg64 fb_rng(DeriveSeed(run->options->seed, "chaos-reclose-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/7);
  for (std::int64_t i = 0; i < run->options->reclose_budget; ++i) {
    if (run->stop.load(std::memory_order_relaxed)) return;
    const RoundContext& round =
        run->ring[static_cast<std::size_t>(i) % run->ring.size()];
    auto arrangement = run->service->ServeUser(
        round.user_id, round.user_capacity, round.contexts);
    if (!arrangement.ok()) {
      run->Violation("serve failed during re-close drive: " +
                     arrangement.status().ToString());
      return;
    }
    const Feedback feedback = run->world->feedback().Sample(
        1, round.contexts, *arrangement, fb_rng);
    FeedbackResult result;
    if (!SubmitUntilAcked(run, &retry, feedback, &result)) return;
    RecordAck(run, result, round, *arrangement, feedback);
    TickChaosClock();
    {
      std::lock_guard<std::mutex> lock(run->report_mu);
      ++run->report.rounds_acked;
      if (result.durable) {
        ++run->report.durable_acked;
      } else {
        ++run->report.nondurable_acked;
      }
    }
    if (result.durable &&
        run->service->breaker()->state() ==
            CircuitBreaker::State::kClosed) {
      return;
    }
  }
  run->Violation(StrFormat(
      "cycle %d: breaker failed to re-close within %lld rounds after "
      "faults were disarmed",
      cycle, static_cast<long long>(run->options->reclose_budget)));
}

void CheckCapacitiesNonNegative(ChaosRun* run, const ArrangementService& s,
                                const char* which, int cycle) {
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (s.state().remaining(v) < 0) {
      run->Violation(StrFormat(
          "cycle %d: %s service has negative remaining capacity for "
          "event %u",
          cycle, which, v));
    }
  }
}

/// The crash-and-recover step: snapshot counters, destroy the live
/// service, recover from the WAL alone, and check every invariant.
void CrashRecoverAndVerify(ChaosRun* run, int cycle) {
  const ChaosOptions& options = *run->options;

  // Snapshot the live side before "crashing".
  {
    std::lock_guard<std::mutex> lock(run->report_mu);
    run->report.breaker_opens += run->service->breaker()->opens();
    run->report.breaker_closes += run->service->breaker()->closes();
    run->report.breaker_probes += run->service->breaker()->probes();
    run->report.wal_reopens += run->service->wal_reopens();
  }
  CheckCapacitiesNonNegative(run, *run->service, "live", cycle);
  run->service.reset();  // Crash: in-memory state is gone.

  RecoveryOptions ropts;
  ropts.seed = run->policy_seed;
  auto recovered = RecoverArrangementService(
      &run->world->instance(), run->env, options.wal_dir, "", ropts);
  if (!recovered.ok()) {
    run->Violation(StrFormat("cycle %d: recovery failed: %s", cycle,
                             recovered.status().ToString().c_str()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(run->report_mu);
    run->report.records_recovered = recovered->report.records_scanned;
    run->report.duplicate_frames_skipped +=
        recovered->report.duplicate_frames_skipped;
    run->report.bytes_truncated += recovered->report.bytes_truncated;
  }
  ArrangementService& service = *recovered->service;
  CheckCapacitiesNonNegative(run, service, "recovered", cycle);

  // Invariant: the WAL never invents rounds, and no durable ack is lost.
  std::set<std::int64_t> recovered_ids;
  for (std::size_t i = 0; i < service.log().size(); ++i) {
    const std::int64_t t = service.log().record(i).t;
    recovered_ids.insert(t);
    if (run->truth.find(t) == run->truth.end()) {
      run->Violation(StrFormat(
          "cycle %d: recovered round %lld was never acknowledged", cycle,
          static_cast<long long>(t)));
    }
  }
  for (const std::int64_t t : run->durable) {
    if (recovered_ids.find(t) == recovered_ids.end()) {
      run->Violation(StrFormat(
          "cycle %d: durably acknowledged round %lld is missing from "
          "the recovered log",
          cycle, static_cast<long long>(t)));
    }
  }

  // Invariant: recovery is bit-identical to a shadow service that
  // replays exactly the recovered rounds from the in-memory truth.
  ArrangementService shadow(&run->world->instance(), PolicyKind::kUcb,
                            PolicyParams{}, run->policy_seed);
  for (const std::int64_t t : recovered_ids) {
    const auto it = run->truth.find(t);
    if (it == run->truth.end()) continue;  // Already a violation above.
    if (Status st = shadow.RestoreInteraction(it->second, /*learn=*/true);
        !st.ok()) {
      run->Violation(StrFormat("cycle %d: shadow replay of round %lld "
                               "failed: %s",
                               cycle, static_cast<long long>(t),
                               st.ToString().c_str()));
      return;
    }
  }
  if (service.Checkpoint() != shadow.Checkpoint()) {
    run->Violation(StrFormat(
        "cycle %d: recovered learning state (Y, b) differs from the "
        "shadow replay of the durable history",
        cycle));
  }
  if (service.log().ToCsv() != shadow.log().ToCsv()) {
    run->Violation(StrFormat(
        "cycle %d: recovered interaction log differs from the shadow "
        "replay",
        cycle));
  }
  if (service.rounds_served() != shadow.rounds_served()) {
    run->Violation(StrFormat(
        "cycle %d: recovered round counter %lld != shadow %lld", cycle,
        static_cast<long long>(service.rounds_served()),
        static_cast<long long>(shadow.rounds_served())));
  }
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (service.state().remaining(v) != shadow.state().remaining(v)) {
      run->Violation(StrFormat(
          "cycle %d: recovered capacity of event %u (%lld) != shadow "
          "(%lld)",
          cycle, v,
          static_cast<long long>(service.state().remaining(v)),
          static_cast<long long>(shadow.state().remaining(v))));
      break;
    }
  }

  // The truth going forward is the recovered world: round ids above the
  // recovered counter were acknowledged non-durably and died with the
  // crash — the next cycle re-decides them.
  run->service = std::move(recovered->service);
}

Status AttachFreshWal(ChaosRun* run) {
  FaultInjectionEnv* env = run->env;
  const std::string dir = run->options->wal_dir;
  auto wal = WalWriter::Open(env, dir);
  if (!wal.ok()) return wal.status();
  DurabilityPolicy durability;
  durability.on_wal_error = DurabilityPolicy::OnWalError::kFailRound;
  durability.breaker_enabled = true;
  durability.breaker.failure_threshold =
      run->options->breaker_failure_threshold;
  durability.breaker.open_cooldown_ns =
      run->options->breaker_cooldown_ticks;  // Logical-clock ticks.
  durability.breaker.clock = &ChaosClockNow;
  run->service->AttachWal(
      std::move(wal).value(), durability,
      [env, dir] { return WalWriter::Open(env, dir); });
  return Status::Ok();
}

}  // namespace

std::string ChaosReport::ToString() const {
  std::string out;
  out += StrFormat("verdict:                  %s\n",
                   ok ? "PASS" : "FAIL");
  out += StrFormat("cycles run:               %d\n", cycles_run);
  out += StrFormat("rounds acked:             %lld\n",
                   static_cast<long long>(rounds_acked));
  out += StrFormat("  durable:                %lld\n",
                   static_cast<long long>(durable_acked));
  out += StrFormat("  non-durable:            %lld\n",
                   static_cast<long long>(nondurable_acked));
  out += StrFormat("rounds shed:              %lld\n",
                   static_cast<long long>(rounds_shed));
  out += StrFormat("contention rejects:       %lld\n",
                   static_cast<long long>(contention_rejects));
  out += StrFormat("retry budgets exhausted:  %lld\n",
                   static_cast<long long>(retries_exhausted));
  out += StrFormat("faults injected:          %lld\n",
                   static_cast<long long>(faults_injected));
  out += StrFormat("breaker opens/closes:     %lld/%lld\n",
                   static_cast<long long>(breaker_opens),
                   static_cast<long long>(breaker_closes));
  out += StrFormat("breaker probes:           %lld\n",
                   static_cast<long long>(breaker_probes));
  out += StrFormat("wal reopens:              %lld\n",
                   static_cast<long long>(wal_reopens));
  out += StrFormat("records recovered:        %lld\n",
                   static_cast<long long>(records_recovered));
  out += StrFormat("duplicate frames skipped: %lld\n",
                   static_cast<long long>(duplicate_frames_skipped));
  out += StrFormat("torn bytes truncated:     %lld\n",
                   static_cast<long long>(bytes_truncated));
  for (const std::string& violation : violations) {
    out += "VIOLATION: " + violation + "\n";
  }
  return out;
}

StatusOr<FaultSchedule> NamedFaultSchedule(std::string_view name) {
  if (name == "clean") return FaultSchedule::Parse("");
  if (name == "flaky-appends") {
    return FaultSchedule::Parse(
        "append_error_rate=0.05;short_write_rate=0.02");
  }
  if (name == "dying-disk") return FaultSchedule::Parse("sync_fail_at=25");
  if (name == "torn-tail") {
    return FaultSchedule::Parse(
        "short_write_at=15;short_write_keep_bytes=10;"
        "append_error_rate=0.02");
  }
  if (name == "slow-disk") {
    return FaultSchedule::Parse(
        "append_latency_ns=20000;sync_latency_ns=30000;"
        "latency_jitter_ns=10000;sync_error_rate=0.02");
  }
  return InvalidArgumentError(
      StrFormat("unknown fault schedule '%s' (try: clean, flaky-appends, "
                "dying-disk, torn-tail, slow-disk)",
                std::string(name).c_str()));
}

const std::vector<std::string_view>& NamedFaultScheduleNames() {
  static const std::vector<std::string_view> kNames = {
      "clean", "flaky-appends", "dying-disk", "torn-tail", "slow-disk"};
  return kNames;
}

StatusOr<ChaosReport> RunChaos(const ChaosOptions& options) {
  if (options.wal_dir.empty()) {
    return InvalidArgumentError("chaos: wal_dir is required");
  }
  if (options.threads < 1 || options.cycles < 1 ||
      options.rounds_per_cycle < 1) {
    return InvalidArgumentError(
        "chaos: threads, cycles, and rounds_per_cycle must be >= 1");
  }
  FaultInjectionEnv env(Env::Default());
  if (auto names = env.ListDir(options.wal_dir); names.ok()) {
    for (const std::string& name : *names) {
      if (StartsWith(name, "wal-")) {
        return InvalidArgumentError(
            "chaos: wal_dir already holds WAL segments — the run needs a "
            "fresh directory");
      }
    }
  }

  SyntheticConfig config;
  config.num_events = options.num_events;
  config.dim = options.dim;
  config.horizon = 100000;
  config.seed = DeriveSeed(options.seed, "chaos-world");
  auto world = SyntheticWorld::Create(config);
  if (!world.ok()) return world.status();

  ChaosRun run;
  run.options = &options;
  run.world = world->get();
  run.env = &env;
  run.policy_seed = DeriveSeed(options.seed, "chaos-policy");
  run.service = std::make_unique<ArrangementService>(
      &run.world->instance(), PolicyKind::kUcb, PolicyParams{},
      run.policy_seed);
  run.ring.resize(64);
  for (std::size_t i = 0; i < run.ring.size(); ++i) {
    run.ring[i] =
        run.world->provider().NextRound(static_cast<std::int64_t>(i) + 1);
  }
  if (options.max_inflight > 0) {
    OverloadOptions overload;
    overload.max_inflight = options.max_inflight;
    run.service->ConfigureOverload(overload);
  }

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    if (Status st = AttachFreshWal(&run); !st.ok()) return st;

    FaultSchedule schedule = options.schedule;
    schedule.seed = DeriveSeed(options.seed, "chaos-faults",
                               static_cast<std::uint64_t>(cycle));
    env.ApplySchedule(schedule);

    DrivePhase(&run, cycle, options.threads, options.rounds_per_cycle);
    env.DisarmAll();
    if (!run.stop.load(std::memory_order_relaxed)) {
      DriveUntilReclosed(&run, cycle);
    }
    if (run.stop.load(std::memory_order_relaxed)) break;

    CrashRecoverAndVerify(&run, cycle);
    ++run.report.cycles_run;
    if (run.stop.load(std::memory_order_relaxed) ||
        run.service == nullptr) {
      break;
    }
    if (options.max_inflight > 0) {
      OverloadOptions overload;
      overload.max_inflight = options.max_inflight;
      run.service->ConfigureOverload(overload);
    }
  }

  run.report.faults_injected = env.faults_injected();
  run.report.ok = run.report.violations.empty() &&
                  run.report.cycles_run == options.cycles;
  return std::move(run.report);
}

// --- Sharded chaos -------------------------------------------------------

namespace {

/// Mutable state of one sharded run. Strictly single-threaded: kills
/// fire at fixed round indexes and every counter is deterministic.
struct ShardedRun {
  const ShardedChaosOptions* options = nullptr;
  SyntheticWorld* world = nullptr;
  FaultInjectionEnv* env = nullptr;
  std::unique_ptr<ShardedArrangementService> service;
  std::vector<RoundContext> ring;
  std::uint64_t policy_seed = 0;

  /// Non-null only in kPartition mode: the simulated fabric every
  /// protocol step travels over (it outlives the service).
  SimulatedNetwork* net = nullptr;

  // Truth keyed by txn. Transaction ids are never reused, so a round
  // lost to a crash simply leaves a truth entry with no recovered
  // counterpart (allowed — it was acked non-durably), and its re-serve
  // gets a fresh txn.
  std::map<std::uint64_t, InteractionRecord> truth;
  std::set<std::uint64_t> durable;

  // Mid-commit crash handshake with the service hook.
  bool hook_armed = false;
  std::uint64_t hook_fired_txn = 0;

  bool stop = false;
  ShardedChaosReport report;

  void Violation(std::string message) {
    report.violations.push_back(std::move(message));
    stop = true;
  }
};

enum class ArrivalOutcome { kAcked, kSkipped, kCrashed, kFailed };

InteractionRecord BuildTruthRecord(const RoundContext& round,
                                   const Arrangement& arrangement,
                                   const Feedback& feedback) {
  InteractionRecord record;
  record.t = 0;  // Renumbered at replay time (txn order).
  record.user_id = round.user_id;
  record.user_capacity = round.user_capacity;
  record.arrangement = arrangement;
  record.feedback = feedback;
  for (EventId v : arrangement) {
    const auto row = round.contexts.Row(v);
    record.contexts.emplace_back(row.begin(), row.end());
  }
  return record;
}

void AccumulateRecovery(ShardedRun* run, const ShardRecoveryReport& r) {
  ShardedChaosReport& rep = run->report;
  ++rep.shard_recoveries;
  rep.duplicate_frames_skipped += r.duplicate_frames_skipped;
  rep.bytes_truncated += r.bytes_truncated;
  rep.in_doubt_seen += r.reservations_in_doubt;
  rep.resolved_committed += r.resolved_committed;
  rep.resolved_aborted += r.resolved_aborted;
  rep.interrupted_completed += r.interrupted_completed;
  rep.interrupted_aborted += r.interrupted_aborted;
}

/// Breakers die with their shard (kill) or writer (re-attach); harvest
/// the counters just before each destruction point.
void HarvestBreaker(ShardedRun* run, int shard) {
  const CircuitBreaker* breaker = run->service->shard_breaker(shard);
  if (breaker == nullptr) return;
  run->report.breaker_opens += breaker->opens();
  run->report.breaker_closes += breaker->closes();
  run->report.breaker_probes += breaker->probes();
}

void RearmFaults(ShardedRun* run, int cycle, int lane) {
  FaultSchedule schedule = run->options->schedule;
  schedule.seed = DeriveSeed(run->options->seed, "sharded-faults",
                             static_cast<std::uint64_t>(cycle) * 8 +
                                 static_cast<std::uint64_t>(lane));
  run->env->ApplySchedule(schedule);
}

/// Invariant 5: remaining capacities never go negative on any shard's
/// sub-instance, live or recovered.
void CheckShardCapacities(ShardedRun* run, const char* which, int cycle) {
  for (int s = 0; s < run->service->num_shards(); ++s) {
    const ArrangementService* inner = run->service->shard_service(s);
    if (inner == nullptr) continue;
    const ProblemInstance& sub = run->service->router().SubInstance(s);
    for (EventId v = 0; v < sub.num_events(); ++v) {
      if (inner->state().remaining(v) < 0) {
        run->Violation(StrFormat(
            "cycle %d: %s shard %d has negative remaining capacity for "
            "local event %u",
            cycle, which, s, v));
        return;
      }
    }
  }
}

bool KillOneShard(ShardedRun* run, int shard, int cycle) {
  HarvestBreaker(run, shard);
  if (Status st = run->service->KillShard(shard); !st.ok()) {
    run->Violation(StrFormat("cycle %d: KillShard(%d) failed: %s", cycle,
                             shard, st.ToString().c_str()));
    return false;
  }
  ++run->report.shard_kills;
  return true;
}

/// Recovery must leave zero in-doubt reservations — invariant 7.
bool RecoverOneShard(ShardedRun* run, int shard, int cycle) {
  auto recovered = run->service->RecoverShard(shard);
  if (!recovered.ok()) {
    run->Violation(StrFormat("cycle %d: RecoverShard(%d) failed: %s",
                             cycle, shard,
                             recovered.status().ToString().c_str()));
    return false;
  }
  AccumulateRecovery(run, *recovered);
  return true;
}

void CheckNoInDoubtSurvives(ShardedRun* run, int cycle, const char* when) {
  const std::int64_t open = run->service->OpenReservations();
  if (open != 0) {
    run->Violation(StrFormat(
        "cycle %d: %lld in-doubt reservation(s) survived recovery (%s)",
        cycle, static_cast<long long>(open), when));
  }
}

/// The mid-commit crash: the coordinator died after its decision frame,
/// before any portion applied. Recovery must complete the transaction
/// (durable decision) or erase it entirely (the decision never hardened
/// — only possible when faults were armed at the commit point).
void HandleMidCommitCrash(ShardedRun* run, int cycle,
                          const ShardedServeResult& served,
                          const RoundContext& round,
                          const Feedback& feedback) {
  ++run->report.mid_commit_crashes;
  run->env->DisarmAll();
  const int home = served.home_shard;
  if (!KillOneShard(run, home, cycle)) return;
  if (!RecoverOneShard(run, home, cycle)) return;
  CheckNoInDoubtSurvives(run, cycle, "after a mid-commit coordinator crash");
  if (Status st = run->service->AttachShardWal(home); !st.ok()) {
    run->Violation(StrFormat("cycle %d: AttachShardWal(%d) failed: %s",
                             cycle, home, st.ToString().c_str()));
    return;
  }
  // Committed iff the decision survived into the recovered index; the
  // recovered world then owes the caller the full round.
  if (run->service->Decisions(home).count(served.txn) != 0) {
    run->truth[served.txn] =
        BuildTruthRecord(round, served.arrangement, feedback);
    run->durable.insert(served.txn);
    ++run->report.rounds_acked;
    ++run->report.durable_acked;
  }
  RearmFaults(run, cycle, /*lane=*/1);
}

RetryOptions ShardedRetryOptions(const ShardedChaosOptions& options) {
  RetryOptions retry;
  retry.max_attempts = options.breaker_failure_threshold + 5;
  retry.initial_backoff_ns = 50'000;
  retry.max_backoff_ns = 1'000'000;
  return retry;
}

/// One arrival: serve, sample feedback, submit until acked. `arm_hook`
/// schedules a coordinator crash between the commit phases.
ArrivalOutcome DriveOneArrival(ShardedRun* run, int cycle,
                               std::size_t ring_index, Pcg64* fb_rng,
                               RetryPolicy* retry, bool arm_hook,
                               ShardedFeedbackResult* out) {
  const RoundContext& round = run->ring[ring_index % run->ring.size()];
  auto served = run->service->ServeUser(round.user_id, round.user_capacity,
                                        round.contexts);
  if (!served.ok()) {
    const StatusCode code = served.status().code();
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kFailedPrecondition ||
        code == StatusCode::kResourceExhausted) {
      // Dead or draining home: the next arrival round-robins elsewhere.
      ++run->report.serves_unavailable;
      TickChaosClock();
      return ArrivalOutcome::kSkipped;
    }
    run->Violation(StrFormat("cycle %d: sharded serve failed: %s", cycle,
                             served.status().ToString().c_str()));
    return ArrivalOutcome::kFailed;
  }
  const Feedback feedback = run->world->feedback().Sample(
      1, round.contexts, served->arrangement, *fb_rng);
  if (arm_hook) run->hook_armed = true;
  retry->Reset();
  ShardedFeedbackResult result;
  Status st = run->service->SubmitFeedback(served->txn, feedback, &result);
  while (!st.ok()) {
    if (run->hook_fired_txn == served->txn) {
      run->hook_fired_txn = 0;
      HandleMidCommitCrash(run, cycle, *served, round, feedback);
      TickChaosClock();
      return run->stop ? ArrivalOutcome::kFailed : ArrivalOutcome::kCrashed;
    }
    if (run->net != nullptr &&
        st.code() == StatusCode::kFailedPrecondition) {
      // The lease sweep force-aborted this stage (presumed abort) while
      // the fabric misbehaved: the round is gone, not wrong — its
      // capacity was released and the caller re-serves under a new txn.
      ++run->report.force_aborted_rounds;
      TickChaosClock();
      return ArrivalOutcome::kSkipped;
    }
    if (!IsRetryable(st)) {
      run->Violation(StrFormat("cycle %d: feedback failed non-retryably: %s",
                               cycle, st.ToString().c_str()));
      return ArrivalOutcome::kFailed;
    }
    if (retry->ShouldRetry(st)) {
      SleepNanos(retry->NextDelayNanos());
    } else {
      ++run->report.retries_exhausted;
      retry->Reset();  // The breaker guarantees forward progress.
    }
    st = run->service->SubmitFeedback(served->txn, feedback, &result);
  }
  run->truth[served->txn] =
      BuildTruthRecord(round, served->arrangement, feedback);
  if (result.durable) run->durable.insert(served->txn);
  ++run->report.rounds_acked;
  if (result.durable) {
    ++run->report.durable_acked;
  } else {
    ++run->report.nondurable_acked;
  }
  TickChaosClock();
  if (out != nullptr) *out = result;
  return ArrivalOutcome::kAcked;
}

/// One transport step on the logical clock: tick the fabric, deliver
/// due messages, redeliver parked portions, sweep leases. No-op
/// outside kPartition mode.
bool PumpTransportOnce(ShardedRun* run, int cycle) {
  if (run->net == nullptr) return true;
  run->net->Tick();
  if (Status st = run->service->PumpTransport(); !st.ok()) {
    run->Violation(StrFormat("cycle %d: PumpTransport failed: %s", cycle,
                             st.ToString().c_str()));
    return false;
  }
  return true;
}

/// Invariant 8: after the partitions heal (fault dice disarmed),
/// pumping must clear every parked portion and open reservation within
/// the budget — zero stuck transactions.
bool DrainTransport(ShardedRun* run, int cycle) {
  const std::int64_t budget = run->options->heal_budget_ticks;
  for (std::int64_t t = 0; t < budget; ++t) {
    if (run->service->UndeliveredPortions() == 0 &&
        run->service->OpenReservations() == 0) {
      return true;
    }
    if (!PumpTransportOnce(run, cycle)) return false;
  }
  run->Violation(StrFormat(
      "cycle %d: stuck transactions — %lld parked portion(s) and %lld "
      "open reservation(s) survived a %lld-tick drain after the heal",
      cycle, static_cast<long long>(run->service->UndeliveredPortions()),
      static_cast<long long>(run->service->OpenReservations()),
      static_cast<long long>(budget)));
  return false;
}

/// The rebalance drill: one growth attempt with a crash injected at
/// protocol step cycle%3 (after-drain / mid-transfer / pre-flip) that
/// must abort cleanly, then the real growth, then invariant 9 —
/// every event's new owner holds exactly what the drain snapshot
/// recorded, superseding any partial MIGRATE frames the crash left.
bool RebalanceDrill(ShardedRun* run, int cycle) {
  ShardedArrangementService& service = *run->service;
  const int target = service.num_shards() + 1;
  // The drain restarts every shard, destroying breakers un-harvested.
  for (int s = 0; s < service.num_shards(); ++s) HarvestBreaker(run, s);
  const int crash_step = cycle % 3;
  service.set_rebalance_crash_hook(
      [crash_step](int step) { return step == crash_step; });
  auto crashed = service.Rebalance(target);
  service.set_rebalance_crash_hook(nullptr);
  if (crashed.ok()) {
    run->Violation(StrFormat(
        "cycle %d: the injected rebalance crash at step %d never fired",
        cycle, crash_step));
    return false;
  }
  if (service.num_shards() != target - 1) {
    run->Violation(StrFormat(
        "cycle %d: the aborted rebalance left %d shards, expected %d",
        cycle, service.num_shards(), target - 1));
    return false;
  }
  auto report = service.Rebalance(target);
  if (!report.ok()) {
    run->Violation(StrFormat("cycle %d: rebalance retry failed: %s",
                             cycle, report.status().ToString().c_str()));
    return false;
  }
  // Invariant 9: capacity conservation against the drain snapshot —
  // nothing leaks, nothing doubles, wherever the first attempt died.
  const ProblemInstance& instance = run->world->instance();
  const ShardRouter& router = service.router();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const int owner = router.OwnerShard(v);
    const ArrangementService* inner = service.shard_service(owner);
    const std::int64_t got =
        inner == nullptr ? -1
                         : inner->state().remaining(router.LocalId(v));
    if (got != report->remaining_after_drain[v]) {
      run->Violation(StrFormat(
          "cycle %d: after the grow, event %u on shard %d holds %lld "
          "capacity but the drain snapshot recorded %lld",
          cycle, v, owner, static_cast<long long>(got),
          static_cast<long long>(report->remaining_after_drain[v])));
      return false;
    }
  }
  return true;
}

/// The faulted drive of one cycle, with the kill mode's crash woven in
/// at fixed round indexes. Faults are disarmed around every
/// kill/recover/re-attach window (the dying disk gets swapped) and
/// re-armed with a fresh derived lane.
void DriveShardedCycle(ShardedRun* run, int cycle) {
  const ShardedChaosOptions& options = *run->options;
  Pcg64 fb_rng(DeriveSeed(options.seed, "sharded-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/3);
  RetryPolicy retry(ShardedRetryOptions(options),
                    DeriveSeed(options.seed, "sharded-retry",
                               static_cast<std::uint64_t>(cycle)));
  const std::int64_t kill_at = options.rounds_per_cycle / 3;
  const std::int64_t recover_at = (2 * options.rounds_per_cycle) / 3;
  const std::int64_t crash_at = options.rounds_per_cycle / 2;
  const int victim = cycle % options.shards;  // Round-robin across cycles.
  bool crash_pending =
      options.kill_mode == ShardKillMode::kCoordinatorMidCommit;

  for (std::int64_t i = 0; i < options.rounds_per_cycle && !run->stop;
       ++i) {
    if (options.kill_mode == ShardKillMode::kOneShard) {
      if (i == kill_at) {
        run->env->DisarmAll();
        if (!KillOneShard(run, victim, cycle)) return;
        RearmFaults(run, cycle, /*lane=*/2);
      } else if (i == recover_at) {
        run->env->DisarmAll();
        if (!RecoverOneShard(run, victim, cycle)) return;
        CheckNoInDoubtSurvives(run, cycle, "after a single-shard crash");
        if (Status st = run->service->AttachShardWal(victim); !st.ok()) {
          run->Violation(StrFormat(
              "cycle %d: AttachShardWal(%d) failed: %s", cycle, victim,
              st.ToString().c_str()));
          return;
        }
        RearmFaults(run, cycle, /*lane=*/3);
      }
    } else if (options.kill_mode == ShardKillMode::kAll && i == crash_at) {
      run->env->DisarmAll();
      const int n = run->service->num_shards();
      for (int s = 0; s < n; ++s) {
        if (!KillOneShard(run, s, cycle)) return;
      }
      for (int s = 0; s < n; ++s) {
        if (!RecoverOneShard(run, s, cycle)) return;
      }
      CheckNoInDoubtSurvives(run, cycle, "after an all-shard crash");
      CheckShardCapacities(run, "mid-cycle recovered", cycle);
      for (int s = 0; s < n; ++s) {
        if (Status st = run->service->AttachShardWal(s); !st.ok()) {
          run->Violation(StrFormat(
              "cycle %d: AttachShardWal(%d) failed: %s", cycle, s,
              st.ToString().c_str()));
          return;
        }
      }
      RearmFaults(run, cycle, /*lane=*/4);
    } else if (options.kill_mode == ShardKillMode::kPartition) {
      if (i == kill_at) {
        if (cycle % 2 == 0) {
          run->net->PartitionNode(victim);  // Full isolation.
        } else {
          run->net->BlockLink(ShardedArrangementService::kGatewayNode,
                              victim);  // One-way: requests die, acks ok.
        }
        ++run->report.partitions_injected;
      } else if (i == recover_at) {
        run->net->HealAll();
      }
    } else if (options.kill_mode == ShardKillMode::kRebalance &&
               i == kill_at) {
      run->env->DisarmAll();
      if (!RebalanceDrill(run, cycle)) return;
      RearmFaults(run, cycle, /*lane=*/5);
    }
    const bool arm = crash_pending && i >= crash_at;
    const ArrivalOutcome outcome =
        DriveOneArrival(run, cycle, static_cast<std::size_t>(i), &fb_rng,
                        &retry, arm, nullptr);
    if (outcome == ArrivalOutcome::kFailed) return;
    if (outcome == ArrivalOutcome::kCrashed) crash_pending = false;
    if (outcome == ArrivalOutcome::kSkipped && arm) {
      run->hook_armed = false;  // Serve never happened; re-arm next round.
    }
    if (!PumpTransportOnce(run, cycle)) return;
  }
  if (crash_pending && !run->stop) {
    run->Violation(StrFormat(
        "cycle %d: the scheduled mid-commit crash never fired", cycle));
  }
}

/// Invariant 6: with faults disarmed, drive until every shard's breaker
/// is closed and a durable acknowledgement proves the WALs are live.
void DriveShardsUntilReclosed(ShardedRun* run, int cycle) {
  const ShardedChaosOptions& options = *run->options;
  Pcg64 fb_rng(DeriveSeed(options.seed, "sharded-reclose-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/7);
  RetryPolicy retry(ShardedRetryOptions(options),
                    DeriveSeed(options.seed, "sharded-reclose",
                               static_cast<std::uint64_t>(cycle)));
  for (std::int64_t i = 0; i < options.reclose_budget && !run->stop; ++i) {
    ShardedFeedbackResult result;
    const ArrivalOutcome outcome =
        DriveOneArrival(run, cycle, static_cast<std::size_t>(i), &fb_rng,
                        &retry, /*arm_hook=*/false, &result);
    if (outcome == ArrivalOutcome::kFailed) return;
    if (!PumpTransportOnce(run, cycle)) return;
    if (outcome != ArrivalOutcome::kAcked || !result.durable) continue;
    bool all_closed = true;
    for (int s = 0; s < run->service->num_shards(); ++s) {
      const CircuitBreaker* breaker = run->service->shard_breaker(s);
      if (breaker != nullptr &&
          breaker->state() != CircuitBreaker::State::kClosed) {
        all_closed = false;
        break;
      }
    }
    if (all_closed) return;
  }
  run->Violation(StrFormat(
      "cycle %d: shard breakers failed to re-close within %lld rounds "
      "after faults were disarmed",
      cycle, static_cast<long long>(options.reclose_budget)));
}

/// End-of-cycle full crash: kill every shard, recover each from its WAL
/// alone, then check invariants 1–5 and 7 (6 was the re-close drive).
void CrashRecoverAllAndVerify(ShardedRun* run, int cycle) {
  ShardedArrangementService& service = *run->service;
  const int num_shards = service.num_shards();  // Grows under kRebalance.
  CheckShardCapacities(run, "live", cycle);

  for (int s = 0; s < num_shards; ++s) {
    if (!service.shard_alive(s)) continue;
    if (!KillOneShard(run, s, cycle)) return;
  }
  for (int s = 0; s < num_shards; ++s) {
    if (!RecoverOneShard(run, s, cycle)) return;
  }
  CheckShardCapacities(run, "recovered", cycle);
  CheckNoInDoubtSurvives(run, cycle, "after the full crash");

  // The union of the shards' recovered decision ledgers.
  std::map<std::uint64_t, InteractionRecord> unioned;
  for (int s = 0; s < num_shards; ++s) {
    for (auto& [txn, record] : service.Decisions(s)) {
      unioned.emplace(txn, std::move(record));
    }
  }

  // Invariant 1: recovery never invents transactions.
  for (const auto& [txn, record] : unioned) {
    if (run->truth.find(txn) == run->truth.end()) {
      run->Violation(StrFormat(
          "cycle %d: recovered transaction %llu was never acknowledged",
          cycle, static_cast<unsigned long long>(txn)));
    }
  }
  // Invariant 2: no durable acknowledgement is lost.
  for (const std::uint64_t txn : run->durable) {
    if (unioned.find(txn) == unioned.end()) {
      run->Violation(StrFormat(
          "cycle %d: durably acknowledged transaction %llu is missing "
          "from the recovered decision union",
          cycle, static_cast<unsigned long long>(txn)));
    }
  }

  // Invariant 3: the recovered union, replayed in txn order into a
  // fresh UNSHARDED service over the full instance, is bit-identical to
  // the same replay of the truth ledger.
  ArrangementService shadow_recovered(&run->world->instance(),
                                      PolicyKind::kUcb, PolicyParams{},
                                      run->policy_seed);
  ArrangementService shadow_truth(&run->world->instance(),
                                  PolicyKind::kUcb, PolicyParams{},
                                  run->policy_seed);
  std::int64_t t = 0;
  for (const auto& [txn, record] : unioned) {
    const auto it = run->truth.find(txn);
    if (it == run->truth.end()) continue;  // Already a violation above.
    ++t;
    InteractionRecord recovered_record = record;
    recovered_record.t = t;
    InteractionRecord truth_record = it->second;
    truth_record.t = t;
    if (Status st =
            shadow_recovered.RestoreInteraction(recovered_record, true);
        !st.ok()) {
      run->Violation(StrFormat(
          "cycle %d: shadow replay of recovered txn %llu failed: %s",
          cycle, static_cast<unsigned long long>(txn),
          st.ToString().c_str()));
      return;
    }
    if (Status st = shadow_truth.RestoreInteraction(truth_record, true);
        !st.ok()) {
      run->Violation(StrFormat(
          "cycle %d: shadow replay of truth txn %llu failed: %s", cycle,
          static_cast<unsigned long long>(txn), st.ToString().c_str()));
      return;
    }
  }
  if (shadow_recovered.Checkpoint() != shadow_truth.Checkpoint()) {
    run->Violation(StrFormat(
        "cycle %d: the recovered decision union replays to different "
        "learning state (Y, b) than the acknowledged truth",
        cycle));
  }
  if (shadow_recovered.log().ToCsv() != shadow_truth.log().ToCsv()) {
    run->Violation(StrFormat(
        "cycle %d: the recovered decision union replays to a different "
        "interaction log than the acknowledged truth",
        cycle));
  }
  if (shadow_recovered.rounds_served() != shadow_truth.rounds_served()) {
    run->Violation(StrFormat(
        "cycle %d: union replay round counter %lld != truth replay %lld",
        cycle,
        static_cast<long long>(shadow_recovered.rounds_served()),
        static_cast<long long>(shadow_truth.rounds_served())));
  }
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (shadow_recovered.state().remaining(v) !=
        shadow_truth.state().remaining(v)) {
      run->Violation(StrFormat(
          "cycle %d: union replay capacity of event %u (%lld) != truth "
          "replay (%lld)",
          cycle, v,
          static_cast<long long>(shadow_recovered.state().remaining(v)),
          static_cast<long long>(shadow_truth.state().remaining(v))));
      break;
    }
  }

  // Invariant 4: per-event capacities on the recovered shards agree
  // exactly with the unsharded shadow — every cross-shard portion
  // landed where its decision says, nowhere else.
  const ShardRouter& router = service.router();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const int owner = router.OwnerShard(v);
    const ArrangementService* inner = service.shard_service(owner);
    if (inner == nullptr) continue;  // Unreachable: all recovered above.
    const std::int64_t got = inner->state().remaining(router.LocalId(v));
    const std::int64_t want = shadow_recovered.state().remaining(v);
    if (got != want) {
      run->Violation(StrFormat(
          "cycle %d: recovered capacity of event %u on shard %d (%lld) "
          "!= unsharded shadow (%lld)",
          cycle, v, owner, static_cast<long long>(got),
          static_cast<long long>(want)));
      break;
    }
  }
}

}  // namespace

std::string ShardedChaosReport::ToString() const {
  std::string out;
  out += StrFormat("verdict:                  %s\n", ok ? "PASS" : "FAIL");
  out += StrFormat("cycles run:               %d\n", cycles_run);
  out += StrFormat("rounds acked:             %lld\n",
                   static_cast<long long>(rounds_acked));
  out += StrFormat("  durable:                %lld\n",
                   static_cast<long long>(durable_acked));
  out += StrFormat("  non-durable:            %lld\n",
                   static_cast<long long>(nondurable_acked));
  out += StrFormat("serves unavailable:       %lld\n",
                   static_cast<long long>(serves_unavailable));
  out += StrFormat("retry budgets exhausted:  %lld\n",
                   static_cast<long long>(retries_exhausted));
  out += StrFormat("faults injected:          %lld\n",
                   static_cast<long long>(faults_injected));
  out += StrFormat("cross-shard rounds:       %lld\n",
                   static_cast<long long>(cross_shard_rounds));
  out += StrFormat("reservations made:        %lld\n",
                   static_cast<long long>(reservations_made));
  out += StrFormat("reservation refusals:     %lld\n",
                   static_cast<long long>(reservation_refusals));
  out += StrFormat("in-doubt at recovery:     %lld\n",
                   static_cast<long long>(in_doubt_seen));
  out += StrFormat("  resolved committed:     %lld\n",
                   static_cast<long long>(resolved_committed));
  out += StrFormat("  resolved aborted:       %lld\n",
                   static_cast<long long>(resolved_aborted));
  out += StrFormat("interrupted txns:         %lld completed, %lld aborted\n",
                   static_cast<long long>(interrupted_completed),
                   static_cast<long long>(interrupted_aborted));
  out += StrFormat("mid-commit crashes:       %lld\n",
                   static_cast<long long>(mid_commit_crashes));
  out += StrFormat("shard kills/recoveries:   %lld/%lld\n",
                   static_cast<long long>(shard_kills),
                   static_cast<long long>(shard_recoveries));
  out += StrFormat("breaker opens/closes:     %lld/%lld\n",
                   static_cast<long long>(breaker_opens),
                   static_cast<long long>(breaker_closes));
  out += StrFormat("breaker probes:           %lld\n",
                   static_cast<long long>(breaker_probes));
  out += StrFormat("wal reopens:              %lld\n",
                   static_cast<long long>(wal_reopens));
  out += StrFormat("duplicate frames skipped: %lld\n",
                   static_cast<long long>(duplicate_frames_skipped));
  out += StrFormat("torn bytes truncated:     %lld\n",
                   static_cast<long long>(bytes_truncated));
  out += StrFormat("learner merges:           %lld\n",
                   static_cast<long long>(merges));
  if (messages_sent > 0 || partitions_injected > 0) {
    out += StrFormat("messages sent/drop/dup:   %lld/%lld/%lld\n",
                     static_cast<long long>(messages_sent),
                     static_cast<long long>(messages_dropped),
                     static_cast<long long>(messages_duplicated));
    out += StrFormat("dup suppressed:           %lld\n",
                     static_cast<long long>(dup_suppressed));
    out += StrFormat("net timeouts/retries:     %lld/%lld\n",
                     static_cast<long long>(net_timeouts),
                     static_cast<long long>(net_retries));
    out += StrFormat("partitions injected:      %lld\n",
                     static_cast<long long>(partitions_injected));
    out += StrFormat("leases expired:           %lld\n",
                     static_cast<long long>(leases_expired));
    out += StrFormat("force-aborted stages:     %lld (%lld rounds)\n",
                     static_cast<long long>(force_aborted_stages),
                     static_cast<long long>(force_aborted_rounds));
    out += StrFormat("redelivered portions:     %lld\n",
                     static_cast<long long>(redelivered_portions));
  }
  if (rebalances > 0 || rebalances_aborted > 0) {
    out += StrFormat("rebalances ok/aborted:    %lld/%lld\n",
                     static_cast<long long>(rebalances),
                     static_cast<long long>(rebalances_aborted));
    out += StrFormat("events moved:             %lld\n",
                     static_cast<long long>(events_moved));
  }
  for (const std::string& violation : violations) {
    out += "VIOLATION: " + violation + "\n";
  }
  return out;
}

StatusOr<ShardKillMode> ParseKillMode(std::string_view name) {
  if (name == "one-shard") return ShardKillMode::kOneShard;
  if (name == "coordinator-mid-commit") {
    return ShardKillMode::kCoordinatorMidCommit;
  }
  if (name == "all") return ShardKillMode::kAll;
  if (name == "partition") return ShardKillMode::kPartition;
  if (name == "rebalance") return ShardKillMode::kRebalance;
  return InvalidArgumentError(StrFormat(
      "unknown kill mode '%s' (try: one-shard, coordinator-mid-commit, "
      "all, partition, rebalance)",
      std::string(name).c_str()));
}

StatusOr<ShardKillMode> ParseShardKillMode(std::string_view name) {
  return ParseKillMode(name);
}

const std::vector<std::string_view>& ShardKillModeNames() {
  static const std::vector<std::string_view> kNames = {
      "one-shard", "coordinator-mid-commit", "all", "partition",
      "rebalance"};
  return kNames;
}

StatusOr<FaultSchedule> ResolveFaultSchedule(std::string_view spec) {
  auto named = NamedFaultSchedule(spec);
  if (named.ok()) return named;
  if (spec.find('=') == std::string_view::npos) return named.status();
  auto parsed = FaultSchedule::Parse(spec);
  if (parsed.ok()) return parsed;
  return InvalidArgumentError(StrFormat(
      "bad fault schedule '%s': not a named schedule and the inline "
      "spec failed to parse (%s)",
      std::string(spec).c_str(), parsed.status().ToString().c_str()));
}

StatusOr<ShardedChaosReport> RunShardedChaos(
    const ShardedChaosOptions& options) {
  if (options.wal_dir.empty()) {
    return InvalidArgumentError("sharded chaos: wal_dir is required");
  }
  if (options.shards < 1 || options.cycles < 1 ||
      options.rounds_per_cycle < 1) {
    return InvalidArgumentError(
        "sharded chaos: shards, cycles, and rounds_per_cycle must be >= 1");
  }
  FaultInjectionEnv env(Env::Default());
  // kRebalance grows the topology by one shard per cycle; those future
  // shard directories must be fresh too.
  const int max_shards =
      options.shards + (options.kill_mode == ShardKillMode::kRebalance
                            ? options.cycles
                            : 0);
  for (int s = 0; s < max_shards; ++s) {
    const std::string dir = ShardWalDirName(options.wal_dir, s);
    if (auto names = env.ListDir(dir); names.ok()) {
      for (const std::string& name : *names) {
        if (StartsWith(name, "wal-")) {
          return InvalidArgumentError(StrFormat(
              "sharded chaos: %s already holds WAL segments — the run "
              "needs a fresh directory",
              dir.c_str()));
        }
      }
    }
  }

  SyntheticConfig config;
  config.num_events = options.num_events;
  config.dim = options.dim;
  config.horizon = 100000;
  config.seed = DeriveSeed(options.seed, "sharded-world");
  auto world = SyntheticWorld::Create(config);
  if (!world.ok()) return world.status();

  // The fabric for kPartition mode. Declared before the run so it
  // outlives the service (servers unregister from it on destruction).
  SimulatedNetwork net(DeriveSeed(options.seed, "sharded-net"));
  NetFaultSchedule net_schedule;
  if (options.kill_mode == ShardKillMode::kPartition) {
    auto parsed = NetFaultSchedule::Parse(options.net_schedule);
    if (!parsed.ok()) return parsed.status();
    net_schedule = *parsed;
  }

  ShardedRun run;
  run.options = &options;
  run.world = world->get();
  run.env = &env;
  run.policy_seed = DeriveSeed(options.seed, "sharded-policy");

  ShardedOptions service_options;
  service_options.num_shards = options.shards;
  service_options.seed = run.policy_seed;
  service_options.merge_every = options.merge_every;
  run.service = std::make_unique<ShardedArrangementService>(
      &run.world->instance(), service_options);
  run.service->set_crash_after_decision_hook([&run](std::uint64_t txn) {
    if (!run.hook_armed) return false;
    run.hook_armed = false;
    run.hook_fired_txn = txn;
    return true;
  });
  run.ring.resize(64);
  for (std::size_t i = 0; i < run.ring.size(); ++i) {
    run.ring[i] =
        run.world->provider().NextRound(static_cast<std::int64_t>(i) + 1);
  }
  if (options.kill_mode == ShardKillMode::kPartition) {
    ShardTransportOptions topts;
    topts.lease_ticks = options.lease_ticks;
    if (Status st = run.service->ConfigureTransport(&net, topts);
        !st.ok()) {
      return st;
    }
    run.net = &net;
  }

  DurabilityPolicy durability;
  durability.on_wal_error = DurabilityPolicy::OnWalError::kFailRound;
  durability.breaker_enabled = true;
  durability.breaker.failure_threshold = options.breaker_failure_threshold;
  durability.breaker.open_cooldown_ns =
      options.breaker_cooldown_ticks;  // Logical-clock ticks.
  durability.breaker.clock = &ChaosClockNow;

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    if (Status st = run.service->AttachWals(&env, options.wal_dir,
                                            WalOptions{}, durability);
        !st.ok()) {
      return st;
    }
    RearmFaults(&run, cycle, /*lane=*/0);
    if (run.net != nullptr) {
      NetFaultSchedule cycle_faults = net_schedule;
      cycle_faults.seed = DeriveSeed(options.seed, "sharded-net-faults",
                                     static_cast<std::uint64_t>(cycle));
      net.ApplySchedule(cycle_faults);
    }

    DriveShardedCycle(&run, cycle);
    env.DisarmAll();
    if (run.net != nullptr && !run.stop) {
      // Heal whatever the cycle left partitioned, quiet the fault dice,
      // and drain to zero stuck transactions (invariant 8) before the
      // end-of-cycle crash drill.
      net.HealAll();
      net.DisarmFaults();
      DrainTransport(&run, cycle);
    }
    if (!run.stop) DriveShardsUntilReclosed(&run, cycle);
    if (run.stop) break;

    CrashRecoverAllAndVerify(&run, cycle);
    ++run.report.cycles_run;
    if (run.stop) break;
  }

  // Final telemetry sweep (per-shard counters survive kills; the
  // breakers were harvested at each destruction point, plus any still
  // alive now).
  for (int s = 0; s < run.service->num_shards(); ++s) {
    HarvestBreaker(&run, s);
    run.report.wal_reopens += run.service->ShardHealth(s).wal_reopens;
  }
  const ShardedStats stats = run.service->Stats();
  run.report.cross_shard_rounds = stats.cross_shard_rounds;
  run.report.reservations_made = stats.reservations_made;
  run.report.reservation_refusals = stats.reservation_refusals;
  run.report.merges = stats.merges;
  run.report.faults_injected = env.faults_injected();
  run.report.leases_expired = stats.leases_expired;
  run.report.force_aborted_stages = stats.force_aborted;
  run.report.redelivered_portions = stats.redelivered_portions;
  run.report.rebalances = stats.rebalances;
  run.report.rebalances_aborted = stats.rebalances_aborted;
  run.report.events_moved = stats.events_moved;
  if (run.net != nullptr) {
    const NetworkStats net_stats = net.stats();
    run.report.messages_sent = net_stats.sent;
    run.report.messages_dropped = net_stats.dropped;
    run.report.messages_duplicated = net_stats.duplicated;
    run.report.net_timeouts = run.service->TransportTimeouts();
    run.report.net_retries = run.service->TransportRetries();
    run.report.dup_suppressed = run.service->TransportDupSuppressed();
  }
  run.report.ok = run.report.violations.empty() &&
                  run.report.cycles_run == options.cycles;
  return std::move(run.report);
}

}  // namespace fasea
