#include "ebsn/chaos_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/retry.h"
#include "common/strings.h"
#include "ebsn/arrangement_service.h"
#include "ebsn/recovery_manager.h"
#include "rng/seed.h"

namespace fasea {

namespace {

// The breaker's logical clock: one tick per completed round, shared
// process-wide. Only tick *differences* matter (cooldowns), so the
// absence of a reset keeps concurrent harnesses safe while leaving
// single-threaded runs bit-reproducible.
std::atomic<std::int64_t> g_chaos_clock{1};

std::int64_t ChaosClockNow() {
  return g_chaos_clock.load(std::memory_order_relaxed);
}

void TickChaosClock() {
  g_chaos_clock.fetch_add(1, std::memory_order_relaxed);
}

void SleepNanos(std::int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

constexpr std::uint64_t kPerCycleStride = 1024;  // threads < stride.

/// Mutable state one chaos run threads through its phases.
struct ChaosRun {
  const ChaosOptions* options = nullptr;
  SyntheticWorld* world = nullptr;
  FaultInjectionEnv* env = nullptr;
  std::unique_ptr<ArrangementService> service;
  std::vector<RoundContext> ring;  // Pre-generated round contexts.
  std::uint64_t policy_seed = 0;

  // The run-level truth: every acknowledged round keyed by t. A round id
  // re-served after a crash lost its non-durable predecessor — the new
  // record overwrites it, exactly as the recovered world re-decided it.
  std::map<std::int64_t, InteractionRecord> truth;
  std::set<std::int64_t> durable;  // Round ids acked durable.
  std::mutex ledger_mu;

  std::atomic<bool> stop{false};
  ChaosReport report;
  std::mutex report_mu;

  void Violation(std::string message) {
    std::lock_guard<std::mutex> lock(report_mu);
    report.violations.push_back(std::move(message));
    stop.store(true, std::memory_order_relaxed);
  }
};

RetryOptions ChaosRetryOptions(const ChaosOptions& options) {
  RetryOptions retry;
  // Enough budget that consecutive failures trip the breaker before the
  // budget runs out (the open breaker then acknowledges non-durably, so
  // every submit loop terminates).
  retry.max_attempts = options.breaker_failure_threshold + 5;
  retry.initial_backoff_ns = 50'000;   // 50 µs
  retry.max_backoff_ns = 1'000'000;    // 1 ms
  return retry;
}

/// Submits `feedback` until acknowledged; counts exhausted retry budgets.
/// Returns false (with a violation recorded) on a non-retryable failure.
bool SubmitUntilAcked(ChaosRun* run, RetryPolicy* retry,
                      const Feedback& feedback, FeedbackResult* result) {
  retry->Reset();
  Status st = run->service->SubmitFeedback(feedback, result);
  while (!st.ok()) {
    if (!IsRetryable(st)) {
      run->Violation("feedback failed non-retryably: " + st.ToString());
      return false;
    }
    if (retry->ShouldRetry(st)) {
      SleepNanos(retry->NextDelayNanos());
    } else {
      // Budget spent with the round still pending: report it, then keep
      // going — abandoning the round would wedge the protocol, and the
      // breaker guarantees forward progress (consecutive failures trip
      // it, and an open breaker acknowledges non-durably).
      std::lock_guard<std::mutex> lock(run->report_mu);
      ++run->report.retries_exhausted;
      retry->Reset();
    }
    st = run->service->SubmitFeedback(feedback, result);
  }
  return true;
}

/// Records the acknowledged round in the truth ledger. The record is
/// rebuilt from the worker's own round/arrangement/feedback — exactly
/// the fields the service encodes — rather than read back from the
/// shared log, which other workers may append to between this worker's
/// acknowledgement and the read.
void RecordAck(ChaosRun* run, const FeedbackResult& result,
               const RoundContext& round, const Arrangement& arrangement,
               const Feedback& feedback) {
  InteractionRecord record;
  record.t = result.round;
  record.user_id = round.user_id;
  record.user_capacity = round.user_capacity;
  record.arrangement = arrangement;
  record.feedback = feedback;
  for (EventId v : arrangement) {
    const auto row = round.contexts.Row(v);
    record.contexts.emplace_back(row.begin(), row.end());
  }
  std::lock_guard<std::mutex> lock(run->ledger_mu);
  run->truth[result.round] = std::move(record);
  if (result.durable) {
    run->durable.insert(result.round);
  }
}

/// Closed-loop drive: `threads` workers complete `target` rounds.
void DrivePhase(ChaosRun* run, int cycle, int threads,
                std::int64_t target) {
  std::atomic<std::int64_t> completed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([run, cycle, w, target, &completed] {
      const std::uint64_t lane =
          static_cast<std::uint64_t>(cycle) * kPerCycleStride +
          static_cast<std::uint64_t>(w);
      Pcg64 fb_rng(DeriveSeed(run->options->seed, "chaos-fb", lane),
                   static_cast<std::uint64_t>(w));
      RetryPolicy retry(ChaosRetryOptions(*run->options),
                        DeriveSeed(run->options->seed, "chaos-retry", lane));
      while (!run->stop.load(std::memory_order_relaxed) &&
             completed.load(std::memory_order_relaxed) < target) {
        const RoundContext& round =
            run->ring[static_cast<std::size_t>(
                          completed.load(std::memory_order_relaxed)) %
                      run->ring.size()];
        auto arrangement = run->service->ServeUser(
            round.user_id, round.user_capacity, round.contexts);
        if (!arrangement.ok()) {
          const StatusCode code = arrangement.status().code();
          if (code == StatusCode::kFailedPrecondition) {
            std::lock_guard<std::mutex> lock(run->report_mu);
            ++run->report.contention_rejects;
          } else if (code == StatusCode::kResourceExhausted) {
            std::lock_guard<std::mutex> lock(run->report_mu);
            ++run->report.rounds_shed;
          } else {
            run->Violation("serve failed unexpectedly: " +
                           arrangement.status().ToString());
            return;
          }
          std::this_thread::yield();
          continue;
        }
        const Feedback feedback = run->world->feedback().Sample(
            1, round.contexts, *arrangement, fb_rng);
        FeedbackResult result;
        if (!SubmitUntilAcked(run, &retry, feedback, &result)) return;
        RecordAck(run, result, round, *arrangement, feedback);
        TickChaosClock();
        {
          std::lock_guard<std::mutex> lock(run->report_mu);
          ++run->report.rounds_acked;
          if (result.durable) {
            ++run->report.durable_acked;
          } else {
            ++run->report.nondurable_acked;
          }
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

/// Step 2: faults are disarmed; drive single-threaded until the breaker
/// is closed and a durable acknowledgement proves the WAL is live again.
void DriveUntilReclosed(ChaosRun* run, int cycle) {
  RetryPolicy retry(
      ChaosRetryOptions(*run->options),
      DeriveSeed(run->options->seed, "chaos-reclose",
                 static_cast<std::uint64_t>(cycle)));
  Pcg64 fb_rng(DeriveSeed(run->options->seed, "chaos-reclose-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/7);
  for (std::int64_t i = 0; i < run->options->reclose_budget; ++i) {
    if (run->stop.load(std::memory_order_relaxed)) return;
    const RoundContext& round =
        run->ring[static_cast<std::size_t>(i) % run->ring.size()];
    auto arrangement = run->service->ServeUser(
        round.user_id, round.user_capacity, round.contexts);
    if (!arrangement.ok()) {
      run->Violation("serve failed during re-close drive: " +
                     arrangement.status().ToString());
      return;
    }
    const Feedback feedback = run->world->feedback().Sample(
        1, round.contexts, *arrangement, fb_rng);
    FeedbackResult result;
    if (!SubmitUntilAcked(run, &retry, feedback, &result)) return;
    RecordAck(run, result, round, *arrangement, feedback);
    TickChaosClock();
    {
      std::lock_guard<std::mutex> lock(run->report_mu);
      ++run->report.rounds_acked;
      if (result.durable) {
        ++run->report.durable_acked;
      } else {
        ++run->report.nondurable_acked;
      }
    }
    if (result.durable &&
        run->service->breaker()->state() ==
            CircuitBreaker::State::kClosed) {
      return;
    }
  }
  run->Violation(StrFormat(
      "cycle %d: breaker failed to re-close within %lld rounds after "
      "faults were disarmed",
      cycle, static_cast<long long>(run->options->reclose_budget)));
}

void CheckCapacitiesNonNegative(ChaosRun* run, const ArrangementService& s,
                                const char* which, int cycle) {
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (s.state().remaining(v) < 0) {
      run->Violation(StrFormat(
          "cycle %d: %s service has negative remaining capacity for "
          "event %u",
          cycle, which, v));
    }
  }
}

/// The crash-and-recover step: snapshot counters, destroy the live
/// service, recover from the WAL alone, and check every invariant.
void CrashRecoverAndVerify(ChaosRun* run, int cycle) {
  const ChaosOptions& options = *run->options;

  // Snapshot the live side before "crashing".
  {
    std::lock_guard<std::mutex> lock(run->report_mu);
    run->report.breaker_opens += run->service->breaker()->opens();
    run->report.breaker_closes += run->service->breaker()->closes();
    run->report.breaker_probes += run->service->breaker()->probes();
    run->report.wal_reopens += run->service->wal_reopens();
  }
  CheckCapacitiesNonNegative(run, *run->service, "live", cycle);
  run->service.reset();  // Crash: in-memory state is gone.

  RecoveryOptions ropts;
  ropts.seed = run->policy_seed;
  auto recovered = RecoverArrangementService(
      &run->world->instance(), run->env, options.wal_dir, "", ropts);
  if (!recovered.ok()) {
    run->Violation(StrFormat("cycle %d: recovery failed: %s", cycle,
                             recovered.status().ToString().c_str()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(run->report_mu);
    run->report.records_recovered = recovered->report.records_scanned;
    run->report.duplicate_frames_skipped +=
        recovered->report.duplicate_frames_skipped;
    run->report.bytes_truncated += recovered->report.bytes_truncated;
  }
  ArrangementService& service = *recovered->service;
  CheckCapacitiesNonNegative(run, service, "recovered", cycle);

  // Invariant: the WAL never invents rounds, and no durable ack is lost.
  std::set<std::int64_t> recovered_ids;
  for (std::size_t i = 0; i < service.log().size(); ++i) {
    const std::int64_t t = service.log().record(i).t;
    recovered_ids.insert(t);
    if (run->truth.find(t) == run->truth.end()) {
      run->Violation(StrFormat(
          "cycle %d: recovered round %lld was never acknowledged", cycle,
          static_cast<long long>(t)));
    }
  }
  for (const std::int64_t t : run->durable) {
    if (recovered_ids.find(t) == recovered_ids.end()) {
      run->Violation(StrFormat(
          "cycle %d: durably acknowledged round %lld is missing from "
          "the recovered log",
          cycle, static_cast<long long>(t)));
    }
  }

  // Invariant: recovery is bit-identical to a shadow service that
  // replays exactly the recovered rounds from the in-memory truth.
  ArrangementService shadow(&run->world->instance(), PolicyKind::kUcb,
                            PolicyParams{}, run->policy_seed);
  for (const std::int64_t t : recovered_ids) {
    const auto it = run->truth.find(t);
    if (it == run->truth.end()) continue;  // Already a violation above.
    if (Status st = shadow.RestoreInteraction(it->second, /*learn=*/true);
        !st.ok()) {
      run->Violation(StrFormat("cycle %d: shadow replay of round %lld "
                               "failed: %s",
                               cycle, static_cast<long long>(t),
                               st.ToString().c_str()));
      return;
    }
  }
  if (service.Checkpoint() != shadow.Checkpoint()) {
    run->Violation(StrFormat(
        "cycle %d: recovered learning state (Y, b) differs from the "
        "shadow replay of the durable history",
        cycle));
  }
  if (service.log().ToCsv() != shadow.log().ToCsv()) {
    run->Violation(StrFormat(
        "cycle %d: recovered interaction log differs from the shadow "
        "replay",
        cycle));
  }
  if (service.rounds_served() != shadow.rounds_served()) {
    run->Violation(StrFormat(
        "cycle %d: recovered round counter %lld != shadow %lld", cycle,
        static_cast<long long>(service.rounds_served()),
        static_cast<long long>(shadow.rounds_served())));
  }
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (service.state().remaining(v) != shadow.state().remaining(v)) {
      run->Violation(StrFormat(
          "cycle %d: recovered capacity of event %u (%lld) != shadow "
          "(%lld)",
          cycle, v,
          static_cast<long long>(service.state().remaining(v)),
          static_cast<long long>(shadow.state().remaining(v))));
      break;
    }
  }

  // The truth going forward is the recovered world: round ids above the
  // recovered counter were acknowledged non-durably and died with the
  // crash — the next cycle re-decides them.
  run->service = std::move(recovered->service);
}

Status AttachFreshWal(ChaosRun* run) {
  FaultInjectionEnv* env = run->env;
  const std::string dir = run->options->wal_dir;
  auto wal = WalWriter::Open(env, dir);
  if (!wal.ok()) return wal.status();
  DurabilityPolicy durability;
  durability.on_wal_error = DurabilityPolicy::OnWalError::kFailRound;
  durability.breaker_enabled = true;
  durability.breaker.failure_threshold =
      run->options->breaker_failure_threshold;
  durability.breaker.open_cooldown_ns =
      run->options->breaker_cooldown_ticks;  // Logical-clock ticks.
  durability.breaker.clock = &ChaosClockNow;
  run->service->AttachWal(
      std::move(wal).value(), durability,
      [env, dir] { return WalWriter::Open(env, dir); });
  return Status::Ok();
}

}  // namespace

std::string ChaosReport::ToString() const {
  std::string out;
  out += StrFormat("verdict:                  %s\n",
                   ok ? "PASS" : "FAIL");
  out += StrFormat("cycles run:               %d\n", cycles_run);
  out += StrFormat("rounds acked:             %lld\n",
                   static_cast<long long>(rounds_acked));
  out += StrFormat("  durable:                %lld\n",
                   static_cast<long long>(durable_acked));
  out += StrFormat("  non-durable:            %lld\n",
                   static_cast<long long>(nondurable_acked));
  out += StrFormat("rounds shed:              %lld\n",
                   static_cast<long long>(rounds_shed));
  out += StrFormat("contention rejects:       %lld\n",
                   static_cast<long long>(contention_rejects));
  out += StrFormat("retry budgets exhausted:  %lld\n",
                   static_cast<long long>(retries_exhausted));
  out += StrFormat("faults injected:          %lld\n",
                   static_cast<long long>(faults_injected));
  out += StrFormat("breaker opens/closes:     %lld/%lld\n",
                   static_cast<long long>(breaker_opens),
                   static_cast<long long>(breaker_closes));
  out += StrFormat("breaker probes:           %lld\n",
                   static_cast<long long>(breaker_probes));
  out += StrFormat("wal reopens:              %lld\n",
                   static_cast<long long>(wal_reopens));
  out += StrFormat("records recovered:        %lld\n",
                   static_cast<long long>(records_recovered));
  out += StrFormat("duplicate frames skipped: %lld\n",
                   static_cast<long long>(duplicate_frames_skipped));
  out += StrFormat("torn bytes truncated:     %lld\n",
                   static_cast<long long>(bytes_truncated));
  for (const std::string& violation : violations) {
    out += "VIOLATION: " + violation + "\n";
  }
  return out;
}

StatusOr<FaultSchedule> NamedFaultSchedule(std::string_view name) {
  if (name == "clean") return FaultSchedule::Parse("");
  if (name == "flaky-appends") {
    return FaultSchedule::Parse(
        "append_error_rate=0.05;short_write_rate=0.02");
  }
  if (name == "dying-disk") return FaultSchedule::Parse("sync_fail_at=25");
  if (name == "torn-tail") {
    return FaultSchedule::Parse(
        "short_write_at=15;short_write_keep_bytes=10;"
        "append_error_rate=0.02");
  }
  if (name == "slow-disk") {
    return FaultSchedule::Parse(
        "append_latency_ns=20000;sync_latency_ns=30000;"
        "latency_jitter_ns=10000;sync_error_rate=0.02");
  }
  return InvalidArgumentError(
      StrFormat("unknown fault schedule '%s' (try: clean, flaky-appends, "
                "dying-disk, torn-tail, slow-disk)",
                std::string(name).c_str()));
}

const std::vector<std::string_view>& NamedFaultScheduleNames() {
  static const std::vector<std::string_view> kNames = {
      "clean", "flaky-appends", "dying-disk", "torn-tail", "slow-disk"};
  return kNames;
}

StatusOr<ChaosReport> RunChaos(const ChaosOptions& options) {
  if (options.wal_dir.empty()) {
    return InvalidArgumentError("chaos: wal_dir is required");
  }
  if (options.threads < 1 || options.cycles < 1 ||
      options.rounds_per_cycle < 1) {
    return InvalidArgumentError(
        "chaos: threads, cycles, and rounds_per_cycle must be >= 1");
  }
  FaultInjectionEnv env(Env::Default());
  if (auto names = env.ListDir(options.wal_dir); names.ok()) {
    for (const std::string& name : *names) {
      if (StartsWith(name, "wal-")) {
        return InvalidArgumentError(
            "chaos: wal_dir already holds WAL segments — the run needs a "
            "fresh directory");
      }
    }
  }

  SyntheticConfig config;
  config.num_events = options.num_events;
  config.dim = options.dim;
  config.horizon = 100000;
  config.seed = DeriveSeed(options.seed, "chaos-world");
  auto world = SyntheticWorld::Create(config);
  if (!world.ok()) return world.status();

  ChaosRun run;
  run.options = &options;
  run.world = world->get();
  run.env = &env;
  run.policy_seed = DeriveSeed(options.seed, "chaos-policy");
  run.service = std::make_unique<ArrangementService>(
      &run.world->instance(), PolicyKind::kUcb, PolicyParams{},
      run.policy_seed);
  run.ring.resize(64);
  for (std::size_t i = 0; i < run.ring.size(); ++i) {
    run.ring[i] =
        run.world->provider().NextRound(static_cast<std::int64_t>(i) + 1);
  }
  if (options.max_inflight > 0) {
    OverloadOptions overload;
    overload.max_inflight = options.max_inflight;
    run.service->ConfigureOverload(overload);
  }

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    if (Status st = AttachFreshWal(&run); !st.ok()) return st;

    FaultSchedule schedule = options.schedule;
    schedule.seed = DeriveSeed(options.seed, "chaos-faults",
                               static_cast<std::uint64_t>(cycle));
    env.ApplySchedule(schedule);

    DrivePhase(&run, cycle, options.threads, options.rounds_per_cycle);
    env.DisarmAll();
    if (!run.stop.load(std::memory_order_relaxed)) {
      DriveUntilReclosed(&run, cycle);
    }
    if (run.stop.load(std::memory_order_relaxed)) break;

    CrashRecoverAndVerify(&run, cycle);
    ++run.report.cycles_run;
    if (run.stop.load(std::memory_order_relaxed) ||
        run.service == nullptr) {
      break;
    }
    if (options.max_inflight > 0) {
      OverloadOptions overload;
      overload.max_inflight = options.max_inflight;
      run.service->ConfigureOverload(overload);
    }
  }

  run.report.faults_injected = env.faults_injected();
  run.report.ok = run.report.violations.empty() &&
                  run.report.cycles_run == options.cycles;
  return std::move(run.report);
}

}  // namespace fasea
