#include "ebsn/chaos_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/retry.h"
#include "common/strings.h"
#include "ebsn/arrangement_service.h"
#include "ebsn/recovery_manager.h"
#include "ebsn/sharded_service.h"
#include "rng/seed.h"

namespace fasea {

namespace {

// The breaker's logical clock: one tick per completed round, shared
// process-wide. Only tick *differences* matter (cooldowns), so the
// absence of a reset keeps concurrent harnesses safe while leaving
// single-threaded runs bit-reproducible.
std::atomic<std::int64_t> g_chaos_clock{1};

std::int64_t ChaosClockNow() {
  return g_chaos_clock.load(std::memory_order_relaxed);
}

void TickChaosClock() {
  g_chaos_clock.fetch_add(1, std::memory_order_relaxed);
}

void SleepNanos(std::int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

constexpr std::uint64_t kPerCycleStride = 1024;  // threads < stride.

/// Mutable state one chaos run threads through its phases.
struct ChaosRun {
  const ChaosOptions* options = nullptr;
  SyntheticWorld* world = nullptr;
  FaultInjectionEnv* env = nullptr;
  std::unique_ptr<ArrangementService> service;
  std::vector<RoundContext> ring;  // Pre-generated round contexts.
  std::uint64_t policy_seed = 0;

  // The run-level truth: every acknowledged round keyed by t. A round id
  // re-served after a crash lost its non-durable predecessor — the new
  // record overwrites it, exactly as the recovered world re-decided it.
  std::map<std::int64_t, InteractionRecord> truth;
  std::set<std::int64_t> durable;  // Round ids acked durable.
  std::mutex ledger_mu;

  std::atomic<bool> stop{false};
  ChaosReport report;
  std::mutex report_mu;

  void Violation(std::string message) {
    std::lock_guard<std::mutex> lock(report_mu);
    report.violations.push_back(std::move(message));
    stop.store(true, std::memory_order_relaxed);
  }
};

RetryOptions ChaosRetryOptions(const ChaosOptions& options) {
  RetryOptions retry;
  // Enough budget that consecutive failures trip the breaker before the
  // budget runs out (the open breaker then acknowledges non-durably, so
  // every submit loop terminates).
  retry.max_attempts = options.breaker_failure_threshold + 5;
  retry.initial_backoff_ns = 50'000;   // 50 µs
  retry.max_backoff_ns = 1'000'000;    // 1 ms
  return retry;
}

/// Submits `feedback` until acknowledged; counts exhausted retry budgets.
/// Returns false (with a violation recorded) on a non-retryable failure.
bool SubmitUntilAcked(ChaosRun* run, RetryPolicy* retry,
                      const Feedback& feedback, FeedbackResult* result) {
  retry->Reset();
  Status st = run->service->SubmitFeedback(feedback, result);
  while (!st.ok()) {
    if (!IsRetryable(st)) {
      run->Violation("feedback failed non-retryably: " + st.ToString());
      return false;
    }
    if (retry->ShouldRetry(st)) {
      SleepNanos(retry->NextDelayNanos());
    } else {
      // Budget spent with the round still pending: report it, then keep
      // going — abandoning the round would wedge the protocol, and the
      // breaker guarantees forward progress (consecutive failures trip
      // it, and an open breaker acknowledges non-durably).
      std::lock_guard<std::mutex> lock(run->report_mu);
      ++run->report.retries_exhausted;
      retry->Reset();
    }
    st = run->service->SubmitFeedback(feedback, result);
  }
  return true;
}

/// Records the acknowledged round in the truth ledger. The record is
/// rebuilt from the worker's own round/arrangement/feedback — exactly
/// the fields the service encodes — rather than read back from the
/// shared log, which other workers may append to between this worker's
/// acknowledgement and the read.
void RecordAck(ChaosRun* run, const FeedbackResult& result,
               const RoundContext& round, const Arrangement& arrangement,
               const Feedback& feedback) {
  InteractionRecord record;
  record.t = result.round;
  record.user_id = round.user_id;
  record.user_capacity = round.user_capacity;
  record.arrangement = arrangement;
  record.feedback = feedback;
  for (EventId v : arrangement) {
    const auto row = round.contexts.Row(v);
    record.contexts.emplace_back(row.begin(), row.end());
  }
  std::lock_guard<std::mutex> lock(run->ledger_mu);
  run->truth[result.round] = std::move(record);
  if (result.durable) {
    run->durable.insert(result.round);
  }
}

/// Closed-loop drive: `threads` workers complete `target` rounds.
void DrivePhase(ChaosRun* run, int cycle, int threads,
                std::int64_t target) {
  std::atomic<std::int64_t> completed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([run, cycle, w, target, &completed] {
      const std::uint64_t lane =
          static_cast<std::uint64_t>(cycle) * kPerCycleStride +
          static_cast<std::uint64_t>(w);
      Pcg64 fb_rng(DeriveSeed(run->options->seed, "chaos-fb", lane),
                   static_cast<std::uint64_t>(w));
      RetryPolicy retry(ChaosRetryOptions(*run->options),
                        DeriveSeed(run->options->seed, "chaos-retry", lane));
      while (!run->stop.load(std::memory_order_relaxed) &&
             completed.load(std::memory_order_relaxed) < target) {
        const RoundContext& round =
            run->ring[static_cast<std::size_t>(
                          completed.load(std::memory_order_relaxed)) %
                      run->ring.size()];
        auto arrangement = run->service->ServeUser(
            round.user_id, round.user_capacity, round.contexts);
        if (!arrangement.ok()) {
          const StatusCode code = arrangement.status().code();
          if (code == StatusCode::kFailedPrecondition) {
            std::lock_guard<std::mutex> lock(run->report_mu);
            ++run->report.contention_rejects;
          } else if (code == StatusCode::kResourceExhausted) {
            std::lock_guard<std::mutex> lock(run->report_mu);
            ++run->report.rounds_shed;
          } else {
            run->Violation("serve failed unexpectedly: " +
                           arrangement.status().ToString());
            return;
          }
          std::this_thread::yield();
          continue;
        }
        const Feedback feedback = run->world->feedback().Sample(
            1, round.contexts, *arrangement, fb_rng);
        FeedbackResult result;
        if (!SubmitUntilAcked(run, &retry, feedback, &result)) return;
        RecordAck(run, result, round, *arrangement, feedback);
        TickChaosClock();
        {
          std::lock_guard<std::mutex> lock(run->report_mu);
          ++run->report.rounds_acked;
          if (result.durable) {
            ++run->report.durable_acked;
          } else {
            ++run->report.nondurable_acked;
          }
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

/// Step 2: faults are disarmed; drive single-threaded until the breaker
/// is closed and a durable acknowledgement proves the WAL is live again.
void DriveUntilReclosed(ChaosRun* run, int cycle) {
  RetryPolicy retry(
      ChaosRetryOptions(*run->options),
      DeriveSeed(run->options->seed, "chaos-reclose",
                 static_cast<std::uint64_t>(cycle)));
  Pcg64 fb_rng(DeriveSeed(run->options->seed, "chaos-reclose-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/7);
  for (std::int64_t i = 0; i < run->options->reclose_budget; ++i) {
    if (run->stop.load(std::memory_order_relaxed)) return;
    const RoundContext& round =
        run->ring[static_cast<std::size_t>(i) % run->ring.size()];
    auto arrangement = run->service->ServeUser(
        round.user_id, round.user_capacity, round.contexts);
    if (!arrangement.ok()) {
      run->Violation("serve failed during re-close drive: " +
                     arrangement.status().ToString());
      return;
    }
    const Feedback feedback = run->world->feedback().Sample(
        1, round.contexts, *arrangement, fb_rng);
    FeedbackResult result;
    if (!SubmitUntilAcked(run, &retry, feedback, &result)) return;
    RecordAck(run, result, round, *arrangement, feedback);
    TickChaosClock();
    {
      std::lock_guard<std::mutex> lock(run->report_mu);
      ++run->report.rounds_acked;
      if (result.durable) {
        ++run->report.durable_acked;
      } else {
        ++run->report.nondurable_acked;
      }
    }
    if (result.durable &&
        run->service->breaker()->state() ==
            CircuitBreaker::State::kClosed) {
      return;
    }
  }
  run->Violation(StrFormat(
      "cycle %d: breaker failed to re-close within %lld rounds after "
      "faults were disarmed",
      cycle, static_cast<long long>(run->options->reclose_budget)));
}

void CheckCapacitiesNonNegative(ChaosRun* run, const ArrangementService& s,
                                const char* which, int cycle) {
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (s.state().remaining(v) < 0) {
      run->Violation(StrFormat(
          "cycle %d: %s service has negative remaining capacity for "
          "event %u",
          cycle, which, v));
    }
  }
}

/// The crash-and-recover step: snapshot counters, destroy the live
/// service, recover from the WAL alone, and check every invariant.
void CrashRecoverAndVerify(ChaosRun* run, int cycle) {
  const ChaosOptions& options = *run->options;

  // Snapshot the live side before "crashing".
  {
    std::lock_guard<std::mutex> lock(run->report_mu);
    run->report.breaker_opens += run->service->breaker()->opens();
    run->report.breaker_closes += run->service->breaker()->closes();
    run->report.breaker_probes += run->service->breaker()->probes();
    run->report.wal_reopens += run->service->wal_reopens();
  }
  CheckCapacitiesNonNegative(run, *run->service, "live", cycle);
  run->service.reset();  // Crash: in-memory state is gone.

  RecoveryOptions ropts;
  ropts.seed = run->policy_seed;
  auto recovered = RecoverArrangementService(
      &run->world->instance(), run->env, options.wal_dir, "", ropts);
  if (!recovered.ok()) {
    run->Violation(StrFormat("cycle %d: recovery failed: %s", cycle,
                             recovered.status().ToString().c_str()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(run->report_mu);
    run->report.records_recovered = recovered->report.records_scanned;
    run->report.duplicate_frames_skipped +=
        recovered->report.duplicate_frames_skipped;
    run->report.bytes_truncated += recovered->report.bytes_truncated;
  }
  ArrangementService& service = *recovered->service;
  CheckCapacitiesNonNegative(run, service, "recovered", cycle);

  // Invariant: the WAL never invents rounds, and no durable ack is lost.
  std::set<std::int64_t> recovered_ids;
  for (std::size_t i = 0; i < service.log().size(); ++i) {
    const std::int64_t t = service.log().record(i).t;
    recovered_ids.insert(t);
    if (run->truth.find(t) == run->truth.end()) {
      run->Violation(StrFormat(
          "cycle %d: recovered round %lld was never acknowledged", cycle,
          static_cast<long long>(t)));
    }
  }
  for (const std::int64_t t : run->durable) {
    if (recovered_ids.find(t) == recovered_ids.end()) {
      run->Violation(StrFormat(
          "cycle %d: durably acknowledged round %lld is missing from "
          "the recovered log",
          cycle, static_cast<long long>(t)));
    }
  }

  // Invariant: recovery is bit-identical to a shadow service that
  // replays exactly the recovered rounds from the in-memory truth.
  ArrangementService shadow(&run->world->instance(), PolicyKind::kUcb,
                            PolicyParams{}, run->policy_seed);
  for (const std::int64_t t : recovered_ids) {
    const auto it = run->truth.find(t);
    if (it == run->truth.end()) continue;  // Already a violation above.
    if (Status st = shadow.RestoreInteraction(it->second, /*learn=*/true);
        !st.ok()) {
      run->Violation(StrFormat("cycle %d: shadow replay of round %lld "
                               "failed: %s",
                               cycle, static_cast<long long>(t),
                               st.ToString().c_str()));
      return;
    }
  }
  if (service.Checkpoint() != shadow.Checkpoint()) {
    run->Violation(StrFormat(
        "cycle %d: recovered learning state (Y, b) differs from the "
        "shadow replay of the durable history",
        cycle));
  }
  if (service.log().ToCsv() != shadow.log().ToCsv()) {
    run->Violation(StrFormat(
        "cycle %d: recovered interaction log differs from the shadow "
        "replay",
        cycle));
  }
  if (service.rounds_served() != shadow.rounds_served()) {
    run->Violation(StrFormat(
        "cycle %d: recovered round counter %lld != shadow %lld", cycle,
        static_cast<long long>(service.rounds_served()),
        static_cast<long long>(shadow.rounds_served())));
  }
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (service.state().remaining(v) != shadow.state().remaining(v)) {
      run->Violation(StrFormat(
          "cycle %d: recovered capacity of event %u (%lld) != shadow "
          "(%lld)",
          cycle, v,
          static_cast<long long>(service.state().remaining(v)),
          static_cast<long long>(shadow.state().remaining(v))));
      break;
    }
  }

  // The truth going forward is the recovered world: round ids above the
  // recovered counter were acknowledged non-durably and died with the
  // crash — the next cycle re-decides them.
  run->service = std::move(recovered->service);
}

Status AttachFreshWal(ChaosRun* run) {
  FaultInjectionEnv* env = run->env;
  const std::string dir = run->options->wal_dir;
  auto wal = WalWriter::Open(env, dir);
  if (!wal.ok()) return wal.status();
  DurabilityPolicy durability;
  durability.on_wal_error = DurabilityPolicy::OnWalError::kFailRound;
  durability.breaker_enabled = true;
  durability.breaker.failure_threshold =
      run->options->breaker_failure_threshold;
  durability.breaker.open_cooldown_ns =
      run->options->breaker_cooldown_ticks;  // Logical-clock ticks.
  durability.breaker.clock = &ChaosClockNow;
  run->service->AttachWal(
      std::move(wal).value(), durability,
      [env, dir] { return WalWriter::Open(env, dir); });
  return Status::Ok();
}

}  // namespace

std::string ChaosReport::ToString() const {
  std::string out;
  out += StrFormat("verdict:                  %s\n",
                   ok ? "PASS" : "FAIL");
  out += StrFormat("cycles run:               %d\n", cycles_run);
  out += StrFormat("rounds acked:             %lld\n",
                   static_cast<long long>(rounds_acked));
  out += StrFormat("  durable:                %lld\n",
                   static_cast<long long>(durable_acked));
  out += StrFormat("  non-durable:            %lld\n",
                   static_cast<long long>(nondurable_acked));
  out += StrFormat("rounds shed:              %lld\n",
                   static_cast<long long>(rounds_shed));
  out += StrFormat("contention rejects:       %lld\n",
                   static_cast<long long>(contention_rejects));
  out += StrFormat("retry budgets exhausted:  %lld\n",
                   static_cast<long long>(retries_exhausted));
  out += StrFormat("faults injected:          %lld\n",
                   static_cast<long long>(faults_injected));
  out += StrFormat("breaker opens/closes:     %lld/%lld\n",
                   static_cast<long long>(breaker_opens),
                   static_cast<long long>(breaker_closes));
  out += StrFormat("breaker probes:           %lld\n",
                   static_cast<long long>(breaker_probes));
  out += StrFormat("wal reopens:              %lld\n",
                   static_cast<long long>(wal_reopens));
  out += StrFormat("records recovered:        %lld\n",
                   static_cast<long long>(records_recovered));
  out += StrFormat("duplicate frames skipped: %lld\n",
                   static_cast<long long>(duplicate_frames_skipped));
  out += StrFormat("torn bytes truncated:     %lld\n",
                   static_cast<long long>(bytes_truncated));
  for (const std::string& violation : violations) {
    out += "VIOLATION: " + violation + "\n";
  }
  return out;
}

StatusOr<FaultSchedule> NamedFaultSchedule(std::string_view name) {
  if (name == "clean") return FaultSchedule::Parse("");
  if (name == "flaky-appends") {
    return FaultSchedule::Parse(
        "append_error_rate=0.05;short_write_rate=0.02");
  }
  if (name == "dying-disk") return FaultSchedule::Parse("sync_fail_at=25");
  if (name == "torn-tail") {
    return FaultSchedule::Parse(
        "short_write_at=15;short_write_keep_bytes=10;"
        "append_error_rate=0.02");
  }
  if (name == "slow-disk") {
    return FaultSchedule::Parse(
        "append_latency_ns=20000;sync_latency_ns=30000;"
        "latency_jitter_ns=10000;sync_error_rate=0.02");
  }
  return InvalidArgumentError(
      StrFormat("unknown fault schedule '%s' (try: clean, flaky-appends, "
                "dying-disk, torn-tail, slow-disk)",
                std::string(name).c_str()));
}

const std::vector<std::string_view>& NamedFaultScheduleNames() {
  static const std::vector<std::string_view> kNames = {
      "clean", "flaky-appends", "dying-disk", "torn-tail", "slow-disk"};
  return kNames;
}

StatusOr<ChaosReport> RunChaos(const ChaosOptions& options) {
  if (options.wal_dir.empty()) {
    return InvalidArgumentError("chaos: wal_dir is required");
  }
  if (options.threads < 1 || options.cycles < 1 ||
      options.rounds_per_cycle < 1) {
    return InvalidArgumentError(
        "chaos: threads, cycles, and rounds_per_cycle must be >= 1");
  }
  FaultInjectionEnv env(Env::Default());
  if (auto names = env.ListDir(options.wal_dir); names.ok()) {
    for (const std::string& name : *names) {
      if (StartsWith(name, "wal-")) {
        return InvalidArgumentError(
            "chaos: wal_dir already holds WAL segments — the run needs a "
            "fresh directory");
      }
    }
  }

  SyntheticConfig config;
  config.num_events = options.num_events;
  config.dim = options.dim;
  config.horizon = 100000;
  config.seed = DeriveSeed(options.seed, "chaos-world");
  auto world = SyntheticWorld::Create(config);
  if (!world.ok()) return world.status();

  ChaosRun run;
  run.options = &options;
  run.world = world->get();
  run.env = &env;
  run.policy_seed = DeriveSeed(options.seed, "chaos-policy");
  run.service = std::make_unique<ArrangementService>(
      &run.world->instance(), PolicyKind::kUcb, PolicyParams{},
      run.policy_seed);
  run.ring.resize(64);
  for (std::size_t i = 0; i < run.ring.size(); ++i) {
    run.ring[i] =
        run.world->provider().NextRound(static_cast<std::int64_t>(i) + 1);
  }
  if (options.max_inflight > 0) {
    OverloadOptions overload;
    overload.max_inflight = options.max_inflight;
    run.service->ConfigureOverload(overload);
  }

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    if (Status st = AttachFreshWal(&run); !st.ok()) return st;

    FaultSchedule schedule = options.schedule;
    schedule.seed = DeriveSeed(options.seed, "chaos-faults",
                               static_cast<std::uint64_t>(cycle));
    env.ApplySchedule(schedule);

    DrivePhase(&run, cycle, options.threads, options.rounds_per_cycle);
    env.DisarmAll();
    if (!run.stop.load(std::memory_order_relaxed)) {
      DriveUntilReclosed(&run, cycle);
    }
    if (run.stop.load(std::memory_order_relaxed)) break;

    CrashRecoverAndVerify(&run, cycle);
    ++run.report.cycles_run;
    if (run.stop.load(std::memory_order_relaxed) ||
        run.service == nullptr) {
      break;
    }
    if (options.max_inflight > 0) {
      OverloadOptions overload;
      overload.max_inflight = options.max_inflight;
      run.service->ConfigureOverload(overload);
    }
  }

  run.report.faults_injected = env.faults_injected();
  run.report.ok = run.report.violations.empty() &&
                  run.report.cycles_run == options.cycles;
  return std::move(run.report);
}

// --- Sharded chaos -------------------------------------------------------

namespace {

/// Mutable state of one sharded run. Strictly single-threaded: kills
/// fire at fixed round indexes and every counter is deterministic.
struct ShardedRun {
  const ShardedChaosOptions* options = nullptr;
  SyntheticWorld* world = nullptr;
  FaultInjectionEnv* env = nullptr;
  std::unique_ptr<ShardedArrangementService> service;
  std::vector<RoundContext> ring;
  std::uint64_t policy_seed = 0;

  // Truth keyed by txn. Transaction ids are never reused, so a round
  // lost to a crash simply leaves a truth entry with no recovered
  // counterpart (allowed — it was acked non-durably), and its re-serve
  // gets a fresh txn.
  std::map<std::uint64_t, InteractionRecord> truth;
  std::set<std::uint64_t> durable;

  // Mid-commit crash handshake with the service hook.
  bool hook_armed = false;
  std::uint64_t hook_fired_txn = 0;

  bool stop = false;
  ShardedChaosReport report;

  void Violation(std::string message) {
    report.violations.push_back(std::move(message));
    stop = true;
  }
};

enum class ArrivalOutcome { kAcked, kSkipped, kCrashed, kFailed };

InteractionRecord BuildTruthRecord(const RoundContext& round,
                                   const Arrangement& arrangement,
                                   const Feedback& feedback) {
  InteractionRecord record;
  record.t = 0;  // Renumbered at replay time (txn order).
  record.user_id = round.user_id;
  record.user_capacity = round.user_capacity;
  record.arrangement = arrangement;
  record.feedback = feedback;
  for (EventId v : arrangement) {
    const auto row = round.contexts.Row(v);
    record.contexts.emplace_back(row.begin(), row.end());
  }
  return record;
}

void AccumulateRecovery(ShardedRun* run, const ShardRecoveryReport& r) {
  ShardedChaosReport& rep = run->report;
  ++rep.shard_recoveries;
  rep.duplicate_frames_skipped += r.duplicate_frames_skipped;
  rep.bytes_truncated += r.bytes_truncated;
  rep.in_doubt_seen += r.reservations_in_doubt;
  rep.resolved_committed += r.resolved_committed;
  rep.resolved_aborted += r.resolved_aborted;
  rep.interrupted_completed += r.interrupted_completed;
  rep.interrupted_aborted += r.interrupted_aborted;
}

/// Breakers die with their shard (kill) or writer (re-attach); harvest
/// the counters just before each destruction point.
void HarvestBreaker(ShardedRun* run, int shard) {
  const CircuitBreaker* breaker = run->service->shard_breaker(shard);
  if (breaker == nullptr) return;
  run->report.breaker_opens += breaker->opens();
  run->report.breaker_closes += breaker->closes();
  run->report.breaker_probes += breaker->probes();
}

void RearmFaults(ShardedRun* run, int cycle, int lane) {
  FaultSchedule schedule = run->options->schedule;
  schedule.seed = DeriveSeed(run->options->seed, "sharded-faults",
                             static_cast<std::uint64_t>(cycle) * 8 +
                                 static_cast<std::uint64_t>(lane));
  run->env->ApplySchedule(schedule);
}

/// Invariant 5: remaining capacities never go negative on any shard's
/// sub-instance, live or recovered.
void CheckShardCapacities(ShardedRun* run, const char* which, int cycle) {
  for (int s = 0; s < run->service->num_shards(); ++s) {
    const ArrangementService* inner = run->service->shard_service(s);
    if (inner == nullptr) continue;
    const ProblemInstance& sub = run->service->router().SubInstance(s);
    for (EventId v = 0; v < sub.num_events(); ++v) {
      if (inner->state().remaining(v) < 0) {
        run->Violation(StrFormat(
            "cycle %d: %s shard %d has negative remaining capacity for "
            "local event %u",
            cycle, which, s, v));
        return;
      }
    }
  }
}

bool KillOneShard(ShardedRun* run, int shard, int cycle) {
  HarvestBreaker(run, shard);
  if (Status st = run->service->KillShard(shard); !st.ok()) {
    run->Violation(StrFormat("cycle %d: KillShard(%d) failed: %s", cycle,
                             shard, st.ToString().c_str()));
    return false;
  }
  ++run->report.shard_kills;
  return true;
}

/// Recovery must leave zero in-doubt reservations — invariant 7.
bool RecoverOneShard(ShardedRun* run, int shard, int cycle) {
  auto recovered = run->service->RecoverShard(shard);
  if (!recovered.ok()) {
    run->Violation(StrFormat("cycle %d: RecoverShard(%d) failed: %s",
                             cycle, shard,
                             recovered.status().ToString().c_str()));
    return false;
  }
  AccumulateRecovery(run, *recovered);
  return true;
}

void CheckNoInDoubtSurvives(ShardedRun* run, int cycle, const char* when) {
  const std::int64_t open = run->service->OpenReservations();
  if (open != 0) {
    run->Violation(StrFormat(
        "cycle %d: %lld in-doubt reservation(s) survived recovery (%s)",
        cycle, static_cast<long long>(open), when));
  }
}

/// The mid-commit crash: the coordinator died after its decision frame,
/// before any portion applied. Recovery must complete the transaction
/// (durable decision) or erase it entirely (the decision never hardened
/// — only possible when faults were armed at the commit point).
void HandleMidCommitCrash(ShardedRun* run, int cycle,
                          const ShardedServeResult& served,
                          const RoundContext& round,
                          const Feedback& feedback) {
  ++run->report.mid_commit_crashes;
  run->env->DisarmAll();
  const int home = served.home_shard;
  if (!KillOneShard(run, home, cycle)) return;
  if (!RecoverOneShard(run, home, cycle)) return;
  CheckNoInDoubtSurvives(run, cycle, "after a mid-commit coordinator crash");
  if (Status st = run->service->AttachShardWal(home); !st.ok()) {
    run->Violation(StrFormat("cycle %d: AttachShardWal(%d) failed: %s",
                             cycle, home, st.ToString().c_str()));
    return;
  }
  // Committed iff the decision survived into the recovered index; the
  // recovered world then owes the caller the full round.
  if (run->service->Decisions(home).count(served.txn) != 0) {
    run->truth[served.txn] =
        BuildTruthRecord(round, served.arrangement, feedback);
    run->durable.insert(served.txn);
    ++run->report.rounds_acked;
    ++run->report.durable_acked;
  }
  RearmFaults(run, cycle, /*lane=*/1);
}

RetryOptions ShardedRetryOptions(const ShardedChaosOptions& options) {
  RetryOptions retry;
  retry.max_attempts = options.breaker_failure_threshold + 5;
  retry.initial_backoff_ns = 50'000;
  retry.max_backoff_ns = 1'000'000;
  return retry;
}

/// One arrival: serve, sample feedback, submit until acked. `arm_hook`
/// schedules a coordinator crash between the commit phases.
ArrivalOutcome DriveOneArrival(ShardedRun* run, int cycle,
                               std::size_t ring_index, Pcg64* fb_rng,
                               RetryPolicy* retry, bool arm_hook,
                               ShardedFeedbackResult* out) {
  const RoundContext& round = run->ring[ring_index % run->ring.size()];
  auto served = run->service->ServeUser(round.user_id, round.user_capacity,
                                        round.contexts);
  if (!served.ok()) {
    const StatusCode code = served.status().code();
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kFailedPrecondition ||
        code == StatusCode::kResourceExhausted) {
      // Dead or draining home: the next arrival round-robins elsewhere.
      ++run->report.serves_unavailable;
      TickChaosClock();
      return ArrivalOutcome::kSkipped;
    }
    run->Violation(StrFormat("cycle %d: sharded serve failed: %s", cycle,
                             served.status().ToString().c_str()));
    return ArrivalOutcome::kFailed;
  }
  const Feedback feedback = run->world->feedback().Sample(
      1, round.contexts, served->arrangement, *fb_rng);
  if (arm_hook) run->hook_armed = true;
  retry->Reset();
  ShardedFeedbackResult result;
  Status st = run->service->SubmitFeedback(served->txn, feedback, &result);
  while (!st.ok()) {
    if (run->hook_fired_txn == served->txn) {
      run->hook_fired_txn = 0;
      HandleMidCommitCrash(run, cycle, *served, round, feedback);
      TickChaosClock();
      return run->stop ? ArrivalOutcome::kFailed : ArrivalOutcome::kCrashed;
    }
    if (!IsRetryable(st)) {
      run->Violation(StrFormat("cycle %d: feedback failed non-retryably: %s",
                               cycle, st.ToString().c_str()));
      return ArrivalOutcome::kFailed;
    }
    if (retry->ShouldRetry(st)) {
      SleepNanos(retry->NextDelayNanos());
    } else {
      ++run->report.retries_exhausted;
      retry->Reset();  // The breaker guarantees forward progress.
    }
    st = run->service->SubmitFeedback(served->txn, feedback, &result);
  }
  run->truth[served->txn] =
      BuildTruthRecord(round, served->arrangement, feedback);
  if (result.durable) run->durable.insert(served->txn);
  ++run->report.rounds_acked;
  if (result.durable) {
    ++run->report.durable_acked;
  } else {
    ++run->report.nondurable_acked;
  }
  TickChaosClock();
  if (out != nullptr) *out = result;
  return ArrivalOutcome::kAcked;
}

/// The faulted drive of one cycle, with the kill mode's crash woven in
/// at fixed round indexes. Faults are disarmed around every
/// kill/recover/re-attach window (the dying disk gets swapped) and
/// re-armed with a fresh derived lane.
void DriveShardedCycle(ShardedRun* run, int cycle) {
  const ShardedChaosOptions& options = *run->options;
  Pcg64 fb_rng(DeriveSeed(options.seed, "sharded-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/3);
  RetryPolicy retry(ShardedRetryOptions(options),
                    DeriveSeed(options.seed, "sharded-retry",
                               static_cast<std::uint64_t>(cycle)));
  const std::int64_t kill_at = options.rounds_per_cycle / 3;
  const std::int64_t recover_at = (2 * options.rounds_per_cycle) / 3;
  const std::int64_t crash_at = options.rounds_per_cycle / 2;
  const int victim = cycle % options.shards;  // Round-robin across cycles.
  bool crash_pending =
      options.kill_mode == ShardKillMode::kCoordinatorMidCommit;

  for (std::int64_t i = 0; i < options.rounds_per_cycle && !run->stop;
       ++i) {
    if (options.kill_mode == ShardKillMode::kOneShard) {
      if (i == kill_at) {
        run->env->DisarmAll();
        if (!KillOneShard(run, victim, cycle)) return;
        RearmFaults(run, cycle, /*lane=*/2);
      } else if (i == recover_at) {
        run->env->DisarmAll();
        if (!RecoverOneShard(run, victim, cycle)) return;
        CheckNoInDoubtSurvives(run, cycle, "after a single-shard crash");
        if (Status st = run->service->AttachShardWal(victim); !st.ok()) {
          run->Violation(StrFormat(
              "cycle %d: AttachShardWal(%d) failed: %s", cycle, victim,
              st.ToString().c_str()));
          return;
        }
        RearmFaults(run, cycle, /*lane=*/3);
      }
    } else if (options.kill_mode == ShardKillMode::kAll && i == crash_at) {
      run->env->DisarmAll();
      for (int s = 0; s < options.shards; ++s) {
        if (!KillOneShard(run, s, cycle)) return;
      }
      for (int s = 0; s < options.shards; ++s) {
        if (!RecoverOneShard(run, s, cycle)) return;
      }
      CheckNoInDoubtSurvives(run, cycle, "after an all-shard crash");
      CheckShardCapacities(run, "mid-cycle recovered", cycle);
      for (int s = 0; s < options.shards; ++s) {
        if (Status st = run->service->AttachShardWal(s); !st.ok()) {
          run->Violation(StrFormat(
              "cycle %d: AttachShardWal(%d) failed: %s", cycle, s,
              st.ToString().c_str()));
          return;
        }
      }
      RearmFaults(run, cycle, /*lane=*/4);
    }
    const bool arm = crash_pending && i >= crash_at;
    const ArrivalOutcome outcome =
        DriveOneArrival(run, cycle, static_cast<std::size_t>(i), &fb_rng,
                        &retry, arm, nullptr);
    if (outcome == ArrivalOutcome::kFailed) return;
    if (outcome == ArrivalOutcome::kCrashed) crash_pending = false;
    if (outcome == ArrivalOutcome::kSkipped && arm) {
      run->hook_armed = false;  // Serve never happened; re-arm next round.
    }
  }
  if (crash_pending && !run->stop) {
    run->Violation(StrFormat(
        "cycle %d: the scheduled mid-commit crash never fired", cycle));
  }
}

/// Invariant 6: with faults disarmed, drive until every shard's breaker
/// is closed and a durable acknowledgement proves the WALs are live.
void DriveShardsUntilReclosed(ShardedRun* run, int cycle) {
  const ShardedChaosOptions& options = *run->options;
  Pcg64 fb_rng(DeriveSeed(options.seed, "sharded-reclose-fb",
                          static_cast<std::uint64_t>(cycle)),
               /*stream=*/7);
  RetryPolicy retry(ShardedRetryOptions(options),
                    DeriveSeed(options.seed, "sharded-reclose",
                               static_cast<std::uint64_t>(cycle)));
  for (std::int64_t i = 0; i < options.reclose_budget && !run->stop; ++i) {
    ShardedFeedbackResult result;
    const ArrivalOutcome outcome =
        DriveOneArrival(run, cycle, static_cast<std::size_t>(i), &fb_rng,
                        &retry, /*arm_hook=*/false, &result);
    if (outcome == ArrivalOutcome::kFailed) return;
    if (outcome != ArrivalOutcome::kAcked || !result.durable) continue;
    bool all_closed = true;
    for (int s = 0; s < options.shards; ++s) {
      const CircuitBreaker* breaker = run->service->shard_breaker(s);
      if (breaker != nullptr &&
          breaker->state() != CircuitBreaker::State::kClosed) {
        all_closed = false;
        break;
      }
    }
    if (all_closed) return;
  }
  run->Violation(StrFormat(
      "cycle %d: shard breakers failed to re-close within %lld rounds "
      "after faults were disarmed",
      cycle, static_cast<long long>(options.reclose_budget)));
}

/// End-of-cycle full crash: kill every shard, recover each from its WAL
/// alone, then check invariants 1–5 and 7 (6 was the re-close drive).
void CrashRecoverAllAndVerify(ShardedRun* run, int cycle) {
  ShardedArrangementService& service = *run->service;
  const ShardedChaosOptions& options = *run->options;
  CheckShardCapacities(run, "live", cycle);

  for (int s = 0; s < options.shards; ++s) {
    if (!service.shard_alive(s)) continue;
    if (!KillOneShard(run, s, cycle)) return;
  }
  for (int s = 0; s < options.shards; ++s) {
    if (!RecoverOneShard(run, s, cycle)) return;
  }
  CheckShardCapacities(run, "recovered", cycle);
  CheckNoInDoubtSurvives(run, cycle, "after the full crash");

  // The union of the shards' recovered decision ledgers.
  std::map<std::uint64_t, InteractionRecord> unioned;
  for (int s = 0; s < options.shards; ++s) {
    for (auto& [txn, record] : service.Decisions(s)) {
      unioned.emplace(txn, std::move(record));
    }
  }

  // Invariant 1: recovery never invents transactions.
  for (const auto& [txn, record] : unioned) {
    if (run->truth.find(txn) == run->truth.end()) {
      run->Violation(StrFormat(
          "cycle %d: recovered transaction %llu was never acknowledged",
          cycle, static_cast<unsigned long long>(txn)));
    }
  }
  // Invariant 2: no durable acknowledgement is lost.
  for (const std::uint64_t txn : run->durable) {
    if (unioned.find(txn) == unioned.end()) {
      run->Violation(StrFormat(
          "cycle %d: durably acknowledged transaction %llu is missing "
          "from the recovered decision union",
          cycle, static_cast<unsigned long long>(txn)));
    }
  }

  // Invariant 3: the recovered union, replayed in txn order into a
  // fresh UNSHARDED service over the full instance, is bit-identical to
  // the same replay of the truth ledger.
  ArrangementService shadow_recovered(&run->world->instance(),
                                      PolicyKind::kUcb, PolicyParams{},
                                      run->policy_seed);
  ArrangementService shadow_truth(&run->world->instance(),
                                  PolicyKind::kUcb, PolicyParams{},
                                  run->policy_seed);
  std::int64_t t = 0;
  for (const auto& [txn, record] : unioned) {
    const auto it = run->truth.find(txn);
    if (it == run->truth.end()) continue;  // Already a violation above.
    ++t;
    InteractionRecord recovered_record = record;
    recovered_record.t = t;
    InteractionRecord truth_record = it->second;
    truth_record.t = t;
    if (Status st =
            shadow_recovered.RestoreInteraction(recovered_record, true);
        !st.ok()) {
      run->Violation(StrFormat(
          "cycle %d: shadow replay of recovered txn %llu failed: %s",
          cycle, static_cast<unsigned long long>(txn),
          st.ToString().c_str()));
      return;
    }
    if (Status st = shadow_truth.RestoreInteraction(truth_record, true);
        !st.ok()) {
      run->Violation(StrFormat(
          "cycle %d: shadow replay of truth txn %llu failed: %s", cycle,
          static_cast<unsigned long long>(txn), st.ToString().c_str()));
      return;
    }
  }
  if (shadow_recovered.Checkpoint() != shadow_truth.Checkpoint()) {
    run->Violation(StrFormat(
        "cycle %d: the recovered decision union replays to different "
        "learning state (Y, b) than the acknowledged truth",
        cycle));
  }
  if (shadow_recovered.log().ToCsv() != shadow_truth.log().ToCsv()) {
    run->Violation(StrFormat(
        "cycle %d: the recovered decision union replays to a different "
        "interaction log than the acknowledged truth",
        cycle));
  }
  if (shadow_recovered.rounds_served() != shadow_truth.rounds_served()) {
    run->Violation(StrFormat(
        "cycle %d: union replay round counter %lld != truth replay %lld",
        cycle,
        static_cast<long long>(shadow_recovered.rounds_served()),
        static_cast<long long>(shadow_truth.rounds_served())));
  }
  const ProblemInstance& instance = run->world->instance();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (shadow_recovered.state().remaining(v) !=
        shadow_truth.state().remaining(v)) {
      run->Violation(StrFormat(
          "cycle %d: union replay capacity of event %u (%lld) != truth "
          "replay (%lld)",
          cycle, v,
          static_cast<long long>(shadow_recovered.state().remaining(v)),
          static_cast<long long>(shadow_truth.state().remaining(v))));
      break;
    }
  }

  // Invariant 4: per-event capacities on the recovered shards agree
  // exactly with the unsharded shadow — every cross-shard portion
  // landed where its decision says, nowhere else.
  const ShardRouter& router = service.router();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const int owner = router.OwnerShard(v);
    const ArrangementService* inner = service.shard_service(owner);
    if (inner == nullptr) continue;  // Unreachable: all recovered above.
    const std::int64_t got = inner->state().remaining(router.LocalId(v));
    const std::int64_t want = shadow_recovered.state().remaining(v);
    if (got != want) {
      run->Violation(StrFormat(
          "cycle %d: recovered capacity of event %u on shard %d (%lld) "
          "!= unsharded shadow (%lld)",
          cycle, v, owner, static_cast<long long>(got),
          static_cast<long long>(want)));
      break;
    }
  }
}

}  // namespace

std::string ShardedChaosReport::ToString() const {
  std::string out;
  out += StrFormat("verdict:                  %s\n", ok ? "PASS" : "FAIL");
  out += StrFormat("cycles run:               %d\n", cycles_run);
  out += StrFormat("rounds acked:             %lld\n",
                   static_cast<long long>(rounds_acked));
  out += StrFormat("  durable:                %lld\n",
                   static_cast<long long>(durable_acked));
  out += StrFormat("  non-durable:            %lld\n",
                   static_cast<long long>(nondurable_acked));
  out += StrFormat("serves unavailable:       %lld\n",
                   static_cast<long long>(serves_unavailable));
  out += StrFormat("retry budgets exhausted:  %lld\n",
                   static_cast<long long>(retries_exhausted));
  out += StrFormat("faults injected:          %lld\n",
                   static_cast<long long>(faults_injected));
  out += StrFormat("cross-shard rounds:       %lld\n",
                   static_cast<long long>(cross_shard_rounds));
  out += StrFormat("reservations made:        %lld\n",
                   static_cast<long long>(reservations_made));
  out += StrFormat("reservation refusals:     %lld\n",
                   static_cast<long long>(reservation_refusals));
  out += StrFormat("in-doubt at recovery:     %lld\n",
                   static_cast<long long>(in_doubt_seen));
  out += StrFormat("  resolved committed:     %lld\n",
                   static_cast<long long>(resolved_committed));
  out += StrFormat("  resolved aborted:       %lld\n",
                   static_cast<long long>(resolved_aborted));
  out += StrFormat("interrupted txns:         %lld completed, %lld aborted\n",
                   static_cast<long long>(interrupted_completed),
                   static_cast<long long>(interrupted_aborted));
  out += StrFormat("mid-commit crashes:       %lld\n",
                   static_cast<long long>(mid_commit_crashes));
  out += StrFormat("shard kills/recoveries:   %lld/%lld\n",
                   static_cast<long long>(shard_kills),
                   static_cast<long long>(shard_recoveries));
  out += StrFormat("breaker opens/closes:     %lld/%lld\n",
                   static_cast<long long>(breaker_opens),
                   static_cast<long long>(breaker_closes));
  out += StrFormat("breaker probes:           %lld\n",
                   static_cast<long long>(breaker_probes));
  out += StrFormat("wal reopens:              %lld\n",
                   static_cast<long long>(wal_reopens));
  out += StrFormat("duplicate frames skipped: %lld\n",
                   static_cast<long long>(duplicate_frames_skipped));
  out += StrFormat("torn bytes truncated:     %lld\n",
                   static_cast<long long>(bytes_truncated));
  out += StrFormat("learner merges:           %lld\n",
                   static_cast<long long>(merges));
  for (const std::string& violation : violations) {
    out += "VIOLATION: " + violation + "\n";
  }
  return out;
}

StatusOr<ShardKillMode> ParseShardKillMode(std::string_view name) {
  if (name == "one-shard") return ShardKillMode::kOneShard;
  if (name == "coordinator-mid-commit") {
    return ShardKillMode::kCoordinatorMidCommit;
  }
  if (name == "all") return ShardKillMode::kAll;
  return InvalidArgumentError(StrFormat(
      "unknown shard kill mode '%s' (try: one-shard, "
      "coordinator-mid-commit, all)",
      std::string(name).c_str()));
}

const std::vector<std::string_view>& ShardKillModeNames() {
  static const std::vector<std::string_view> kNames = {
      "one-shard", "coordinator-mid-commit", "all"};
  return kNames;
}

StatusOr<ShardedChaosReport> RunShardedChaos(
    const ShardedChaosOptions& options) {
  if (options.wal_dir.empty()) {
    return InvalidArgumentError("sharded chaos: wal_dir is required");
  }
  if (options.shards < 1 || options.cycles < 1 ||
      options.rounds_per_cycle < 1) {
    return InvalidArgumentError(
        "sharded chaos: shards, cycles, and rounds_per_cycle must be >= 1");
  }
  FaultInjectionEnv env(Env::Default());
  for (int s = 0; s < options.shards; ++s) {
    const std::string dir = ShardWalDirName(options.wal_dir, s);
    if (auto names = env.ListDir(dir); names.ok()) {
      for (const std::string& name : *names) {
        if (StartsWith(name, "wal-")) {
          return InvalidArgumentError(StrFormat(
              "sharded chaos: %s already holds WAL segments — the run "
              "needs a fresh directory",
              dir.c_str()));
        }
      }
    }
  }

  SyntheticConfig config;
  config.num_events = options.num_events;
  config.dim = options.dim;
  config.horizon = 100000;
  config.seed = DeriveSeed(options.seed, "sharded-world");
  auto world = SyntheticWorld::Create(config);
  if (!world.ok()) return world.status();

  ShardedRun run;
  run.options = &options;
  run.world = world->get();
  run.env = &env;
  run.policy_seed = DeriveSeed(options.seed, "sharded-policy");

  ShardedOptions service_options;
  service_options.num_shards = options.shards;
  service_options.seed = run.policy_seed;
  service_options.merge_every = options.merge_every;
  run.service = std::make_unique<ShardedArrangementService>(
      &run.world->instance(), service_options);
  run.service->set_crash_after_decision_hook([&run](std::uint64_t txn) {
    if (!run.hook_armed) return false;
    run.hook_armed = false;
    run.hook_fired_txn = txn;
    return true;
  });
  run.ring.resize(64);
  for (std::size_t i = 0; i < run.ring.size(); ++i) {
    run.ring[i] =
        run.world->provider().NextRound(static_cast<std::int64_t>(i) + 1);
  }

  DurabilityPolicy durability;
  durability.on_wal_error = DurabilityPolicy::OnWalError::kFailRound;
  durability.breaker_enabled = true;
  durability.breaker.failure_threshold = options.breaker_failure_threshold;
  durability.breaker.open_cooldown_ns =
      options.breaker_cooldown_ticks;  // Logical-clock ticks.
  durability.breaker.clock = &ChaosClockNow;

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    if (Status st = run.service->AttachWals(&env, options.wal_dir,
                                            WalOptions{}, durability);
        !st.ok()) {
      return st;
    }
    RearmFaults(&run, cycle, /*lane=*/0);

    DriveShardedCycle(&run, cycle);
    env.DisarmAll();
    if (!run.stop) DriveShardsUntilReclosed(&run, cycle);
    if (run.stop) break;

    CrashRecoverAllAndVerify(&run, cycle);
    ++run.report.cycles_run;
    if (run.stop) break;
  }

  // Final telemetry sweep (per-shard counters survive kills; the
  // breakers were harvested at each destruction point, plus any still
  // alive now).
  for (int s = 0; s < options.shards; ++s) {
    HarvestBreaker(&run, s);
    run.report.wal_reopens += run.service->ShardHealth(s).wal_reopens;
  }
  const ShardedStats stats = run.service->Stats();
  run.report.cross_shard_rounds = stats.cross_shard_rounds;
  run.report.reservations_made = stats.reservations_made;
  run.report.reservation_refusals = stats.reservation_refusals;
  run.report.merges = stats.merges;
  run.report.faults_injected = env.faults_injected();
  run.report.ok = run.report.violations.empty() &&
                  run.report.cycles_run == options.cycles;
  return std::move(run.report);
}

}  // namespace fasea
