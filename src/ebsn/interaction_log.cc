#include "ebsn/interaction_log.h"

#include <cstdlib>

#include "common/strings.h"

namespace fasea {

Status InteractionLog::Append(InteractionRecord record) {
  if (record.feedback.size() != record.arrangement.size() ||
      record.contexts.size() != record.arrangement.size()) {
    return InvalidArgumentError(
        "arrangement, feedback, and contexts must align");
  }
  if (static_cast<std::int64_t>(record.arrangement.size()) >
      record.user_capacity) {
    return InvalidArgumentError("arrangement exceeds user capacity");
  }
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    if (record.arrangement[i] >= num_events_) {
      return InvalidArgumentError(
          StrFormat("event id %u out of range", record.arrangement[i]));
    }
    if (record.contexts[i].size() != dim_) {
      return InvalidArgumentError("context row has wrong dimension");
    }
    if (record.feedback[i] > 1) {
      return InvalidArgumentError("feedback must be 0 or 1");
    }
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

std::int64_t InteractionLog::TotalAccepted() const {
  std::int64_t total = 0;
  for (const auto& record : records_) total += NumAccepted(record.feedback);
  return total;
}

void InteractionLog::Replay(Policy* policy) const {
  FASEA_CHECK(policy != nullptr);
  RoundContext round;
  round.contexts = ContextMatrix(num_events_, dim_);
  for (const InteractionRecord& record : records_) {
    round.contexts.Fill(0.0);
    for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
      auto row = round.contexts.Row(record.arrangement[i]);
      for (std::size_t j = 0; j < dim_; ++j) {
        row[j] = record.contexts[i][j];
      }
    }
    round.user_capacity = record.user_capacity;
    round.user_id = record.user_id;
    policy->Learn(record.t, round, record.arrangement, record.feedback);
  }
}

std::string InteractionLog::ToCsv() const {
  std::string out = "t,user_id,user_capacity,event,feedback";
  for (std::size_t j = 0; j < dim_; ++j) out += StrFormat(",x%zu", j);
  out += "\n";
  for (const InteractionRecord& record : records_) {
    for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
      out += StrFormat("%lld,%lld,%lld,%u,%d",
                       static_cast<long long>(record.t),
                       static_cast<long long>(record.user_id),
                       static_cast<long long>(record.user_capacity),
                       record.arrangement[i],
                       static_cast<int>(record.feedback[i]));
      for (double x : record.contexts[i]) {
        out += ",";
        out += FormatDouble(x, 17);
      }
      out += "\n";
    }
    if (record.arrangement.empty()) {
      // Keep empty arrangements in the log (event id -1 sentinel row).
      out += StrFormat("%lld,%lld,%lld,-1,0",
                       static_cast<long long>(record.t),
                       static_cast<long long>(record.user_id),
                       static_cast<long long>(record.user_capacity));
      for (std::size_t j = 0; j < dim_; ++j) out += ",0";
      out += "\n";
    }
  }
  return out;
}

StatusOr<InteractionLog> InteractionLog::FromCsv(std::string_view csv,
                                                 std::size_t num_events,
                                                 std::size_t dim) {
  InteractionLog log(num_events, dim);
  const std::vector<std::string> lines = StrSplit(csv, '\n');
  InteractionRecord current;
  bool has_current = false;

  const auto flush = [&]() -> Status {
    if (!has_current) return Status::Ok();
    has_current = false;
    return log.Append(std::move(current));
  };

  for (std::size_t line_no = 0; line_no < lines.size(); ++line_no) {
    const std::string_view line = StripAsciiWhitespace(lines[line_no]);
    if (line.empty()) continue;
    if (line_no == 0) {
      if (!StartsWith(line, "t,user_id")) {
        return InvalidArgumentError("interaction log: missing CSV header");
      }
      continue;
    }
    const std::vector<std::string> cells = StrSplit(line, ',');
    if (cells.size() != 5 + dim) {
      return InvalidArgumentError(
          StrFormat("interaction log line %zu: expected %zu cells, got %zu",
                    line_no + 1, 5 + dim, cells.size()));
    }
    const std::int64_t t = std::atoll(cells[0].c_str());
    const std::int64_t user_id = std::atoll(cells[1].c_str());
    const std::int64_t user_capacity = std::atoll(cells[2].c_str());
    const std::int64_t event = std::atoll(cells[3].c_str());
    const int feedback = std::atoi(cells[4].c_str());

    if (!has_current || current.t != t || current.user_id != user_id) {
      if (Status st = flush(); !st.ok()) return st;
      current = InteractionRecord();
      current.t = t;
      current.user_id = user_id;
      current.user_capacity = user_capacity;
      has_current = true;
    }
    if (event < 0) continue;  // Empty-arrangement sentinel row.
    current.arrangement.push_back(static_cast<EventId>(event));
    current.feedback.push_back(static_cast<std::uint8_t>(feedback));
    std::vector<double> row(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = std::atof(cells[5 + j].c_str());
    }
    current.contexts.push_back(std::move(row));
  }
  if (Status st = flush(); !st.ok()) return st;
  return log;
}

}  // namespace fasea
