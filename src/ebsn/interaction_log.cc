#include "ebsn/interaction_log.h"

#include <cstdlib>

#include "common/bytes.h"
#include "common/strings.h"

namespace fasea {

Status InteractionLog::Validate(const InteractionRecord& record) const {
  if (record.feedback.size() != record.arrangement.size() ||
      record.contexts.size() != record.arrangement.size()) {
    return InvalidArgumentError(
        "arrangement, feedback, and contexts must align");
  }
  if (static_cast<std::int64_t>(record.arrangement.size()) >
      record.user_capacity) {
    return InvalidArgumentError("arrangement exceeds user capacity");
  }
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    if (record.arrangement[i] >= num_events_) {
      return InvalidArgumentError(
          StrFormat("event id %u out of range", record.arrangement[i]));
    }
    if (record.contexts[i].size() != dim_) {
      return InvalidArgumentError("context row has wrong dimension");
    }
    if (record.feedback[i] > 1) {
      return InvalidArgumentError("feedback must be 0 or 1");
    }
  }
  return Status::Ok();
}

Status InteractionLog::Append(InteractionRecord record) {
  if (Status st = Validate(record); !st.ok()) return st;
  records_.push_back(std::move(record));
  return Status::Ok();
}

std::int64_t InteractionLog::TotalAccepted() const {
  std::int64_t total = 0;
  for (const auto& record : records_) total += NumAccepted(record.feedback);
  return total;
}

Status InteractionLog::Replay(Policy* policy, std::size_t num_events,
                              std::size_t dim) const {
  FASEA_CHECK(policy != nullptr);
  if (num_events_ != num_events || dim_ != dim) {
    return InvalidArgumentError(StrFormat(
        "interaction log shape (%zu events, dim %zu) does not match the "
        "instance (%zu events, dim %zu)",
        num_events_, dim_, num_events, dim));
  }
  RoundContext round;
  round.contexts = ContextMatrix(num_events_, dim_);
  for (const InteractionRecord& record : records_) {
    FeedRecord(record, num_events_, dim_, policy, &round);
  }
  return Status::Ok();
}

void InteractionLog::FeedRecord(const InteractionRecord& record,
                                std::size_t num_events, std::size_t dim,
                                Policy* policy, RoundContext* scratch) {
  FASEA_CHECK(scratch->contexts.rows() == num_events &&
              scratch->contexts.cols() == dim);
  scratch->contexts.Fill(0.0);
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    auto row = scratch->contexts.Row(record.arrangement[i]);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = record.contexts[i][j];
    }
  }
  scratch->user_capacity = record.user_capacity;
  scratch->user_id = record.user_id;
  policy->Learn(record.t, *scratch, record.arrangement, record.feedback);
}

std::string InteractionLog::ToCsv() const {
  std::string out = "t,user_id,user_capacity,event,feedback";
  for (std::size_t j = 0; j < dim_; ++j) out += StrFormat(",x%zu", j);
  out += "\n";
  for (const InteractionRecord& record : records_) {
    for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
      out += StrFormat("%lld,%lld,%lld,%u,%d",
                       static_cast<long long>(record.t),
                       static_cast<long long>(record.user_id),
                       static_cast<long long>(record.user_capacity),
                       record.arrangement[i],
                       static_cast<int>(record.feedback[i]));
      for (double x : record.contexts[i]) {
        out += ",";
        out += FormatDouble(x, 17);
      }
      out += "\n";
    }
    if (record.arrangement.empty()) {
      // Keep empty arrangements in the log (event id -1 sentinel row).
      out += StrFormat("%lld,%lld,%lld,-1,0",
                       static_cast<long long>(record.t),
                       static_cast<long long>(record.user_id),
                       static_cast<long long>(record.user_capacity));
      for (std::size_t j = 0; j < dim_; ++j) out += ",0";
      out += "\n";
    }
  }
  return out;
}

StatusOr<InteractionLog> InteractionLog::FromCsv(std::string_view csv,
                                                 std::size_t num_events,
                                                 std::size_t dim) {
  InteractionLog log(num_events, dim);
  const std::vector<std::string> lines = StrSplit(csv, '\n');
  InteractionRecord current;
  bool has_current = false;

  const auto flush = [&]() -> Status {
    if (!has_current) return Status::Ok();
    has_current = false;
    return log.Append(std::move(current));
  };

  for (std::size_t line_no = 0; line_no < lines.size(); ++line_no) {
    const std::string_view line = StripAsciiWhitespace(lines[line_no]);
    if (line.empty()) continue;
    if (line_no == 0) {
      if (!StartsWith(line, "t,user_id")) {
        return InvalidArgumentError("interaction log: missing CSV header");
      }
      continue;
    }
    const std::vector<std::string> cells = StrSplit(line, ',');
    if (cells.size() != 5 + dim) {
      return InvalidArgumentError(
          StrFormat("interaction log line %zu: expected %zu cells, got %zu",
                    line_no + 1, 5 + dim, cells.size()));
    }
    const std::int64_t t = std::atoll(cells[0].c_str());
    const std::int64_t user_id = std::atoll(cells[1].c_str());
    const std::int64_t user_capacity = std::atoll(cells[2].c_str());
    const std::int64_t event = std::atoll(cells[3].c_str());
    const int feedback = std::atoi(cells[4].c_str());

    if (!has_current || current.t != t || current.user_id != user_id) {
      if (Status st = flush(); !st.ok()) return st;
      current = InteractionRecord();
      current.t = t;
      current.user_id = user_id;
      current.user_capacity = user_capacity;
      has_current = true;
    }
    if (event < 0) continue;  // Empty-arrangement sentinel row.
    current.arrangement.push_back(static_cast<EventId>(event));
    current.feedback.push_back(static_cast<std::uint8_t>(feedback));
    std::vector<double> row(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = std::atof(cells[5 + j].c_str());
    }
    current.contexts.push_back(std::move(row));
  }
  if (Status st = flush(); !st.ok()) return st;
  return log;
}

namespace {
// Guards against absurd element counts in a structurally valid payload so
// decoding cannot be tricked into huge allocations.
constexpr std::uint32_t kMaxArrangementSize = 1u << 24;
constexpr std::uint32_t kMaxContextDim = 1u << 20;
}  // namespace

std::string EncodeInteractionRecord(const InteractionRecord& record) {
  const std::size_t n = record.arrangement.size();
  const std::size_t dim = n == 0 ? 0 : record.contexts[0].size();
  std::string out;
  out.reserve(32 + n * (5 + 8 * dim));
  AppendI64(&out, record.t);
  AppendI64(&out, record.user_id);
  AppendI64(&out, record.user_capacity);
  AppendU32(&out, static_cast<std::uint32_t>(n));
  AppendU32(&out, static_cast<std::uint32_t>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    AppendU32(&out, record.arrangement[i]);
    AppendU8(&out, record.feedback[i]);
    for (double x : record.contexts[i]) AppendDouble(&out, x);
  }
  return out;
}

StatusOr<InteractionRecord> DecodeInteractionRecord(
    std::string_view payload) {
  ByteReader reader(payload, "interaction record: truncated payload");
  const auto fail = [](std::string_view what) {
    return DataLossError(StrFormat("interaction record: %s",
                                   std::string(what).c_str()));
  };
  InteractionRecord record;
  auto t = reader.ReadI64();
  if (!t.ok()) return fail(t.status().message());
  record.t = *t;
  auto user_id = reader.ReadI64();
  if (!user_id.ok()) return fail(user_id.status().message());
  record.user_id = *user_id;
  auto user_capacity = reader.ReadI64();
  if (!user_capacity.ok()) return fail(user_capacity.status().message());
  record.user_capacity = *user_capacity;
  auto n = reader.ReadU32();
  if (!n.ok()) return fail(n.status().message());
  auto dim = reader.ReadU32();
  if (!dim.ok()) return fail(dim.status().message());
  if (*n > kMaxArrangementSize || *dim > kMaxContextDim) {
    return fail("implausible arrangement size or dimension");
  }
  // The remaining bytes must be exactly n fixed-size per-event entries.
  if (reader.remaining() !=
      static_cast<std::size_t>(*n) * (5 + 8 * static_cast<std::size_t>(*dim))) {
    return fail("payload size does not match the declared shape");
  }
  record.arrangement.reserve(*n);
  record.feedback.reserve(*n);
  record.contexts.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto event = reader.ReadU32();
    if (!event.ok()) return fail(event.status().message());
    record.arrangement.push_back(*event);
    auto fb = reader.ReadU8();
    if (!fb.ok()) return fail(fb.status().message());
    record.feedback.push_back(*fb);
    std::vector<double> row(*dim);
    for (std::uint32_t j = 0; j < *dim; ++j) {
      auto x = reader.ReadDouble();
      if (!x.ok()) return fail(x.status().message());
      row[j] = *x;
    }
    record.contexts.push_back(std::move(row));
  }
  FASEA_CHECK(reader.AtEnd());
  return record;
}

}  // namespace fasea
