// InteractionLog: append-only history of (user, arrangement, feedback)
// interactions, with CSV round-trip and policy replay.
//
// Replay rebuilds a freshly constructed policy's learning state from the
// log — the recovery path a production deployment uses when no binary
// checkpoint exists. Only the arranged events' context rows are stored:
// they are exactly what the ridge update consumes (Y += x xᵀ, b += r x
// over arranged events), so replay reproduces Y and b bit-for-bit.
#ifndef FASEA_EBSN_INTERACTION_LOG_H_
#define FASEA_EBSN_INTERACTION_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"
#include "model/types.h"

namespace fasea {

struct InteractionRecord {
  std::int64_t t = 0;
  std::int64_t user_id = 0;
  std::int64_t user_capacity = 0;
  Arrangement arrangement;
  Feedback feedback;
  /// Context row of each arranged event (arrangement.size() × dim).
  std::vector<std::vector<double>> contexts;
};

class InteractionLog {
 public:
  explicit InteractionLog(std::size_t num_events, std::size_t dim)
      : num_events_(num_events), dim_(dim) {}

  std::size_t num_events() const { return num_events_; }
  std::size_t dim() const { return dim_; }
  std::size_t size() const { return records_.size(); }
  const InteractionRecord& record(std::size_t i) const {
    FASEA_CHECK(i < records_.size());
    return records_[i];
  }

  /// Appends one interaction; validates arrangement/feedback/context
  /// shapes and event-id bounds.
  Status Append(InteractionRecord record);

  /// Total accepted events across the log.
  std::int64_t TotalAccepted() const;

  /// Feeds every record through `policy->Learn`, rebuilding its state.
  /// `num_events`/`dim` are the dimensions of the instance the policy was
  /// built for; a log recorded against a different instance shape fails
  /// with kInvalidArgument before any record is applied.
  Status Replay(Policy* policy, std::size_t num_events,
                std::size_t dim) const;

  /// Feeds a single record into `policy` the way Replay does, using
  /// `scratch` as the |V|×d context buffer (must be num_events × dim).
  /// Shared with the crash-recovery path, which interleaves learning with
  /// capacity restoration.
  static void FeedRecord(const InteractionRecord& record,
                         std::size_t num_events, std::size_t dim,
                         Policy* policy, RoundContext* scratch);

  /// Shape/bounds validation of one record against this log's dimensions
  /// — exactly the checks Append performs, without storing anything.
  Status Validate(const InteractionRecord& record) const;

  /// CSV round-trip. One row per arranged event:
  ///   t,user_id,user_capacity,event,feedback,x0,x1,...,x{d-1}
  std::string ToCsv() const;
  static StatusOr<InteractionLog> FromCsv(std::string_view csv,
                                          std::size_t num_events,
                                          std::size_t dim);

 private:
  std::size_t num_events_;
  std::size_t dim_;
  std::vector<InteractionRecord> records_;
};

/// Binary codec for one InteractionRecord — the payload format of WAL
/// frames (little-endian, self-describing arrangement size and context
/// dimension; see io/wal.h for the framing around it).
std::string EncodeInteractionRecord(const InteractionRecord& record);

/// Decodes a WAL payload. Fails with kDataLoss on any structural problem:
/// the frame passed its checksum, so a malformed payload means a format
/// mismatch rather than bit rot.
StatusOr<InteractionRecord> DecodeInteractionRecord(
    std::string_view payload);

}  // namespace fasea

#endif  // FASEA_EBSN_INTERACTION_LOG_H_
