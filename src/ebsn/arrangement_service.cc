#include "ebsn/arrangement_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "oracle/oracle.h"
#include "oracle/random_oracle.h"
#include "rng/seed.h"

namespace fasea {

namespace {

/// Acquires `mu` honoring `deadline`; false on timeout (lock not held).
/// An already-expired deadline returns false immediately (remaining <= 0
/// must never be handed to try_lock_for, whose behavior on non-positive
/// durations is an immediate — and misleading — plain try_lock).
bool LockWithDeadline(std::unique_lock<std::timed_mutex>& lock,
                      const Deadline& deadline) {
  if (deadline.infinite()) {
    lock.lock();
    return true;
  }
  const std::int64_t remaining = deadline.RemainingNanos();
  if (remaining <= 0) return false;
  return lock.try_lock_for(std::chrono::nanoseconds(remaining));
}

}  // namespace

/// One queued ServeUserBatched call. Lives on the calling thread's stack;
/// the queue holds pointers, valid until `done` flips under batch_mu_.
/// `result` is written by the batch leader while the owner is blocked and
/// read by the owner only after observing `done` — the mutex hand-off is
/// the synchronization.
struct ArrangementService::BatchWaiter {
  std::int64_t ticket = 0;
  RoundContext round;
  std::int64_t enqueue_ns = 0;
  bool claimed = false;
  bool done = false;
  StatusOr<BatchedRound> result{
      FailedPreconditionError("batched round was never resolved")};
};

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kLameDuck:
      return "lame-duck";
  }
  return "unknown";
}

ArrangementService::ArrangementService(const ProblemInstance* instance,
                                       PolicyKind kind,
                                       const PolicyParams& params)
    : instance_(instance),
      kind_(kind),
      params_(params),
      state_(*instance),
      log_(instance->num_events(), instance->dim()) {
  FASEA_CHECK(instance != nullptr);
}

ArrangementService::ArrangementService(const ProblemInstance* instance,
                                       PolicyKind kind,
                                       const PolicyParams& params,
                                       std::uint64_t seed)
    : ArrangementService(instance, kind, params) {
  policy_ = MakePolicy(kind, instance, params, seed);
  batch_salt_ = DeriveSeed(seed, "batch-serve");
}

StatusOr<std::unique_ptr<ArrangementService>>
ArrangementService::FromCheckpoint(const ProblemInstance* instance,
                                   std::string_view blob,
                                   std::uint64_t seed) {
  auto checkpoint = ParseCheckpoint(blob);
  if (!checkpoint.ok()) return checkpoint.status();
  auto policy = RestorePolicy(*checkpoint, instance, seed);
  if (!policy.ok()) return policy.status();
  auto service = std::unique_ptr<ArrangementService>(new ArrangementService(
      instance, checkpoint->kind, checkpoint->params));
  service->policy_ = std::move(policy).value();
  service->batch_salt_ = DeriveSeed(seed, "batch-serve");
  return service;
}

void ArrangementService::AttachWal(std::unique_ptr<WalWriter> wal,
                                   DurabilityPolicy policy,
                                   WalReopenFn reopen) {
  std::lock_guard<std::timed_mutex> lock(mu_);
  FASEA_CHECK(wal != nullptr);
  FASEA_CHECK((wal_ == nullptr || wal_degraded_ || wal_->broken()) &&
              "re-attach requires the current WAL to be broken or the "
              "service WAL-degraded");
  wal_ = std::move(wal);
  durability_ = policy;
  reopen_fn_ = std::move(reopen);
  wal_degraded_ = false;
  wal_degraded_gauge_->Set(0.0);
  breaker_ = policy.breaker_enabled
                 ? std::make_unique<CircuitBreaker>(policy.breaker)
                 : nullptr;
  UpdateHealthGaugeLocked();
}

void ArrangementService::AttachDecisionLog(
    std::unique_ptr<DecisionLogWriter> log) {
  std::lock_guard<std::timed_mutex> lock(mu_);
  FASEA_CHECK(log != nullptr);
  FASEA_CHECK(!batching_enabled_.load(std::memory_order_acquire) &&
              "decision logging is incompatible with batched serving");
  decision_log_ = std::move(log);
}

void ArrangementService::SetNextRoundTrace(std::uint64_t txn,
                                           std::uint64_t trace_id) {
  std::lock_guard<std::timed_mutex> lock(mu_);
  next_txn_override_ = txn;
  next_trace_override_ = trace_id;
}

void ArrangementService::ConfigureOverload(const OverloadOptions& options) {
  FASEA_CHECK(options.max_inflight >= 0);
  FASEA_CHECK(options.max_rps >= 0.0);
  FASEA_CHECK(options.burst >= 0.0);
  overload_ = options;
  if (options.max_rps > 0.0) {
    const double burst =
        options.burst > 0.0 ? options.burst : options.max_rps;
    rate_limiter_ = std::make_unique<RateLimiter>(options.max_rps, burst);
  } else {
    rate_limiter_.reset();
  }
}

void ArrangementService::ConfigureBatching(const BatchingOptions& options) {
  FASEA_CHECK(options.max_batch >= 1);
  FASEA_CHECK(options.max_wait_us >= 0);
  FASEA_CHECK(options.max_pending >= 0);
  std::lock_guard<std::timed_mutex> lock(mu_);
  FASEA_CHECK(dynamic_cast<const LinearPolicyBase*>(policy_.get()) !=
                  nullptr &&
              "batched serving needs a ridge learner to snapshot");
  FASEA_CHECK(decision_log_ == nullptr &&
              "decision-log propensities are defined against live state; "
              "detach the decision log before enabling batching");
  FASEA_CHECK(!pending_ && "enable batching before serving starts");
  batching_ = options;
  // The reservation view starts as a copy of the ground truth and stays
  // equal to it whenever no batched round is outstanding.
  effective_state_ = state_;
  batching_enabled_.store(true, std::memory_order_release);
  PublishSnapshotLocked();
}

void ArrangementService::EnterLameDuck() {
  lame_duck_.store(true, std::memory_order_relaxed);
  health_gauge_->Set(static_cast<double>(HealthState::kLameDuck));
}

Arrangement ArrangementService::StatelessProposal(
    const RoundContext& round) const {
  return StatelessProposal(round, state_);
}

Arrangement ArrangementService::StatelessProposal(
    const RoundContext& round, const PlatformState& state) const {
  const ConflictGraph& conflicts = instance_->conflicts();
  Arrangement out;
  for (EventId v = 0;
       v < instance_->num_events() &&
       static_cast<std::int64_t>(out.size()) < round.user_capacity;
       ++v) {
    if (!round.IsAvailable(v) || !state.HasCapacity(v)) continue;
    bool clashes = false;
    for (EventId arranged : out) {
      if (conflicts.Conflicts(v, arranged)) {
        clashes = true;
        break;
      }
    }
    if (!clashes) out.push_back(v);
  }
  return out;
}

bool ArrangementService::LearnerHealthyLocked() const {
  const auto* base = dynamic_cast<const LinearPolicyBase*>(policy_.get());
  return base == nullptr || base->ridge().healthy();
}

HealthState ArrangementService::HealthStateLocked() const {
  if (lame_duck_.load(std::memory_order_relaxed)) {
    return HealthState::kLameDuck;
  }
  if (wal_degraded_ || !LearnerHealthyLocked()) {
    return HealthState::kDegraded;
  }
  if (breaker_ != nullptr &&
      breaker_->state() != CircuitBreaker::State::kClosed) {
    return HealthState::kDegraded;
  }
  return HealthState::kHealthy;
}

void ArrangementService::UpdateHealthGaugeLocked() {
  health_gauge_->Set(static_cast<double>(HealthStateLocked()));
}

HealthSnapshot ArrangementService::Health() const {
  std::lock_guard<std::timed_mutex> lock(mu_);
  HealthSnapshot snapshot;
  snapshot.state = HealthStateLocked();
  snapshot.wal_attached = wal_ != nullptr;
  snapshot.wal_degraded = wal_degraded_;
  snapshot.learner_healthy = LearnerHealthyLocked();
  snapshot.breaker_enabled = breaker_ != nullptr;
  if (breaker_ != nullptr) snapshot.breaker = breaker_->state();
  snapshot.rounds_served = t_;
  snapshot.rounds_shed = rounds_shed_.load(std::memory_order_relaxed);
  snapshot.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  snapshot.nondurable_rounds = nondurable_rounds_;
  snapshot.wal_reopens = wal_reopens_;
  snapshot.stateless_fallbacks = stateless_fallbacks_;
  return snapshot;
}

StatusOr<Arrangement> ArrangementService::ServeUser(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts, const Deadline& deadline) {
  return ServeUser(user_id, user_capacity, contexts,
                   std::vector<std::uint8_t>{}, deadline);
}

StatusOr<Arrangement> ArrangementService::ServeUser(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts, std::vector<std::uint8_t> available,
    const Deadline& deadline) {
  // Admission control runs before the round mutex: shedding exists
  // precisely to keep excess callers from queueing on the pipeline.
  if (lame_duck_.load(std::memory_order_relaxed)) {
    serve_errors_metric_->Increment();
    return UnavailableError("service is draining (lame duck)");
  }
  if (batching_enabled_.load(std::memory_order_acquire)) {
    serve_errors_metric_->Increment();
    return FailedPreconditionError(
        "service is in batched mode; use ServeUserBatched");
  }
  // Compare-and-admit: the permit is granted only while the count is
  // strictly below the limit, so exactly max_inflight callers can hold
  // one at a time (a racing overflow caller can never push an admitted
  // one over the limit and make both shed).
  InflightLimiter::Permit permit = inflight_.TryAcquire(overload_.max_inflight);
  if (!permit.admitted()) {
    rounds_shed_.fetch_add(1, std::memory_order_relaxed);
    shed_metric_->Increment();
    return ResourceExhaustedError(StrFormat(
        "overloaded: in-flight limit of %d reached", overload_.max_inflight));
  }
  if (rate_limiter_ != nullptr && !rate_limiter_->TryAcquire()) {
    rounds_shed_.fetch_add(1, std::memory_order_relaxed);
    shed_metric_->Increment();
    return ResourceExhaustedError(
        StrFormat("overloaded: admission rate limit of %.1f rps exceeded",
                  overload_.max_rps));
  }

  std::unique_lock<std::timed_mutex> lock(mu_, std::defer_lock);
  if (!LockWithDeadline(lock, deadline)) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    deadline_exceeded_metric_->Increment();
    return DeadlineExceededError(
        "deadline expired before the round pipeline was acquired");
  }
  // Consume the sharded coordinator's id override (if any) up front so a
  // failed serve cannot leak it into an unrelated later round.
  const std::uint64_t txn = next_txn_override_ != 0
                                ? next_txn_override_
                                : static_cast<std::uint64_t>(t_ + 1);
  const std::uint64_t trace_id =
      next_trace_override_ != 0 ? next_trace_override_ : Mix64(txn);
  next_txn_override_ = 0;
  next_trace_override_ = 0;
  TraceSpan total_span("serve.total", t_ + 1, TraceRing::Global(),
                       serve_latency_, trace_id);
  if (pending_) {
    serve_errors_metric_->Increment();
    return FailedPreconditionError(
        "previous user's feedback has not been submitted");
  }
  RoundContext round;
  {
    TraceSpan span("serve.ingest", t_ + 1);
    round.contexts = contexts;
    round.user_capacity = user_capacity;
    round.user_id = user_id;
    round.available = std::move(available);
    if (Status st = ValidateRoundContext(round, instance_->num_events(),
                                         instance_->dim());
        !st.ok()) {
      serve_errors_metric_->Increment();
      return st;
    }
  }
  ++t_;
  Arrangement arrangement;
  const bool learner_healthy = LearnerHealthyLocked();
  learner_healthy_gauge_->Set(learner_healthy ? 1.0 : 0.0);
  {
    TraceSpan span("serve.propose", t_, TraceRing::Global(), nullptr,
                   trace_id);
    if (!learner_healthy) {
      // The learner's Y lost positive-definiteness (a failed Cholesky
      // refactorization). Serve a feasible, estimate-free arrangement
      // rather than crash or propose from a corrupt inverse.
      arrangement = StatelessProposal(round);
      ++stateless_fallbacks_;
      fallbacks_metric_->Increment();
    } else {
      arrangement = policy_->Propose(t_, round, state_);
    }
  }
  FASEA_CHECK(IsFeasibleArrangement(arrangement, instance_->conflicts(),
                                    state_, user_capacity));
  pending_ = true;
  pending_round_ = std::move(round);
  pending_arrangement_ = arrangement;
  pending_txn_ = txn;
  pending_trace_id_ = trace_id;
  if (decision_log_ != nullptr) {
    TraceSpan span("serve.decision_log", t_, TraceRing::Global(), nullptr,
                   trace_id);
    DecisionRecord decision;
    decision.round = t_;
    decision.txn = txn;
    decision.user_id = user_id;
    decision.user_capacity = user_capacity;
    decision.context_hash = HashRoundContext(pending_round_);
    decision.trace_id = trace_id;
    const auto* base =
        dynamic_cast<const LinearPolicyBase*>(policy_.get());
    decision.theta_version =
        base != nullptr ? base->ridge().num_observations() : 0;
    if (learner_healthy) {
      decision.propensity =
          policy_->PropensityOf(t_, pending_round_, state_, arrangement);
      decision.policy_id = std::string(policy_->name());
    } else {
      // The stateless fallback is deterministic given the round and
      // capacities: a point mass on what it proposed.
      decision.propensity = 1.0;
      decision.policy_id = "Stateless";
    }
    decision.arrangement = arrangement;
    // Best-effort: a failed append counts in
    // fasea.decision.append_failures, serving continues.
    (void)decision_log_->Append(decision);
  }
  serve_rounds_metric_->Increment();
  proposed_events_metric_->Add(static_cast<std::int64_t>(
      arrangement.size()));
  rounds_served_gauge_->Set(static_cast<double>(t_));
  UpdateHealthGaugeLocked();
  return arrangement;
}

Status ArrangementService::WalAppendLocked(std::string_view encoded) {
  if (wal_->broken()) {
    // Only a fresh writer (new segment) can accept frames again; sealed
    // or torn bytes are never rewritten.
    if (!reopen_fn_) {
      return UnavailableError(
          "wal writer is broken and no reopen hook was attached");
    }
    auto reopened = reopen_fn_();
    if (!reopened.ok()) return reopened.status();
    wal_ = std::move(reopened).value();
    ++wal_reopens_;
    wal_reopens_metric_->Increment();
  }
  wal_->set_trace_round(t_);
  return wal_->Append(encoded);
}

Status ArrangementService::WalWriteAheadLocked(const std::string& encoded,
                                               bool* durable) {
  *durable = false;
  if (wal_ == nullptr || wal_degraded_) return Status::Ok();
  if (breaker_ == nullptr) {
    wal_->set_trace_round(t_);
    if (Status st = wal_->Append(encoded); st.ok()) {
      *durable = true;
    } else {
      ++wal_append_failures_;
      if (durability_.on_wal_error ==
          DurabilityPolicy::OnWalError::kFailRound) {
        retryable_errors_metric_->Increment();
        return UnavailableError(
            "durability failure, feedback not applied (retry after the "
            "log is restored): " +
            st.message());
      }
      // Degrade: availability over durability, visibly.
      wal_degraded_ = true;
      degraded_entries_metric_->Increment();
      wal_degraded_gauge_->Set(1.0);
      UpdateHealthGaugeLocked();
    }
  } else if (!breaker_->Allow()) {
    // Open (or probe slots busy): serve without touching the dying
    // disk. The round is acknowledged non-durably; the breaker's
    // cooldown decides when durability is probed again.
    ++nondurable_rounds_;
    nondurable_metric_->Increment();
  } else {
    Status st = WalAppendLocked(encoded);
    if (st.ok()) {
      breaker_->RecordSuccess();
      *durable = true;
    } else {
      breaker_->RecordFailure();
      ++wal_append_failures_;
      if (durability_.on_wal_error ==
          DurabilityPolicy::OnWalError::kFailRound) {
        retryable_errors_metric_->Increment();
        UpdateHealthGaugeLocked();
        return UnavailableError(
            "durability failure, feedback not applied (retry; the "
            "breaker arbitrates recovery): " +
            st.message());
      }
      ++nondurable_rounds_;
      nondurable_metric_->Increment();
    }
  }
  return Status::Ok();
}

Status ArrangementService::SubmitFeedback(const Feedback& feedback,
                                          FeedbackResult* result,
                                          const Deadline& deadline) {
  std::unique_lock<std::timed_mutex> lock(mu_, std::defer_lock);
  if (!LockWithDeadline(lock, deadline)) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    deadline_exceeded_metric_->Increment();
    return DeadlineExceededError(
        "deadline expired before the round pipeline was acquired");
  }
  TraceSpan total_span("feedback.total", t_, TraceRing::Global(),
                       feedback_latency_,
                       pending_ ? pending_trace_id_ : 0);
  if (batching_enabled_.load(std::memory_order_acquire)) {
    feedback_errors_metric_->Increment();
    return FailedPreconditionError(
        "service is in batched mode; use SubmitBatchedFeedback");
  }
  if (!pending_) {
    feedback_errors_metric_->Increment();
    return FailedPreconditionError("no arrangement is awaiting feedback");
  }
  if (feedback.size() != pending_arrangement_.size()) {
    feedback_errors_metric_->Increment();
    return InvalidArgumentError(
        "feedback must align with the proposed arrangement");
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) {
      feedback_errors_metric_->Increment();
      return InvalidArgumentError("feedback entries must be 0/1");
    }
  }

  InteractionRecord record;
  std::string encoded;
  {
    TraceSpan span("feedback.encode", t_, TraceRing::Global(), nullptr,
                   pending_trace_id_);
    record.t = t_;
    record.user_id = pending_round_.user_id;
    record.user_capacity = pending_round_.user_capacity;
    record.arrangement = pending_arrangement_;
    record.feedback = feedback;
    for (EventId v : pending_arrangement_) {
      const auto row = pending_round_.contexts.Row(v);
      record.contexts.emplace_back(row.begin(), row.end());
    }
    if (wal_ != nullptr && !wal_degraded_) {
      encoded = EncodeInteractionRecord(record);
    }
  }

  // Write-ahead: the interaction must be durable (per the writer's fsync
  // policy) before any state changes, so a crash between here and the end
  // of this function loses nothing that was applied.
  bool durable = false;
  if (Status st = WalWriteAheadLocked(encoded, &durable); !st.ok()) {
    return st;
  }

  for (std::size_t i = 0; i < feedback.size(); ++i) {
    if (feedback[i]) state_.ConsumeOne(pending_arrangement_[i]);
  }
  {
    TraceSpan span("feedback.learn", t_, TraceRing::Global(), nullptr,
                   pending_trace_id_);
    policy_->Learn(t_, pending_round_, pending_arrangement_, feedback);
  }
  accepted_events_metric_->Add(
      static_cast<std::int64_t>(NumAccepted(feedback)));
  FASEA_CHECK_OK(log_.Append(std::move(record)));
  pending_ = false;
  feedback_rounds_metric_->Increment();
  UpdateHealthGaugeLocked();
  if (result != nullptr) {
    result->round = t_;
    result->durable = durable;
  }
  return Status::Ok();
}

StatusOr<BatchedRound> ArrangementService::ServeUserBatched(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts, const Deadline& deadline) {
  if (!batching_enabled_.load(std::memory_order_acquire)) {
    serve_errors_metric_->Increment();
    return FailedPreconditionError(
        "batched serving is not enabled (ConfigureBatching)");
  }
  if (lame_duck_.load(std::memory_order_relaxed)) {
    serve_errors_metric_->Increment();
    return UnavailableError("service is draining (lame duck)");
  }
  InflightLimiter::Permit permit =
      inflight_.TryAcquire(overload_.max_inflight);
  if (!permit.admitted()) {
    rounds_shed_.fetch_add(1, std::memory_order_relaxed);
    shed_metric_->Increment();
    return ResourceExhaustedError(StrFormat(
        "overloaded: in-flight limit of %d reached", overload_.max_inflight));
  }
  if (rate_limiter_ != nullptr && !rate_limiter_->TryAcquire()) {
    rounds_shed_.fetch_add(1, std::memory_order_relaxed);
    shed_metric_->Increment();
    return ResourceExhaustedError(
        StrFormat("overloaded: admission rate limit of %.1f rps exceeded",
                  overload_.max_rps));
  }
  if (batching_.max_pending > 0 &&
      pending_batched_count_.load(std::memory_order_relaxed) >=
          batching_.max_pending) {
    rounds_shed_.fetch_add(1, std::memory_order_relaxed);
    shed_metric_->Increment();
    return ResourceExhaustedError(StrFormat(
        "overloaded: %lld batched rounds awaiting feedback (limit %d)",
        static_cast<long long>(
            pending_batched_count_.load(std::memory_order_relaxed)),
        batching_.max_pending));
  }
  if (deadline.Expired()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    deadline_exceeded_metric_->Increment();
    return DeadlineExceededError(
        "deadline expired before the round was enqueued");
  }

  BatchWaiter waiter;
  waiter.round.contexts = contexts;
  waiter.round.user_capacity = user_capacity;
  waiter.round.user_id = user_id;
  if (Status st = ValidateRoundContext(waiter.round, instance_->num_events(),
                                       instance_->dim());
      !st.ok()) {
    serve_errors_metric_->Increment();
    return st;
  }
  waiter.enqueue_ns = Stopwatch::NowNanos();

  // Leader/follower coalescing: every arrival enqueues; the front
  // unclaimed waiter claims a batch once it is full, the coalescing
  // window has passed, or every admitted arrival is already queued.
  // Claiming threads process their batch themselves — there is no
  // background thread to keep alive or drain at shutdown — and several
  // claimed batches score concurrently (resolution is sequenced by
  // claim order inside ProcessBatch).
  std::vector<BatchWaiter*> batch;
  std::int64_t batch_seq = 0;
  {
    std::unique_lock<std::mutex> lock(batch_mu_);
    waiter.ticket = ++next_ticket_;
    batch_queue_.push_back(&waiter);
    batch_cv_.notify_all();
    const std::int64_t window_ns = batching_.max_wait_us * 1000;
    while (!waiter.done) {
      if (!waiter.claimed && batch_queue_.front() == &waiter) {
        const bool full =
            static_cast<int>(batch_queue_.size()) >= batching_.max_batch;
        // Provably alone: this waiter holds the only admitted in-flight
        // serve, so no companion can arrive before it resolves — waiting
        // out the window would add latency without growing the batch.
        // Under real concurrency the window (or a full batch) governs,
        // which is what lets arrivals coalesce at all.
        const bool lone = inflight_.current() <= 1;
        const bool window_over =
            Stopwatch::NowNanos() - waiter.enqueue_ns >= window_ns;
        if (full || lone || window_over) {
          const std::size_t take =
              std::min(batch_queue_.size(),
                       static_cast<std::size_t>(batching_.max_batch));
          batch.reserve(take);
          for (std::size_t i = 0; i < take; ++i) {
            BatchWaiter* w = batch_queue_.front();
            batch_queue_.pop_front();
            w->claimed = true;
            batch.push_back(w);
          }
          batch_seq = next_batch_seq_++;
          // The next front may already be claimable (it saw itself
          // non-front a moment ago).
          batch_cv_.notify_all();
          break;
        }
      }
      // Sleep until something can change: the front waiter must wake at
      // window expiry to claim; unclaimed waiters honor their deadline.
      std::int64_t wait_ns = -1;  // < 0: wait for a notification.
      if (!waiter.claimed && batch_queue_.front() == &waiter) {
        // Clamp: the window can expire between the claim check above and
        // this read of the clock, and a negative remainder must mean
        // "recheck immediately", never "sleep unbounded".
        wait_ns = std::max<std::int64_t>(
            waiter.enqueue_ns + window_ns - Stopwatch::NowNanos(), 0);
      }
      if (!waiter.claimed && !deadline.infinite()) {
        const std::int64_t remaining = deadline.RemainingNanos();
        if (remaining <= 0) {
          // Still unclaimed, so no batch references this waiter yet:
          // withdrawing is just leaving the queue.
          auto it = std::find(batch_queue_.begin(), batch_queue_.end(),
                              &waiter);
          FASEA_CHECK(it != batch_queue_.end());
          batch_queue_.erase(it);
          batch_cv_.notify_all();
          deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
          deadline_exceeded_metric_->Increment();
          return DeadlineExceededError(
              "deadline expired while waiting for the batch window");
        }
        wait_ns = wait_ns < 0 ? remaining : std::min(wait_ns, remaining);
      }
      if (wait_ns < 0) {
        batch_cv_.wait(lock);
      } else {
        batch_cv_.wait_for(lock, std::chrono::nanoseconds(
                                     std::max<std::int64_t>(wait_ns, 0)));
      }
    }
  }

  if (!batch.empty()) {
    ProcessBatch(batch, batch_seq);
    std::lock_guard<std::mutex> lock(batch_mu_);
    for (BatchWaiter* w : batch) w->done = true;
    batch_cv_.notify_all();
  }
  serve_latency_->Record(Stopwatch::NowNanos() - waiter.enqueue_ns);
  return std::move(waiter.result);
}

void ArrangementService::ProcessBatch(
    const std::vector<BatchWaiter*>& batch, std::int64_t seq) {
  std::shared_ptr<const LearnerSnapshot> snap;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snap = snapshot_;
  }
  FASEA_CHECK(snap != nullptr);
  const std::size_t b = batch.size();
  std::vector<SnapshotRound> rows(b);
  for (std::size_t i = 0; i < b; ++i) {
    rows[i].ticket = batch[i]->ticket;
    rows[i].round = &batch[i]->round;
  }
  Matrix scores(b, instance_->num_events());
  std::vector<RowResolve> resolve(b, RowResolve::kGreedy);
  const auto* base = static_cast<const LinearPolicyBase*>(policy_.get());
  if (snap->healthy) {
    // The expensive step: one stacked scoring pass over the immutable
    // snapshot with no lock held — feedback commits run in parallel.
    base->ScoreBatchSnapshot(*snap, rows, &scores,
                             std::span<RowResolve>(resolve));
  }

  // eGreedy exploration rows resolve through a ticket-seeded random
  // oracle, so a batch's arrangements depend only on (snapshot, tickets,
  // rounds) — never on which thread claimed the batch.
  std::vector<std::unique_ptr<RandomOracle>> explorers;
  std::vector<ArrangementOracle*> row_oracle(b, nullptr);
  for (std::size_t i = 0; i < b; ++i) {
    if (resolve[i] == RowResolve::kRandom) {
      explorers.push_back(std::make_unique<RandomOracle>(
          Pcg64(DeriveSeed(batch_salt_, "explore",
                           static_cast<std::uint64_t>(batch[i]->ticket)),
                HashTag("batch-explore"))));
      row_oracle[i] = explorers.back().get();
    }
  }
  std::vector<std::int64_t> caps(b);
  for (std::size_t i = 0; i < b; ++i) {
    caps[i] = batch[i]->round.user_capacity;
  }

  std::vector<Arrangement> arrangements;
  {
    // The short critical section: ticket-order capacity resolution over
    // the reservation view, plus pending registration. Concurrent
    // batches score in parallel above but resolve strictly in claim
    // order (seq), so capacity contention is deterministic given the
    // arrival order.
    std::unique_lock<std::timed_mutex> lock(mu_);
    resolve_cv_.wait(lock, [&] { return resolve_turn_ == seq; });
    if (snap->healthy) {
      arrangements = batch_oracle_.SelectBatch(
          scores, instance_->conflicts(), &effective_state_, caps,
          std::span<ArrangementOracle* const>(row_oracle));
    } else {
      // Snapshot captured an unhealthy learner: estimate-free proposals,
      // still reserving seats so concurrent batches cannot oversell.
      arrangements.resize(b);
      for (std::size_t i = 0; i < b; ++i) {
        arrangements[i] =
            StatelessProposal(batch[i]->round, effective_state_);
        FASEA_CHECK(IsFeasibleArrangement(arrangements[i],
                                          instance_->conflicts(),
                                          effective_state_, caps[i]));
        for (EventId v : arrangements[i]) effective_state_.ConsumeOne(v);
        ++stateless_fallbacks_;
        fallbacks_metric_->Increment();
      }
    }
    learner_healthy_gauge_->Set(snap->healthy ? 1.0 : 0.0);
    for (std::size_t i = 0; i < b; ++i) {
      PendingBatched pending;
      pending.round = std::move(batch[i]->round);
      pending.arrangement = arrangements[i];
      pending.epoch = snap->epoch;
      batched_pending_.emplace(batch[i]->ticket, std::move(pending));
      pending_batched_count_.fetch_add(1, std::memory_order_relaxed);
      proposed_events_metric_->Add(
          static_cast<std::int64_t>(arrangements[i].size()));
      serve_rounds_metric_->Increment();
    }
    ++resolve_turn_;
    resolve_cv_.notify_all();
  }
  const std::int64_t resolved_ns = Stopwatch::NowNanos();
  batch_size_hist_->Record(static_cast<std::int64_t>(b));
  for (std::size_t i = 0; i < b; ++i) {
    batch_wait_hist_->Record(resolved_ns - batch[i]->enqueue_ns);
    BatchedRound out;
    out.ticket = batch[i]->ticket;
    out.epoch = snap->epoch;
    out.arrangement = std::move(arrangements[i]);
    batch[i]->result = std::move(out);
  }
}

Status ArrangementService::SubmitBatchedFeedback(std::int64_t ticket,
                                                 const Feedback& feedback,
                                                 FeedbackResult* result,
                                                 const Deadline& deadline) {
  std::unique_lock<std::timed_mutex> lock(mu_, std::defer_lock);
  if (!LockWithDeadline(lock, deadline)) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    deadline_exceeded_metric_->Increment();
    return DeadlineExceededError(
        "deadline expired before the round pipeline was acquired");
  }
  if (!batching_enabled_.load(std::memory_order_acquire)) {
    feedback_errors_metric_->Increment();
    return FailedPreconditionError(
        "batched serving is not enabled (ConfigureBatching)");
  }
  TraceSpan total_span("feedback.total", t_ + 1, TraceRing::Global(),
                       feedback_latency_);
  auto it = batched_pending_.find(ticket);
  if (it == batched_pending_.end()) {
    feedback_errors_metric_->Increment();
    return NotFoundError(
        StrFormat("ticket %lld has no batched round awaiting feedback",
                  static_cast<long long>(ticket)));
  }
  PendingBatched& round = it->second;
  if (feedback.size() != round.arrangement.size()) {
    feedback_errors_metric_->Increment();
    return InvalidArgumentError(
        "feedback must align with the proposed arrangement");
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) {
      feedback_errors_metric_->Increment();
      return InvalidArgumentError("feedback entries must be 0/1");
    }
  }

  InteractionRecord record;
  std::string encoded;
  {
    TraceSpan span("feedback.encode", t_ + 1);
    // Commit order assigns the round id: whichever outstanding ticket
    // lands first gets the next t, so the WAL stays strictly increasing
    // and recovery replays unchanged.
    record.t = t_ + 1;
    record.user_id = round.round.user_id;
    record.user_capacity = round.round.user_capacity;
    record.arrangement = round.arrangement;
    record.feedback = feedback;
    for (EventId v : round.arrangement) {
      const auto row = round.round.contexts.Row(v);
      record.contexts.emplace_back(row.begin(), row.end());
    }
    if (wal_ != nullptr && !wal_degraded_) {
      encoded = EncodeInteractionRecord(record);
    }
  }

  bool durable = false;
  if (Status st = WalWriteAheadLocked(encoded, &durable); !st.ok()) {
    return st;  // Nothing applied; the ticket stays pending for retry.
  }
  ++t_;
  for (std::size_t i = 0; i < feedback.size(); ++i) {
    const EventId v = round.arrangement[i];
    if (feedback[i]) {
      // The seat was reserved in effective_state_ at propose time; the
      // acceptance makes the consumption permanent in the ground truth.
      state_.ConsumeOne(v);
    } else {
      effective_state_.ReleaseOne(v);
    }
  }
  {
    TraceSpan span("feedback.learn", t_);
    policy_->Learn(t_, round.round, round.arrangement, feedback);
  }
  accepted_events_metric_->Add(
      static_cast<std::int64_t>(NumAccepted(feedback)));
  FASEA_CHECK_OK(log_.Append(std::move(record)));
  batched_pending_.erase(it);
  pending_batched_count_.fetch_sub(1, std::memory_order_relaxed);
  feedback_rounds_metric_->Increment();
  rounds_served_gauge_->Set(static_cast<double>(t_));
  PublishSnapshotLocked();
  UpdateHealthGaugeLocked();
  if (result != nullptr) {
    result->round = t_;
    result->durable = durable;
  }
  return Status::Ok();
}

void ArrangementService::PublishSnapshotLocked() {
  if (!batching_enabled_.load(std::memory_order_acquire)) return;
  const auto* base = static_cast<const LinearPolicyBase*>(policy_.get());
  std::shared_ptr<const LearnerSnapshot> snap = base->MakeSnapshot();
  snapshot_epoch_gauge_->Set(static_cast<double>(snap->epoch));
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const LearnerSnapshot> ArrangementService::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Status ArrangementService::AbortPendingRound() {
  std::lock_guard<std::timed_mutex> lock(mu_);
  if (!pending_) {
    return FailedPreconditionError("no round is pending to abort");
  }
  // The round never reached the WAL (SubmitFeedback is the write-ahead
  // point) and no state was consumed, so undoing it is just forgetting
  // it: the next ServeUser re-uses the same round id.
  --t_;
  pending_ = false;
  pending_round_ = RoundContext{};
  pending_arrangement_.clear();
  aborted_rounds_metric_->Increment();
  rounds_served_gauge_->Set(static_cast<double>(t_));
  return Status::Ok();
}

Status ArrangementService::RestoreInteraction(
    const InteractionRecord& record, bool learn) {
  std::lock_guard<std::timed_mutex> lock(mu_);
  if (pending_) {
    return FailedPreconditionError(
        "cannot restore interactions while a round is awaiting feedback");
  }
  if (record.t <= t_) {
    return DataLossError(StrFormat(
        "wal replay: round %lld arrived after round %lld (out of order "
        "or duplicated frame)",
        static_cast<long long>(record.t), static_cast<long long>(t_)));
  }
  if (Status st = log_.Validate(record); !st.ok()) return st;
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    if (record.feedback[i] && !state_.HasCapacity(record.arrangement[i])) {
      return DataLossError(StrFormat(
          "wal replay: event %u accepted at round %lld but its capacity "
          "is already exhausted — log and instance disagree",
          record.arrangement[i], static_cast<long long>(record.t)));
    }
  }

  // All checks passed; apply. Append cannot fail after Validate.
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    if (record.feedback[i]) {
      state_.ConsumeOne(record.arrangement[i]);
      // Restored records carry no outstanding reservation, so the
      // effective view tracks the ground truth one-for-one.
      if (batching_enabled_.load(std::memory_order_acquire)) {
        effective_state_.ConsumeOne(record.arrangement[i]);
      }
    }
  }
  if (learn) {
    RoundContext scratch;
    scratch.contexts =
        ContextMatrix(instance_->num_events(), instance_->dim());
    InteractionLog::FeedRecord(record, instance_->num_events(),
                               instance_->dim(), policy_.get(), &scratch);
  }
  t_ = record.t;
  rounds_served_gauge_->Set(static_cast<double>(t_));
  FASEA_CHECK_OK(log_.Append(record));
  PublishSnapshotLocked();
  return Status::Ok();
}

Status ArrangementService::RestoreMigratedCapacity(EventId event,
                                                   std::int64_t consumed) {
  std::lock_guard<std::timed_mutex> lock(mu_);
  if (pending_) {
    return FailedPreconditionError(
        "cannot restore migrated capacity while a round is awaiting "
        "feedback");
  }
  if (event >= instance_->num_events()) {
    return InvalidArgumentError(StrFormat(
        "migrated event %u is outside the instance (|V| = %zu)", event,
        instance_->num_events()));
  }
  if (consumed < 0 || consumed > state_.remaining(event)) {
    return DataLossError(StrFormat(
        "migrated event %u claims %lld consumed seats but %lld remain — "
        "migration record and instance disagree",
        event, static_cast<long long>(consumed),
        static_cast<long long>(state_.remaining(event))));
  }
  for (std::int64_t i = 0; i < consumed; ++i) {
    state_.ConsumeOne(event);
    if (batching_enabled_.load(std::memory_order_acquire)) {
      effective_state_.ConsumeOne(event);
    }
  }
  PublishSnapshotLocked();
  return Status::Ok();
}

Status ArrangementService::AbsorbPeerObservations(
    const std::vector<PeerObservation>& delta) {
  std::lock_guard<std::timed_mutex> lock(mu_);
  auto* base = dynamic_cast<LinearPolicyBase*>(policy_.get());
  if (base == nullptr) {
    return FailedPreconditionError(
        "policy has no mergeable ridge state");
  }
  if (delta.empty()) return Status::Ok();
  RidgeState& ridge = base->mutable_ridge();
  for (const PeerObservation& obs : delta) {
    if (obs.context.size() != instance_->dim()) {
      return InvalidArgumentError(StrFormat(
          "peer observation has dimension %zu, instance has %zu",
          obs.context.size(), instance_->dim()));
    }
  }
  for (const PeerObservation& obs : delta) {
    ridge.Update(obs.context, obs.reward);
  }
  ridge.Refactorize();
  learner_healthy_gauge_->Set(ridge.healthy() ? 1.0 : 0.0);
  UpdateHealthGaugeLocked();
  // Batched scoring must see the merged estimates (healthy or not — an
  // unhealthy snapshot routes batches to the stateless fallback).
  PublishSnapshotLocked();
  if (!ridge.healthy()) {
    return InternalError(
        "merged delta left the learner unhealthy (refactorization "
        "failed)");
  }
  return Status::Ok();
}

std::string ArrangementService::Checkpoint() const {
  std::lock_guard<std::timed_mutex> lock(mu_);
  const auto* base = dynamic_cast<const LinearPolicyBase*>(policy_.get());
  FASEA_CHECK(base != nullptr &&
              "only ridge learners support checkpointing");
  return SaveCheckpoint(kind_, params_, *base);
}

}  // namespace fasea
