#include "ebsn/arrangement_service.h"

#include "oracle/oracle.h"
#include "rng/seed.h"

namespace fasea {

ArrangementService::ArrangementService(const ProblemInstance* instance,
                                       PolicyKind kind,
                                       const PolicyParams& params)
    : instance_(instance),
      kind_(kind),
      params_(params),
      state_(*instance),
      log_(instance->num_events(), instance->dim()) {
  FASEA_CHECK(instance != nullptr);
}

ArrangementService::ArrangementService(const ProblemInstance* instance,
                                       PolicyKind kind,
                                       const PolicyParams& params,
                                       std::uint64_t seed)
    : ArrangementService(instance, kind, params) {
  policy_ = MakePolicy(kind, instance, params, seed);
}

StatusOr<std::unique_ptr<ArrangementService>>
ArrangementService::FromCheckpoint(const ProblemInstance* instance,
                                   std::string_view blob,
                                   std::uint64_t seed) {
  auto checkpoint = ParseCheckpoint(blob);
  if (!checkpoint.ok()) return checkpoint.status();
  auto policy = RestorePolicy(*checkpoint, instance, seed);
  if (!policy.ok()) return policy.status();
  auto service = std::unique_ptr<ArrangementService>(new ArrangementService(
      instance, checkpoint->kind, checkpoint->params));
  service->policy_ = std::move(policy).value();
  return service;
}

StatusOr<Arrangement> ArrangementService::ServeUser(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts) {
  if (pending_) {
    return FailedPreconditionError(
        "previous user's feedback has not been submitted");
  }
  RoundContext round;
  round.contexts = contexts;
  round.user_capacity = user_capacity;
  round.user_id = user_id;
  if (Status st = ValidateRoundContext(round, instance_->num_events(),
                                       instance_->dim());
      !st.ok()) {
    return st;
  }
  ++t_;
  Arrangement arrangement = policy_->Propose(t_, round, state_);
  FASEA_CHECK(IsFeasibleArrangement(arrangement, instance_->conflicts(),
                                    state_, user_capacity));
  pending_ = true;
  pending_round_ = std::move(round);
  pending_arrangement_ = arrangement;
  return arrangement;
}

Status ArrangementService::SubmitFeedback(const Feedback& feedback) {
  if (!pending_) {
    return FailedPreconditionError("no arrangement is awaiting feedback");
  }
  if (feedback.size() != pending_arrangement_.size()) {
    return InvalidArgumentError(
        "feedback must align with the proposed arrangement");
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) return InvalidArgumentError("feedback entries must be 0/1");
  }
  for (std::size_t i = 0; i < feedback.size(); ++i) {
    if (feedback[i]) state_.ConsumeOne(pending_arrangement_[i]);
  }
  policy_->Learn(t_, pending_round_, pending_arrangement_, feedback);

  InteractionRecord record;
  record.t = t_;
  record.user_id = pending_round_.user_id;
  record.user_capacity = pending_round_.user_capacity;
  record.arrangement = pending_arrangement_;
  record.feedback = feedback;
  for (EventId v : pending_arrangement_) {
    const auto row = pending_round_.contexts.Row(v);
    record.contexts.emplace_back(row.begin(), row.end());
  }
  FASEA_CHECK_OK(log_.Append(std::move(record)));
  pending_ = false;
  return Status::Ok();
}

std::string ArrangementService::Checkpoint() const {
  const auto* base = dynamic_cast<const LinearPolicyBase*>(policy_.get());
  FASEA_CHECK(base != nullptr &&
              "only ridge learners support checkpointing");
  return SaveCheckpoint(kind_, params_, *base);
}

}  // namespace fasea
