#include "ebsn/arrangement_service.h"

#include "common/strings.h"
#include "obs/trace.h"
#include "oracle/oracle.h"
#include "rng/seed.h"

namespace fasea {

ArrangementService::ArrangementService(const ProblemInstance* instance,
                                       PolicyKind kind,
                                       const PolicyParams& params)
    : instance_(instance),
      kind_(kind),
      params_(params),
      state_(*instance),
      log_(instance->num_events(), instance->dim()) {
  FASEA_CHECK(instance != nullptr);
}

ArrangementService::ArrangementService(const ProblemInstance* instance,
                                       PolicyKind kind,
                                       const PolicyParams& params,
                                       std::uint64_t seed)
    : ArrangementService(instance, kind, params) {
  policy_ = MakePolicy(kind, instance, params, seed);
}

StatusOr<std::unique_ptr<ArrangementService>>
ArrangementService::FromCheckpoint(const ProblemInstance* instance,
                                   std::string_view blob,
                                   std::uint64_t seed) {
  auto checkpoint = ParseCheckpoint(blob);
  if (!checkpoint.ok()) return checkpoint.status();
  auto policy = RestorePolicy(*checkpoint, instance, seed);
  if (!policy.ok()) return policy.status();
  auto service = std::unique_ptr<ArrangementService>(new ArrangementService(
      instance, checkpoint->kind, checkpoint->params));
  service->policy_ = std::move(policy).value();
  return service;
}

void ArrangementService::AttachWal(std::unique_ptr<WalWriter> wal,
                                   DurabilityPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  FASEA_CHECK(wal != nullptr);
  FASEA_CHECK(wal_ == nullptr && "a WAL is already attached");
  wal_ = std::move(wal);
  durability_ = policy;
}

Arrangement ArrangementService::StatelessProposal(
    const RoundContext& round) const {
  const ConflictGraph& conflicts = instance_->conflicts();
  Arrangement out;
  for (EventId v = 0;
       v < instance_->num_events() &&
       static_cast<std::int64_t>(out.size()) < round.user_capacity;
       ++v) {
    if (!round.IsAvailable(v) || !state_.HasCapacity(v)) continue;
    bool clashes = false;
    for (EventId arranged : out) {
      if (conflicts.Conflicts(v, arranged)) {
        clashes = true;
        break;
      }
    }
    if (!clashes) out.push_back(v);
  }
  return out;
}

StatusOr<Arrangement> ArrangementService::ServeUser(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan total_span("serve.total", t_ + 1, TraceRing::Global(),
                       serve_latency_);
  if (pending_) {
    serve_errors_metric_->Increment();
    return FailedPreconditionError(
        "previous user's feedback has not been submitted");
  }
  RoundContext round;
  {
    TraceSpan span("serve.ingest", t_ + 1);
    round.contexts = contexts;
    round.user_capacity = user_capacity;
    round.user_id = user_id;
    if (Status st = ValidateRoundContext(round, instance_->num_events(),
                                         instance_->dim());
        !st.ok()) {
      serve_errors_metric_->Increment();
      return st;
    }
  }
  ++t_;
  Arrangement arrangement;
  const auto* base = dynamic_cast<const LinearPolicyBase*>(policy_.get());
  const bool learner_healthy =
      base == nullptr || base->ridge().healthy();
  learner_healthy_gauge_->Set(learner_healthy ? 1.0 : 0.0);
  {
    TraceSpan span("serve.propose", t_);
    if (!learner_healthy) {
      // The learner's Y lost positive-definiteness (a failed Cholesky
      // refactorization). Serve a feasible, estimate-free arrangement
      // rather than crash or propose from a corrupt inverse.
      arrangement = StatelessProposal(round);
      ++stateless_fallbacks_;
      fallbacks_metric_->Increment();
    } else {
      arrangement = policy_->Propose(t_, round, state_);
    }
  }
  FASEA_CHECK(IsFeasibleArrangement(arrangement, instance_->conflicts(),
                                    state_, user_capacity));
  pending_ = true;
  pending_round_ = std::move(round);
  pending_arrangement_ = arrangement;
  serve_rounds_metric_->Increment();
  proposed_events_metric_->Add(static_cast<std::int64_t>(
      arrangement.size()));
  rounds_served_gauge_->Set(static_cast<double>(t_));
  return arrangement;
}

Status ArrangementService::SubmitFeedback(const Feedback& feedback) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan total_span("feedback.total", t_, TraceRing::Global(),
                       feedback_latency_);
  if (!pending_) {
    feedback_errors_metric_->Increment();
    return FailedPreconditionError("no arrangement is awaiting feedback");
  }
  if (feedback.size() != pending_arrangement_.size()) {
    feedback_errors_metric_->Increment();
    return InvalidArgumentError(
        "feedback must align with the proposed arrangement");
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) {
      feedback_errors_metric_->Increment();
      return InvalidArgumentError("feedback entries must be 0/1");
    }
  }

  InteractionRecord record;
  std::string encoded;
  {
    TraceSpan span("feedback.encode", t_);
    record.t = t_;
    record.user_id = pending_round_.user_id;
    record.user_capacity = pending_round_.user_capacity;
    record.arrangement = pending_arrangement_;
    record.feedback = feedback;
    for (EventId v : pending_arrangement_) {
      const auto row = pending_round_.contexts.Row(v);
      record.contexts.emplace_back(row.begin(), row.end());
    }
    if (wal_ != nullptr && !wal_degraded_) {
      encoded = EncodeInteractionRecord(record);
    }
  }

  // Write-ahead: the interaction must be durable (per the writer's fsync
  // policy) before any state changes, so a crash between here and the end
  // of this function loses nothing that was applied.
  if (wal_ != nullptr && !wal_degraded_) {
    wal_->set_trace_round(t_);
    if (Status st = wal_->Append(encoded); !st.ok()) {
      ++wal_append_failures_;
      if (durability_.on_wal_error ==
          DurabilityPolicy::OnWalError::kFailRound) {
        retryable_errors_metric_->Increment();
        return UnavailableError(
            "durability failure, feedback not applied (retry after the "
            "log is restored): " +
            st.message());
      }
      // Degrade: availability over durability, visibly.
      wal_degraded_ = true;
      degraded_entries_metric_->Increment();
      wal_degraded_gauge_->Set(1.0);
    }
  }

  for (std::size_t i = 0; i < feedback.size(); ++i) {
    if (feedback[i]) state_.ConsumeOne(pending_arrangement_[i]);
  }
  {
    TraceSpan span("feedback.learn", t_);
    policy_->Learn(t_, pending_round_, pending_arrangement_, feedback);
  }
  accepted_events_metric_->Add(
      static_cast<std::int64_t>(NumAccepted(feedback)));
  FASEA_CHECK_OK(log_.Append(std::move(record)));
  pending_ = false;
  feedback_rounds_metric_->Increment();
  return Status::Ok();
}

Status ArrangementService::RestoreInteraction(
    const InteractionRecord& record, bool learn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_) {
    return FailedPreconditionError(
        "cannot restore interactions while a round is awaiting feedback");
  }
  if (record.t <= t_) {
    return DataLossError(StrFormat(
        "wal replay: round %lld arrived after round %lld (out of order "
        "or duplicated frame)",
        static_cast<long long>(record.t), static_cast<long long>(t_)));
  }
  if (Status st = log_.Validate(record); !st.ok()) return st;
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    if (record.feedback[i] && !state_.HasCapacity(record.arrangement[i])) {
      return DataLossError(StrFormat(
          "wal replay: event %u accepted at round %lld but its capacity "
          "is already exhausted — log and instance disagree",
          record.arrangement[i], static_cast<long long>(record.t)));
    }
  }

  // All checks passed; apply. Append cannot fail after Validate.
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    if (record.feedback[i]) state_.ConsumeOne(record.arrangement[i]);
  }
  if (learn) {
    RoundContext scratch;
    scratch.contexts =
        ContextMatrix(instance_->num_events(), instance_->dim());
    InteractionLog::FeedRecord(record, instance_->num_events(),
                               instance_->dim(), policy_.get(), &scratch);
  }
  t_ = record.t;
  rounds_served_gauge_->Set(static_cast<double>(t_));
  FASEA_CHECK_OK(log_.Append(record));
  return Status::Ok();
}

std::string ArrangementService::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto* base = dynamic_cast<const LinearPolicyBase*>(policy_.get());
  FASEA_CHECK(base != nullptr &&
              "only ridge learners support checkpointing");
  return SaveCheckpoint(kind_, params_, *base);
}

}  // namespace fasea
