// EventCatalog: the user-facing registry of events behind a FASEA
// deployment.
//
// A platform describes its events with names, capacities, tags, and a
// schedule; the catalog derives the ProblemInstance (conflicts from
// schedule overlap, Definition 1's "a 7:30pm concert conflicts with a
// 7:00pm one") that the policies and simulator consume, and keeps the
// id ↔ name mapping for presentation.
#ifndef FASEA_EBSN_EVENT_CATALOG_H_
#define FASEA_EBSN_EVENT_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/instance.h"

namespace fasea {

struct EventSpec {
  std::string name;
  std::int64_t capacity = 0;
  /// Schedule as [start, end) on a shared timeline (e.g. hours since the
  /// start of the week). Events with overlapping intervals conflict.
  double start_time = 0.0;
  double end_time = 0.0;
  /// Free-form tags (category, sub-category, ...) used by tag-based
  /// baselines and presentation.
  std::vector<std::string> tags;
};

class EventCatalog {
 public:
  /// Registers an event; returns its id. Fails on empty/duplicate name,
  /// negative capacity, or end < start.
  StatusOr<EventId> Add(EventSpec spec);

  std::size_t size() const { return events_.size(); }
  const EventSpec& Get(EventId id) const;
  const std::string& Name(EventId id) const { return Get(id).name; }

  /// Id of the event named `name`, or NotFound.
  StatusOr<EventId> Find(const std::string& name) const;

  /// Builds the problem instance: capacities from the specs, conflicts
  /// from pairwise schedule overlap, context dimension `dim`.
  StatusOr<ProblemInstance> BuildInstance(std::size_t dim) const;

  /// Distinct tags across all events, sorted; and per-event tag-id lists
  /// against that vocabulary (for the OnlineGreedy baseline).
  std::vector<std::string> TagVocabulary() const;
  std::vector<std::vector<int>> EventTagIds() const;

 private:
  std::vector<EventSpec> events_;
};

}  // namespace fasea

#endif  // FASEA_EBSN_EVENT_CATALOG_H_
