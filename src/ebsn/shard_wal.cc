#include "ebsn/shard_wal.h"

#include <utility>

#include "common/bytes.h"
#include "common/strings.h"

namespace fasea {
namespace {

void AppendHeader(std::string* out, ShardFrameKind kind, std::uint64_t txn,
                  std::uint64_t trace_id, std::uint32_t epoch) {
  AppendU8(out, static_cast<std::uint8_t>(kind));
  AppendU64(out, txn);
  AppendU64(out, trace_id);
  AppendU32(out, epoch);
}

}  // namespace

std::string EncodeDecisionFrame(std::uint64_t txn, std::uint64_t trace_id,
                                std::uint32_t epoch,
                                const InteractionRecord& record) {
  std::string out;
  AppendHeader(&out, ShardFrameKind::kDecision, txn, trace_id, epoch);
  out += EncodeInteractionRecord(record);
  return out;
}

std::string EncodeReserveFrame(const ReservationRecord& reservation) {
  std::string out;
  AppendHeader(&out, ShardFrameKind::kReserve, reservation.txn,
               reservation.trace_id, reservation.epoch);
  AppendU32(&out, static_cast<std::uint32_t>(reservation.coordinator_shard));
  AppendI64(&out, reservation.coordinator_round);
  AppendI64(&out, reservation.user_id);
  AppendI64(&out, reservation.lease_expiry);
  AppendU32(&out, static_cast<std::uint32_t>(reservation.events.size()));
  for (EventId v : reservation.events) AppendU32(&out, v);
  return out;
}

std::string EncodePortionFrame(std::uint64_t txn, std::uint64_t trace_id,
                               std::uint32_t epoch,
                               const InteractionRecord& record) {
  std::string out;
  AppendHeader(&out, ShardFrameKind::kPortion, txn, trace_id, epoch);
  out += EncodeInteractionRecord(record);
  return out;
}

std::string EncodeMigrateFrame(std::uint64_t trace_id, std::uint32_t epoch,
                               const MigrateRecord& migrate) {
  std::string out;
  AppendHeader(&out, ShardFrameKind::kMigrate, /*txn=*/0, trace_id, epoch);
  AppendU32(&out, static_cast<std::uint32_t>(migrate.src_shard));
  AppendU32(&out, static_cast<std::uint32_t>(migrate.events.size()));
  for (const MigratedEvent& moved : migrate.events) {
    AppendU32(&out, moved.event);
    AppendI64(&out, moved.consumed);
    AppendU32(&out, static_cast<std::uint32_t>(moved.observations.size()));
    const std::uint32_t dim =
        moved.observations.empty()
            ? 0
            : static_cast<std::uint32_t>(moved.observations[0].context.size());
    AppendU32(&out, dim);
    for (const MigratedObservation& obs : moved.observations) {
      for (std::uint32_t j = 0; j < dim; ++j) {
        AppendDouble(&out, j < obs.context.size() ? obs.context[j] : 0.0);
      }
      AppendDouble(&out, obs.reward);
    }
  }
  return out;
}

StatusOr<ShardFrame> DecodeShardFrame(std::string_view payload) {
  ByteReader reader(payload, "shard frame: truncated payload");
  auto kind = reader.ReadU8();
  if (!kind.ok()) return kind.status();
  auto txn = reader.ReadU64();
  if (!txn.ok()) return txn.status();
  auto trace_id = reader.ReadU64();
  if (!trace_id.ok()) return trace_id.status();
  auto epoch = reader.ReadU32();
  if (!epoch.ok()) return epoch.status();

  ShardFrame frame;
  frame.txn = *txn;
  frame.trace_id = *trace_id;
  frame.epoch = *epoch;
  switch (*kind) {
    case static_cast<std::uint8_t>(ShardFrameKind::kDecision):
    case static_cast<std::uint8_t>(ShardFrameKind::kPortion): {
      frame.kind = static_cast<ShardFrameKind>(*kind);
      auto record =
          DecodeInteractionRecord(payload.substr(reader.position()));
      if (!record.ok()) return record.status();
      frame.record = std::move(record).value();
      return frame;
    }
    case static_cast<std::uint8_t>(ShardFrameKind::kReserve): {
      frame.kind = ShardFrameKind::kReserve;
      auto shard = reader.ReadU32();
      if (!shard.ok()) return shard.status();
      auto round = reader.ReadI64();
      if (!round.ok()) return round.status();
      auto user = reader.ReadI64();
      if (!user.ok()) return user.status();
      auto lease = reader.ReadI64();
      if (!lease.ok()) return lease.status();
      auto n = reader.ReadU32();
      if (!n.ok()) return n.status();
      frame.reservation.txn = *txn;
      frame.reservation.trace_id = *trace_id;
      frame.reservation.epoch = *epoch;
      frame.reservation.coordinator_shard = static_cast<int>(*shard);
      frame.reservation.coordinator_round = *round;
      frame.reservation.user_id = *user;
      frame.reservation.lease_expiry = *lease;
      frame.reservation.events.reserve(*n);
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto v = reader.ReadU32();
        if (!v.ok()) return v.status();
        frame.reservation.events.push_back(*v);
      }
      if (!reader.AtEnd()) {
        return DataLossError("shard frame: trailing bytes after "
                             "reservation body");
      }
      return frame;
    }
    case static_cast<std::uint8_t>(ShardFrameKind::kMigrate): {
      frame.kind = ShardFrameKind::kMigrate;
      auto src = reader.ReadU32();
      if (!src.ok()) return src.status();
      auto n_events = reader.ReadU32();
      if (!n_events.ok()) return n_events.status();
      frame.migrate.src_shard = static_cast<int>(*src);
      frame.migrate.events.reserve(*n_events);
      for (std::uint32_t i = 0; i < *n_events; ++i) {
        MigratedEvent moved;
        auto event = reader.ReadU32();
        if (!event.ok()) return event.status();
        auto consumed = reader.ReadI64();
        if (!consumed.ok()) return consumed.status();
        auto n_obs = reader.ReadU32();
        if (!n_obs.ok()) return n_obs.status();
        auto dim = reader.ReadU32();
        if (!dim.ok()) return dim.status();
        moved.event = *event;
        moved.consumed = *consumed;
        moved.observations.reserve(*n_obs);
        for (std::uint32_t o = 0; o < *n_obs; ++o) {
          MigratedObservation obs;
          obs.context.resize(*dim);
          for (std::uint32_t j = 0; j < *dim; ++j) {
            auto value = reader.ReadDouble();
            if (!value.ok()) return value.status();
            obs.context[j] = *value;
          }
          auto reward = reader.ReadDouble();
          if (!reward.ok()) return reward.status();
          obs.reward = *reward;
          moved.observations.push_back(std::move(obs));
        }
        frame.migrate.events.push_back(std::move(moved));
      }
      if (!reader.AtEnd()) {
        return DataLossError("shard frame: trailing bytes after "
                             "migrate body");
      }
      return frame;
    }
    default:
      return DataLossError(StrFormat(
          "shard frame: unknown kind 0x%02x", *kind));
  }
}

}  // namespace fasea
