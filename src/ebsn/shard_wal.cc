#include "ebsn/shard_wal.h"

#include <utility>

#include "common/bytes.h"
#include "common/strings.h"

namespace fasea {

std::string EncodeDecisionFrame(std::uint64_t txn, std::uint64_t trace_id,
                                const InteractionRecord& record) {
  std::string out;
  AppendU8(&out, static_cast<std::uint8_t>(ShardFrameKind::kDecision));
  AppendU64(&out, txn);
  AppendU64(&out, trace_id);
  out += EncodeInteractionRecord(record);
  return out;
}

std::string EncodeReserveFrame(const ReservationRecord& reservation) {
  std::string out;
  AppendU8(&out, static_cast<std::uint8_t>(ShardFrameKind::kReserve));
  AppendU64(&out, reservation.txn);
  AppendU64(&out, reservation.trace_id);
  AppendU32(&out, static_cast<std::uint32_t>(reservation.coordinator_shard));
  AppendI64(&out, reservation.coordinator_round);
  AppendI64(&out, reservation.user_id);
  AppendU32(&out, static_cast<std::uint32_t>(reservation.events.size()));
  for (EventId v : reservation.events) AppendU32(&out, v);
  return out;
}

std::string EncodePortionFrame(std::uint64_t txn, std::uint64_t trace_id,
                               const InteractionRecord& record) {
  std::string out;
  AppendU8(&out, static_cast<std::uint8_t>(ShardFrameKind::kPortion));
  AppendU64(&out, txn);
  AppendU64(&out, trace_id);
  out += EncodeInteractionRecord(record);
  return out;
}

StatusOr<ShardFrame> DecodeShardFrame(std::string_view payload) {
  ByteReader reader(payload, "shard frame: truncated payload");
  auto kind = reader.ReadU8();
  if (!kind.ok()) return kind.status();
  auto txn = reader.ReadU64();
  if (!txn.ok()) return txn.status();
  auto trace_id = reader.ReadU64();
  if (!trace_id.ok()) return trace_id.status();

  ShardFrame frame;
  frame.txn = *txn;
  frame.trace_id = *trace_id;
  switch (*kind) {
    case static_cast<std::uint8_t>(ShardFrameKind::kDecision):
    case static_cast<std::uint8_t>(ShardFrameKind::kPortion): {
      frame.kind = static_cast<ShardFrameKind>(*kind);
      auto record =
          DecodeInteractionRecord(payload.substr(reader.position()));
      if (!record.ok()) return record.status();
      frame.record = std::move(record).value();
      return frame;
    }
    case static_cast<std::uint8_t>(ShardFrameKind::kReserve): {
      frame.kind = ShardFrameKind::kReserve;
      auto shard = reader.ReadU32();
      if (!shard.ok()) return shard.status();
      auto round = reader.ReadI64();
      if (!round.ok()) return round.status();
      auto user = reader.ReadI64();
      if (!user.ok()) return user.status();
      auto n = reader.ReadU32();
      if (!n.ok()) return n.status();
      frame.reservation.txn = *txn;
      frame.reservation.trace_id = *trace_id;
      frame.reservation.coordinator_shard = static_cast<int>(*shard);
      frame.reservation.coordinator_round = *round;
      frame.reservation.user_id = *user;
      frame.reservation.events.reserve(*n);
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto v = reader.ReadU32();
        if (!v.ok()) return v.status();
        frame.reservation.events.push_back(*v);
      }
      if (!reader.AtEnd()) {
        return DataLossError("shard frame: trailing bytes after "
                             "reservation body");
      }
      return frame;
    }
    default:
      return DataLossError(StrFormat(
          "shard frame: unknown kind 0x%02x", *kind));
  }
}

}  // namespace fasea
