#include "ebsn/sharded_service.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "rng/seed.h"

namespace fasea {

namespace {

/// Serve failures a spillover stage may swallow (the stage is skipped,
/// the round goes on with fewer events): a busy participant pipeline, a
/// shed request, a draining shard.
bool IsRetryableServe(StatusCode code) {
  return code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

}  // namespace

std::string ShardRecoveryReport::ToString() const {
  return StrFormat(
      "shard %d: %lld segment(s), %lld frame(s), %lld byte(s) truncated, "
      "%lld duplicate(s) skipped; %lld decision(s) indexed, %lld "
      "portion(s) replayed, %lld round(s) restored; in-doubt %lld -> "
      "%lld committed / %lld aborted; interrupted %lld completed / %lld "
      "aborted",
      shard, static_cast<long long>(segments_scanned),
      static_cast<long long>(frames_scanned),
      static_cast<long long>(bytes_truncated),
      static_cast<long long>(duplicate_frames_skipped),
      static_cast<long long>(decisions_indexed),
      static_cast<long long>(portions_applied),
      static_cast<long long>(rounds_served),
      static_cast<long long>(reservations_in_doubt),
      static_cast<long long>(resolved_committed),
      static_cast<long long>(resolved_aborted),
      static_cast<long long>(interrupted_completed),
      static_cast<long long>(interrupted_aborted));
}

ShardedArrangementService::ShardedArrangementService(
    const ProblemInstance* instance, ShardedOptions options)
    : instance_(instance),
      options_(std::move(options)),
      router_(instance, options_.num_shards) {
  FASEA_CHECK(instance != nullptr);
  FASEA_CHECK(options_.num_shards >= 1);
  shards_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->service = std::make_unique<ArrangementService>(
        &router_.SubInstance(s), options_.kind, options_.params,
        DeriveSeed(options_.seed, "shard-policy",
                   static_cast<std::uint64_t>(s)));
    shards_.push_back(std::move(shard));
  }
  cursors_.assign(
      static_cast<std::size_t>(options_.num_shards),
      std::vector<std::size_t>(static_cast<std::size_t>(options_.num_shards),
                               0));
}

ShardedArrangementService::~ShardedArrangementService() = default;

// --- Durability ----------------------------------------------------------

Status ShardedArrangementService::AttachWals(
    Env* env, const std::string& base_dir, const WalOptions& wal_options,
    const DurabilityPolicy& durability) {
  FASEA_CHECK(env != nullptr);
  env_ = env;
  wal_base_dir_ = base_dir;
  wal_options_ = wal_options;
  durability_ = durability;
  // Per-shard dirs nest under the base; WalWriter::Open only creates its
  // own leaf, so a fresh base path must exist before the first shard.
  if (Status st = env->CreateDir(base_dir); !st.ok()) return st;
  for (int s = 0; s < options_.num_shards; ++s) {
    if (shards_[static_cast<std::size_t>(s)]->service == nullptr) continue;
    if (Status st = AttachShardWal(s); !st.ok()) return st;
  }
  return Status::Ok();
}

Status ShardedArrangementService::AttachShardWal(int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return InvalidArgumentError(StrFormat("no shard %d", shard));
  }
  if (env_ == nullptr) {
    return FailedPreconditionError(
        "AttachWals has not configured a WAL base directory");
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return FailedPreconditionError(
        StrFormat("shard %d is down; recover it first", shard));
  }
  auto wal =
      WalWriter::Open(env_, ShardWalDirName(wal_base_dir_, shard),
                      wal_options_);
  if (!wal.ok()) return wal.status();
  std::lock_guard<std::mutex> lock(s.wal_mu);
  s.wal = std::move(wal).value();
  s.degraded = false;
  s.breaker = durability_.breaker_enabled
                  ? std::make_unique<CircuitBreaker>(durability_.breaker)
                  : nullptr;
  return Status::Ok();
}

Status ShardedArrangementService::AttachDecisionLogs(
    Env* env, const std::string& base_dir, const DecisionLogHeader& header,
    const WalOptions& wal_options) {
  FASEA_CHECK(env != nullptr);
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (shard.service == nullptr) continue;
    auto log = DecisionLogWriter::Open(
        env, DecisionLogDirName(ShardWalDirName(base_dir, s)), header,
        wal_options);
    if (!log.ok()) return log.status();
    shard.service->AttachDecisionLog(std::move(log).value());
  }
  return Status::Ok();
}

Status ShardedArrangementService::CloseDecisionLogs() {
  Status first = Status::Ok();
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (shard.service == nullptr) continue;
    DecisionLogWriter* log = shard.service->mutable_decision_log();
    if (log == nullptr) continue;
    if (Status st = log->Close(); !st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ShardedArrangementService::AppendLocked(Shard& shard,
                                               std::string_view frame) {
  if (shard.wal->broken()) {
    // Sealed or torn bytes are never rewritten; a fresh segment is the
    // only way to accept frames again.
    auto reopened = WalWriter::Open(
        env_, ShardWalDirName(wal_base_dir_, shard.index), wal_options_);
    if (!reopened.ok()) return reopened.status();
    shard.wal = std::move(reopened).value();
    ++shard.wal_reopens;
  }
  return shard.wal->Append(frame);
}

StatusOr<ShardedArrangementService::AppendOutcome>
ShardedArrangementService::AppendFrame(Shard& shard,
                                       std::string_view frame) {
  std::lock_guard<std::mutex> lock(shard.wal_mu);
  if (shard.wal == nullptr || shard.degraded) {
    return AppendOutcome::kNonDurable;
  }
  if (shard.breaker == nullptr) {
    Status st = AppendLocked(shard, frame);
    if (st.ok()) return AppendOutcome::kDurable;
    ++shard.append_failures;
    if (durability_.on_wal_error ==
        DurabilityPolicy::OnWalError::kFailRound) {
      return UnavailableError(
          "durability failure, round not applied (retry after the log is "
          "restored): " +
          st.message());
    }
    shard.degraded = true;
    ++shard.nondurable_rounds;
    nondurable_metric_->Increment();
    return AppendOutcome::kNonDurable;
  }
  if (!shard.breaker->Allow()) {
    ++shard.nondurable_rounds;
    nondurable_metric_->Increment();
    return AppendOutcome::kNonDurable;
  }
  Status st = AppendLocked(shard, frame);
  if (st.ok()) {
    shard.breaker->RecordSuccess();
    return AppendOutcome::kDurable;
  }
  shard.breaker->RecordFailure();
  ++shard.append_failures;
  if (durability_.on_wal_error == DurabilityPolicy::OnWalError::kFailRound) {
    return UnavailableError(
        "durability failure, round not applied (retry; the breaker "
        "arbitrates recovery): " +
        st.message());
  }
  ++shard.nondurable_rounds;
  nondurable_metric_->Increment();
  return AppendOutcome::kNonDurable;
}

Status ShardedArrangementService::AppendFrameStrict(Shard& shard,
                                                    std::string_view frame) {
  std::lock_guard<std::mutex> lock(shard.wal_mu);
  // With no WAL anywhere, a crash loses everything regardless — the
  // reservation requirement is vacuous.
  if (shard.wal == nullptr) return Status::Ok();
  if (shard.degraded) {
    return UnavailableError("shard is WAL-degraded; reservation refused");
  }
  if (shard.breaker != nullptr && !shard.breaker->Allow()) {
    return UnavailableError("shard breaker is open; reservation refused");
  }
  Status st = AppendLocked(shard, frame);
  if (shard.breaker != nullptr) {
    if (st.ok()) {
      shard.breaker->RecordSuccess();
    } else {
      shard.breaker->RecordFailure();
    }
  }
  if (!st.ok()) {
    ++shard.append_failures;
    return UnavailableError("reservation could not be hardened: " +
                            st.message());
  }
  return Status::Ok();
}

// --- Serving -------------------------------------------------------------

Matrix ShardedArrangementService::GatherContexts(
    int shard, const ContextMatrix& contexts) const {
  const std::vector<EventId>& events = router_.ShardEvents(shard);
  Matrix out(events.size(), contexts.cols());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto src = contexts.Row(events[i]);
    std::copy(src.begin(), src.end(), out.Row(i).begin());
  }
  return out;
}

Arrangement ShardedArrangementService::MapToGlobal(
    int shard, const Arrangement& local) const {
  const std::vector<EventId>& events = router_.ShardEvents(shard);
  Arrangement out;
  out.reserve(local.size());
  for (EventId v : local) {
    FASEA_DCHECK(v < events.size());
    out.push_back(events[v]);
  }
  return out;
}

std::vector<std::uint8_t> ShardedArrangementService::SpilloverMask(
    int shard, const Arrangement& chosen) const {
  const std::vector<EventId>& events = router_.ShardEvents(shard);
  const ConflictGraph& conflicts = instance_->conflicts();
  std::vector<std::uint8_t> mask(events.size(), 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (EventId c : chosen) {
      if (conflicts.Conflicts(events[i], c)) {
        mask[i] = 0;
        break;
      }
    }
  }
  return mask;
}

void ShardedArrangementService::AbortOpenPortions(const PendingTxn& pending,
                                                  std::uint64_t txn) {
  for (const Portion& portion : pending.portions) {
    Shard& s = *shards_[static_cast<std::size_t>(portion.shard)];
    if (s.service != nullptr) (void)s.service->AbortPendingRound();
    if (portion.shard != pending.home) {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.open_reservations.erase(txn);
    }
  }
}

StatusOr<ShardedServeResult> ShardedArrangementService::ServeUser(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts) {
  if (contexts.rows() != instance_->num_events() ||
      contexts.cols() != instance_->dim()) {
    return InvalidArgumentError(StrFormat(
        "context matrix is %zux%zu, the instance needs %zux%zu",
        contexts.rows(), contexts.cols(), instance_->num_events(),
        instance_->dim()));
  }
  const std::uint64_t txn =
      next_txn_.fetch_add(1, std::memory_order_relaxed);
  // The transaction's correlation id: deterministic, so recovery and
  // replay re-derive the same id from the txn alone.
  const std::uint64_t trace_id = Mix64(txn);
  const int home =
      router_.HomeShard(user_id, static_cast<std::int64_t>(txn - 1),
                        options_.routing);
  Shard& h = *shards_[static_cast<std::size_t>(home)];
  if (h.service == nullptr) {
    return UnavailableError(
        StrFormat("home shard %d is down; retry (the next arrival routes "
                  "elsewhere)",
                  home));
  }

  PendingTxn pending;
  pending.home = home;
  pending.trace_id = trace_id;
  pending.user_id = user_id;
  pending.user_capacity = user_capacity;

  // Stage 0: the coordinator proposes from its own partition.
  Arrangement chosen;  // Global ids.
  {
    TraceSpan span("txn.coordinate", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, trace_id);
    h.service->SetNextRoundTrace(txn, trace_id);
    auto local =
        h.service->ServeUser(user_id, user_capacity,
                             GatherContexts(home, contexts));
    if (!local.ok()) return local.status();
    pending.coordinator_round = h.service->rounds_served();
    Portion portion;
    portion.shard = home;
    portion.local_events = std::move(local).value();
    portion.start = 0;
    portion.local_round = pending.coordinator_round;
    portion.local_capacity = user_capacity;
    chosen = MapToGlobal(home, portion.local_events);
    pending.portions.push_back(std::move(portion));
  }

  // Spillover: ring order after the home, while capacity remains.
  std::int64_t remaining =
      user_capacity - static_cast<std::int64_t>(chosen.size());
  int budget = options_.max_participant_shards < 0
                   ? options_.num_shards - 1
                   : std::min(options_.max_participant_shards,
                              options_.num_shards - 1);
  bool crossed = false;
  for (int k = 1;
       k < options_.num_shards && budget > 0 && remaining > 0; ++k) {
    const int sid = (home + k) % options_.num_shards;
    Shard& s = *shards_[static_cast<std::size_t>(sid)];
    if (s.service == nullptr || router_.ShardEvents(sid).empty()) {
      continue;
    }
    std::vector<std::uint8_t> mask = SpilloverMask(sid, chosen);
    if (std::all_of(mask.begin(), mask.end(),
                    [](std::uint8_t m) { return m == 0; })) {
      continue;  // Everything here conflicts with the chosen set.
    }
    s.service->SetNextRoundTrace(txn, trace_id);
    auto local = s.service->ServeUser(user_id, remaining,
                                      GatherContexts(sid, contexts),
                                      std::move(mask));
    if (!local.ok()) {
      if (IsRetryableServe(local.status().code())) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.spillover_stages_skipped;
        continue;  // A busy/draining participant just sits this one out.
      }
      AbortOpenPortions(pending, txn);
      return local.status();
    }
    if (local->empty()) {
      (void)s.service->AbortPendingRound();
      continue;
    }

    // Phase 1: the contribution only counts once the reservation is
    // durable on the participant.
    ReservationRecord reservation;
    reservation.txn = txn;
    reservation.trace_id = trace_id;
    reservation.coordinator_shard = home;
    reservation.coordinator_round = pending.coordinator_round;
    reservation.user_id = user_id;
    reservation.events = MapToGlobal(sid, *local);
    TraceSpan reserve_span("txn.reserve", static_cast<std::int64_t>(txn),
                           TraceRing::Global(), nullptr, trace_id);
    if (Status st = AppendFrameStrict(s, EncodeReserveFrame(reservation));
        !st.ok()) {
      (void)s.service->AbortPendingRound();
      reservation_refusals_metric_->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.reservation_refusals;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.open_reservations[txn] = reservation;
    }
    Portion portion;
    portion.shard = sid;
    portion.start = chosen.size();
    portion.local_round = s.service->rounds_served();
    portion.local_capacity = remaining;  // What this stage was asked for.
    portion.local_events = std::move(local).value();
    remaining -= static_cast<std::int64_t>(reservation.events.size());
    reservations_metric_->Add(
        static_cast<std::int64_t>(reservation.events.size()));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.reservations_made +=
          static_cast<std::int64_t>(reservation.events.size());
    }
    for (EventId g : reservation.events) chosen.push_back(g);
    pending.portions.push_back(std::move(portion));
    --budget;
    crossed = true;
  }
  if (crossed) {
    cross_shard_rounds_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cross_shard_rounds;
  }

  pending.arrangement = chosen;
  pending.context_rows.reserve(chosen.size());
  for (EventId v : chosen) {
    const auto row = contexts.Row(v);
    pending.context_rows.emplace_back(row.begin(), row.end());
  }

  ShardedServeResult result;
  result.txn = txn;
  result.home_shard = home;
  result.arrangement = chosen;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_[txn] = std::move(pending);
  }
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  return result;
}

Status ShardedArrangementService::SubmitFeedback(
    std::uint64_t txn, const Feedback& feedback,
    ShardedFeedbackResult* result) {
  PendingTxn* pending = nullptr;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(txn);
    if (it == pending_.end()) {
      return FailedPreconditionError(StrFormat(
          "transaction %llu is not pending (never served, already "
          "committed, or lost with a crashed coordinator)",
          static_cast<unsigned long long>(txn)));
    }
    if (it->second.busy) {
      return FailedPreconditionError("transaction is already mid-commit");
    }
    it->second.busy = true;
    pending = &it->second;  // Map nodes are stable.
  }
  const auto fail_retryable = [&](Status st) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending->busy = false;
    return st;
  };

  if (feedback.size() != pending->arrangement.size()) {
    return fail_retryable(InvalidArgumentError(
        "feedback must align with the served arrangement"));
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) {
      return fail_retryable(
          InvalidArgumentError("feedback entries must be 0/1"));
    }
  }
  Shard& h = *shards_[static_cast<std::size_t>(pending->home)];
  if (h.service == nullptr) {
    return fail_retryable(UnavailableError("home shard is down"));
  }

  InteractionRecord record;
  record.t = pending->coordinator_round;
  record.user_id = pending->user_id;
  record.user_capacity = pending->user_capacity;
  record.arrangement = pending->arrangement;
  record.feedback = feedback;
  record.contexts = pending->context_rows;

  // Commit point: the decision frame on the coordinator's WAL. A
  // retryable failure leaves nothing applied anywhere — reservations
  // stay durably open and the same feedback may be resubmitted.
  bool durable = false;
  {
    TraceSpan span("txn.commit", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, pending->trace_id);
    auto outcome = AppendFrame(
        h, EncodeDecisionFrame(txn, pending->trace_id, record));
    if (!outcome.ok()) return fail_retryable(outcome.status());
    durable = (*outcome == AppendOutcome::kDurable);
  }
  // From here the transaction is committed: index the decision so
  // resolvers (live peers or recovering shards) can find it even if we
  // die before any portion applies.
  {
    std::lock_guard<std::mutex> lock(h.ledger_mu);
    h.decisions[txn] = record;
  }
  if (crash_after_decision_ && crash_after_decision_(txn)) {
    // Simulated coordinator crash between the phases. The transaction
    // stays pending; KillShard parks it and RecoverShard resolves it.
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending->busy = false;
    return UnavailableError(
        "injected coordinator crash after the decision was committed");
  }

  // Phase 2: apply every portion. Per shard, WAL frames precede the
  // inner application (write-ahead), so each shard's frames carry
  // strictly increasing round ids.
  int participants = 0;
  const int home_shard = pending->home;
  const std::int64_t home_round = pending->coordinator_round;
  for (const Portion& portion : pending->portions) {
    Shard& s = *shards_[static_cast<std::size_t>(portion.shard)];
    if (s.service == nullptr) {
      // The participant died after the commit point. Its durable
      // reservation meets the durable decision at its recovery, which
      // applies the portion then — the transaction still commits.
      if (portion.shard != home_shard) ++participants;
      continue;
    }
    Feedback fb(feedback.begin() + static_cast<std::ptrdiff_t>(portion.start),
                feedback.begin() + static_cast<std::ptrdiff_t>(
                                       portion.start +
                                       portion.local_events.size()));
    if (portion.shard != home_shard) {
      ++participants;
      if (durable) {
        // Close the reservation durably. Best-effort: a lost portion
        // frame re-resolves (to the same commit) at recovery. Never
        // written without a durable decision — a portion record must
        // not outlive its decision.
        InteractionRecord local;
        local.t = portion.local_round;
        local.user_id = pending->user_id;
        local.user_capacity = portion.local_capacity;
        local.arrangement = portion.local_events;
        local.feedback = fb;
        local.contexts.assign(
            pending->context_rows.begin() +
                static_cast<std::ptrdiff_t>(portion.start),
            pending->context_rows.begin() +
                static_cast<std::ptrdiff_t>(portion.start +
                                            portion.local_events.size()));
        TraceSpan span("txn.portion", static_cast<std::int64_t>(txn),
                       TraceRing::Global(), nullptr, pending->trace_id);
        (void)AppendFrame(s,
                          EncodePortionFrame(txn, pending->trace_id, local));
      }
    }
    FeedbackResult inner;
    if (Status st = s.service->SubmitFeedback(fb, &inner); !st.ok()) {
      // Inner services run WAL-less, so feedback can only fail on a
      // protocol bug (wrong pending round) — never retryably.
      return fail_retryable(InternalError(StrFormat(
          "shard %d portion of txn %llu failed: %s", portion.shard,
          static_cast<unsigned long long>(txn), st.message().c_str())));
    }
    if (portion.shard != home_shard) {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.open_reservations.erase(txn);
    }
    {
      std::lock_guard<std::mutex> lock(s.obs_mu);
      for (std::size_t i = 0; i < portion.local_events.size(); ++i) {
        Observation obs;
        obs.context = pending->context_rows[portion.start + i];
        obs.reward = static_cast<double>(fb[i]);
        s.obs.push_back(std::move(obs));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(txn);  // `pending` dangles past this point.
  }
  rounds_completed_.fetch_add(1, std::memory_order_relaxed);
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  if (result != nullptr) {
    result->txn = txn;
    result->home_shard = home_shard;
    result->home_round = home_round;
    result->durable = durable;
    result->participant_shards = participants;
  }
  MaybeAutoMerge();
  return Status::Ok();
}

// --- Crash and recovery --------------------------------------------------

Status ShardedArrangementService::KillShard(int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return InvalidArgumentError(StrFormat("no shard %d", shard));
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return FailedPreconditionError(
        StrFormat("shard %d is already down", shard));
  }
  // Transactions this shard coordinated are parked for RecoverShard's
  // resolver; transactions it merely participated in are aborted on the
  // survivors (their durable reservations resolve to presumed abort).
  std::vector<std::pair<std::uint64_t, PendingTxn>> participated;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      bool involved = false;
      for (const Portion& portion : it->second.portions) {
        if (portion.shard == shard) {
          involved = true;
          break;
        }
      }
      if (it->second.home == shard) {
        interrupted_[it->first] = std::move(it->second);
        it = pending_.erase(it);
      } else if (involved) {
        participated.emplace_back(it->first, std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [txn, pending] : participated) {
    for (const Portion& portion : pending.portions) {
      if (portion.shard == shard) continue;
      Shard& p = *shards_[static_cast<std::size_t>(portion.shard)];
      if (p.service != nullptr) (void)p.service->AbortPendingRound();
      if (portion.shard != pending.home) {
        std::lock_guard<std::mutex> lock(p.ledger_mu);
        p.open_reservations.erase(txn);
      }
    }
  }
  // The crash: every in-memory structure is gone; the WAL survives.
  s.service.reset();
  {
    std::lock_guard<std::mutex> lock(s.wal_mu);
    s.wal.reset();
    s.breaker.reset();
    s.degraded = false;
  }
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.decisions.clear();
    s.open_reservations.clear();
  }
  {
    std::lock_guard<std::mutex> lock(s.obs_mu);
    s.obs.clear();
  }
  return Status::Ok();
}

InteractionRecord ShardedArrangementService::SliceForShard(
    int shard, const InteractionRecord& record, std::int64_t t) const {
  InteractionRecord out;
  out.t = t;
  out.user_id = record.user_id;
  out.user_capacity = record.user_capacity;
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    const EventId g = record.arrangement[i];
    if (router_.OwnerShard(g) != shard) continue;
    out.arrangement.push_back(router_.LocalId(g));
    out.feedback.push_back(record.feedback[i]);
    out.contexts.push_back(record.contexts[i]);
  }
  return out;
}

StatusOr<bool> ShardedArrangementService::LookupDecision(
    int coordinator, std::uint64_t txn, InteractionRecord* out) const {
  if (coordinator < 0 || coordinator >= options_.num_shards) {
    return InvalidArgumentError(
        StrFormat("reservation names unknown coordinator shard %d",
                  coordinator));
  }
  const Shard& c = *shards_[static_cast<std::size_t>(coordinator)];
  if (c.service != nullptr) {
    std::lock_guard<std::mutex> lock(c.ledger_mu);
    auto it = c.decisions.find(txn);
    if (it == c.decisions.end()) return false;
    *out = it->second;
    return true;
  }
  // The coordinator is down: presumed abort, unless its durable decision
  // record says otherwise. Its WAL is readable without disturbing it.
  if (env_ == nullptr) return false;
  auto scan = ScanWal(env_, ShardWalDirName(wal_base_dir_, coordinator),
                      CorruptFramePolicy::kFail);
  if (!scan.ok()) return scan.status();
  bool found = false;
  for (const std::string& payload : scan->payloads) {
    auto frame = DecodeShardFrame(payload);
    if (!frame.ok()) return frame.status();
    if (frame->kind == ShardFrameKind::kDecision && frame->txn == txn) {
      *out = frame->record;
      found = true;  // Later duplicates (retries) carry the same bytes.
    }
  }
  return found;
}

void ShardedArrangementService::AppendObservations(
    Shard& shard, const InteractionRecord& record) {
  std::lock_guard<std::mutex> lock(shard.obs_mu);
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    Observation obs;
    obs.context = record.contexts[i];
    obs.reward = static_cast<double>(record.feedback[i]);
    shard.obs.push_back(std::move(obs));
  }
}

StatusOr<ShardRecoveryReport> ShardedArrangementService::RecoverShard(
    int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return InvalidArgumentError(StrFormat("no shard %d", shard));
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service != nullptr) {
    return FailedPreconditionError(
        StrFormat("shard %d is alive; kill it before recovering", shard));
  }
  if (env_ == nullptr) {
    return FailedPreconditionError(
        "no WAL base directory configured (AttachWals was never called)");
  }
  ShardRecoveryReport report;
  report.shard = shard;

  auto scan = ScanWal(env_, ShardWalDirName(wal_base_dir_, shard),
                      CorruptFramePolicy::kFail);
  if (!scan.ok()) return scan.status();
  report.segments_scanned = scan->segments_scanned;
  report.bytes_truncated = scan->bytes_truncated;

  auto service = std::make_unique<ArrangementService>(
      &router_.SubInstance(shard), options_.kind, options_.params,
      DeriveSeed(options_.seed, "shard-policy",
                 static_cast<std::uint64_t>(shard)));
  std::map<std::uint64_t, InteractionRecord> decisions;
  std::map<std::uint64_t, ReservationRecord> in_doubt;
  for (const std::string& payload : scan->payloads) {
    ++report.frames_scanned;
    auto frame = DecodeShardFrame(payload);
    if (!frame.ok()) return frame.status();
    switch (frame->kind) {
      case ShardFrameKind::kDecision: {
        decisions[frame->txn] = frame->record;
        InteractionRecord slice =
            SliceForShard(shard, frame->record, frame->record.t);
        if (slice.t <= service->rounds_served()) {
          ++report.duplicate_frames_skipped;
          break;
        }
        if (Status st = service->RestoreInteraction(slice, /*learn=*/true);
            !st.ok()) {
          return st;
        }
        break;
      }
      case ShardFrameKind::kReserve:
        // Idempotent: a retried reservation re-frames the same bytes.
        in_doubt[frame->txn] = frame->reservation;
        break;
      case ShardFrameKind::kPortion: {
        in_doubt.erase(frame->txn);
        if (frame->record.t <= service->rounds_served()) {
          ++report.duplicate_frames_skipped;
          break;
        }
        if (Status st =
                service->RestoreInteraction(frame->record, /*learn=*/true);
            !st.ok()) {
          return st;
        }
        ++report.portions_applied;
        break;
      }
    }
  }
  report.decisions_indexed =
      static_cast<std::int64_t>(decisions.size());
  report.reservations_in_doubt =
      static_cast<std::int64_t>(in_doubt.size());

  // Presumed-abort resolution: every in-doubt reservation gets a verdict
  // now — none survives recovery. Deterministic: reservations resolve in
  // txn order against durable decision records (or a live coordinator's
  // index, which mirrors them).
  for (const auto& [txn, reservation] : in_doubt) {
    InteractionRecord decision;
    auto found =
        LookupDecision(reservation.coordinator_shard, txn, &decision);
    if (!found.ok()) return found.status();
    InteractionRecord slice;
    if (*found) {
      slice = SliceForShard(shard, decision, service->rounds_served() + 1);
    }
    if (*found && !slice.arrangement.empty()) {
      // Commit. The recovered state cannot already hold this portion:
      // state is rebuilt from the WAL alone, and an applied portion
      // that made it to the WAL would have closed the reservation.
      if (Status st = service->RestoreInteraction(slice, /*learn=*/true);
          !st.ok()) {
        return st;
      }
      ++report.resolved_committed;
      resolved_committed_metric_->Increment();
    } else {
      ++report.resolved_aborted;
      resolved_aborted_metric_->Increment();
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.resolved_committed += report.resolved_committed;
    stats_.resolved_aborted += report.resolved_aborted;
  }
  report.rounds_served = service->rounds_served();

  // Install the rebuilt shard. The observation buffer is re-derived from
  // the recovered log; peer cursors clamp to its (possibly shorter)
  // length — merged learner state is soft, the next merge re-syncs.
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.decisions = std::move(decisions);
    s.open_reservations.clear();
  }
  std::size_t obs_size = 0;
  {
    std::lock_guard<std::mutex> lock(s.obs_mu);
    s.obs.clear();
    const InteractionLog& log = service->log();
    for (std::size_t i = 0; i < log.size(); ++i) {
      const InteractionRecord& rec = log.record(i);
      for (std::size_t j = 0; j < rec.arrangement.size(); ++j) {
        Observation obs;
        obs.context = rec.contexts[j];
        obs.reward = static_cast<double>(rec.feedback[j]);
        s.obs.push_back(std::move(obs));
      }
    }
    obs_size = s.obs.size();
  }
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    for (int j = 0; j < options_.num_shards; ++j) {
      cursors_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(
          j)] = 0;  // The fresh learner has absorbed no peer state.
      cursors_[static_cast<std::size_t>(j)][static_cast<std::size_t>(
          shard)] =
          std::min(cursors_[static_cast<std::size_t>(j)]
                           [static_cast<std::size_t>(shard)],
                   obs_size);
    }
  }
  s.service = std::move(service);
  recoveries_metric_->Increment();

  if (Status st = ResolveInterrupted(shard, &report); !st.ok()) return st;
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  return report;
}

Status ShardedArrangementService::ResolveInterrupted(
    int shard, ShardRecoveryReport* report) {
  std::vector<std::pair<std::uint64_t, PendingTxn>> mine;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = interrupted_.begin(); it != interrupted_.end();) {
      if (it->second.home == shard) {
        mine.emplace_back(it->first, std::move(it->second));
        it = interrupted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Shard& h = *shards_[static_cast<std::size_t>(shard)];
  for (const auto& [txn, pending] : mine) {
    InteractionRecord decision;
    bool committed = false;
    {
      std::lock_guard<std::mutex> lock(h.ledger_mu);
      auto it = h.decisions.find(txn);
      if (it != h.decisions.end()) {
        committed = true;
        decision = it->second;
      }
    }
    for (const Portion& portion : pending.portions) {
      if (portion.shard == shard) continue;  // Our slice replayed above.
      Shard& p = *shards_[static_cast<std::size_t>(portion.shard)];
      // A participant that died (or died and moved on) resolves from its
      // own WAL; only its still-pending inner round for THIS txn is ours
      // to finish.
      if (p.service == nullptr ||
          p.service->rounds_served() != portion.local_round ||
          !p.service->AwaitingFeedback()) {
        continue;
      }
      if (committed) {
        Feedback fb(decision.feedback.begin() +
                        static_cast<std::ptrdiff_t>(portion.start),
                    decision.feedback.begin() +
                        static_cast<std::ptrdiff_t>(
                            portion.start + portion.local_events.size()));
        InteractionRecord local;
        local.t = portion.local_round;
        local.user_id = pending.user_id;
        local.user_capacity = portion.local_capacity;
        local.arrangement = portion.local_events;
        local.feedback = fb;
        local.contexts.assign(
            decision.contexts.begin() +
                static_cast<std::ptrdiff_t>(portion.start),
            decision.contexts.begin() +
                static_cast<std::ptrdiff_t>(portion.start +
                                            portion.local_events.size()));
        // The decision is durable (it came from the recovered index), so
        // the portion frame may close the reservation.
        (void)AppendFrame(
            p, EncodePortionFrame(txn, pending.trace_id, local));
        if (Status st = p.service->SubmitFeedback(fb); !st.ok()) {
          return InternalError(StrFormat(
              "completing interrupted txn %llu on shard %d failed: %s",
              static_cast<unsigned long long>(txn), portion.shard,
              st.message().c_str()));
        }
        AppendObservations(p, local);
        ++report->interrupted_completed;
      } else {
        (void)p.service->AbortPendingRound();
        ++report->interrupted_aborted;
      }
      {
        std::lock_guard<std::mutex> lock(p.ledger_mu);
        p.open_reservations.erase(txn);
      }
    }
    if (committed) {
      // The coordinator's own obs were rebuilt from its log; the round
      // now counts as completed (its original caller saw kUnavailable).
      rounds_completed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

// --- Delta-merge ---------------------------------------------------------

Status ShardedArrangementService::MergeLearners() {
  std::lock_guard<std::mutex> lock(merge_mu_);
  Status result = Status::Ok();
  for (int i = 0; i < options_.num_shards; ++i) {
    Shard& dst = *shards_[static_cast<std::size_t>(i)];
    if (dst.service == nullptr) continue;
    std::vector<PeerObservation> delta;
    std::vector<std::pair<int, std::size_t>> advanced;
    for (int j = 0; j < options_.num_shards; ++j) {
      if (j == i) continue;
      Shard& src = *shards_[static_cast<std::size_t>(j)];
      if (src.service == nullptr) continue;
      std::lock_guard<std::mutex> obs_lock(src.obs_mu);
      const std::size_t cursor =
          cursors_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      for (std::size_t k = cursor; k < src.obs.size(); ++k) {
        PeerObservation obs;
        obs.context = src.obs[k].context;
        obs.reward = src.obs[k].reward;
        delta.push_back(std::move(obs));
      }
      advanced.emplace_back(j, src.obs.size());
    }
    if (delta.empty()) continue;
    Status st = dst.service->AbsorbPeerObservations(delta);
    // Advance the cursors even on failure: the observations are already
    // folded into Y, and re-folding them would double-count.
    for (const auto& [j, end] : advanced) {
      cursors_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          end;
    }
    if (!st.ok()) {
      result = st;
      continue;
    }
    merges_metric_->Increment();
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.merges;
  }
  return result;
}

void ShardedArrangementService::MaybeAutoMerge() {
  if (options_.merge_every <= 0) return;
  if (rounds_completed_.load(std::memory_order_relaxed) %
          options_.merge_every ==
      0) {
    (void)MergeLearners();
  }
}

// --- Introspection -------------------------------------------------------

const ArrangementService* ShardedArrangementService::shard_service(
    int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return nullptr;
  return shards_[static_cast<std::size_t>(shard)]->service.get();
}

const CircuitBreaker* ShardedArrangementService::shard_breaker(
    int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return nullptr;
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.wal_mu);
  return s.breaker.get();
}

bool ShardedArrangementService::shard_alive(int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return false;
  return shards_[static_cast<std::size_t>(shard)]->service != nullptr;
}

std::map<std::uint64_t, InteractionRecord>
ShardedArrangementService::Decisions(int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return {};
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.ledger_mu);
  return s.decisions;
}

std::int64_t ShardedArrangementService::OpenReservations() const {
  std::int64_t open = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->ledger_mu);
    open += static_cast<std::int64_t>(shard->open_reservations.size());
  }
  return open;
}

ShardedStats ShardedArrangementService::Stats() const {
  ShardedStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = stats_;
  }
  stats.rounds_completed =
      rounds_completed_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->wal_mu);
    stats.nondurable_rounds += shard->nondurable_rounds;
  }
  return stats;
}

HealthSnapshot ShardedArrangementService::ShardHealth(int shard) const {
  HealthSnapshot snapshot;
  if (shard < 0 || shard >= options_.num_shards) {
    snapshot.state = HealthState::kLameDuck;
    return snapshot;
  }
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    snapshot.state = HealthState::kLameDuck;  // Down until recovered.
    return snapshot;
  }
  snapshot = s.service->Health();
  std::lock_guard<std::mutex> lock(s.wal_mu);
  snapshot.wal_attached = s.wal != nullptr;
  snapshot.wal_degraded = s.degraded;
  snapshot.breaker_enabled = s.breaker != nullptr;
  if (s.breaker != nullptr) snapshot.breaker = s.breaker->state();
  snapshot.nondurable_rounds = s.nondurable_rounds;
  snapshot.wal_reopens = s.wal_reopens;
  if (snapshot.state == HealthState::kHealthy &&
      (s.degraded ||
       (s.breaker != nullptr &&
        s.breaker->state() != CircuitBreaker::State::kClosed))) {
    snapshot.state = HealthState::kDegraded;
  }
  return snapshot;
}

HealthState ShardedArrangementService::AggregateHealth() const {
  HealthState worst = HealthState::kHealthy;
  for (int s = 0; s < options_.num_shards; ++s) {
    const HealthState state = ShardHealth(s).state;
    if (static_cast<int>(state) > static_cast<int>(worst)) worst = state;
  }
  return worst;
}

}  // namespace fasea
