#include "ebsn/sharded_service.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "rng/seed.h"

namespace fasea {

namespace {

/// Serve failures a spillover stage may swallow (the stage is skipped,
/// the round goes on with fewer events): a busy participant pipeline, a
/// shed request, a draining shard.
bool IsRetryableServe(StatusCode code) {
  return code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

// --- Transport body codecs ----------------------------------------------
//
// Envelope bodies of the shard protocol. Deliberately boring: fixed
// little-endian fields via common/bytes.h, the InteractionRecord codec
// of the WAL for round payloads (always the LAST field, so it decodes
// from the reader's remainder).

void AppendMatrix(std::string* out, const Matrix& m) {
  AppendU32(out, static_cast<std::uint32_t>(m.rows()));
  AppendU32(out, static_cast<std::uint32_t>(m.cols()));
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (double v : m.Row(i)) AppendDouble(out, v);
  }
}

StatusOr<Matrix> ReadMatrix(ByteReader& reader) {
  auto rows = reader.ReadU32();
  if (!rows.ok()) return rows.status();
  auto cols = reader.ReadU32();
  if (!cols.ok()) return cols.status();
  Matrix m(*rows, *cols);
  for (std::uint32_t i = 0; i < *rows; ++i) {
    auto row = m.Row(i);
    for (std::uint32_t j = 0; j < *cols; ++j) {
      auto v = reader.ReadDouble();
      if (!v.ok()) return v.status();
      row[j] = *v;
    }
  }
  return m;
}

struct ServeRequestBody {
  std::int64_t user_id = 0;
  std::int64_t user_capacity = 0;
  std::int64_t lease_expiry = 0;
  Matrix contexts;  // The home shard's context submatrix.

  std::string Encode() const {
    std::string out;
    AppendI64(&out, user_id);
    AppendI64(&out, user_capacity);
    AppendI64(&out, lease_expiry);
    AppendMatrix(&out, contexts);
    return out;
  }
  static StatusOr<ServeRequestBody> Decode(std::string_view bytes) {
    ByteReader reader(bytes, "serve request: truncated body");
    ServeRequestBody body;
    auto user = reader.ReadI64();
    if (!user.ok()) return user.status();
    body.user_id = *user;
    auto cap = reader.ReadI64();
    if (!cap.ok()) return cap.status();
    body.user_capacity = *cap;
    auto lease = reader.ReadI64();
    if (!lease.ok()) return lease.status();
    body.lease_expiry = *lease;
    auto m = ReadMatrix(reader);
    if (!m.ok()) return m.status();
    body.contexts = std::move(m).value();
    return body;
  }
};

struct ServeResponseBody {
  std::int64_t coordinator_round = 0;
  Arrangement local_events;

  std::string Encode() const {
    std::string out;
    AppendI64(&out, coordinator_round);
    AppendU32(&out, static_cast<std::uint32_t>(local_events.size()));
    for (EventId v : local_events) AppendU32(&out, v);
    return out;
  }
  static StatusOr<ServeResponseBody> Decode(std::string_view bytes) {
    ByteReader reader(bytes, "serve response: truncated body");
    ServeResponseBody body;
    auto round = reader.ReadI64();
    if (!round.ok()) return round.status();
    body.coordinator_round = *round;
    auto n = reader.ReadU32();
    if (!n.ok()) return n.status();
    body.local_events.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto v = reader.ReadU32();
      if (!v.ok()) return v.status();
      body.local_events.push_back(*v);
    }
    return body;
  }
};

struct ReserveRequestBody {
  std::int64_t user_id = 0;
  std::int64_t remaining = 0;     // Capacity left for this stage.
  std::int64_t lease_expiry = 0;
  int coordinator_shard = 0;
  std::int64_t coordinator_round = 0;
  Arrangement chosen;  // Global ids picked upstream (conflict mask).
  Matrix contexts;     // The participant's context submatrix.

  std::string Encode() const {
    std::string out;
    AppendI64(&out, user_id);
    AppendI64(&out, remaining);
    AppendI64(&out, lease_expiry);
    AppendU32(&out, static_cast<std::uint32_t>(coordinator_shard));
    AppendI64(&out, coordinator_round);
    AppendU32(&out, static_cast<std::uint32_t>(chosen.size()));
    for (EventId v : chosen) AppendU32(&out, v);
    AppendMatrix(&out, contexts);
    return out;
  }
  static StatusOr<ReserveRequestBody> Decode(std::string_view bytes) {
    ByteReader reader(bytes, "reserve request: truncated body");
    ReserveRequestBody body;
    auto user = reader.ReadI64();
    if (!user.ok()) return user.status();
    body.user_id = *user;
    auto remaining = reader.ReadI64();
    if (!remaining.ok()) return remaining.status();
    body.remaining = *remaining;
    auto lease = reader.ReadI64();
    if (!lease.ok()) return lease.status();
    body.lease_expiry = *lease;
    auto coord = reader.ReadU32();
    if (!coord.ok()) return coord.status();
    body.coordinator_shard = static_cast<int>(*coord);
    auto round = reader.ReadI64();
    if (!round.ok()) return round.status();
    body.coordinator_round = *round;
    auto n = reader.ReadU32();
    if (!n.ok()) return n.status();
    body.chosen.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto v = reader.ReadU32();
      if (!v.ok()) return v.status();
      body.chosen.push_back(*v);
    }
    auto m = ReadMatrix(reader);
    if (!m.ok()) return m.status();
    body.contexts = std::move(m).value();
    return body;
  }
};

struct ReserveResponseBody {
  std::int64_t local_round = 0;
  Arrangement global_events;  // Already mapped by the participant.

  std::string Encode() const {
    std::string out;
    AppendI64(&out, local_round);
    AppendU32(&out, static_cast<std::uint32_t>(global_events.size()));
    for (EventId v : global_events) AppendU32(&out, v);
    return out;
  }
  static StatusOr<ReserveResponseBody> Decode(std::string_view bytes) {
    ByteReader reader(bytes, "reserve response: truncated body");
    ReserveResponseBody body;
    auto round = reader.ReadI64();
    if (!round.ok()) return round.status();
    body.local_round = *round;
    auto n = reader.ReadU32();
    if (!n.ok()) return n.status();
    body.global_events.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto v = reader.ReadU32();
      if (!v.ok()) return v.status();
      body.global_events.push_back(*v);
    }
    return body;
  }
};

// COMMIT carries two sub-kinds behind a leading flag byte: the
// coordinator's decision (the commit point) and the per-shard portion
// application.
constexpr std::uint8_t kCommitDecision = 0;
constexpr std::uint8_t kCommitPortion = 1;

struct CommitDecisionBody {
  InteractionRecord record;  // Global ids, the full round.

  std::string Encode() const {
    std::string out;
    AppendU8(&out, kCommitDecision);
    out += EncodeInteractionRecord(record);
    return out;
  }
};

struct CommitPortionBody {
  bool write_frame = false;  // Durable decision && not the home slice.
  bool is_home = false;
  InteractionRecord record;  // LOCAL ids of the current epoch.

  std::string Encode() const {
    std::string out;
    AppendU8(&out, kCommitPortion);
    AppendU8(&out, write_frame ? 1 : 0);
    AppendU8(&out, is_home ? 1 : 0);
    out += EncodeInteractionRecord(record);
    return out;
  }
};

struct QueryResponseBody {
  // 0 = no decision (presumed abort), 1 = committed, 2 = still
  // mid-commit, ask again.
  std::uint8_t outcome = 0;
  bool durable = false;
  InteractionRecord record;  // Set when outcome == 1.

  std::string Encode() const {
    std::string out;
    AppendU8(&out, outcome);
    AppendU8(&out, durable ? 1 : 0);
    if (outcome == 1) out += EncodeInteractionRecord(record);
    return out;
  }
  static StatusOr<QueryResponseBody> Decode(std::string_view bytes) {
    ByteReader reader(bytes, "query response: truncated body");
    QueryResponseBody body;
    auto outcome = reader.ReadU8();
    if (!outcome.ok()) return outcome.status();
    body.outcome = *outcome;
    auto durable = reader.ReadU8();
    if (!durable.ok()) return durable.status();
    body.durable = *durable != 0;
    if (body.outcome == 1) {
      auto record =
          DecodeInteractionRecord(bytes.substr(reader.position()));
      if (!record.ok()) return record.status();
      body.record = std::move(record).value();
    }
    return body;
  }
};

}  // namespace

std::string ShardRecoveryReport::ToString() const {
  return StrFormat(
      "shard %d: %lld segment(s), %lld frame(s), %lld byte(s) truncated, "
      "%lld duplicate(s) skipped; %lld decision(s) indexed, %lld "
      "portion(s) replayed, %lld round(s) restored; in-doubt %lld -> "
      "%lld committed / %lld aborted; interrupted %lld completed / %lld "
      "aborted",
      shard, static_cast<long long>(segments_scanned),
      static_cast<long long>(frames_scanned),
      static_cast<long long>(bytes_truncated),
      static_cast<long long>(duplicate_frames_skipped),
      static_cast<long long>(decisions_indexed),
      static_cast<long long>(portions_applied),
      static_cast<long long>(rounds_served),
      static_cast<long long>(reservations_in_doubt),
      static_cast<long long>(resolved_committed),
      static_cast<long long>(resolved_aborted),
      static_cast<long long>(interrupted_completed),
      static_cast<long long>(interrupted_aborted));
}

std::string RebalanceReport::ToString() const {
  return StrFormat(
      "rebalance %d -> %d shard(s) (epoch %u): %lld event(s) moved",
      old_shards, new_shards, static_cast<unsigned>(epoch),
      static_cast<long long>(events_moved));
}

ShardedArrangementService::ShardedArrangementService(
    const ProblemInstance* instance, ShardedOptions options)
    : instance_(instance), options_(std::move(options)) {
  FASEA_CHECK(instance != nullptr);
  FASEA_CHECK(options_.num_shards >= 1);
  routers_.push_back(
      std::make_unique<ShardRouter>(instance, options_.num_shards));
  shards_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->service = std::make_unique<ArrangementService>(
        &router().SubInstance(s), options_.kind, options_.params,
        DeriveSeed(options_.seed, "shard-policy",
                   static_cast<std::uint64_t>(s)));
    shards_.push_back(std::move(shard));
  }
  cursors_.assign(
      static_cast<std::size_t>(options_.num_shards),
      std::vector<std::size_t>(static_cast<std::size_t>(options_.num_shards),
                               0));
}

ShardedArrangementService::~ShardedArrangementService() = default;

// --- Durability ----------------------------------------------------------

Status ShardedArrangementService::AttachWals(
    Env* env, const std::string& base_dir, const WalOptions& wal_options,
    const DurabilityPolicy& durability) {
  FASEA_CHECK(env != nullptr);
  env_ = env;
  wal_base_dir_ = base_dir;
  wal_options_ = wal_options;
  durability_ = durability;
  // Per-shard dirs nest under the base; WalWriter::Open only creates its
  // own leaf, so a fresh base path must exist before the first shard.
  if (Status st = env->CreateDir(base_dir); !st.ok()) return st;
  for (int s = 0; s < options_.num_shards; ++s) {
    if (shards_[static_cast<std::size_t>(s)]->service == nullptr) continue;
    if (Status st = AttachShardWal(s); !st.ok()) return st;
  }
  return Status::Ok();
}

Status ShardedArrangementService::AttachShardWal(int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return InvalidArgumentError(StrFormat("no shard %d", shard));
  }
  if (env_ == nullptr) {
    return FailedPreconditionError(
        "AttachWals has not configured a WAL base directory");
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return FailedPreconditionError(
        StrFormat("shard %d is down; recover it first", shard));
  }
  auto wal =
      WalWriter::Open(env_, ShardWalDirName(wal_base_dir_, shard),
                      wal_options_);
  if (!wal.ok()) return wal.status();
  std::lock_guard<std::mutex> lock(s.wal_mu);
  s.wal = std::move(wal).value();
  s.degraded = false;
  s.breaker = durability_.breaker_enabled
                  ? std::make_unique<CircuitBreaker>(durability_.breaker)
                  : nullptr;
  return Status::Ok();
}

Status ShardedArrangementService::AttachDecisionLogs(
    Env* env, const std::string& base_dir, const DecisionLogHeader& header,
    const WalOptions& wal_options) {
  FASEA_CHECK(env != nullptr);
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (shard.service == nullptr) continue;
    auto log = DecisionLogWriter::Open(
        env, DecisionLogDirName(ShardWalDirName(base_dir, s)), header,
        wal_options);
    if (!log.ok()) return log.status();
    shard.service->AttachDecisionLog(std::move(log).value());
  }
  return Status::Ok();
}

Status ShardedArrangementService::CloseDecisionLogs() {
  Status first = Status::Ok();
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (shard.service == nullptr) continue;
    DecisionLogWriter* log = shard.service->mutable_decision_log();
    if (log == nullptr) continue;
    if (Status st = log->Close(); !st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ShardedArrangementService::AppendLocked(Shard& shard,
                                               std::string_view frame) {
  if (shard.wal->broken()) {
    // Sealed or torn bytes are never rewritten; a fresh segment is the
    // only way to accept frames again.
    auto reopened = WalWriter::Open(
        env_, ShardWalDirName(wal_base_dir_, shard.index), wal_options_);
    if (!reopened.ok()) return reopened.status();
    shard.wal = std::move(reopened).value();
    ++shard.wal_reopens;
  }
  return shard.wal->Append(frame);
}

StatusOr<ShardedArrangementService::AppendOutcome>
ShardedArrangementService::AppendFrame(Shard& shard,
                                       std::string_view frame) {
  std::lock_guard<std::mutex> lock(shard.wal_mu);
  if (shard.wal == nullptr || shard.degraded) {
    return AppendOutcome::kNonDurable;
  }
  if (shard.breaker == nullptr) {
    Status st = AppendLocked(shard, frame);
    if (st.ok()) return AppendOutcome::kDurable;
    ++shard.append_failures;
    if (durability_.on_wal_error ==
        DurabilityPolicy::OnWalError::kFailRound) {
      return UnavailableError(
          "durability failure, round not applied (retry after the log is "
          "restored): " +
          st.message());
    }
    shard.degraded = true;
    ++shard.nondurable_rounds;
    nondurable_metric_->Increment();
    return AppendOutcome::kNonDurable;
  }
  if (!shard.breaker->Allow()) {
    ++shard.nondurable_rounds;
    nondurable_metric_->Increment();
    return AppendOutcome::kNonDurable;
  }
  Status st = AppendLocked(shard, frame);
  if (st.ok()) {
    shard.breaker->RecordSuccess();
    return AppendOutcome::kDurable;
  }
  shard.breaker->RecordFailure();
  ++shard.append_failures;
  if (durability_.on_wal_error == DurabilityPolicy::OnWalError::kFailRound) {
    return UnavailableError(
        "durability failure, round not applied (retry; the breaker "
        "arbitrates recovery): " +
        st.message());
  }
  ++shard.nondurable_rounds;
  nondurable_metric_->Increment();
  return AppendOutcome::kNonDurable;
}

Status ShardedArrangementService::AppendFrameStrict(Shard& shard,
                                                    std::string_view frame) {
  std::lock_guard<std::mutex> lock(shard.wal_mu);
  // With no WAL anywhere, a crash loses everything regardless — the
  // reservation requirement is vacuous.
  if (shard.wal == nullptr) return Status::Ok();
  if (shard.degraded) {
    return UnavailableError("shard is WAL-degraded; reservation refused");
  }
  if (shard.breaker != nullptr && !shard.breaker->Allow()) {
    return UnavailableError("shard breaker is open; reservation refused");
  }
  Status st = AppendLocked(shard, frame);
  if (shard.breaker != nullptr) {
    if (st.ok()) {
      shard.breaker->RecordSuccess();
    } else {
      shard.breaker->RecordFailure();
    }
  }
  if (!st.ok()) {
    ++shard.append_failures;
    return UnavailableError("reservation could not be hardened: " +
                            st.message());
  }
  return Status::Ok();
}

const ShardRouter& ShardedArrangementService::RouterAt(
    std::uint32_t epoch) const {
  // Frames can never be written under an epoch that has not flipped, so
  // a larger stamp means a format bug; clamping keeps replay total.
  const std::size_t e =
      std::min<std::size_t>(epoch, routers_.size() - 1);
  return *routers_[e];
}

// --- Serving -------------------------------------------------------------

Matrix ShardedArrangementService::GatherContexts(
    int shard, const ContextMatrix& contexts) const {
  const std::vector<EventId>& events = router().ShardEvents(shard);
  Matrix out(events.size(), contexts.cols());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto src = contexts.Row(events[i]);
    std::copy(src.begin(), src.end(), out.Row(i).begin());
  }
  return out;
}

Arrangement ShardedArrangementService::MapToGlobal(
    int shard, const Arrangement& local) const {
  const std::vector<EventId>& events = router().ShardEvents(shard);
  Arrangement out;
  out.reserve(local.size());
  for (EventId v : local) {
    FASEA_DCHECK(v < events.size());
    out.push_back(events[v]);
  }
  return out;
}

std::vector<std::uint8_t> ShardedArrangementService::SpilloverMask(
    int shard, const Arrangement& chosen) const {
  const std::vector<EventId>& events = router().ShardEvents(shard);
  const ConflictGraph& conflicts = instance_->conflicts();
  std::vector<std::uint8_t> mask(events.size(), 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (EventId c : chosen) {
      if (conflicts.Conflicts(events[i], c)) {
        mask[i] = 0;
        break;
      }
    }
  }
  return mask;
}

void ShardedArrangementService::AbortOpenPortions(const PendingTxn& pending,
                                                  std::uint64_t txn) {
  for (const Portion& portion : pending.portions) {
    Shard& s = *shards_[static_cast<std::size_t>(portion.shard)];
    if (s.service != nullptr) (void)s.service->AbortPendingRound();
    if (portion.shard != pending.home) {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.open_reservations.erase(txn);
    }
  }
}

StatusOr<ShardedServeResult> ShardedArrangementService::ServeUser(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts) {
  if (net_ != nullptr) {
    return ServeUserTransport(user_id, user_capacity, contexts);
  }
  if (contexts.rows() != instance_->num_events() ||
      contexts.cols() != instance_->dim()) {
    return InvalidArgumentError(StrFormat(
        "context matrix is %zux%zu, the instance needs %zux%zu",
        contexts.rows(), contexts.cols(), instance_->num_events(),
        instance_->dim()));
  }
  const std::uint64_t txn =
      next_txn_.fetch_add(1, std::memory_order_relaxed);
  // The transaction's correlation id: deterministic, so recovery and
  // replay re-derive the same id from the txn alone.
  const std::uint64_t trace_id = Mix64(txn);
  const int home =
      router().HomeShard(user_id, static_cast<std::int64_t>(txn - 1),
                        options_.routing);
  Shard& h = *shards_[static_cast<std::size_t>(home)];
  if (h.service == nullptr) {
    return UnavailableError(
        StrFormat("home shard %d is down; retry (the next arrival routes "
                  "elsewhere)",
                  home));
  }

  PendingTxn pending;
  pending.home = home;
  pending.trace_id = trace_id;
  pending.user_id = user_id;
  pending.user_capacity = user_capacity;

  // Stage 0: the coordinator proposes from its own partition.
  Arrangement chosen;  // Global ids.
  {
    TraceSpan span("txn.coordinate", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, trace_id);
    h.service->SetNextRoundTrace(txn, trace_id);
    auto local =
        h.service->ServeUser(user_id, user_capacity,
                             GatherContexts(home, contexts));
    if (!local.ok()) return local.status();
    pending.coordinator_round = h.service->rounds_served();
    Portion portion;
    portion.shard = home;
    portion.local_events = std::move(local).value();
    portion.start = 0;
    portion.local_round = pending.coordinator_round;
    portion.local_capacity = user_capacity;
    chosen = MapToGlobal(home, portion.local_events);
    pending.portions.push_back(std::move(portion));
  }

  // Spillover: ring order after the home, while capacity remains.
  std::int64_t remaining =
      user_capacity - static_cast<std::int64_t>(chosen.size());
  int budget = options_.max_participant_shards < 0
                   ? options_.num_shards - 1
                   : std::min(options_.max_participant_shards,
                              options_.num_shards - 1);
  bool crossed = false;
  for (int k = 1;
       k < options_.num_shards && budget > 0 && remaining > 0; ++k) {
    const int sid = (home + k) % options_.num_shards;
    Shard& s = *shards_[static_cast<std::size_t>(sid)];
    if (s.service == nullptr || router().ShardEvents(sid).empty()) {
      continue;
    }
    std::vector<std::uint8_t> mask = SpilloverMask(sid, chosen);
    if (std::all_of(mask.begin(), mask.end(),
                    [](std::uint8_t m) { return m == 0; })) {
      continue;  // Everything here conflicts with the chosen set.
    }
    s.service->SetNextRoundTrace(txn, trace_id);
    auto local = s.service->ServeUser(user_id, remaining,
                                      GatherContexts(sid, contexts),
                                      std::move(mask));
    if (!local.ok()) {
      if (IsRetryableServe(local.status().code())) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.spillover_stages_skipped;
        continue;  // A busy/draining participant just sits this one out.
      }
      AbortOpenPortions(pending, txn);
      return local.status();
    }
    if (local->empty()) {
      (void)s.service->AbortPendingRound();
      continue;
    }

    // Phase 1: the contribution only counts once the reservation is
    // durable on the participant.
    ReservationRecord reservation;
    reservation.txn = txn;
    reservation.trace_id = trace_id;
    reservation.coordinator_shard = home;
    reservation.coordinator_round = pending.coordinator_round;
    reservation.user_id = user_id;
    reservation.epoch = rebalance_epoch_;
    reservation.events = MapToGlobal(sid, *local);
    TraceSpan reserve_span("txn.reserve", static_cast<std::int64_t>(txn),
                           TraceRing::Global(), nullptr, trace_id);
    if (Status st = AppendFrameStrict(s, EncodeReserveFrame(reservation));
        !st.ok()) {
      (void)s.service->AbortPendingRound();
      reservation_refusals_metric_->Increment();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.reservation_refusals;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.open_reservations[txn] = reservation;
    }
    Portion portion;
    portion.shard = sid;
    portion.start = chosen.size();
    portion.local_round = s.service->rounds_served();
    portion.local_capacity = remaining;  // What this stage was asked for.
    portion.local_events = std::move(local).value();
    remaining -= static_cast<std::int64_t>(reservation.events.size());
    reservations_metric_->Add(
        static_cast<std::int64_t>(reservation.events.size()));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.reservations_made +=
          static_cast<std::int64_t>(reservation.events.size());
    }
    for (EventId g : reservation.events) chosen.push_back(g);
    pending.portions.push_back(std::move(portion));
    --budget;
    crossed = true;
  }
  if (crossed) {
    cross_shard_rounds_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cross_shard_rounds;
  }

  pending.arrangement = chosen;
  pending.context_rows.reserve(chosen.size());
  for (EventId v : chosen) {
    const auto row = contexts.Row(v);
    pending.context_rows.emplace_back(row.begin(), row.end());
  }

  ShardedServeResult result;
  result.txn = txn;
  result.home_shard = home;
  result.arrangement = chosen;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_[txn] = std::move(pending);
  }
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  return result;
}

Status ShardedArrangementService::SubmitFeedback(
    std::uint64_t txn, const Feedback& feedback,
    ShardedFeedbackResult* result) {
  if (net_ != nullptr) {
    return SubmitFeedbackTransport(txn, feedback, result);
  }
  PendingTxn* pending = nullptr;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(txn);
    if (it == pending_.end()) {
      return FailedPreconditionError(StrFormat(
          "transaction %llu is not pending (never served, already "
          "committed, or lost with a crashed coordinator)",
          static_cast<unsigned long long>(txn)));
    }
    if (it->second.busy) {
      return FailedPreconditionError("transaction is already mid-commit");
    }
    it->second.busy = true;
    pending = &it->second;  // Map nodes are stable.
  }
  const auto fail_retryable = [&](Status st) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending->busy = false;
    return st;
  };

  if (feedback.size() != pending->arrangement.size()) {
    return fail_retryable(InvalidArgumentError(
        "feedback must align with the served arrangement"));
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) {
      return fail_retryable(
          InvalidArgumentError("feedback entries must be 0/1"));
    }
  }
  Shard& h = *shards_[static_cast<std::size_t>(pending->home)];
  if (h.service == nullptr) {
    return fail_retryable(UnavailableError("home shard is down"));
  }

  InteractionRecord record;
  record.t = pending->coordinator_round;
  record.user_id = pending->user_id;
  record.user_capacity = pending->user_capacity;
  record.arrangement = pending->arrangement;
  record.feedback = feedback;
  record.contexts = pending->context_rows;

  // Commit point: the decision frame on the coordinator's WAL. A
  // retryable failure leaves nothing applied anywhere — reservations
  // stay durably open and the same feedback may be resubmitted.
  bool durable = false;
  {
    TraceSpan span("txn.commit", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, pending->trace_id);
    auto outcome = AppendFrame(
        h, EncodeDecisionFrame(txn, pending->trace_id, rebalance_epoch_,
                               record));
    if (!outcome.ok()) return fail_retryable(outcome.status());
    durable = (*outcome == AppendOutcome::kDurable);
  }
  // From here the transaction is committed: index the decision so
  // resolvers (live peers or recovering shards) can find it even if we
  // die before any portion applies.
  {
    std::lock_guard<std::mutex> lock(h.ledger_mu);
    h.decisions[txn] = record;
  }
  if (crash_after_decision_ && crash_after_decision_(txn)) {
    // Simulated coordinator crash between the phases. The transaction
    // stays pending; KillShard parks it and RecoverShard resolves it.
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending->busy = false;
    return UnavailableError(
        "injected coordinator crash after the decision was committed");
  }

  // Phase 2: apply every portion. Per shard, WAL frames precede the
  // inner application (write-ahead), so each shard's frames carry
  // strictly increasing round ids.
  int participants = 0;
  const int home_shard = pending->home;
  const std::int64_t home_round = pending->coordinator_round;
  for (const Portion& portion : pending->portions) {
    Shard& s = *shards_[static_cast<std::size_t>(portion.shard)];
    if (s.service == nullptr) {
      // The participant died after the commit point. Its durable
      // reservation meets the durable decision at its recovery, which
      // applies the portion then — the transaction still commits.
      if (portion.shard != home_shard) ++participants;
      continue;
    }
    Feedback fb(feedback.begin() + static_cast<std::ptrdiff_t>(portion.start),
                feedback.begin() + static_cast<std::ptrdiff_t>(
                                       portion.start +
                                       portion.local_events.size()));
    if (portion.shard != home_shard) {
      ++participants;
      if (durable) {
        // Close the reservation durably. Best-effort: a lost portion
        // frame re-resolves (to the same commit) at recovery. Never
        // written without a durable decision — a portion record must
        // not outlive its decision.
        InteractionRecord local;
        local.t = portion.local_round;
        local.user_id = pending->user_id;
        local.user_capacity = portion.local_capacity;
        local.arrangement = portion.local_events;
        local.feedback = fb;
        local.contexts.assign(
            pending->context_rows.begin() +
                static_cast<std::ptrdiff_t>(portion.start),
            pending->context_rows.begin() +
                static_cast<std::ptrdiff_t>(portion.start +
                                            portion.local_events.size()));
        TraceSpan span("txn.portion", static_cast<std::int64_t>(txn),
                       TraceRing::Global(), nullptr, pending->trace_id);
        (void)AppendFrame(
            s, EncodePortionFrame(txn, pending->trace_id, rebalance_epoch_,
                                  local));
      }
    }
    FeedbackResult inner;
    if (Status st = s.service->SubmitFeedback(fb, &inner); !st.ok()) {
      // Inner services run WAL-less, so feedback can only fail on a
      // protocol bug (wrong pending round) — never retryably.
      return fail_retryable(InternalError(StrFormat(
          "shard %d portion of txn %llu failed: %s", portion.shard,
          static_cast<unsigned long long>(txn), st.message().c_str())));
    }
    if (portion.shard != home_shard) {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.open_reservations.erase(txn);
    }
    {
      std::lock_guard<std::mutex> lock(s.obs_mu);
      for (std::size_t i = 0; i < portion.local_events.size(); ++i) {
        Observation obs;
        obs.context = pending->context_rows[portion.start + i];
        obs.reward = static_cast<double>(fb[i]);
        s.obs.push_back(std::move(obs));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(txn);  // `pending` dangles past this point.
  }
  rounds_completed_.fetch_add(1, std::memory_order_relaxed);
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  if (result != nullptr) {
    result->txn = txn;
    result->home_shard = home_shard;
    result->home_round = home_round;
    result->durable = durable;
    result->participant_shards = participants;
  }
  MaybeAutoMerge();
  return Status::Ok();
}

// --- Crash and recovery --------------------------------------------------

Status ShardedArrangementService::KillShard(int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return InvalidArgumentError(StrFormat("no shard %d", shard));
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return FailedPreconditionError(
        StrFormat("shard %d is already down", shard));
  }
  // Transactions this shard coordinated are parked for RecoverShard's
  // resolver; transactions it merely participated in are aborted on the
  // survivors (their durable reservations resolve to presumed abort).
  std::vector<std::pair<std::uint64_t, PendingTxn>> participated;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      bool involved = false;
      for (const Portion& portion : it->second.portions) {
        if (portion.shard == shard) {
          involved = true;
          break;
        }
      }
      if (it->second.home == shard) {
        interrupted_[it->first] = std::move(it->second);
        it = pending_.erase(it);
      } else if (involved) {
        participated.emplace_back(it->first, std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [txn, pending] : participated) {
    for (const Portion& portion : pending.portions) {
      if (portion.shard == shard) continue;
      Shard& p = *shards_[static_cast<std::size_t>(portion.shard)];
      if (p.service != nullptr) (void)p.service->AbortPendingRound();
      if (portion.shard != pending.home) {
        std::lock_guard<std::mutex> lock(p.ledger_mu);
        p.open_reservations.erase(txn);
      }
    }
  }
  // The crash: every in-memory structure is gone; the WAL survives.
  // Under a transport the node drops off the network too — in-flight
  // messages to it vanish like packets to a dead peer.
  if (shard < static_cast<int>(servers_.size())) {
    servers_[static_cast<std::size_t>(shard)].reset();
  }
  s.service.reset();
  {
    std::lock_guard<std::mutex> lock(s.wal_mu);
    s.wal.reset();
    s.breaker.reset();
    s.degraded = false;
  }
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.decisions.clear();
    s.decision_durable.clear();
    s.open_reservations.clear();
    s.stage_rounds.clear();
  }
  {
    std::lock_guard<std::mutex> lock(s.obs_mu);
    s.obs.clear();
  }
  return Status::Ok();
}

InteractionRecord ShardedArrangementService::SliceForShard(
    int shard, const InteractionRecord& record, std::int64_t t) const {
  InteractionRecord out;
  out.t = t;
  out.user_id = record.user_id;
  out.user_capacity = record.user_capacity;
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    const EventId g = record.arrangement[i];
    if (router().OwnerShard(g) != shard) continue;
    out.arrangement.push_back(router().LocalId(g));
    out.feedback.push_back(record.feedback[i]);
    out.contexts.push_back(record.contexts[i]);
  }
  return out;
}

InteractionRecord ShardedArrangementService::SliceForReplay(
    int shard, const InteractionRecord& record, std::int64_t t,
    std::uint32_t frame_epoch,
    const std::map<EventId, std::uint32_t>& acquired,
    bool* migration_filtered) const {
  const ShardRouter& then = RouterAt(frame_epoch);
  InteractionRecord out;
  out.t = t;
  out.user_id = record.user_id;
  out.user_capacity = record.user_capacity;
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    const EventId g = record.arrangement[i];
    // Not this shard's slice at write time: the plain cross-shard
    // filter, same as the live path.
    if (then.OwnerShard(g) != shard) continue;
    // Owned then but not now: the event migrated away; its new owner
    // carries this consumption inside its MIGRATE frame.
    if (router().OwnerShard(g) != shard) {
      if (migration_filtered != nullptr) *migration_filtered = true;
      continue;
    }
    // Owned then and now, but the frame pre-dates the event's latest
    // migration INTO this shard — the round is already folded into the
    // MIGRATE frame's consumed count.
    auto it = acquired.find(g);
    if (it != acquired.end() && frame_epoch < it->second) {
      if (migration_filtered != nullptr) *migration_filtered = true;
      continue;
    }
    out.arrangement.push_back(router().LocalId(g));
    out.feedback.push_back(record.feedback[i]);
    out.contexts.push_back(record.contexts[i]);
  }
  return out;
}

StatusOr<bool> ShardedArrangementService::LookupDecision(
    int coordinator, std::uint64_t txn, InteractionRecord* out) {
  if (coordinator < 0 || coordinator >= options_.num_shards) {
    return InvalidArgumentError(
        StrFormat("reservation names unknown coordinator shard %d",
                  coordinator));
  }
  // With a transport, the in-doubt re-query goes over the wire like any
  // other protocol step — the coordinator's decision index answers. An
  // unreachable coordinator falls through to the local paths below (the
  // stand-in for a replicated decision log).
  if (net_ != nullptr && net_->NodeRegistered(coordinator)) {
    auto resp = client_->Call(MessageKind::kQueryDecision, coordinator,
                              txn, Mix64(txn), std::string(1, '\0'));
    if (resp.ok() && resp->ToStatus().ok()) {
      auto body = QueryResponseBody::Decode(resp->body);
      if (!body.ok()) return body.status();
      if (body->outcome == 1) {
        *out = body->record;
        return true;
      }
      if (body->outcome == 0) return false;
      // outcome == 2 (mid-commit) cannot happen here: recovery runs
      // quiesced. Fall through to the local index to be safe.
    }
  }
  const Shard& c = *shards_[static_cast<std::size_t>(coordinator)];
  if (c.service != nullptr) {
    std::lock_guard<std::mutex> lock(c.ledger_mu);
    auto it = c.decisions.find(txn);
    if (it == c.decisions.end()) return false;
    *out = it->second;
    return true;
  }
  // The coordinator is down: presumed abort, unless its durable decision
  // record says otherwise. Its WAL is readable without disturbing it.
  if (env_ == nullptr) return false;
  auto scan = ScanWal(env_, ShardWalDirName(wal_base_dir_, coordinator),
                      CorruptFramePolicy::kFail);
  if (!scan.ok()) return scan.status();
  bool found = false;
  for (const std::string& payload : scan->payloads) {
    auto frame = DecodeShardFrame(payload);
    if (!frame.ok()) return frame.status();
    if (frame->kind == ShardFrameKind::kDecision && frame->txn == txn) {
      *out = frame->record;
      found = true;  // Later duplicates (retries) carry the same bytes.
    }
  }
  return found;
}

void ShardedArrangementService::AppendObservations(
    Shard& shard, const InteractionRecord& record) {
  std::lock_guard<std::mutex> lock(shard.obs_mu);
  for (std::size_t i = 0; i < record.arrangement.size(); ++i) {
    Observation obs;
    obs.context = record.contexts[i];
    obs.reward = static_cast<double>(record.feedback[i]);
    shard.obs.push_back(std::move(obs));
  }
}

StatusOr<ShardRecoveryReport> ShardedArrangementService::RecoverShard(
    int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return InvalidArgumentError(StrFormat("no shard %d", shard));
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service != nullptr) {
    return FailedPreconditionError(
        StrFormat("shard %d is alive; kill it before recovering", shard));
  }
  if (env_ == nullptr) {
    return FailedPreconditionError(
        "no WAL base directory configured (AttachWals was never called)");
  }
  ShardRecoveryReport report;
  report.shard = shard;

  auto scan = ScanWal(env_, ShardWalDirName(wal_base_dir_, shard),
                      CorruptFramePolicy::kFail);
  if (!scan.ok()) return scan.status();
  report.segments_scanned = scan->segments_scanned;
  report.bytes_truncated = scan->bytes_truncated;

  auto service = std::make_unique<ArrangementService>(
      &router().SubInstance(shard), options_.kind, options_.params,
      DeriveSeed(options_.seed, "shard-policy",
                 static_cast<std::uint64_t>(shard)));
  // Decode every frame up front: MIGRATE frames resolve last-writer-
  // wins per event, and the slice filter needs each event's winning
  // acquisition epoch before the first round frame replays.
  std::vector<ShardFrame> frames;
  frames.reserve(scan->payloads.size());
  for (const std::string& payload : scan->payloads) {
    ++report.frames_scanned;
    auto frame = DecodeShardFrame(payload);
    if (!frame.ok()) return frame.status();
    frames.push_back(std::move(frame).value());
  }
  // acquired[g]: epoch of the winning MIGRATE frame for event g;
  // chosen_frame[g]: its index in `frames`. Frames stamped with an
  // epoch that never flipped (a rebalance that crashed before its
  // flip) are inert — the retry superseded them.
  std::map<EventId, std::uint32_t> acquired;
  std::map<EventId, std::size_t> chosen_frame;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const ShardFrame& frame = frames[i];
    if (frame.kind != ShardFrameKind::kMigrate) continue;
    if (frame.epoch > rebalance_epoch_) continue;
    for (const MigratedEvent& moved : frame.migrate.events) {
      if (router().OwnerShard(moved.event) != shard) continue;
      acquired[moved.event] = frame.epoch;
      chosen_frame[moved.event] = i;
    }
  }

  std::map<std::uint64_t, InteractionRecord> decisions;
  std::map<std::uint64_t, ReservationRecord> in_doubt;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const ShardFrame& frame = frames[i];
    switch (frame.kind) {
      case ShardFrameKind::kDecision: {
        decisions[frame.txn] = frame.record;
        bool migration_filtered = false;
        InteractionRecord slice =
            SliceForReplay(shard, frame.record, frame.record.t,
                           frame.epoch, acquired, &migration_filtered);
        if (migration_filtered) ++report.migration_filtered_frames;
        // An empty slice normally still advances the coordinator's
        // round counter (the home contributed nothing that round) —
        // but a slice the MIGRATION rules emptied is another shard's
        // history now and must not.
        if (slice.arrangement.empty() && migration_filtered) break;
        if (slice.t <= service->rounds_served()) {
          ++report.duplicate_frames_skipped;
          break;
        }
        if (Status st = service->RestoreInteraction(slice, /*learn=*/true);
            !st.ok()) {
          return st;
        }
        break;
      }
      case ShardFrameKind::kReserve:
        // Idempotent: a retried reservation re-frames the same bytes.
        in_doubt[frame.txn] = frame.reservation;
        break;
      case ShardFrameKind::kPortion: {
        in_doubt.erase(frame.txn);
        // Portion records carry LOCAL ids of the writing epoch's
        // router; translate to global, then re-slice under the
        // ownership history into today's local ids.
        const ShardRouter& then = RouterAt(frame.epoch);
        if (shard >= then.num_shards()) break;  // Pre-dates the shard.
        const std::vector<EventId>& then_events = then.ShardEvents(shard);
        InteractionRecord global = frame.record;
        for (EventId& v : global.arrangement) {
          if (v >= then_events.size()) {
            return DataLossError(StrFormat(
                "portion frame of txn %llu names local event %u outside "
                "epoch %u's partition of shard %d",
                static_cast<unsigned long long>(frame.txn), v,
                static_cast<unsigned>(frame.epoch), shard));
          }
          v = then_events[v];
        }
        bool migration_filtered = false;
        InteractionRecord slice =
            SliceForReplay(shard, global, frame.record.t, frame.epoch,
                           acquired, &migration_filtered);
        if (migration_filtered) ++report.migration_filtered_frames;
        if (slice.arrangement.empty()) break;  // Fully migrated away.
        if (slice.t <= service->rounds_served()) {
          ++report.duplicate_frames_skipped;
          break;
        }
        if (Status st = service->RestoreInteraction(slice, /*learn=*/true);
            !st.ok()) {
          return st;
        }
        ++report.portions_applied;
        break;
      }
      case ShardFrameKind::kMigrate: {
        // Apply each event whose winning frame is this one: fold the
        // consumed capacity in, then feed the source learner's rows to
        // the policy (soft state — kFailedPrecondition from a
        // non-ridge policy is tolerated).
        std::vector<PeerObservation> delta;
        for (const MigratedEvent& moved : frame.migrate.events) {
          auto it = chosen_frame.find(moved.event);
          if (it == chosen_frame.end() || it->second != i) continue;
          if (Status st = service->RestoreMigratedCapacity(
                  router().LocalId(moved.event), moved.consumed);
              !st.ok()) {
            return st;
          }
          for (const MigratedObservation& obs : moved.observations) {
            PeerObservation peer;
            peer.context = obs.context;
            peer.reward = obs.reward;
            delta.push_back(std::move(peer));
          }
          ++report.migrated_events_applied;
        }
        if (!delta.empty()) {
          Status st = service->AbsorbPeerObservations(delta);
          if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) {
            return st;
          }
        }
        break;
      }
    }
  }
  report.decisions_indexed =
      static_cast<std::int64_t>(decisions.size());
  report.reservations_in_doubt =
      static_cast<std::int64_t>(in_doubt.size());

  // Presumed-abort resolution: every in-doubt reservation gets a verdict
  // now — none survives recovery. Deterministic: reservations resolve in
  // txn order against durable decision records (or a live coordinator's
  // index, which mirrors them).
  for (const auto& [txn, reservation] : in_doubt) {
    InteractionRecord decision;
    auto found =
        LookupDecision(reservation.coordinator_shard, txn, &decision);
    if (!found.ok()) return found.status();
    InteractionRecord slice;
    if (*found) {
      slice = SliceForReplay(shard, decision,
                             service->rounds_served() + 1,
                             reservation.epoch, acquired, nullptr);
    }
    if (*found && !slice.arrangement.empty()) {
      // Commit. The recovered state cannot already hold this portion:
      // state is rebuilt from the WAL alone, and an applied portion
      // that made it to the WAL would have closed the reservation.
      if (Status st = service->RestoreInteraction(slice, /*learn=*/true);
          !st.ok()) {
        return st;
      }
      ++report.resolved_committed;
      resolved_committed_metric_->Increment();
    } else {
      ++report.resolved_aborted;
      resolved_aborted_metric_->Increment();
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.resolved_committed += report.resolved_committed;
    stats_.resolved_aborted += report.resolved_aborted;
  }
  report.rounds_served = service->rounds_served();

  // Install the rebuilt shard. The observation buffer is re-derived from
  // the recovered log; peer cursors clamp to its (possibly shorter)
  // length — merged learner state is soft, the next merge re-syncs.
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.decision_durable.clear();
    for (const auto& [txn, record] : decisions) {
      s.decision_durable[txn] = true;  // It came back from the WAL.
    }
    s.decisions = std::move(decisions);
    s.open_reservations.clear();
    s.stage_rounds.clear();
  }
  std::size_t obs_size = 0;
  {
    std::lock_guard<std::mutex> lock(s.obs_mu);
    s.obs.clear();
    const InteractionLog& log = service->log();
    for (std::size_t i = 0; i < log.size(); ++i) {
      const InteractionRecord& rec = log.record(i);
      for (std::size_t j = 0; j < rec.arrangement.size(); ++j) {
        Observation obs;
        obs.context = rec.contexts[j];
        obs.reward = static_cast<double>(rec.feedback[j]);
        s.obs.push_back(std::move(obs));
      }
    }
    obs_size = s.obs.size();
  }
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    for (int j = 0; j < options_.num_shards; ++j) {
      cursors_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(
          j)] = 0;  // The fresh learner has absorbed no peer state.
      cursors_[static_cast<std::size_t>(j)][static_cast<std::size_t>(
          shard)] =
          std::min(cursors_[static_cast<std::size_t>(j)]
                           [static_cast<std::size_t>(shard)],
                   obs_size);
    }
  }
  s.service = std::move(service);
  recoveries_metric_->Increment();
  if (net_ != nullptr) RegisterShardServer(shard);

  if (Status st = ResolveInterrupted(shard, &report); !st.ok()) return st;
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  return report;
}

Status ShardedArrangementService::ResolveInterrupted(
    int shard, ShardRecoveryReport* report) {
  std::vector<std::pair<std::uint64_t, PendingTxn>> mine;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = interrupted_.begin(); it != interrupted_.end();) {
      if (it->second.home == shard) {
        mine.emplace_back(it->first, std::move(it->second));
        it = interrupted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Shard& h = *shards_[static_cast<std::size_t>(shard)];
  for (const auto& [txn, pending] : mine) {
    InteractionRecord decision;
    bool committed = false;
    {
      std::lock_guard<std::mutex> lock(h.ledger_mu);
      auto it = h.decisions.find(txn);
      if (it != h.decisions.end()) {
        committed = true;
        decision = it->second;
      }
    }
    for (const Portion& portion : pending.portions) {
      if (portion.shard == shard) continue;  // Our slice replayed above.
      Shard& p = *shards_[static_cast<std::size_t>(portion.shard)];
      // A participant that died (or died and moved on) resolves from its
      // own WAL; only its still-pending inner round for THIS txn is ours
      // to finish.
      if (p.service == nullptr ||
          p.service->rounds_served() != portion.local_round ||
          !p.service->AwaitingFeedback()) {
        continue;
      }
      if (committed) {
        Feedback fb(decision.feedback.begin() +
                        static_cast<std::ptrdiff_t>(portion.start),
                    decision.feedback.begin() +
                        static_cast<std::ptrdiff_t>(
                            portion.start + portion.local_events.size()));
        InteractionRecord local;
        local.t = portion.local_round;
        local.user_id = pending.user_id;
        local.user_capacity = portion.local_capacity;
        local.arrangement = portion.local_events;
        local.feedback = fb;
        local.contexts.assign(
            decision.contexts.begin() +
                static_cast<std::ptrdiff_t>(portion.start),
            decision.contexts.begin() +
                static_cast<std::ptrdiff_t>(portion.start +
                                            portion.local_events.size()));
        // The decision is durable (it came from the recovered index), so
        // the portion frame may close the reservation.
        (void)AppendFrame(
            p, EncodePortionFrame(txn, pending.trace_id, rebalance_epoch_,
                                  local));
        if (Status st = p.service->SubmitFeedback(fb); !st.ok()) {
          return InternalError(StrFormat(
              "completing interrupted txn %llu on shard %d failed: %s",
              static_cast<unsigned long long>(txn), portion.shard,
              st.message().c_str()));
        }
        AppendObservations(p, local);
        ++report->interrupted_completed;
      } else {
        (void)p.service->AbortPendingRound();
        ++report->interrupted_aborted;
      }
      {
        std::lock_guard<std::mutex> lock(p.ledger_mu);
        p.open_reservations.erase(txn);
      }
    }
    if (committed) {
      // The coordinator's own obs were rebuilt from its log; the round
      // now counts as completed (its original caller saw kUnavailable).
      rounds_completed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

// --- Transport -----------------------------------------------------------

Status ShardedArrangementService::ConfigureTransport(
    SimulatedNetwork* net, const ShardTransportOptions& options) {
  FASEA_CHECK(net != nullptr);
  if (net_ != nullptr) {
    return FailedPreconditionError("a transport is already configured");
  }
  if (options.lease_ticks <= 0) {
    return InvalidArgumentError("lease_ticks must be positive");
  }
  net_ = net;
  topts_ = options;
  client_ = std::make_unique<ShardClient>(net, kGatewayNode, topts_.client);
  servers_.resize(static_cast<std::size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    if (shard_alive(s)) RegisterShardServer(s);
  }
  return Status::Ok();
}

void ShardedArrangementService::RegisterShardServer(int shard) {
  if (static_cast<int>(servers_.size()) <= shard) {
    servers_.resize(static_cast<std::size_t>(shard) + 1);
  }
  auto server = std::make_unique<ShardServer>(net_, shard, topts_.server);
  server->Handle(MessageKind::kServe, [this, shard](const Envelope& req) {
    return HandleServe(shard, req);
  });
  server->Handle(MessageKind::kReserve, [this, shard](const Envelope& req) {
    return HandleReserve(shard, req);
  });
  server->Handle(MessageKind::kCommit, [this, shard](const Envelope& req) {
    return HandleCommit(shard, req);
  });
  server->Handle(MessageKind::kAbort, [this, shard](const Envelope& req) {
    return HandleAbort(shard, req);
  });
  server->Handle(MessageKind::kQueryDecision,
                 [this, shard](const Envelope& req) {
                   return HandleQuery(shard, req);
                 });
  server->Handle(MessageKind::kHealth, [this, shard](const Envelope& req) {
    return HandleHealth(shard, req);
  });
  server->Handle(MessageKind::kMigrate, [this, shard](const Envelope& req) {
    return HandleMigrate(shard, req);
  });
  servers_[static_cast<std::size_t>(shard)] = std::move(server);
}

StatusOr<std::string> ShardedArrangementService::HandleServe(
    int shard, const Envelope& request) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return UnavailableError(StrFormat("shard %d is down", shard));
  }
  auto body = ServeRequestBody::Decode(request.body);
  if (!body.ok()) return body.status();
  s.service->SetNextRoundTrace(request.txn, request.trace_id);
  auto local = s.service->ServeUser(body->user_id, body->user_capacity,
                                    body->contexts);
  if (!local.ok()) return local.status();
  ServeResponseBody response;
  response.coordinator_round = s.service->rounds_served();
  response.local_events = std::move(local).value();
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    StageEntry entry;
    entry.local_round = response.coordinator_round;
    entry.lease_expiry = body->lease_expiry;
    entry.coordinator = shard;  // The home stage's decision lives here.
    s.stage_rounds[request.txn] = entry;
  }
  return response.Encode();
}

StatusOr<std::string> ShardedArrangementService::HandleReserve(
    int shard, const Envelope& request) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return UnavailableError(StrFormat("shard %d is down", shard));
  }
  auto body = ReserveRequestBody::Decode(request.body);
  if (!body.ok()) return body.status();
  std::vector<std::uint8_t> mask = SpilloverMask(shard, body->chosen);
  ReserveResponseBody response;
  if (std::all_of(mask.begin(), mask.end(),
                  [](std::uint8_t m) { return m == 0; })) {
    return response.Encode();  // Empty contribution, nothing reserved.
  }
  s.service->SetNextRoundTrace(request.txn, request.trace_id);
  auto local = s.service->ServeUser(body->user_id, body->remaining,
                                    body->contexts, std::move(mask));
  if (!local.ok()) return local.status();
  if (local->empty()) {
    (void)s.service->AbortPendingRound();
    return response.Encode();
  }

  ReservationRecord reservation;
  reservation.txn = request.txn;
  reservation.trace_id = request.trace_id;
  reservation.coordinator_shard = body->coordinator_shard;
  reservation.coordinator_round = body->coordinator_round;
  reservation.user_id = body->user_id;
  reservation.lease_expiry = body->lease_expiry;
  reservation.epoch = rebalance_epoch_;
  reservation.events = MapToGlobal(shard, *local);
  if (Status st = AppendFrameStrict(s, EncodeReserveFrame(reservation));
      !st.ok()) {
    (void)s.service->AbortPendingRound();
    reservation_refusals_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reservation_refusals;
    return st;
  }
  response.local_round = s.service->rounds_served();
  response.global_events = reservation.events;
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.open_reservations[request.txn] = reservation;
    StageEntry entry;
    entry.local_round = response.local_round;
    entry.lease_expiry = reservation.lease_expiry;
    entry.coordinator = reservation.coordinator_shard;
    s.stage_rounds[request.txn] = entry;
  }
  reservations_metric_->Add(
      static_cast<std::int64_t>(reservation.events.size()));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reservations_made +=
        static_cast<std::int64_t>(reservation.events.size());
  }
  return response.Encode();
}

StatusOr<std::string> ShardedArrangementService::HandleCommit(
    int shard, const Envelope& request) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return UnavailableError(StrFormat("shard %d is down", shard));
  }
  if (request.body.empty()) {
    return InvalidArgumentError("commit body is empty");
  }
  const std::uint8_t flag =
      static_cast<std::uint8_t>(request.body[0]);
  if (flag == kCommitDecision) {
    auto record =
        DecodeInteractionRecord(std::string_view(request.body).substr(1));
    if (!record.ok()) return record.status();
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (aborted_txns_.count(request.txn) != 0) {
        return FailedPreconditionError(StrFormat(
            "transaction %llu was force-aborted on lease expiry",
            static_cast<unsigned long long>(request.txn)));
      }
    }
    {
      // Txn-level idempotence: a resubmitted commit of a decided txn
      // answers from the index without a second frame.
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      auto it = s.decisions.find(request.txn);
      if (it != s.decisions.end()) {
        const bool durable = s.decision_durable[request.txn];
        return std::string(1, durable ? '\1' : '\0');
      }
    }
    auto outcome = AppendFrame(
        s, EncodeDecisionFrame(request.txn, request.trace_id,
                               rebalance_epoch_, *record));
    if (!outcome.ok()) return outcome.status();
    const bool durable = (*outcome == AppendOutcome::kDurable);
    {
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      s.decisions[request.txn] = std::move(record).value();
      s.decision_durable[request.txn] = durable;
    }
    return std::string(1, durable ? '\1' : '\0');
  }
  if (flag != kCommitPortion || request.body.size() < 3) {
    return InvalidArgumentError("malformed commit body");
  }
  const bool write_frame = request.body[1] != 0;
  auto record =
      DecodeInteractionRecord(std::string_view(request.body).substr(3));
  if (!record.ok()) return record.status();
  StageEntry entry;
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    auto it = s.stage_rounds.find(request.txn);
    // No open stage: the portion already applied (an earlier delivery
    // beat this retry) or the shard recovered past it. Idempotent no-op.
    if (it == s.stage_rounds.end()) return std::string();
    entry = it->second;
  }
  if (s.service->rounds_served() != entry.local_round ||
      !s.service->AwaitingFeedback()) {
    return InternalError(StrFormat(
        "shard %d stage of txn %llu does not match its pending round",
        shard, static_cast<unsigned long long>(request.txn)));
  }
  if (write_frame) {
    (void)AppendFrame(
        s, EncodePortionFrame(request.txn, request.trace_id,
                              rebalance_epoch_, *record));
  }
  if (Status st = s.service->SubmitFeedback(record->feedback); !st.ok()) {
    return InternalError(StrFormat(
        "shard %d portion of txn %llu failed: %s", shard,
        static_cast<unsigned long long>(request.txn),
        st.message().c_str()));
  }
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.stage_rounds.erase(request.txn);
    s.open_reservations.erase(request.txn);
  }
  AppendObservations(s, *record);
  return std::string();
}

StatusOr<std::string> ShardedArrangementService::HandleAbort(
    int shard, const Envelope& request) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return UnavailableError(StrFormat("shard %d is down", shard));
  }
  bool have_stage = false;
  StageEntry entry;
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    auto it = s.stage_rounds.find(request.txn);
    if (it != s.stage_rounds.end()) {
      have_stage = true;
      entry = it->second;
    }
  }
  if (have_stage && s.service->rounds_served() == entry.local_round &&
      s.service->AwaitingFeedback()) {
    (void)s.service->AbortPendingRound();
  }
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    s.stage_rounds.erase(request.txn);
    s.open_reservations.erase(request.txn);
  }
  return std::string();
}

StatusOr<std::string> ShardedArrangementService::HandleQuery(
    int shard, const Envelope& request) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  const bool force = !request.body.empty() && request.body[0] != 0;
  QueryResponseBody response;
  {
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    auto it = s.decisions.find(request.txn);
    if (it != s.decisions.end()) {
      response.outcome = 1;
      response.durable = s.decision_durable[request.txn];
      response.record = it->second;
      return response.Encode();
    }
  }
  if (!force) return response.Encode();  // Undecided: presumed abort.
  // Forced resolution (lease expiry): an undecided transaction that is
  // not mid-commit right now is aborted for good — a late COMMIT will
  // be refused.
  std::lock_guard<std::mutex> lock(pending_mu_);
  auto it = pending_.find(request.txn);
  if (it != pending_.end() && it->second.busy) {
    response.outcome = 2;  // Mid-commit; ask again.
    return response.Encode();
  }
  if (it != pending_.end()) pending_.erase(it);
  aborted_txns_.insert(request.txn);
  return response.Encode();
}

StatusOr<std::string> ShardedArrangementService::HandleHealth(
    int shard, const Envelope& request) {
  (void)request;
  return std::string(
      1, static_cast<char>(ShardHealth(shard).state));
}

StatusOr<std::string> ShardedArrangementService::HandleMigrate(
    int shard, const Envelope& request) {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    return UnavailableError(StrFormat("shard %d is down", shard));
  }
  // The WAL-segment handoff: the body IS the MIGRATE frame; it lands
  // strictly (durable or refused) — migrations never run degraded.
  if (Status st = AppendFrameStrict(s, request.body); !st.ok()) return st;
  return std::string();
}

StatusOr<ShardedServeResult> ShardedArrangementService::ServeUserTransport(
    std::int64_t user_id, std::int64_t user_capacity,
    const ContextMatrix& contexts) {
  if (contexts.rows() != instance_->num_events() ||
      contexts.cols() != instance_->dim()) {
    return InvalidArgumentError(StrFormat(
        "context matrix is %zux%zu, the instance needs %zux%zu",
        contexts.rows(), contexts.cols(), instance_->num_events(),
        instance_->dim()));
  }
  std::lock_guard<std::mutex> net_lock(net_mu_);
  const std::uint64_t txn =
      next_txn_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t trace_id = Mix64(txn);
  const int home =
      router().HomeShard(user_id, static_cast<std::int64_t>(txn - 1),
                         options_.routing);
  if (!shard_alive(home)) {
    return UnavailableError(
        StrFormat("home shard %d is down; retry (the next arrival routes "
                  "elsewhere)",
                  home));
  }
  const std::int64_t lease = net_->now() + topts_.lease_ticks;

  PendingTxn pending;
  pending.home = home;
  pending.trace_id = trace_id;
  pending.user_id = user_id;
  pending.user_capacity = user_capacity;

  // Stage 0: SERVE to the coordinator.
  Arrangement chosen;  // Global ids.
  {
    TraceSpan span("txn.coordinate", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, trace_id);
    ServeRequestBody request;
    request.user_id = user_id;
    request.user_capacity = user_capacity;
    request.lease_expiry = lease;
    request.contexts = GatherContexts(home, contexts);
    auto resp = client_->Call(MessageKind::kServe, home, txn, trace_id,
                              request.Encode());
    if (!resp.ok()) {
      // Transport silence. An executed-but-unanswered serve left an
      // orphan stage on the home; its lease expires it to abort.
      return UnavailableError(StrFormat(
          "serve to home shard %d lost in the network: %s", home,
          resp.status().message().c_str()));
    }
    if (Status st = resp->ToStatus(); !st.ok()) return st;
    auto body = ServeResponseBody::Decode(resp->body);
    if (!body.ok()) return body.status();
    pending.coordinator_round = body->coordinator_round;
    Portion portion;
    portion.shard = home;
    portion.local_events = std::move(body->local_events);
    portion.start = 0;
    portion.local_round = pending.coordinator_round;
    portion.local_capacity = user_capacity;
    chosen = MapToGlobal(home, portion.local_events);
    pending.portions.push_back(std::move(portion));
  }

  // Spillover: RESERVE in ring order after the home while capacity
  // remains. A lost or refused stage is skipped (its lease cleans up
  // whatever the participant did); the round goes on with fewer events.
  std::int64_t remaining =
      user_capacity - static_cast<std::int64_t>(chosen.size());
  int budget = options_.max_participant_shards < 0
                   ? options_.num_shards - 1
                   : std::min(options_.max_participant_shards,
                              options_.num_shards - 1);
  bool crossed = false;
  for (int k = 1;
       k < options_.num_shards && budget > 0 && remaining > 0; ++k) {
    const int sid = (home + k) % options_.num_shards;
    if (!shard_alive(sid) || router().ShardEvents(sid).empty()) continue;
    std::vector<std::uint8_t> mask = SpilloverMask(sid, chosen);
    if (std::all_of(mask.begin(), mask.end(),
                    [](std::uint8_t m) { return m == 0; })) {
      continue;  // Everything here conflicts with the chosen set.
    }
    ReserveRequestBody request;
    request.user_id = user_id;
    request.remaining = remaining;
    request.lease_expiry = lease;
    request.coordinator_shard = home;
    request.coordinator_round = pending.coordinator_round;
    request.chosen = chosen;
    request.contexts = GatherContexts(sid, contexts);
    TraceSpan reserve_span("txn.reserve", static_cast<std::int64_t>(txn),
                           TraceRing::Global(), nullptr, trace_id);
    auto resp = client_->Call(MessageKind::kReserve, sid, txn, trace_id,
                              request.Encode());
    if (!resp.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.spillover_stages_skipped;
      continue;  // Lost in the network; the lease reaps the orphan.
    }
    if (Status st = resp->ToStatus(); !st.ok()) {
      if (IsRetryableServe(st.code())) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.spillover_stages_skipped;
        continue;
      }
      // Unretryable: abort every stage opened so far (best effort —
      // leases catch whatever these messages miss).
      for (const Portion& portion : pending.portions) {
        (void)client_->Call(MessageKind::kAbort, portion.shard, txn,
                            trace_id, std::string());
      }
      return st;
    }
    auto body = ReserveResponseBody::Decode(resp->body);
    if (!body.ok()) return body.status();
    if (body->global_events.empty()) continue;
    Portion portion;
    portion.shard = sid;
    portion.start = chosen.size();
    portion.local_round = body->local_round;
    portion.local_capacity = remaining;  // What this stage was asked for.
    portion.local_events.reserve(body->global_events.size());
    for (EventId g : body->global_events) {
      portion.local_events.push_back(router().LocalId(g));
    }
    remaining -= static_cast<std::int64_t>(body->global_events.size());
    for (EventId g : body->global_events) chosen.push_back(g);
    pending.portions.push_back(std::move(portion));
    --budget;
    crossed = true;
  }
  if (crossed) {
    cross_shard_rounds_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cross_shard_rounds;
  }

  pending.arrangement = chosen;
  pending.context_rows.reserve(chosen.size());
  for (EventId v : chosen) {
    const auto row = contexts.Row(v);
    pending.context_rows.emplace_back(row.begin(), row.end());
  }

  ShardedServeResult result;
  result.txn = txn;
  result.home_shard = home;
  result.arrangement = chosen;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_[txn] = std::move(pending);
  }
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  return result;
}

Status ShardedArrangementService::SubmitFeedbackTransport(
    std::uint64_t txn, const Feedback& feedback,
    ShardedFeedbackResult* result) {
  std::lock_guard<std::mutex> net_lock(net_mu_);
  PendingTxn* pending = nullptr;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(txn);
    if (it == pending_.end()) {
      return FailedPreconditionError(StrFormat(
          "transaction %llu is not pending (never served, already "
          "committed, force-aborted on lease expiry, or lost with a "
          "crashed coordinator)",
          static_cast<unsigned long long>(txn)));
    }
    if (it->second.busy) {
      return FailedPreconditionError("transaction is already mid-commit");
    }
    it->second.busy = true;
    pending = &it->second;  // Map nodes are stable.
  }
  const auto fail_retryable = [&](Status st) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending->busy = false;
    return st;
  };

  if (feedback.size() != pending->arrangement.size()) {
    return fail_retryable(InvalidArgumentError(
        "feedback must align with the served arrangement"));
  }
  for (std::uint8_t f : feedback) {
    if (f > 1) {
      return fail_retryable(
          InvalidArgumentError("feedback entries must be 0/1"));
    }
  }
  const int home_shard = pending->home;
  if (!shard_alive(home_shard)) {
    return fail_retryable(UnavailableError("home shard is down"));
  }

  InteractionRecord record;
  record.t = pending->coordinator_round;
  record.user_id = pending->user_id;
  record.user_capacity = pending->user_capacity;
  record.arrangement = pending->arrangement;
  record.feedback = feedback;
  record.contexts = pending->context_rows;

  // Commit point: COMMIT(decision) to the coordinator. The call is
  // idempotent at both layers — the request-id replay cache suppresses
  // network duplicates, and the decision index answers resubmits of an
  // already-decided txn — so a timed-out commit may simply be retried.
  bool durable = false;
  {
    TraceSpan span("txn.commit", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, pending->trace_id);
    CommitDecisionBody decision;
    decision.record = record;
    auto resp = client_->Call(MessageKind::kCommit, home_shard, txn,
                              pending->trace_id, decision.Encode());
    if (!resp.ok()) {
      return fail_retryable(UnavailableError(StrFormat(
          "commit of txn %llu lost in the network: %s",
          static_cast<unsigned long long>(txn),
          resp.status().message().c_str())));
    }
    Status st = resp->ToStatus();
    if (st.code() == StatusCode::kFailedPrecondition) {
      // The lease reaper got here first: the transaction is aborted
      // for good, nothing was or will be applied.
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        pending_.erase(txn);
      }
      open_reservations_gauge_->Set(
          static_cast<double>(OpenReservations()));
      return st;
    }
    if (!st.ok()) return fail_retryable(st);
    durable = !resp->body.empty() && resp->body[0] != '\0';
  }
  if (crash_after_decision_ && crash_after_decision_(txn)) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending->busy = false;
    return UnavailableError(
        "injected coordinator crash after the decision was committed");
  }

  // Phase 2: COMMIT(portion) to every stage. At-least-once: a lost
  // delivery parks in the redelivery queue (PumpTransport drives it);
  // the application is idempotent, keyed by the open stage.
  int participants = 0;
  const std::int64_t home_round = pending->coordinator_round;
  for (const Portion& portion : pending->portions) {
    Feedback fb(feedback.begin() + static_cast<std::ptrdiff_t>(portion.start),
                feedback.begin() + static_cast<std::ptrdiff_t>(
                                       portion.start +
                                       portion.local_events.size()));
    CommitPortionBody body;
    body.is_home = portion.shard == home_shard;
    body.write_frame = durable && !body.is_home;
    body.record.t = portion.local_round;
    body.record.user_id = pending->user_id;
    body.record.user_capacity = portion.local_capacity;
    body.record.arrangement = portion.local_events;
    body.record.feedback = fb;
    body.record.contexts.assign(
        pending->context_rows.begin() +
            static_cast<std::ptrdiff_t>(portion.start),
        pending->context_rows.begin() +
            static_cast<std::ptrdiff_t>(portion.start +
                                        portion.local_events.size()));
    if (!body.is_home) ++participants;
    if (!shard_alive(portion.shard)) {
      // The participant died after the commit point; its durable
      // reservation meets the durable decision at recovery.
      continue;
    }
    TraceSpan span("txn.portion", static_cast<std::int64_t>(txn),
                   TraceRing::Global(), nullptr, pending->trace_id);
    auto resp = client_->Call(MessageKind::kCommit, portion.shard, txn,
                              pending->trace_id, body.Encode());
    if (!resp.ok()) {
      UndeliveredPortion parked;
      parked.shard = portion.shard;
      parked.txn = txn;
      parked.trace_id = pending->trace_id;
      parked.body = body.Encode();
      std::lock_guard<std::mutex> lock(undelivered_mu_);
      undelivered_.push_back(std::move(parked));
      continue;
    }
    if (Status st = resp->ToStatus(); !st.ok()) return fail_retryable(st);
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(txn);  // `pending` dangles past this point.
  }
  rounds_completed_.fetch_add(1, std::memory_order_relaxed);
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  if (result != nullptr) {
    result->txn = txn;
    result->home_shard = home_shard;
    result->home_round = home_round;
    result->durable = durable;
    result->participant_shards = participants;
  }
  MaybeAutoMerge();
  return Status::Ok();
}

Status ShardedArrangementService::PumpTransport() {
  if (net_ == nullptr) return Status::Ok();
  std::lock_guard<std::mutex> net_lock(net_mu_);
  net_->Pump();

  // Redeliver parked committed portions (at-least-once; the handler is
  // an idempotent no-op once the stage closed). One pass per pump:
  // still-failing deliveries go back in the queue.
  std::deque<UndeliveredPortion> parked;
  {
    std::lock_guard<std::mutex> lock(undelivered_mu_);
    parked.swap(undelivered_);
  }
  while (!parked.empty()) {
    UndeliveredPortion portion = std::move(parked.front());
    parked.pop_front();
    if (!shard_alive(portion.shard)) {
      // The shard crashed: its durable reservation resolves against the
      // decision index at recovery; the parked copy is obsolete.
      continue;
    }
    auto resp = client_->Call(MessageKind::kCommit, portion.shard,
                              portion.txn, portion.trace_id, portion.body);
    if (!resp.ok() || !resp->ToStatus().ok()) {
      std::lock_guard<std::mutex> lock(undelivered_mu_);
      undelivered_.push_back(std::move(portion));
      continue;
    }
    redelivered_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.redelivered_portions;
  }

  // Lease sweep: every expired stage re-queries its coordinator's
  // decision index with force — committed or mid-commit stages renew,
  // undecided ones are force-aborted (presumed abort without a crash).
  const std::int64_t now = net_->now();
  struct ExpiredStage {
    int shard = 0;
    std::uint64_t txn = 0;
    int coordinator = 0;
  };
  std::vector<ExpiredStage> expired;
  for (int sidx = 0; sidx < options_.num_shards; ++sidx) {
    Shard& s = *shards_[static_cast<std::size_t>(sidx)];
    if (s.service == nullptr) continue;
    std::lock_guard<std::mutex> lock(s.ledger_mu);
    for (const auto& [txn, entry] : s.stage_rounds) {
      if (entry.lease_expiry > 0 && entry.lease_expiry < now) {
        expired.push_back({sidx, txn, entry.coordinator});
      }
    }
  }
  for (const ExpiredStage& e : expired) {
    leases_expired_metric_->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.leases_expired;
    }
    const auto renew = [&]() {
      Shard& s = *shards_[static_cast<std::size_t>(e.shard)];
      std::lock_guard<std::mutex> lock(s.ledger_mu);
      auto it = s.stage_rounds.find(e.txn);
      if (it != s.stage_rounds.end()) {
        it->second.lease_expiry = now + topts_.lease_ticks;
      }
    };
    if (!shard_alive(e.coordinator)) {
      renew();  // Wait for the coordinator's recovery to answer.
      continue;
    }
    auto resp = client_->Call(MessageKind::kQueryDecision, e.coordinator,
                              e.txn, Mix64(e.txn), std::string(1, '\1'));
    if (!resp.ok() || !resp->ToStatus().ok()) {
      renew();  // Unreachable; ask again next sweep.
      continue;
    }
    auto body = QueryResponseBody::Decode(resp->body);
    if (!body.ok()) return body.status();
    if (body->outcome != 0) {
      renew();  // Committed (redelivery closes it) or mid-commit.
      continue;
    }
    auto abort_resp = client_->Call(MessageKind::kAbort, e.shard, e.txn,
                                    Mix64(e.txn), std::string());
    if (!abort_resp.ok() || !abort_resp->ToStatus().ok()) {
      renew();  // The abort itself was lost; retry next sweep.
      continue;
    }
    force_aborted_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.force_aborted;
  }
  open_reservations_gauge_->Set(static_cast<double>(OpenReservations()));
  return Status::Ok();
}

std::int64_t ShardedArrangementService::UndeliveredPortions() const {
  std::lock_guard<std::mutex> lock(undelivered_mu_);
  return static_cast<std::int64_t>(undelivered_.size());
}

std::int64_t ShardedArrangementService::TransportRetries() const {
  return client_ == nullptr ? 0 : client_->retries();
}

std::int64_t ShardedArrangementService::TransportTimeouts() const {
  return client_ == nullptr ? 0 : client_->timeouts();
}

std::int64_t ShardedArrangementService::TransportDupSuppressed() const {
  std::int64_t total = 0;
  for (const auto& server : servers_) {
    if (server != nullptr) total += server->dup_suppressed();
  }
  return total;
}

// --- Rebalancing ---------------------------------------------------------

Status ShardedArrangementService::RestartShard(int shard) {
  if (Status st = KillShard(shard); !st.ok()) return st;
  auto report = RecoverShard(shard);
  if (!report.ok()) return report.status();
  return AttachShardWal(shard);
}

StatusOr<RebalanceReport> ShardedArrangementService::Rebalance(
    int new_num_shards) {
  const int old_num = options_.num_shards;
  if (new_num_shards < old_num) {
    return UnimplementedError(
        "shrinking the topology is not supported; rebalancing only "
        "grows");
  }
  if (new_num_shards == old_num) {
    return InvalidArgumentError(
        StrFormat("the topology already has %d shard(s)", old_num));
  }
  if (env_ == nullptr) {
    return FailedPreconditionError(
        "no WAL base directory configured (AttachWals was never called)");
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (!pending_.empty() || !interrupted_.empty()) {
      return FailedPreconditionError(
          "transactions are in flight; quiesce before rebalancing");
    }
  }
  if (OpenReservations() != 0) {
    return FailedPreconditionError(
        "reservations are open; quiesce before rebalancing");
  }
  for (int s = 0; s < old_num; ++s) {
    if (!shard_alive(s)) {
      return FailedPreconditionError(StrFormat(
          "shard %d is down; recover it before rebalancing", s));
    }
  }

  const std::uint32_t new_epoch = rebalance_epoch_ + 1;
  RebalanceReport report;
  report.old_shards = old_num;
  report.new_shards = new_num_shards;
  report.epoch = new_epoch;

  // Drain: restart every shard from its WAL, so the state we are about
  // to package equals the durable state (non-durable rounds are shed
  // exactly as a crash would shed them).
  for (int s = 0; s < old_num; ++s) {
    if (Status st = RestartShard(s); !st.ok()) return st;
  }
  const auto abort_attempt = [&](Status st) {
    while (static_cast<int>(shards_.size()) > old_num) shards_.pop_back();
    if (static_cast<int>(servers_.size()) > old_num) {
      servers_.resize(static_cast<std::size_t>(old_num));
    }
    rebalance_aborted_metric_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebalances_aborted;
    return st;
  };
  if (rebalance_crash_hook_ && rebalance_crash_hook_(0)) {
    return abort_attempt(
        UnavailableError("injected rebalance crash after the drain"));
  }

  // Snapshot the drained capacities — the conservation baseline the
  // chaos harness audits against.
  report.remaining_after_drain.resize(instance_->num_events());
  for (EventId g = 0; g < instance_->num_events(); ++g) {
    const int owner = router().OwnerShard(g);
    report.remaining_after_drain[g] =
        shards_[static_cast<std::size_t>(owner)]->service->state().remaining(
            router().LocalId(g));
  }

  // Compute the moves under the candidate router and package each
  // source shard's contribution per destination: consumed capacity plus
  // the source learner's observation rows for the moved events.
  auto next = std::make_unique<ShardRouter>(instance_, new_num_shards);
  std::map<std::pair<int, int>, MigrateRecord> transfers;
  for (EventId g = 0; g < instance_->num_events(); ++g) {
    const int src = router().OwnerShard(g);
    const int dst = next->OwnerShard(g);
    if (src == dst) continue;
    MigratedEvent moved;
    moved.event = g;
    moved.consumed =
        instance_->capacity(g) - report.remaining_after_drain[g];
    const EventId local = router().LocalId(g);
    const InteractionLog& log =
        shards_[static_cast<std::size_t>(src)]->service->log();
    for (std::size_t i = 0; i < log.size(); ++i) {
      const InteractionRecord& rec = log.record(i);
      for (std::size_t j = 0; j < rec.arrangement.size(); ++j) {
        if (rec.arrangement[j] != local) continue;
        MigratedObservation obs;
        obs.context = rec.contexts[j];
        obs.reward = static_cast<double>(rec.feedback[j]);
        moved.observations.push_back(std::move(obs));
      }
    }
    MigrateRecord& record = transfers[{src, dst}];
    record.src_shard = src;
    record.events.push_back(std::move(moved));
    report.moved_events.push_back(g);
  }
  report.events_moved =
      static_cast<std::int64_t>(report.moved_events.size());

  // Create the new shards: inner services over the candidate router's
  // sub-instances (they serve nothing until the flip) with fresh WALs,
  // so MIGRATE frames have somewhere durable to land.
  for (int s = old_num; s < new_num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->service = std::make_unique<ArrangementService>(
        &next->SubInstance(s), options_.kind, options_.params,
        DeriveSeed(options_.seed, "shard-policy",
                   static_cast<std::uint64_t>(s)));
    auto wal = WalWriter::Open(env_, ShardWalDirName(wal_base_dir_, s),
                               wal_options_);
    if (!wal.ok()) return abort_attempt(wal.status());
    shard->wal = std::move(wal).value();
    shard->breaker =
        durability_.breaker_enabled
            ? std::make_unique<CircuitBreaker>(durability_.breaker)
            : nullptr;
    shards_.push_back(std::move(shard));
    // Put the new shard on the wire now so the WAL-segment handoff
    // below travels as kMigrate messages rather than direct appends.
    if (net_ != nullptr) RegisterShardServer(s);
  }

  // Transfer: one MIGRATE frame per (source, destination) pair,
  // appended strictly to the destination's WAL — over the transport
  // when one is attached (the WAL-segment handoff message). A crash
  // here leaves only frames of an epoch that never flips; the retry
  // supersedes them (last writer per event wins).
  for (const auto& [key, migrate] : transfers) {
    const int dst = key.second;
    if (rebalance_crash_hook_ && rebalance_crash_hook_(1)) {
      return abort_attempt(
          UnavailableError("injected rebalance crash mid-transfer"));
    }
    const std::string frame = EncodeMigrateFrame(
        Mix64((static_cast<std::uint64_t>(new_epoch) << 32) |
              static_cast<std::uint32_t>(dst)),
        new_epoch, migrate);
    if (net_ != nullptr && net_->NodeRegistered(dst)) {
      auto resp = client_->Call(MessageKind::kMigrate, dst, 0,
                                Mix64(new_epoch), frame);
      if (!resp.ok()) return abort_attempt(resp.status());
      if (Status st = resp->ToStatus(); !st.ok()) {
        return abort_attempt(st);
      }
    } else {
      Shard& d = *shards_[static_cast<std::size_t>(dst)];
      if (Status st = AppendFrameStrict(d, frame); !st.ok()) {
        return abort_attempt(st);
      }
    }
  }
  if (rebalance_crash_hook_ && rebalance_crash_hook_(2)) {
    return abort_attempt(UnavailableError(
        "injected rebalance crash after the transfer, before the flip"));
  }

  // Flip: install the new generation. From here on frames carry the new
  // epoch and arrivals route across the grown topology.
  routers_.push_back(std::move(next));
  rebalance_epoch_ = new_epoch;
  options_.num_shards = new_num_shards;
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    cursors_.resize(static_cast<std::size_t>(new_num_shards));
    for (auto& row : cursors_) {
      row.resize(static_cast<std::size_t>(new_num_shards), 0);
    }
  }
  if (net_ != nullptr) {
    servers_.resize(static_cast<std::size_t>(new_num_shards));
  }

  // Rebuild: every shard restarts under the new epoch — the moment the
  // MIGRATE frames take effect. Identical to crash recovery, so the
  // flipped topology is exactly what a post-flip crash would rebuild.
  for (int s = 0; s < new_num_shards; ++s) {
    if (Status st = RestartShard(s); !st.ok()) return st;
  }

  rebalance_migrations_metric_->Increment();
  rebalance_events_moved_metric_->Add(report.events_moved);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebalances;
    stats_.events_moved += report.events_moved;
  }
  return report;
}

// --- Delta-merge ---------------------------------------------------------

Status ShardedArrangementService::MergeLearners() {
  std::lock_guard<std::mutex> lock(merge_mu_);
  Status result = Status::Ok();
  for (int i = 0; i < options_.num_shards; ++i) {
    Shard& dst = *shards_[static_cast<std::size_t>(i)];
    if (dst.service == nullptr) continue;
    std::vector<PeerObservation> delta;
    std::vector<std::pair<int, std::size_t>> advanced;
    for (int j = 0; j < options_.num_shards; ++j) {
      if (j == i) continue;
      Shard& src = *shards_[static_cast<std::size_t>(j)];
      if (src.service == nullptr) continue;
      std::lock_guard<std::mutex> obs_lock(src.obs_mu);
      const std::size_t cursor =
          cursors_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      for (std::size_t k = cursor; k < src.obs.size(); ++k) {
        PeerObservation obs;
        obs.context = src.obs[k].context;
        obs.reward = src.obs[k].reward;
        delta.push_back(std::move(obs));
      }
      advanced.emplace_back(j, src.obs.size());
    }
    if (delta.empty()) continue;
    Status st = dst.service->AbsorbPeerObservations(delta);
    // Advance the cursors even on failure: the observations are already
    // folded into Y, and re-folding them would double-count.
    for (const auto& [j, end] : advanced) {
      cursors_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          end;
    }
    if (!st.ok()) {
      result = st;
      continue;
    }
    merges_metric_->Increment();
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.merges;
  }
  return result;
}

void ShardedArrangementService::MaybeAutoMerge() {
  if (options_.merge_every <= 0) return;
  if (rounds_completed_.load(std::memory_order_relaxed) %
          options_.merge_every ==
      0) {
    (void)MergeLearners();
  }
}

// --- Introspection -------------------------------------------------------

const ArrangementService* ShardedArrangementService::shard_service(
    int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return nullptr;
  return shards_[static_cast<std::size_t>(shard)]->service.get();
}

const CircuitBreaker* ShardedArrangementService::shard_breaker(
    int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return nullptr;
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.wal_mu);
  return s.breaker.get();
}

bool ShardedArrangementService::shard_alive(int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return false;
  return shards_[static_cast<std::size_t>(shard)]->service != nullptr;
}

std::map<std::uint64_t, InteractionRecord>
ShardedArrangementService::Decisions(int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return {};
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.ledger_mu);
  return s.decisions;
}

std::int64_t ShardedArrangementService::OpenReservations() const {
  std::int64_t open = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->ledger_mu);
    open += static_cast<std::int64_t>(shard->open_reservations.size());
  }
  return open;
}

ShardedStats ShardedArrangementService::Stats() const {
  ShardedStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = stats_;
  }
  stats.rounds_completed =
      rounds_completed_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->wal_mu);
    stats.nondurable_rounds += shard->nondurable_rounds;
  }
  return stats;
}

HealthSnapshot ShardedArrangementService::ShardHealth(int shard) const {
  HealthSnapshot snapshot;
  if (shard < 0 || shard >= options_.num_shards) {
    snapshot.state = HealthState::kLameDuck;
    return snapshot;
  }
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  if (s.service == nullptr) {
    snapshot.state = HealthState::kLameDuck;  // Down until recovered.
    return snapshot;
  }
  snapshot = s.service->Health();
  std::lock_guard<std::mutex> lock(s.wal_mu);
  snapshot.wal_attached = s.wal != nullptr;
  snapshot.wal_degraded = s.degraded;
  snapshot.breaker_enabled = s.breaker != nullptr;
  if (s.breaker != nullptr) snapshot.breaker = s.breaker->state();
  snapshot.nondurable_rounds = s.nondurable_rounds;
  snapshot.wal_reopens = s.wal_reopens;
  if (snapshot.state == HealthState::kHealthy &&
      (s.degraded ||
       (s.breaker != nullptr &&
        s.breaker->state() != CircuitBreaker::State::kClosed))) {
    snapshot.state = HealthState::kDegraded;
  }
  return snapshot;
}

HealthState ShardedArrangementService::AggregateHealth() const {
  HealthState worst = HealthState::kHealthy;
  for (int s = 0; s < options_.num_shards; ++s) {
    const HealthState state = ShardHealth(s).state;
    if (static_cast<int>(state) > static_cast<int>(worst)) worst = state;
  }
  return worst;
}

}  // namespace fasea
