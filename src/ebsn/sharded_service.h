// ShardedArrangementService: crash-safe sharded serving with a two-phase
// cross-shard arrangement protocol, an optional message-passing shard
// transport, and live shard rebalancing.
//
// Events are partitioned across N shards (ShardRouter, consistent
// hashing); each shard runs a WAL-less inner ArrangementService over its
// *sub-instance* — its own policy, capacities, and interaction log over
// the owned partition — so proposal scoring costs O(|V|/N · d²) per
// round instead of O(|V| · d²). Every durability decision lives in this
// layer: each shard has its own WAL segment directory
// (`<base>/shard-000/…`), its own circuit breaker, and an independent
// recovery path.
//
// Round protocol. An arriving user is routed to a home (coordinator)
// shard, which proposes from its own partition. If the home partition
// cannot fill the user's capacity, the coordinator *spills over* to
// the other shards in ring order; each contributing participant
// proposes from its partition under an availability mask that excludes
// events conflicting (via the global conflict graph — this is where
// cross-shard conflict edges are enforced) with everything already
// chosen. A participant's contribution is only accepted after a
// phase-1 RESERVE frame is durably in the participant's WAL — a
// participant that cannot harden the reservation refuses the stage and
// its tentative proposal is rolled back (AbortPendingRound).
//
// Feedback commits the round: the coordinator appends a DECISION frame
// (the full round, global event ids) to its own WAL — the transaction's
// commit point, breaker-mediated exactly like the unsharded service
// (append failure fails the round retryably with nothing applied; an
// open breaker acknowledges non-durably). Then every portion is applied
// to its shard's inner service, and participants append a PORTION frame
// closing their reservation — but only when the decision was durable,
// so a portion record can never outlive its decision.
//
// Message transport (ConfigureTransport). By default every protocol step
// above is an in-process call. With a SimulatedNetwork attached, the
// service becomes a *gateway* node: SERVE/RESERVE/COMMIT/ABORT/
// QUERY-DECISION/HEALTH/MIGRATE steps travel as typed envelopes
// (net/envelope.h) through the network's fault model — drop, delay,
// duplicate, reorder, partitions — with a Deadline + RetryPolicy on
// every call (net/client.h) and a request-id replay cache on every
// shard server (net/server.h), so a retried RESERVE never
// double-reserves. Reservations and serve stages then carry *leases*
// (logical-clock expiry): PumpTransport() re-queries expired ones
// against the coordinator's decision index over the transport and
// force-aborts what was never committed — presumed abort without
// waiting for a crash. Committed portions whose delivery failed park in
// a redelivery queue (at-least-once; the portion application is
// idempotent). The transport path is serialized by an internal mutex:
// multi-threaded serving stays on the in-process path.
//
// Crash recovery (per shard, independent). Replaying a shard's WAL
// rebuilds its inner service from DECISION slices and PORTION records
// (duplicate frames collapsed by round id, adjacent or not), indexes
// its decisions, and collects reservations with no closing portion —
// the *in-doubt* set. Resolution is presumed-abort: each in-doubt
// reservation re-queries the coordinator shard's decision index — over
// the transport when one is attached, falling back to the live
// in-memory index or a read-only WAL scan when the coordinator is
// unreachable; a decision containing the reserved events commits the
// portion, anything else aborts it. No in-doubt reservation survives
// recovery. Capacities can never go negative: every consumption goes
// through the owner's inner service, which validates before applying.
//
// Live rebalancing (Rebalance). Growing the shard count moves ~1/N of
// the events to the new shards (consistent hashing). The migration is
// drain → transfer → flip → rebuild:
//   drain     every shard restarts from its WAL (non-durable rounds are
//             shed exactly as a crash would shed them), so live state
//             equals durable state;
//   transfer  each source shard's moved events are handed to their new
//             owner as a MIGRATE WAL frame — consumed capacity plus the
//             source learner's observation rows — stamped with the
//             epoch the migration creates;
//   flip      the new ShardRouter generation is installed and the
//             rebalance epoch increments (frames written from here on
//             carry it);
//   rebuild   every shard restarts again under the new epoch, which is
//             when MIGRATE frames take effect.
// A crash at any step before the flip leaves only superseded MIGRATE
// frames behind (last writer per event wins; frames of an epoch that
// never flipped are inert), so the retry is safe. WAL frames are
// stamped with their write epoch, and replay maps event ids through the
// ownership history: a frame's slice contributes an event to a shard
// only if the shard owned it at the write epoch, still owns it now, and
// the frame does not pre-date the event's latest migration (those
// rounds are already folded into the MIGRATE frame's consumed count).
// The topology history itself is process-lifetime state (shards crash
// and recover individually; a durable topology manifest is future
// work).
//
// Learner delta-merge. Ridge state is additive (Y += x xᵀ, b += r x),
// so shards periodically absorb each other's observation deltas via
// rank-1 incremental updates (the PR 4 Cholesky path), with an exact
// refactorization restart as the repair when a merged batch drifts the
// factor (RidgeState::Refactorize). Merged state is soft: recovery
// rebuilds a shard from its own WAL only, and the next merge re-syncs.
//
// Thread safety: in-process ServeUser/SubmitFeedback are safe from any
// number of threads (inner services serialize their own pipelines; WAL
// appends are per-shard mutexed; no lock is ever held across a peer
// shard's lock). KillShard/RecoverShard/MergeLearners/Rebalance assume
// the caller stops traffic to the affected shards first (the chaos
// harness and tests do). Single-threaded runs are bit-reproducible per
// seed.
#ifndef FASEA_EBSN_SHARDED_SERVICE_H_
#define FASEA_EBSN_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ebsn/arrangement_service.h"
#include "ebsn/shard_router.h"
#include "ebsn/shard_wal.h"
#include "net/client.h"
#include "net/network.h"
#include "net/server.h"

namespace fasea {

struct ShardedOptions {
  int num_shards = 1;
  ShardRoutingMode routing = ShardRoutingMode::kRoundRobin;
  PolicyKind kind = PolicyKind::kUcb;
  PolicyParams params;
  std::uint64_t seed = 0;
  /// Shards beyond the home allowed to contribute to one round
  /// (-1 = all others). Spillover only happens when the home partition
  /// cannot fill the user's capacity.
  int max_participant_shards = -1;
  /// Absorb peer observation deltas every this many completed rounds
  /// (0 disables the automatic cadence; MergeLearners() always works).
  std::int64_t merge_every = 0;
};

/// Tuning for the message-passing path (ConfigureTransport).
struct ShardTransportOptions {
  /// Reservation/serve-stage lease, in network ticks. Past it the stage
  /// is re-queried against the coordinator's decision index and, if
  /// still undecided, force-aborted (presumed abort).
  std::int64_t lease_ticks = 64;
  /// Client call budget (see net/client.h): per-attempt and overall
  /// timeouts in network ticks, plus the retry policy (backoff in
  /// ticks).
  ShardClientOptions client;
  /// Per-shard server replay cache (request-id dedup).
  ShardServerOptions server;
};

/// The serve-side ticket: feedback must quote `txn`.
struct ShardedServeResult {
  std::uint64_t txn = 0;
  int home_shard = 0;
  Arrangement arrangement;  // Global event ids, proposal order.
};

struct ShardedFeedbackResult {
  std::uint64_t txn = 0;
  int home_shard = 0;
  std::int64_t home_round = 0;  // Coordinator's local round id.
  /// True when the DECISION frame reached the coordinator's WAL.
  bool durable = false;
  int participant_shards = 0;  // Remote portions in this round.
};

/// What recovering one shard did; printable for operators.
struct ShardRecoveryReport {
  int shard = 0;
  std::int64_t segments_scanned = 0;
  std::int64_t frames_scanned = 0;
  std::int64_t bytes_truncated = 0;
  std::int64_t duplicate_frames_skipped = 0;
  std::int64_t decisions_indexed = 0;
  std::int64_t portions_applied = 0;
  std::int64_t reservations_in_doubt = 0;
  std::int64_t resolved_committed = 0;
  std::int64_t resolved_aborted = 0;
  std::int64_t interrupted_completed = 0;
  std::int64_t interrupted_aborted = 0;
  std::int64_t migrated_events_applied = 0;
  std::int64_t migration_filtered_frames = 0;
  std::int64_t rounds_served = 0;  // Inner counter after replay.

  std::string ToString() const;
};

/// What one completed rebalance moved; printable for operators. The
/// chaos harness checks capacity conservation against it: every event's
/// remaining capacity after the drain must reappear unchanged on its
/// (possibly new) owner after the flip.
struct RebalanceReport {
  int old_shards = 0;
  int new_shards = 0;
  std::uint32_t epoch = 0;         // The epoch the flip installed.
  std::int64_t events_moved = 0;
  std::vector<EventId> moved_events;  // Global ids, ascending.
  /// remaining_after_drain[g]: event g's remaining capacity once every
  /// shard was restarted from its WAL, indexed by global event id.
  std::vector<std::int64_t> remaining_after_drain;

  std::string ToString() const;
};

/// Aggregated cross-shard protocol counters (see DESIGN.md §8).
struct ShardedStats {
  std::int64_t rounds_completed = 0;
  std::int64_t cross_shard_rounds = 0;
  std::int64_t reservations_made = 0;
  std::int64_t reservation_refusals = 0;
  std::int64_t spillover_stages_skipped = 0;
  std::int64_t nondurable_rounds = 0;
  std::int64_t merges = 0;
  std::int64_t resolved_committed = 0;
  std::int64_t resolved_aborted = 0;
  // Transport-path counters (zero on the in-process path).
  std::int64_t leases_expired = 0;
  std::int64_t force_aborted = 0;
  std::int64_t redelivered_portions = 0;
  // Rebalance counters.
  std::int64_t rebalances = 0;
  std::int64_t rebalances_aborted = 0;
  std::int64_t events_moved = 0;
};

class ShardedArrangementService {
 public:
  /// The gateway's node id on the simulated network (shards are nodes
  /// 0..N-1, so the gateway sits outside that range).
  static constexpr int kGatewayNode = -1;

  /// `instance` must outlive the service.
  ShardedArrangementService(const ProblemInstance* instance,
                            ShardedOptions options);
  ~ShardedArrangementService();

  /// Attaches one WAL per shard under `<base_dir>/shard-NNN/`
  /// (ShardWalDirName). `env` and `base_dir` are retained for breaker
  /// reopen probes and RecoverShard. Replaces any prior writers (the
  /// chaos harness re-arms fresh writers per cycle).
  Status AttachWals(Env* env, const std::string& base_dir,
                    const WalOptions& wal_options = {},
                    const DurabilityPolicy& durability = {});

  /// Attaches one decision log per live shard under
  /// `<base_dir>/shard-NNN-decisions/` (DecisionLogDirName over
  /// ShardWalDirName). Each shard's inner service then records its own
  /// portion proposals — coordinator and participants alike — stamped
  /// with the coordinator's txn and trace ids, so the per-shard logs of
  /// one transaction join on either id. `header` should describe the
  /// global deployment (event count, policy recipe); it is written
  /// verbatim to every shard's log.
  Status AttachDecisionLogs(Env* env, const std::string& base_dir,
                            const DecisionLogHeader& header,
                            const WalOptions& wal_options = {});

  /// Syncs and closes every live shard's decision log (end-of-run flush
  /// so readers see the full record stream). First failure wins; closing
  /// with no logs attached is a no-op.
  Status CloseDecisionLogs();

  // --- Transport --------------------------------------------------------

  /// Puts every protocol step behind `net` (which must outlive the
  /// service): the service becomes gateway node kGatewayNode, every live
  /// shard gets a ShardServer on node id == shard index, and subsequent
  /// ServeUser/SubmitFeedback calls travel as envelopes with deadlines,
  /// retries, request-id dedup, and leases. Call once, quiesced.
  Status ConfigureTransport(SimulatedNetwork* net,
                            const ShardTransportOptions& options = {});
  bool transport_enabled() const { return net_ != nullptr; }

  /// Drives the transport-side background work: delivers due messages,
  /// redelivers parked committed portions, and sweeps expired leases
  /// (re-query against the coordinator's decision index; force-abort
  /// what was never committed). Call between arrivals and after heals;
  /// a no-op without a transport.
  Status PumpTransport();

  /// Committed portions still awaiting redelivery (zero once the
  /// network is healed and pumped — the harness's stuck-transaction
  /// check).
  std::int64_t UndeliveredPortions() const;

  /// Transport telemetry (zeros without ConfigureTransport): the
  /// gateway client's retries/timeouts, and replay-cache suppressions
  /// summed over the currently live shard servers.
  std::int64_t TransportRetries() const;
  std::int64_t TransportTimeouts() const;
  std::int64_t TransportDupSuppressed() const;

  // --- Rebalancing ------------------------------------------------------

  /// Grows the topology to `new_num_shards` (shrinking is not
  /// supported), migrating moved events drain → transfer → flip →
  /// rebuild (see the file comment). Requires quiescence: no pending or
  /// interrupted transactions, no open reservations, every shard alive
  /// with a WAL attached. On failure (including an injected crash) the
  /// topology is unchanged and the same call may be retried; aborted
  /// attempts leave only superseded MIGRATE frames behind.
  StatusOr<RebalanceReport> Rebalance(int new_num_shards);

  /// The current ownership generation (0 until the first rebalance).
  std::uint32_t rebalance_epoch() const { return rebalance_epoch_; }

  /// Test/chaos hook: invoked at each rebalance step boundary —
  /// 0 = after drain, 1 = mid-transfer (before the first MIGRATE frame),
  /// 2 = after transfer, before the flip. Returning true aborts the
  /// rebalance there, exactly as a crash would.
  void set_rebalance_crash_hook(std::function<bool(int step)> hook) {
    rebalance_crash_hook_ = std::move(hook);
  }

  // --- Serving ----------------------------------------------------------

  /// Serves the next arriving user from the full event set (`contexts`
  /// is the global |V| × d matrix). Retryable failures
  /// (kFailedPrecondition on a busy home pipeline, kResourceExhausted)
  /// leave nothing reserved.
  StatusOr<ShardedServeResult> ServeUser(std::int64_t user_id,
                                         std::int64_t user_capacity,
                                         const ContextMatrix& contexts);

  /// Commits (or retryably fails) the round `txn`. On kUnavailable
  /// nothing has been applied and the same call may be retried.
  Status SubmitFeedback(std::uint64_t txn, const Feedback& feedback,
                        ShardedFeedbackResult* result = nullptr);

  /// Chaos hook: "crashes" shard `shard` — its inner service, WAL
  /// writer, breaker, decision index, observation buffer, and (under a
  /// transport) its server node are destroyed. Pending transactions it
  /// participated in are aborted on the surviving shards; transactions
  /// it *coordinated* are parked for resolution by RecoverShard.
  /// Callers must stop traffic first.
  Status KillShard(int shard);

  /// Rebuilds a killed shard from its WAL alone, resolves every
  /// in-doubt reservation (presumed-abort against the coordinators'
  /// decision indexes), and completes or aborts interrupted
  /// transactions this shard coordinated. Leaves the shard without a
  /// WAL writer; call AttachWals (or AttachShardWal) to resume
  /// durability. Under a transport, the shard's server node comes back
  /// with it.
  StatusOr<ShardRecoveryReport> RecoverShard(int shard);

  /// Re-attaches a fresh writer for one shard (post-recovery re-arm).
  Status AttachShardWal(int shard);

  /// Absorbs every peer shard's new observations into every live
  /// shard's learner (rank-1 updates + exact refactorization repair).
  /// Requires external quiescence.
  Status MergeLearners();

  // --- Introspection ----------------------------------------------------

  const ShardRouter& router() const { return *routers_.back(); }
  int num_shards() const { return options_.num_shards; }
  std::int64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }

  /// The inner service of a shard; nullptr while killed.
  const ArrangementService* shard_service(int shard) const;
  /// The shard's append-path breaker; nullptr when absent or killed.
  const CircuitBreaker* shard_breaker(int shard) const;
  bool shard_alive(int shard) const;

  /// Snapshot of one shard's decision index (coordinated rounds, global
  /// event ids, keyed by txn). The chaos harness unions these across
  /// shards for the shadow-replay invariant.
  std::map<std::uint64_t, InteractionRecord> Decisions(int shard) const;

  /// Reservations currently open (reserved, neither committed nor
  /// aborted) across live shards — the in-memory mirror of the WAL's
  /// in-doubt set. Zero whenever no round is mid-flight; recovery must
  /// always drive the recovered shard's share to zero.
  std::int64_t OpenReservations() const;

  ShardedStats Stats() const;

  /// Aggregated health: worst state across live shards (a killed shard
  /// counts as lame-duck until recovered).
  HealthState AggregateHealth() const;
  HealthSnapshot ShardHealth(int shard) const;

  /// Test/chaos hook: invoked after a durable DECISION append, before
  /// any portion is applied. Returning true makes SubmitFeedback fail
  /// with kUnavailable, leaving the transaction interrupted exactly as
  /// a coordinator crash between the two phases would.
  void set_crash_after_decision_hook(
      std::function<bool(std::uint64_t txn)> hook) {
    crash_after_decision_ = std::move(hook);
  }

 private:
  struct Portion {
    int shard = 0;
    Arrangement local_events;  // Inner (sub-instance) ids.
    std::size_t start = 0;     // Offset into the global arrangement.
    /// The participant's inner round id at serve time — lets the
    /// interrupted-transaction resolver tell this txn's still-pending
    /// inner round apart from unrelated later rounds.
    std::int64_t local_round = 0;
    /// The capacity the inner service was asked to fill at this stage
    /// (the user's capacity minus everything chosen upstream). PORTION
    /// frames must carry it so replay reproduces the inner log
    /// bit-identically.
    std::int64_t local_capacity = 0;
  };
  struct PendingTxn {
    int home = 0;
    std::uint64_t trace_id = 0;  // Mix64(txn), stamped everywhere.
    std::int64_t user_id = 0;
    std::int64_t user_capacity = 0;
    std::int64_t coordinator_round = 0;
    Arrangement arrangement;  // Global ids.
    std::vector<std::vector<double>> context_rows;
    std::vector<Portion> portions;  // [0] is the home portion.
    bool busy = false;
  };
  struct Observation {
    std::vector<double> context;
    double reward = 0.0;
  };
  /// One inner round opened over the transport (home serve stage or
  /// participant reservation), awaiting its commit or abort message.
  struct StageEntry {
    std::int64_t local_round = 0;
    std::int64_t lease_expiry = 0;
    int coordinator = 0;  // Where the decision for this txn lives.
  };
  struct Shard {
    int index = 0;
    std::unique_ptr<ArrangementService> service;

    // Durability (owned here, not by the inner service).
    mutable std::mutex wal_mu;
    std::unique_ptr<WalWriter> wal;
    std::unique_ptr<CircuitBreaker> breaker;
    bool degraded = false;
    std::int64_t append_failures = 0;
    std::int64_t wal_reopens = 0;
    std::int64_t nondurable_rounds = 0;

    // Two-phase protocol state.
    mutable std::mutex ledger_mu;
    std::map<std::uint64_t, InteractionRecord> decisions;
    /// Whether each decision's frame reached the WAL (portion frames of
    /// a replayed commit message must not outlive a non-durable
    /// decision).
    std::map<std::uint64_t, bool> decision_durable;
    std::map<std::uint64_t, ReservationRecord> open_reservations;
    /// Transport-path stages keyed by txn (see StageEntry).
    std::map<std::uint64_t, StageEntry> stage_rounds;

    // Delta-merge buffers.
    mutable std::mutex obs_mu;
    std::vector<Observation> obs;
  };
  /// A committed portion whose delivery failed; PumpTransport retries.
  struct UndeliveredPortion {
    int shard = 0;
    std::uint64_t txn = 0;
    std::uint64_t trace_id = 0;
    std::string body;
  };

  enum class AppendOutcome { kDurable, kNonDurable };

  /// The ownership generation a frame of epoch `e` was written under
  /// (clamped to the newest installed generation).
  const ShardRouter& RouterAt(std::uint32_t epoch) const;

  Matrix GatherContexts(int shard, const ContextMatrix& contexts) const;
  Arrangement MapToGlobal(int shard, const Arrangement& local) const;
  std::vector<std::uint8_t> SpilloverMask(int shard,
                                          const Arrangement& chosen) const;
  /// Breaker-mediated append (DECISION/PORTION path): mirrors the
  /// unsharded DurabilityPolicy semantics.
  StatusOr<AppendOutcome> AppendFrame(Shard& shard, std::string_view frame);
  /// Strict append (RESERVE/MIGRATE path): durable or refused, never
  /// degraded.
  Status AppendFrameStrict(Shard& shard, std::string_view frame);
  /// Reopen-if-broken + append; caller holds shard.wal_mu.
  Status AppendLocked(Shard& shard, std::string_view frame);

  /// The slice of a (global-id) decision record owned by `shard`,
  /// re-labelled with local ids and round `t` — the live path (current
  /// epoch only).
  InteractionRecord SliceForShard(int shard, const InteractionRecord& record,
                                  std::int64_t t) const;
  /// Replay-time slice: keeps an event only if `shard` owned it at
  /// `frame_epoch`, still owns it now, and the frame does not pre-date
  /// the event's latest migration (`acquired`: event -> epoch of its
  /// winning MIGRATE frame). Sets *migration_filtered when the epoch
  /// rules dropped anything.
  InteractionRecord SliceForReplay(
      int shard, const InteractionRecord& record, std::int64_t t,
      std::uint32_t frame_epoch,
      const std::map<EventId, std::uint32_t>& acquired,
      bool* migration_filtered) const;
  /// Rolls back every inner round a failed serve opened and drops the
  /// in-memory reservations (their durable frames resolve to presumed
  /// abort).
  void AbortOpenPortions(const PendingTxn& pending, std::uint64_t txn);
  /// The coordinator's decision for `txn`: over the transport when its
  /// node answers, else its live in-memory index, else a read-only scan
  /// of its WAL.
  StatusOr<bool> LookupDecision(int coordinator, std::uint64_t txn,
                                InteractionRecord* out);
  void AppendObservations(Shard& shard, const InteractionRecord& record);
  void MaybeAutoMerge();
  Status ResolveInterrupted(int shard, ShardRecoveryReport* report);

  // Transport plumbing.
  void RegisterShardServer(int shard);
  StatusOr<ShardedServeResult> ServeUserTransport(
      std::int64_t user_id, std::int64_t user_capacity,
      const ContextMatrix& contexts);
  Status SubmitFeedbackTransport(std::uint64_t txn, const Feedback& feedback,
                                 ShardedFeedbackResult* result);
  StatusOr<std::string> HandleServe(int shard, const Envelope& request);
  StatusOr<std::string> HandleReserve(int shard, const Envelope& request);
  StatusOr<std::string> HandleCommit(int shard, const Envelope& request);
  StatusOr<std::string> HandleAbort(int shard, const Envelope& request);
  StatusOr<std::string> HandleQuery(int shard, const Envelope& request);
  StatusOr<std::string> HandleHealth(int shard, const Envelope& request);
  StatusOr<std::string> HandleMigrate(int shard, const Envelope& request);
  /// One drain/rebuild restart of a live shard (kill + recover +
  /// re-attach its WAL); requires quiescence.
  Status RestartShard(int shard);

  const ProblemInstance* instance_;
  ShardedOptions options_;
  /// Ownership history, one router per rebalance epoch; back() is
  /// current. Grows at each flip; inner services of epoch e hold
  /// pointers into routers_[e]'s sub-instances, so entries are never
  /// dropped.
  std::vector<std::unique_ptr<ShardRouter>> routers_;
  std::uint32_t rebalance_epoch_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  Env* env_ = nullptr;          // Set by AttachWals.
  std::string wal_base_dir_;
  WalOptions wal_options_;
  DurabilityPolicy durability_;

  std::atomic<std::uint64_t> next_txn_{1};
  std::atomic<std::int64_t> rounds_completed_{0};

  mutable std::mutex pending_mu_;
  std::map<std::uint64_t, PendingTxn> pending_;
  /// Transactions whose coordinator died mid-commit; resolved by
  /// RecoverShard(coordinator).
  std::map<std::uint64_t, PendingTxn> interrupted_;
  /// Transactions force-aborted on lease expiry: a late COMMIT for one
  /// of these must be refused, not applied.
  std::set<std::uint64_t> aborted_txns_;

  mutable std::mutex stats_mu_;
  ShardedStats stats_;
  /// cursors_[i][j]: observations of shard j already absorbed by i.
  std::vector<std::vector<std::size_t>> cursors_;
  std::mutex merge_mu_;

  // Transport state (null/empty without ConfigureTransport).
  SimulatedNetwork* net_ = nullptr;
  ShardTransportOptions topts_;
  std::unique_ptr<ShardClient> client_;
  std::vector<std::unique_ptr<ShardServer>> servers_;
  /// Serializes the transport path (gateway calls + pumps).
  std::mutex net_mu_;
  mutable std::mutex undelivered_mu_;
  std::deque<UndeliveredPortion> undelivered_;

  std::function<bool(std::uint64_t)> crash_after_decision_;
  std::function<bool(int)> rebalance_crash_hook_;

  // Telemetry (§8 catalog).
  Counter* cross_shard_rounds_metric_ =
      Metrics()->GetCounter("fasea.shard.cross_shard_rounds");
  Counter* reservations_metric_ =
      Metrics()->GetCounter("fasea.shard.reservations");
  Counter* reservation_refusals_metric_ =
      Metrics()->GetCounter("fasea.shard.reservation_refusals");
  Counter* resolved_committed_metric_ =
      Metrics()->GetCounter("fasea.shard.resolved_committed");
  Counter* resolved_aborted_metric_ =
      Metrics()->GetCounter("fasea.shard.resolved_aborted");
  Counter* recoveries_metric_ =
      Metrics()->GetCounter("fasea.shard.recoveries");
  Counter* merges_metric_ = Metrics()->GetCounter("fasea.shard.merges");
  Counter* nondurable_metric_ =
      Metrics()->GetCounter("fasea.shard.nondurable_rounds");
  Counter* leases_expired_metric_ =
      Metrics()->GetCounter("fasea.shard.leases_expired");
  Counter* force_aborted_metric_ =
      Metrics()->GetCounter("fasea.shard.force_aborted");
  Counter* redelivered_metric_ =
      Metrics()->GetCounter("fasea.shard.redelivered_portions");
  Counter* rebalance_events_moved_metric_ =
      Metrics()->GetCounter("fasea.rebalance.events_moved");
  Counter* rebalance_migrations_metric_ =
      Metrics()->GetCounter("fasea.rebalance.migrations");
  Counter* rebalance_aborted_metric_ =
      Metrics()->GetCounter("fasea.rebalance.aborted");
  Gauge* open_reservations_gauge_ =
      Metrics()->GetGauge("fasea.shard.open_reservations");
};

}  // namespace fasea

#endif  // FASEA_EBSN_SHARDED_SERVICE_H_
