// ShardedArrangementService: crash-safe sharded serving with a two-phase
// cross-shard arrangement protocol.
//
// Events are partitioned across N shards (ShardRouter, consistent
// hashing); each shard runs a WAL-less inner ArrangementService over its
// *sub-instance* — its own policy, capacities, and interaction log over
// the owned partition — so proposal scoring costs O(|V|/N · d²) per
// round instead of O(|V| · d²). Every durability decision lives in this
// layer: each shard has its own WAL segment directory
// (`<base>/shard-000/…`), its own circuit breaker, and an independent
// recovery path.
//
// Round protocol. An arriving user is routed to a home (coordinator)
// shard, which proposes from its own partition. If the home partition
// cannot fill the user's capacity, the coordinator *spills over* to
// the other shards in ring order; each contributing participant
// proposes from its partition under an availability mask that excludes
// events conflicting (via the global conflict graph — this is where
// cross-shard conflict edges are enforced) with everything already
// chosen. A participant's contribution is only accepted after a
// phase-1 RESERVE frame is durably in the participant's WAL — a
// participant that cannot harden the reservation refuses the stage and
// its tentative proposal is rolled back (AbortPendingRound).
//
// Feedback commits the round: the coordinator appends a DECISION frame
// (the full round, global event ids) to its own WAL — the transaction's
// commit point, breaker-mediated exactly like the unsharded service
// (append failure fails the round retryably with nothing applied; an
// open breaker acknowledges non-durably). Then every portion is applied
// to its shard's inner service, and participants append a PORTION frame
// closing their reservation — but only when the decision was durable,
// so a portion record can never outlive its decision.
//
// Crash recovery (per shard, independent). Replaying a shard's WAL
// rebuilds its inner service from DECISION slices and PORTION records
// (duplicate frames collapsed by round id, adjacent or not), indexes
// its decisions, and collects reservations with no closing portion —
// the *in-doubt* set. Resolution is presumed-abort: each in-doubt
// reservation re-queries the coordinator shard's decision index (live
// in-memory, or just-recovered); a decision containing the reserved
// events commits the portion (applied exactly once — an applied-but-
// unclosed portion cannot survive into the recovered state, because
// recovered state comes only from the WAL), anything else aborts it.
// No in-doubt reservation survives recovery. Capacities can never go
// negative: every consumption goes through the owner's inner service,
// which validates before applying.
//
// Learner delta-merge. Ridge state is additive (Y += x xᵀ, b += r x),
// so shards periodically absorb each other's observation deltas via
// rank-1 incremental updates (the PR 4 Cholesky path), with an exact
// refactorization restart as the repair when a merged batch drifts the
// factor (RidgeState::Refactorize). Merged state is soft: recovery
// rebuilds a shard from its own WAL only, and the next merge re-syncs.
//
// Thread safety: ServeUser/SubmitFeedback are safe from any number of
// threads (inner services serialize their own pipelines; WAL appends
// are per-shard mutexed; no lock is ever held across a peer shard's
// lock). KillShard/RecoverShard/MergeLearners assume the caller stops
// traffic to the affected shards first (the chaos harness and tests
// do). Single-threaded runs are bit-reproducible per seed.
#ifndef FASEA_EBSN_SHARDED_SERVICE_H_
#define FASEA_EBSN_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ebsn/arrangement_service.h"
#include "ebsn/shard_router.h"
#include "ebsn/shard_wal.h"

namespace fasea {

struct ShardedOptions {
  int num_shards = 1;
  ShardRoutingMode routing = ShardRoutingMode::kRoundRobin;
  PolicyKind kind = PolicyKind::kUcb;
  PolicyParams params;
  std::uint64_t seed = 0;
  /// Shards beyond the home allowed to contribute to one round
  /// (-1 = all others). Spillover only happens when the home partition
  /// cannot fill the user's capacity.
  int max_participant_shards = -1;
  /// Absorb peer observation deltas every this many completed rounds
  /// (0 disables the automatic cadence; MergeLearners() always works).
  std::int64_t merge_every = 0;
};

/// The serve-side ticket: feedback must quote `txn`.
struct ShardedServeResult {
  std::uint64_t txn = 0;
  int home_shard = 0;
  Arrangement arrangement;  // Global event ids, proposal order.
};

struct ShardedFeedbackResult {
  std::uint64_t txn = 0;
  int home_shard = 0;
  std::int64_t home_round = 0;  // Coordinator's local round id.
  /// True when the DECISION frame reached the coordinator's WAL.
  bool durable = false;
  int participant_shards = 0;  // Remote portions in this round.
};

/// What recovering one shard did; printable for operators.
struct ShardRecoveryReport {
  int shard = 0;
  std::int64_t segments_scanned = 0;
  std::int64_t frames_scanned = 0;
  std::int64_t bytes_truncated = 0;
  std::int64_t duplicate_frames_skipped = 0;
  std::int64_t decisions_indexed = 0;
  std::int64_t portions_applied = 0;
  std::int64_t reservations_in_doubt = 0;
  std::int64_t resolved_committed = 0;
  std::int64_t resolved_aborted = 0;
  std::int64_t interrupted_completed = 0;
  std::int64_t interrupted_aborted = 0;
  std::int64_t rounds_served = 0;  // Inner counter after replay.

  std::string ToString() const;
};

/// Aggregated cross-shard protocol counters (see DESIGN.md §8).
struct ShardedStats {
  std::int64_t rounds_completed = 0;
  std::int64_t cross_shard_rounds = 0;
  std::int64_t reservations_made = 0;
  std::int64_t reservation_refusals = 0;
  std::int64_t spillover_stages_skipped = 0;
  std::int64_t nondurable_rounds = 0;
  std::int64_t merges = 0;
  std::int64_t resolved_committed = 0;
  std::int64_t resolved_aborted = 0;
};

class ShardedArrangementService {
 public:
  /// `instance` must outlive the service.
  ShardedArrangementService(const ProblemInstance* instance,
                            ShardedOptions options);
  ~ShardedArrangementService();

  /// Attaches one WAL per shard under `<base_dir>/shard-NNN/`
  /// (ShardWalDirName). `env` and `base_dir` are retained for breaker
  /// reopen probes and RecoverShard. Replaces any prior writers (the
  /// chaos harness re-arms fresh writers per cycle).
  Status AttachWals(Env* env, const std::string& base_dir,
                    const WalOptions& wal_options = {},
                    const DurabilityPolicy& durability = {});

  /// Attaches one decision log per live shard under
  /// `<base_dir>/shard-NNN-decisions/` (DecisionLogDirName over
  /// ShardWalDirName). Each shard's inner service then records its own
  /// portion proposals — coordinator and participants alike — stamped
  /// with the coordinator's txn and trace ids, so the per-shard logs of
  /// one transaction join on either id. `header` should describe the
  /// global deployment (event count, policy recipe); it is written
  /// verbatim to every shard's log.
  Status AttachDecisionLogs(Env* env, const std::string& base_dir,
                            const DecisionLogHeader& header,
                            const WalOptions& wal_options = {});

  /// Syncs and closes every live shard's decision log (end-of-run flush
  /// so readers see the full record stream). First failure wins; closing
  /// with no logs attached is a no-op.
  Status CloseDecisionLogs();

  /// Serves the next arriving user from the full event set (`contexts`
  /// is the global |V| × d matrix). Retryable failures
  /// (kFailedPrecondition on a busy home pipeline, kResourceExhausted)
  /// leave nothing reserved.
  StatusOr<ShardedServeResult> ServeUser(std::int64_t user_id,
                                         std::int64_t user_capacity,
                                         const ContextMatrix& contexts);

  /// Commits (or retryably fails) the round `txn`. On kUnavailable
  /// nothing has been applied and the same call may be retried.
  Status SubmitFeedback(std::uint64_t txn, const Feedback& feedback,
                        ShardedFeedbackResult* result = nullptr);

  /// Chaos hook: "crashes" shard `shard` — its inner service, WAL
  /// writer, breaker, decision index, and observation buffer are
  /// destroyed. Pending transactions it participated in are aborted on
  /// the surviving shards; transactions it *coordinated* are parked for
  /// resolution by RecoverShard. Callers must stop traffic first.
  Status KillShard(int shard);

  /// Rebuilds a killed shard from its WAL alone, resolves every
  /// in-doubt reservation (presumed-abort against the coordinators'
  /// decision indexes), and completes or aborts interrupted
  /// transactions this shard coordinated. Leaves the shard without a
  /// WAL writer; call AttachWals (or AttachShardWal) to resume
  /// durability.
  StatusOr<ShardRecoveryReport> RecoverShard(int shard);

  /// Re-attaches a fresh writer for one shard (post-recovery re-arm).
  Status AttachShardWal(int shard);

  /// Absorbs every peer shard's new observations into every live
  /// shard's learner (rank-1 updates + exact refactorization repair).
  /// Requires external quiescence.
  Status MergeLearners();

  // --- Introspection ----------------------------------------------------

  const ShardRouter& router() const { return router_; }
  int num_shards() const { return options_.num_shards; }
  std::int64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }

  /// The inner service of a shard; nullptr while killed.
  const ArrangementService* shard_service(int shard) const;
  /// The shard's append-path breaker; nullptr when absent or killed.
  const CircuitBreaker* shard_breaker(int shard) const;
  bool shard_alive(int shard) const;

  /// Snapshot of one shard's decision index (coordinated rounds, global
  /// event ids, keyed by txn). The chaos harness unions these across
  /// shards for the shadow-replay invariant.
  std::map<std::uint64_t, InteractionRecord> Decisions(int shard) const;

  /// Reservations currently open (reserved, neither committed nor
  /// aborted) across live shards — the in-memory mirror of the WAL's
  /// in-doubt set. Zero whenever no round is mid-flight; recovery must
  /// always drive the recovered shard's share to zero.
  std::int64_t OpenReservations() const;

  ShardedStats Stats() const;

  /// Aggregated health: worst state across live shards (a killed shard
  /// counts as lame-duck until recovered).
  HealthState AggregateHealth() const;
  HealthSnapshot ShardHealth(int shard) const;

  /// Test/chaos hook: invoked after a durable DECISION append, before
  /// any portion is applied. Returning true makes SubmitFeedback fail
  /// with kUnavailable, leaving the transaction interrupted exactly as
  /// a coordinator crash between the two phases would.
  void set_crash_after_decision_hook(
      std::function<bool(std::uint64_t txn)> hook) {
    crash_after_decision_ = std::move(hook);
  }

 private:
  struct Portion {
    int shard = 0;
    Arrangement local_events;  // Inner (sub-instance) ids.
    std::size_t start = 0;     // Offset into the global arrangement.
    /// The participant's inner round id at serve time — lets the
    /// interrupted-transaction resolver tell this txn's still-pending
    /// inner round apart from unrelated later rounds.
    std::int64_t local_round = 0;
    /// The capacity the inner service was asked to fill at this stage
    /// (the user's capacity minus everything chosen upstream). PORTION
    /// frames must carry it so replay reproduces the inner log
    /// bit-identically.
    std::int64_t local_capacity = 0;
  };
  struct PendingTxn {
    int home = 0;
    std::uint64_t trace_id = 0;  // Mix64(txn), stamped everywhere.
    std::int64_t user_id = 0;
    std::int64_t user_capacity = 0;
    std::int64_t coordinator_round = 0;
    Arrangement arrangement;  // Global ids.
    std::vector<std::vector<double>> context_rows;
    std::vector<Portion> portions;  // [0] is the home portion.
    bool busy = false;
  };
  struct Observation {
    std::vector<double> context;
    double reward = 0.0;
  };
  struct Shard {
    int index = 0;
    std::unique_ptr<ArrangementService> service;

    // Durability (owned here, not by the inner service).
    mutable std::mutex wal_mu;
    std::unique_ptr<WalWriter> wal;
    std::unique_ptr<CircuitBreaker> breaker;
    bool degraded = false;
    std::int64_t append_failures = 0;
    std::int64_t wal_reopens = 0;
    std::int64_t nondurable_rounds = 0;

    // Two-phase protocol state.
    mutable std::mutex ledger_mu;
    std::map<std::uint64_t, InteractionRecord> decisions;
    std::map<std::uint64_t, ReservationRecord> open_reservations;

    // Delta-merge buffers.
    mutable std::mutex obs_mu;
    std::vector<Observation> obs;
  };

  enum class AppendOutcome { kDurable, kNonDurable };

  Matrix GatherContexts(int shard, const ContextMatrix& contexts) const;
  Arrangement MapToGlobal(int shard, const Arrangement& local) const;
  std::vector<std::uint8_t> SpilloverMask(int shard,
                                          const Arrangement& chosen) const;
  /// Breaker-mediated append (DECISION/PORTION path): mirrors the
  /// unsharded DurabilityPolicy semantics.
  StatusOr<AppendOutcome> AppendFrame(Shard& shard, std::string_view frame);
  /// Strict append (RESERVE path): durable or refused, never degraded.
  Status AppendFrameStrict(Shard& shard, std::string_view frame);
  /// Reopen-if-broken + append; caller holds shard.wal_mu.
  Status AppendLocked(Shard& shard, std::string_view frame);

  /// The slice of a (global-id) decision record owned by `shard`,
  /// re-labelled with local ids and round `t`.
  InteractionRecord SliceForShard(int shard, const InteractionRecord& record,
                                  std::int64_t t) const;
  /// Rolls back every inner round a failed serve opened and drops the
  /// in-memory reservations (their durable frames resolve to presumed
  /// abort).
  void AbortOpenPortions(const PendingTxn& pending, std::uint64_t txn);
  /// The coordinator's decision for `txn`: its live in-memory index, or
  /// — when the coordinator is down — a read-only scan of its WAL.
  StatusOr<bool> LookupDecision(int coordinator, std::uint64_t txn,
                                InteractionRecord* out) const;
  void AppendObservations(Shard& shard, const InteractionRecord& record);
  void MaybeAutoMerge();
  Status ResolveInterrupted(int shard, ShardRecoveryReport* report);

  const ProblemInstance* instance_;
  ShardedOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Env* env_ = nullptr;          // Set by AttachWals.
  std::string wal_base_dir_;
  WalOptions wal_options_;
  DurabilityPolicy durability_;

  std::atomic<std::uint64_t> next_txn_{1};
  std::atomic<std::int64_t> rounds_completed_{0};

  mutable std::mutex pending_mu_;
  std::map<std::uint64_t, PendingTxn> pending_;
  /// Transactions whose coordinator died mid-commit; resolved by
  /// RecoverShard(coordinator).
  std::map<std::uint64_t, PendingTxn> interrupted_;

  mutable std::mutex stats_mu_;
  ShardedStats stats_;
  /// cursors_[i][j]: observations of shard j already absorbed by i.
  std::vector<std::vector<std::size_t>> cursors_;
  std::mutex merge_mu_;

  std::function<bool(std::uint64_t)> crash_after_decision_;

  // Telemetry (§8 catalog).
  Counter* cross_shard_rounds_metric_ =
      Metrics()->GetCounter("fasea.shard.cross_shard_rounds");
  Counter* reservations_metric_ =
      Metrics()->GetCounter("fasea.shard.reservations");
  Counter* reservation_refusals_metric_ =
      Metrics()->GetCounter("fasea.shard.reservation_refusals");
  Counter* resolved_committed_metric_ =
      Metrics()->GetCounter("fasea.shard.resolved_committed");
  Counter* resolved_aborted_metric_ =
      Metrics()->GetCounter("fasea.shard.resolved_aborted");
  Counter* recoveries_metric_ =
      Metrics()->GetCounter("fasea.shard.recoveries");
  Counter* merges_metric_ = Metrics()->GetCounter("fasea.shard.merges");
  Counter* nondurable_metric_ =
      Metrics()->GetCounter("fasea.shard.nondurable_rounds");
  Gauge* open_reservations_gauge_ =
      Metrics()->GetGauge("fasea.shard.open_reservations");
};

}  // namespace fasea

#endif  // FASEA_EBSN_SHARDED_SERVICE_H_
