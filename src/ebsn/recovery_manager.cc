#include "ebsn/recovery_manager.h"

#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"

namespace fasea {

namespace {

/// Scan + decode + boundary classification shared by full recovery and
/// the dry run. Fills every scan/boundary field of `report`; appends the
/// decoded records (classified: learn or restore-only) to `decoded` when
/// it is non-null.
struct ClassifiedRecord {
  InteractionRecord record;
  bool learn = false;
};

Status ScanAndClassify(Env* env, const std::string& wal_dir,
                       std::string_view checkpoint_blob,
                       CorruptFramePolicy policy, RecoveryReport* report,
                       std::vector<ClassifiedRecord>* decoded) {
  std::int64_t checkpoint_observations = 0;
  if (!checkpoint_blob.empty()) {
    auto checkpoint = ParseCheckpoint(checkpoint_blob);
    if (!checkpoint.ok()) return checkpoint.status();
    report->had_checkpoint = true;
    checkpoint_observations = checkpoint->num_observations;
    report->checkpoint_observations = checkpoint_observations;
  }

  auto scan = ScanWal(env, wal_dir, policy);
  if (!scan.ok()) return scan.status();
  report->segments_scanned = scan->segments_scanned;
  report->bytes_truncated = scan->bytes_truncated;
  report->corrupt_frames_skipped = scan->corrupt_frames_skipped;

  std::int64_t cumulative_observations = 0;
  std::int64_t last_t = 0;
  for (const std::string& payload : scan->payloads) {
    auto record = DecodeInteractionRecord(payload);
    if (!record.ok()) return record.status();
    if (record->t <= last_t) {
      // A retried append of a round already in the log: its fsync failed
      // after the bytes reached the disk, the acknowledgement was
      // withheld, and the retry wrote the round again (see the
      // report-field comment). Round ids are strictly increasing, so any
      // frame at or below the highest round seen is such a retry — and
      // retries need not land adjacent to the original: a retry storm
      // interleaved across users can separate the duplicate from its
      // first copy by several later rounds. Apply each round once.
      ++report->duplicate_frames_skipped;
      continue;
    }
    last_t = record->t;
    ++report->records_scanned;
    const auto observations =
        static_cast<std::int64_t>(record->arrangement.size());

    bool learn;
    if (report->had_checkpoint &&
        cumulative_observations + observations <= checkpoint_observations) {
      // Already inside the checkpoint: the policy knows this round;
      // capacities, log, and round counter still need it.
      learn = false;
      ++report->records_restored;
    } else if (report->had_checkpoint &&
               cumulative_observations < checkpoint_observations) {
      return DataLossError(StrFormat(
          "recovery: checkpoint horizon (%lld observations) falls inside "
          "round %lld — checkpoint and WAL disagree",
          static_cast<long long>(checkpoint_observations),
          static_cast<long long>(record->t)));
    } else {
      learn = true;
      ++report->records_replayed;
      report->observations_replayed += observations;
    }
    cumulative_observations += observations;
    report->rounds_served = record->t;
    if (decoded != nullptr) {
      decoded->push_back(
          ClassifiedRecord{std::move(record).value(), learn});
    }
  }

  if (report->had_checkpoint &&
      cumulative_observations < checkpoint_observations) {
    return DataLossError(StrFormat(
        "recovery: the WAL ends at %lld observations but the checkpoint "
        "was cut at %lld — the durable log does not cover the "
        "checkpoint's state",
        static_cast<long long>(cumulative_observations),
        static_cast<long long>(checkpoint_observations)));
  }
  return Status::Ok();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out;
  out += StrFormat("checkpoint:               %s\n",
                   had_checkpoint
                       ? StrFormat("present (%lld observations)",
                                   static_cast<long long>(
                                       checkpoint_observations))
                             .c_str()
                       : "none");
  out += StrFormat("segments scanned:         %lld\n",
                   static_cast<long long>(segments_scanned));
  out += StrFormat("records scanned:          %lld\n",
                   static_cast<long long>(records_scanned));
  out += StrFormat("bytes truncated (tail):   %lld\n",
                   static_cast<long long>(bytes_truncated));
  out += StrFormat("corrupt frames skipped:   %lld\n",
                   static_cast<long long>(corrupt_frames_skipped));
  out += StrFormat("duplicate frames skipped: %lld\n",
                   static_cast<long long>(duplicate_frames_skipped));
  out += StrFormat("records restored (state): %lld\n",
                   static_cast<long long>(records_restored));
  out += StrFormat("records replayed (learn): %lld\n",
                   static_cast<long long>(records_replayed));
  out += StrFormat("observations replayed:    %lld\n",
                   static_cast<long long>(observations_replayed));
  out += StrFormat("rounds served:            %lld\n",
                   static_cast<long long>(rounds_served));
  return out;
}

StatusOr<RecoveredService> RecoverArrangementService(
    const ProblemInstance* instance, Env* env, const std::string& wal_dir,
    std::string_view checkpoint_blob, const RecoveryOptions& options) {
  FASEA_CHECK(instance != nullptr);
  FASEA_CHECK(env != nullptr);

  RecoveredService result;
  std::vector<ClassifiedRecord> records;
  if (Status st =
          ScanAndClassify(env, wal_dir, checkpoint_blob,
                          options.corrupt_frames, &result.report, &records);
      !st.ok()) {
    return st;
  }

  if (!checkpoint_blob.empty()) {
    auto service = ArrangementService::FromCheckpoint(
        instance, checkpoint_blob, options.seed);
    if (!service.ok()) return service.status();
    result.service = std::move(service).value();
  } else {
    result.service = std::make_unique<ArrangementService>(
        instance, options.kind, options.params, options.seed);
  }

  for (const ClassifiedRecord& classified : records) {
    if (Status st = result.service->RestoreInteraction(classified.record,
                                                       classified.learn);
        !st.ok()) {
      return st;
    }
  }

  // Verify the rebuilt sufficient statistics against the checkpoint
  // header: the policy must have folded in exactly the checkpoint's
  // observations plus every replayed one.
  const auto* base =
      dynamic_cast<const LinearPolicyBase*>(&result.service->policy());
  if (base != nullptr) {
    const std::int64_t expected = result.report.had_checkpoint
                                      ? result.report.checkpoint_observations +
                                            result.report.observations_replayed
                                      : result.report.observations_replayed;
    if (base->ridge().num_observations() != expected) {
      return DataLossError(StrFormat(
          "recovery: policy holds %lld observations, expected %lld — "
          "checkpoint and WAL disagree",
          static_cast<long long>(base->ridge().num_observations()),
          static_cast<long long>(expected)));
    }
    if (!base->ridge().healthy()) {
      return DataLossError(
          "recovery: replayed learning state failed refactorization");
    }
  }
  result.report.rounds_served = result.service->rounds_served();

  // Publish what this recovery did — operators watch these after every
  // restart to confirm nothing was lost beyond the torn tail.
  MetricsRegistry* metrics = Metrics();
  metrics->GetCounter("fasea.recovery.runs")->Increment();
  metrics->GetCounter("fasea.recovery.records_restored")
      ->Add(result.report.records_restored);
  metrics->GetCounter("fasea.recovery.records_replayed")
      ->Add(result.report.records_replayed);
  metrics->GetCounter("fasea.recovery.torn_tail_bytes")
      ->Add(result.report.bytes_truncated);
  metrics->GetCounter("fasea.recovery.corrupt_frames_skipped")
      ->Add(result.report.corrupt_frames_skipped);
  metrics->GetCounter("fasea.recovery.duplicate_frames_skipped")
      ->Add(result.report.duplicate_frames_skipped);
  return result;
}

StatusOr<RecoveryReport> InspectWal(Env* env, const std::string& wal_dir,
                                    std::string_view checkpoint_blob,
                                    CorruptFramePolicy policy) {
  FASEA_CHECK(env != nullptr);
  RecoveryReport report;
  if (Status st = ScanAndClassify(env, wal_dir, checkpoint_blob, policy,
                                  &report, nullptr);
      !st.ok()) {
    return st;
  }
  return report;
}

}  // namespace fasea
