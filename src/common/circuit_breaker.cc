#include "common/circuit_breaker.h"

#include "common/macros.h"

namespace fasea {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options,
                               NowFn now)
    : options_(options),
      now_(options.clock != nullptr ? options.clock : now),
      state_gauge_(Metrics()->GetGauge(options.metric_prefix + ".state")),
      opens_metric_(Metrics()->GetCounter(options.metric_prefix + ".opens")),
      closes_metric_(
          Metrics()->GetCounter(options.metric_prefix + ".closes")),
      probes_metric_(
          Metrics()->GetCounter(options.metric_prefix + ".probes")) {
  FASEA_CHECK(options.failure_threshold >= 1);
  FASEA_CHECK(options.open_cooldown_ns >= 0);
  FASEA_CHECK(options.half_open_successes >= 1);
  FASEA_CHECK(options.half_open_max_probes >= 1);
  state_gauge_->Set(0.0);
}

std::string_view CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kHalfOpen:
      return "half-open";
    case State::kOpen:
      return "open";
  }
  return "unknown";
}

void CircuitBreaker::TransitionLocked(State next) {
  if (state_ == next) return;
  state_ = next;
  state_gauge_->Set(static_cast<double>(next));
  switch (next) {
    case State::kOpen:
      ++opens_;
      opens_metric_->Increment();
      open_until_ns_ = now_() + options_.open_cooldown_ns;
      break;
    case State::kClosed:
      ++closes_;
      closes_metric_->Increment();
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      half_open_successes_seen_ = 0;
      probes_in_flight_ = 0;
      break;
  }
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (now_() < open_until_ns_) return false;
    TransitionLocked(State::kHalfOpen);
  }
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ >= options_.half_open_max_probes) return false;
    ++probes_in_flight_;
    ++probes_;
    probes_metric_->Increment();
    return true;
  }
  return true;  // Closed.
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++half_open_successes_seen_ >= options_.half_open_successes) {
        TransitionLocked(State::kClosed);
      }
      break;
    case State::kOpen:
      // A straggler admitted before the trip; the cooldown still governs.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(State::kOpen);
      }
      break;
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      TransitionLocked(State::kOpen);
      break;
    case State::kOpen:
      break;
  }
}

}  // namespace fasea
