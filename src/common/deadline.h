// Deadline: a point on the monotonic clock after which a caller no
// longer wants the answer.
//
// The serving layer threads a Deadline through ServeUser/SubmitFeedback
// so a request that has already been abandoned is rejected with
// kDeadlineExceeded instead of burning a round of work (and a lock hold)
// on a response nobody will read. Deadlines compose with the retry layer:
// RetryPolicy stops retrying an operation whose deadline has expired.
//
// Built on Stopwatch's steady clock (common/stopwatch.h), so a deadline
// is immune to wall-clock jumps. Value-semantic and trivially copyable;
// the default-constructed Deadline is infinite (never expires), which
// keeps existing call sites zero-cost.
#ifndef FASEA_COMMON_DEADLINE_H_
#define FASEA_COMMON_DEADLINE_H_

#include <cstdint>

#include "common/stopwatch.h"

namespace fasea {

class Deadline {
 public:
  /// Never expires — the default for callers that don't care.
  constexpr Deadline() = default;
  static constexpr Deadline Infinite() { return Deadline(); }

  /// Expires `nanos` from now (clamped to "already expired" for
  /// non-positive values).
  static Deadline AfterNanos(std::int64_t nanos) {
    return AtNanos(Stopwatch::NowNanos() + (nanos > 0 ? nanos : 0));
  }
  static Deadline AfterMillis(std::int64_t millis) {
    return AfterNanos(millis * 1'000'000);
  }

  /// Expires at absolute monotonic time `nanos` (Stopwatch::NowNanos
  /// scale).
  static constexpr Deadline AtNanos(std::int64_t nanos) {
    return Deadline(nanos);
  }

  constexpr bool infinite() const { return nanos_ == kInfinite; }

  bool Expired() const { return ExpiredAt(Stopwatch::NowNanos()); }
  constexpr bool ExpiredAt(std::int64_t now_nanos) const {
    return !infinite() && now_nanos >= nanos_;
  }

  /// Nanoseconds until expiry (<= 0 once expired). Infinite deadlines
  /// report INT64_MAX.
  std::int64_t RemainingNanos() const {
    return RemainingAtNanos(Stopwatch::NowNanos());
  }
  /// Same, against a caller-supplied clock reading — lets deadlines run
  /// on a logical clock (the simulated network) as well as the wall.
  constexpr std::int64_t RemainingAtNanos(std::int64_t now_nanos) const {
    return infinite() ? kInfinite : nanos_ - now_nanos;
  }

  friend constexpr bool operator==(Deadline a, Deadline b) {
    return a.nanos_ == b.nanos_;
  }

 private:
  static constexpr std::int64_t kInfinite = INT64_MAX;
  constexpr explicit Deadline(std::int64_t nanos) : nanos_(nanos) {}

  std::int64_t nanos_ = kInfinite;
};

}  // namespace fasea

#endif  // FASEA_COMMON_DEADLINE_H_
