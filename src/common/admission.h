// InflightLimiter: compare-and-admit in-flight bounding for admission
// control.
//
// The naive increment-then-check guard has a thundering-herd bug at the
// limit boundary: N callers racing at the limit each increment first,
// each observes count > limit, and ALL shed — admission can reject down
// to zero throughput exactly when the service is saturated. TryAcquire
// instead CASes the counter upward only while it is strictly below the
// limit, so of N racing callers exactly `limit` are admitted and the
// rest shed; at least one caller always makes progress.
#ifndef FASEA_COMMON_ADMISSION_H_
#define FASEA_COMMON_ADMISSION_H_

#include <atomic>
#include <utility>

namespace fasea {

class InflightLimiter {
 public:
  /// Moveable RAII admission slot; releases on destruction. A
  /// default-constructed (or rejected) permit holds nothing.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept
        : limiter_(std::exchange(other.limiter_, nullptr)),
          count_(other.count_) {}
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        limiter_ = std::exchange(other.limiter_, nullptr);
        count_ = other.count_;
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { Release(); }

    bool admitted() const { return limiter_ != nullptr; }
    /// In-flight count at admission (this permit included); 0 when
    /// rejected.
    int count() const { return count_; }
    void Release() {
      if (limiter_ != nullptr) {
        limiter_->count_.fetch_sub(1, std::memory_order_release);
        limiter_ = nullptr;
      }
    }

   private:
    friend class InflightLimiter;
    Permit(InflightLimiter* limiter, int count)
        : limiter_(limiter), count_(count) {}
    InflightLimiter* limiter_ = nullptr;
    int count_ = 0;
  };

  InflightLimiter() = default;
  InflightLimiter(const InflightLimiter&) = delete;
  InflightLimiter& operator=(const InflightLimiter&) = delete;

  /// Admits unless `limit` callers are already in flight (limit <= 0 =
  /// unlimited). The admit is a CAS from a below-limit count, so exactly
  /// min(N, limit) of N concurrent callers succeed — never fewer.
  Permit TryAcquire(int limit) {
    int cur = count_.load(std::memory_order_relaxed);
    for (;;) {
      if (limit > 0 && cur >= limit) return Permit();
      if (count_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return Permit(this, cur + 1);
      }
    }
  }

  int current() const { return count_.load(std::memory_order_relaxed); }

 private:
  friend class Permit;
  std::atomic<int> count_{0};
};

}  // namespace fasea

#endif  // FASEA_COMMON_ADMISSION_H_
