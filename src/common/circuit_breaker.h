// CircuitBreaker: the classic three-state failure isolator.
//
//   kClosed    — requests flow; `failure_threshold` *consecutive*
//                failures trip the breaker.
//   kOpen      — requests are rejected without touching the failing
//                dependency; after `open_cooldown_ns` the next Allow()
//                moves to half-open.
//   kHalfOpen  — a bounded number of probe requests go through; a
//                success closes the breaker (after
//                `half_open_successes` of them), a failure re-opens it
//                and restarts the cooldown.
//
// The serving layer wraps the WAL append path in one of these so a dying
// disk degrades the service (visibly, via Health()) instead of failing
// every round, and the periodic half-open probe re-attaches durability
// automatically when the disk comes back — no operator intervention.
//
// Time comes from an injectable monotonic clock for deterministic tests.
// All methods are thread-safe (one small mutex; this sits on a path that
// already fsyncs). state() reports the stored state without performing
// the lazy open → half-open transition; only Allow() moves states.
//
// Telemetry under `metric_prefix` (default "fasea.breaker"): `.state`
// gauge (0 closed / 1 half-open / 2 open), `.opens` / `.closes` /
// `.probes` counters.
#ifndef FASEA_COMMON_CIRCUIT_BREAKER_H_
#define FASEA_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace fasea {

struct CircuitBreakerOptions {
  /// Consecutive RecordFailure calls (with no success between) that trip
  /// a closed breaker.
  int failure_threshold = 5;
  /// How long an open breaker rejects before probing.
  std::int64_t open_cooldown_ns = 50'000'000;  // 50 ms
  /// Probe successes required to close from half-open.
  int half_open_successes = 1;
  /// Probes allowed in flight at once while half-open.
  int half_open_max_probes = 1;
  /// Metric namespace; breakers sharing a prefix share series.
  std::string metric_prefix = "fasea.breaker";
  /// Clock override. When set it wins over the constructor's `now`
  /// argument — lets owners that build the breaker from options alone
  /// (ArrangementService) run it on a logical clock, which makes chaos
  /// harness runs bit-reproducible (cooldowns elapse in ticks, not
  /// wall time).
  std::int64_t (*clock)() = nullptr;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kHalfOpen = 1, kOpen = 2 };
  using NowFn = std::int64_t (*)();

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {},
                          NowFn now = &Stopwatch::NowNanos);
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May this request proceed? Closed: always. Open: no, unless the
  /// cooldown elapsed — then the breaker turns half-open and this call
  /// becomes the first probe. Half-open: yes while a probe slot is free.
  /// A true return must be matched by RecordSuccess or RecordFailure.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  std::int64_t opens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opens_;
  }
  std::int64_t closes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closes_;
  }
  std::int64_t probes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return probes_;
  }

  static std::string_view StateName(State state);

 private:
  void TransitionLocked(State next);

  mutable std::mutex mu_;
  const CircuitBreakerOptions options_;
  const NowFn now_;

  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_seen_ = 0;
  int probes_in_flight_ = 0;
  std::int64_t open_until_ns_ = 0;
  std::int64_t opens_ = 0;
  std::int64_t closes_ = 0;
  std::int64_t probes_ = 0;

  Gauge* state_gauge_;
  Counter* opens_metric_;
  Counter* closes_metric_;
  Counter* probes_metric_;
};

}  // namespace fasea

#endif  // FASEA_COMMON_CIRCUIT_BREAKER_H_
