// Fixed-size worker pool for the parallel execution layer.
//
// FASEA's parallelism is deliberately coarse and deterministic: callers
// decompose work into tasks whose *results* do not depend on execution
// order (per-trajectory simulation rounds, whole experiments of a seed
// sweep, closed-loop load-driver workers), submit them, and barrier with
// WaitAll(). The pool adds no ambient magic — no work stealing across
// pools, no global singleton — so a unit of work always runs on the pool
// that owns it and `threads = 1` callers can skip the pool entirely.
//
// Error model: library code aborts on programmer error (FASEA_CHECK) but
// tasks may still throw (std::bad_alloc, test assertions). The first
// exception thrown by any task is captured and re-thrown from the next
// WaitAll() on the submitting thread; later exceptions of the same wave
// are dropped. Workers never unwind past the pool loop.
#ifndef FASEA_COMMON_THREAD_POOL_H_
#define FASEA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fasea {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; FASEA_CHECK'd).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work (an implicit WaitAll, minus the rethrow —
  /// destructors must not throw) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks may be submitted from any thread, but
  /// WaitAll() only guards tasks submitted before it is entered.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then re-throws the
  /// first exception any of them raised (clearing it, so the pool is
  /// reusable for the next wave).
  void WaitAll();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;   // Signals workers.
  std::condition_variable all_done_;     // Signals WaitAll.
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // Queued + currently executing tasks.
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1), fanning out across `pool` and blocking until
/// all calls finish (WaitAll semantics, including the rethrow). A null
/// pool, a single-threaded pool, or n <= 1 runs every call inline on the
/// caller's thread in index order — the zero-overhead sequential path
/// that parallel results must be bit-identical to.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace fasea

#endif  // FASEA_COMMON_THREAD_POOL_H_
