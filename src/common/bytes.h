// Little-endian binary encoding helpers shared by every on-disk format
// (policy checkpoints, WAL frames, interaction records).
//
// All integers are serialized little-endian regardless of host order, so
// blobs are portable across platforms. ByteReader is a bounds-checked
// cursor: every read reports truncation through Status instead of
// touching out-of-range memory.
#ifndef FASEA_COMMON_BYTES_H_
#define FASEA_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fasea {

void AppendU8(std::string* out, std::uint8_t v);
void AppendU32(std::string* out, std::uint32_t v);
void AppendU64(std::string* out, std::uint64_t v);
void AppendI64(std::string* out, std::int64_t v);
void AppendDouble(std::string* out, double v);

/// Encodes `v` little-endian into `out[0..3]` (caller provides 4 bytes).
void EncodeU32(char* out, std::uint32_t v);

/// Decodes 4 little-endian bytes at `data`.
std::uint32_t DecodeU32(const char* data);

/// Bounds-checked sequential reader over a byte buffer. Reads past the
/// end fail with `truncated_error` (so each format can report its own
/// context, e.g. "checkpoint: truncated data").
class ByteReader {
 public:
  explicit ByteReader(std::string_view data, std::string truncated_message =
                                                 "truncated data")
      : data_(data), truncated_message_(std::move(truncated_message)) {}

  StatusOr<std::uint8_t> ReadU8();
  StatusOr<std::uint32_t> ReadU32();
  StatusOr<std::uint64_t> ReadU64();
  StatusOr<std::int64_t> ReadI64();
  StatusOr<double> ReadDouble();

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status TruncatedError() const {
    return Status(StatusCode::kInvalidArgument, truncated_message_);
  }

  std::string_view data_;
  std::string truncated_message_;
  std::size_t pos_ = 0;
};

}  // namespace fasea

#endif  // FASEA_COMMON_BYTES_H_
