// A minimal Status / StatusOr pair, in the spirit of absl::Status.
//
// Library code reports recoverable failures (bad configuration, malformed
// input) through Status. Programmer errors go through FASEA_CHECK.
#ifndef FASEA_COMMON_STATUS_H_
#define FASEA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace fasea {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
  /// A transient failure (e.g. the durability layer could not persist a
  /// record). The operation did not take effect and may be retried.
  kUnavailable = 7,
  /// Unrecoverable data corruption or loss (e.g. a WAL frame whose
  /// checksum fails mid-file). Retrying cannot help.
  kDataLoss = 8,
  /// The serving layer shed the request to protect itself (admission
  /// control: in-flight cap or rate limit). Nothing happened; retry
  /// after backing off.
  kResourceExhausted = 9,
  /// The caller's deadline expired before the operation ran. Nothing
  /// happened, but the caller has presumably walked away — retrying
  /// verbatim is pointless without a fresh deadline.
  kDeadlineExceeded = 10,
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error carrier. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    FASEA_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);

/// True if the failed operation had no effect and is worth retrying
/// verbatim (kUnavailable, kResourceExhausted — after a backoff; see
/// common/retry.h). OK statuses are not "retryable".
bool IsRetryable(const Status& status);

/// Either a value of T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    FASEA_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FASEA_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FASEA_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FASEA_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fasea

#endif  // FASEA_COMMON_STATUS_H_
