// Core assertion macros.
//
// FASEA follows the Google C++ style: library code does not throw
// exceptions for programmer errors. Invariant violations abort with a
// readable message; recoverable errors travel through Status/StatusOr.
#ifndef FASEA_COMMON_MACROS_H_
#define FASEA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

namespace fasea::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "FASEA_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fasea::internal

/// Aborts the process if `cond` is false. Enabled in all build modes.
#define FASEA_CHECK(cond)                                      \
  do {                                                         \
    if (!(cond)) {                                             \
      ::fasea::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                          \
  } while (0)

/// Like FASEA_CHECK but compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define FASEA_DCHECK(cond)          \
  do {                              \
    (void)sizeof((cond) ? 1 : 0);   \
  } while (0)
#else
#define FASEA_DCHECK(cond) FASEA_CHECK(cond)
#endif

/// Aborts if a Status-returning expression is not OK.
#define FASEA_CHECK_OK(expr)                                          \
  do {                                                                \
    const ::fasea::Status _fasea_st = (expr);                         \
    if (!_fasea_st.ok()) {                                            \
      std::fprintf(stderr, "FASEA_CHECK_OK failed at %s:%d: %s\n",    \
                   __FILE__, __LINE__, _fasea_st.message().c_str());  \
      std::fflush(stderr);                                            \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#endif  // FASEA_COMMON_MACROS_H_
