// Minimal command-line flag parsing for the CLI tools and benches.
//
// Supports --name=value and --name value forms, bool flags as --flag /
// --noflag / --flag=true|false, typed accessors with defaults, and
// generated --help text. No global registry: a FlagSet is an explicit
// object, so tests can construct and parse in isolation.
#ifndef FASEA_COMMON_FLAGS_H_
#define FASEA_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fasea {

class FlagSet {
 public:
  /// Declares a flag with its default (as text) and help string. Must be
  /// called before Parse. Re-declaring a name aborts.
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, std::int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv (excluding argv[0]). Unknown flags, malformed values, and
  /// missing values produce InvalidArgument. Non-flag tokens are collected
  /// as positional arguments.
  Status Parse(int argc, const char* const* argv);

  /// Typed accessors; aborts if the flag was never defined or the type
  /// does not match the definition.
  const std::string& GetString(const std::string& name) const;
  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Generated --help text: one line per flag with default and help.
  std::string HelpText(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type;
    std::string help;
    std::string text_value;  // Current value, as text.
    std::string default_text;
    bool set = false;
    // Parsed caches.
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  void Define(const std::string& name, Type type, std::string default_text,
              const std::string& help);
  Status SetValue(const std::string& name, const std::string& text);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fasea

#endif  // FASEA_COMMON_FLAGS_H_
