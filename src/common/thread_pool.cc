#include "common/thread_pool.h"

#include <utility>

#include "common/macros.h"

namespace fasea {

ThreadPool::ThreadPool(int num_threads) {
  FASEA_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  FASEA_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    FASEA_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::WaitAll() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // Shutdown with nothing left to run.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> error_lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    if (--in_flight_ == 0) all_done_.notify_all();
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->WaitAll();
}

}  // namespace fasea
