// RateLimiter: a thread-safe token bucket.
//
// Tokens refill continuously at `permits_per_second` up to a `burst`
// ceiling; TryAcquire never blocks — admission control wants an instant
// shed decision (kResourceExhausted), not a queue. Time comes from an
// injectable monotonic clock so tests are deterministic.
#ifndef FASEA_COMMON_RATE_LIMITER_H_
#define FASEA_COMMON_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>

#include "common/macros.h"
#include "common/stopwatch.h"

namespace fasea {

class RateLimiter {
 public:
  using NowFn = std::int64_t (*)();

  /// `permits_per_second` > 0 is the steady-state rate; `burst` > 0 is
  /// the bucket capacity (how far ahead of the steady rate a quiet
  /// period lets callers run). The bucket starts full.
  RateLimiter(double permits_per_second, double burst,
              NowFn now = &Stopwatch::NowNanos)
      : rate_per_ns_(permits_per_second / 1e9),
        burst_(burst),
        tokens_(burst),
        now_(now),
        last_refill_ns_(now()) {
    FASEA_CHECK(permits_per_second > 0.0);
    FASEA_CHECK(burst > 0.0);
  }
  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Takes `permits` tokens if the bucket holds them; false (and no
  /// tokens consumed) otherwise.
  bool TryAcquire(double permits = 1.0) {
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked();
    if (tokens_ < permits) return false;
    tokens_ -= permits;
    return true;
  }

  /// Tokens currently in the bucket (after refill) — observability only.
  double available() const {
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked();
    return tokens_;
  }

 private:
  void RefillLocked() const {
    const std::int64_t now = now_();
    if (now <= last_refill_ns_) return;
    tokens_ += static_cast<double>(now - last_refill_ns_) * rate_per_ns_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_refill_ns_ = now;
  }

  mutable std::mutex mu_;
  const double rate_per_ns_;
  const double burst_;
  mutable double tokens_;
  const NowFn now_;
  mutable std::int64_t last_refill_ns_;
};

}  // namespace fasea

#endif  // FASEA_COMMON_RATE_LIMITER_H_
