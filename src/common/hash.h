// Hashing utilities for shard routing.
//
// Mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit
// mixer for integer keys (event ids, user ids). JumpConsistentHash is
// Lamping & Veach's consistent hash: it maps a key to one of
// `num_buckets` buckets such that growing the bucket count moves only
// ~1/n of the keys, with no lookup table. Both are pure functions, so
// shard assignment is stable across processes and restarts — a recovered
// shard owns exactly the events it owned before the crash.
#ifndef FASEA_COMMON_HASH_H_
#define FASEA_COMMON_HASH_H_

#include <cstdint>

#include "common/macros.h"

namespace fasea {

/// splitmix64 finalizer: bijective on 64-bit ints, avalanche-complete.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Lamping–Veach jump consistent hash: key -> bucket in [0, num_buckets).
/// O(ln n) expected iterations, no state, uniform across buckets.
inline std::int32_t JumpConsistentHash(std::uint64_t key,
                                       std::int32_t num_buckets) {
  FASEA_DCHECK(num_buckets > 0);
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < num_buckets) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::int32_t>(b);
}

}  // namespace fasea

#endif  // FASEA_COMMON_HASH_H_
