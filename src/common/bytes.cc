#include "common/bytes.h"

#include <cstring>

namespace fasea {

void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendI64(std::string* out, std::int64_t v) {
  AppendU64(out, static_cast<std::uint64_t>(v));
}

void AppendDouble(std::string* out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void EncodeU32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t DecodeU32(const char* data) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
         << (8 * i);
  }
  return v;
}

StatusOr<std::uint8_t> ByteReader::ReadU8() {
  if (pos_ + 1 > data_.size()) return TruncatedError();
  return static_cast<std::uint8_t>(data_[pos_++]);
}

StatusOr<std::uint32_t> ByteReader::ReadU32() {
  if (pos_ + 4 > data_.size()) return TruncatedError();
  const std::uint32_t v = DecodeU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

StatusOr<std::uint64_t> ByteReader::ReadU64() {
  if (pos_ + 8 > data_.size()) return TruncatedError();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<std::int64_t> ByteReader::ReadI64() {
  auto v = ReadU64();
  if (!v.ok()) return v.status();
  return static_cast<std::int64_t>(*v);
}

StatusOr<double> ByteReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double v;
  std::memcpy(&v, &bits.value(), sizeof(v));
  return v;
}

}  // namespace fasea
