#include "common/table.h"

#include <algorithm>

#include "common/macros.h"

namespace fasea {

void TextTable::SetHeader(std::vector<std::string> header) {
  FASEA_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  FASEA_CHECK(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row,
                            std::string* out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) *out += "  ";
      *out += row[c];
      out->append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!out->empty() && out->back() == ' ') out->pop_back();
    *out += '\n';
  };
  std::string out;
  emit_row(header_, &out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c != 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

void TextTable::Print(std::FILE* out) const {
  const std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fflush(out);
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find(',') == std::string::npos &&
      cell.find('"') == std::string::npos &&
      cell.find('\n') == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::ToCsv() const {
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  FASEA_CHECK(f != nullptr);
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  FASEA_CHECK(written == contents.size());
  FASEA_CHECK(std::fclose(f) == 0);
}

}  // namespace fasea
