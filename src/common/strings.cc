#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace fasea {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  std::size_t begin = 0;
  while (begin < text.size() && is_space(text[begin])) ++begin;
  std::size_t end = text.size();
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  std::string out = StrFormat("%.*g", digits, value);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace fasea
