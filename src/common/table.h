// Plain-text table and CSV emitters used by the paper-reproduction bench
// binaries to print rows/series in the same layout the paper reports.
#ifndef FASEA_COMMON_TABLE_H_
#define FASEA_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace fasea {

/// Column-aligned ASCII table. Collect rows, then Print to a FILE*.
class TextTable {
 public:
  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded
  /// with empty cells; longer rows abort.
  void AddRow(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  std::string ToString() const;
  void Print(std::FILE* out = stdout) const;

  /// Renders as CSV (no alignment padding, comma-separated, quoted when a
  /// cell contains a comma or quote).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `csv` to `path`; aborts on I/O failure (bench-harness only).
void WriteFileOrDie(const std::string& path, const std::string& contents);

}  // namespace fasea

#endif  // FASEA_COMMON_TABLE_H_
