// Monotonic wall-clock stopwatch used by the benchmark harness to report
// per-round policy latencies (paper Tables 5 and 6).
#ifndef FASEA_COMMON_STOPWATCH_H_
#define FASEA_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fasea {

/// Accumulating stopwatch. Start()/Stop() may be called repeatedly; the
/// elapsed time of every started interval is summed.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  // Latency metrics are meaningless on a clock that can jump backwards
  // (NTP slew, manual adjustment); the trace/histogram layers rely on
  // monotonicity.
  static_assert(Clock::is_steady, "Stopwatch requires a monotonic clock");

  /// Current monotonic time in integer nanoseconds — the hot-path
  /// timestamp used by obs/trace; no double round-trip.
  static std::int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  /// Starts (or restarts) timing from now. Calling Start while running
  /// restarts the current interval.
  void Start() {
    running_ = true;
    start_ = Clock::now();
  }

  /// Stops timing and folds the current interval into the total.
  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Drops all accumulated time and stops the watch.
  void Reset() {
    accumulated_ = Clock::duration::zero();
    running_ = false;
  }

  /// Total accumulated time including a currently running interval.
  Clock::duration Elapsed() const {
    Clock::duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return total;
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Elapsed()).count();
  }

  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Elapsed())
        .count();
  }

 private:
  Clock::duration accumulated_ = Clock::duration::zero();
  Clock::time_point start_{};
  bool running_ = false;
};

/// RAII guard: starts a stopwatch on construction, stops it on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch* watch) : watch_(watch) { watch_->Start(); }
  ~ScopedTimer() { watch_->Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch* watch_;
};

}  // namespace fasea

#endif  // FASEA_COMMON_STOPWATCH_H_
