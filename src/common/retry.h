// RetryPolicy: capped exponential backoff with decorrelated jitter.
//
// Replaces ad-hoc retry loops (`while (IsRetryable(st)) ...` hot-spins)
// with a bounded, seeded, observable policy:
//
//   - an attempt budget: an operation that keeps failing retryable is
//     eventually surfaced to the caller instead of looping forever;
//   - decorrelated jitter (the AWS scheme): each delay is drawn
//     uniformly from [base, min(cap, 3 * previous_delay)], which spreads
//     synchronized retry storms apart much better than plain
//     exponential-with-full-jitter while still growing geometrically;
//   - a seeded RNG stream (rng/pcg64.h): delays reproduce bit-for-bit
//     per seed, so chaos runs that include retry timing stay
//     deterministic;
//   - deadline awareness: retrying stops once the caller's Deadline
//     expires (the operation's own deadline handling still applies).
//
// Telemetry (process registry, DESIGN.md §8): `fasea.retry.attempts`
// histogram (attempts per completed Run), `fasea.retry.backoffs`
// counter (sleeps taken), `fasea.retry.exhausted` counter (budgets
// spent without success).
//
// Thread safety: none — the RNG and attempt counter are plain state.
// Give each worker thread its own RetryPolicy (they are cheap).
#ifndef FASEA_COMMON_RETRY_H_
#define FASEA_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/deadline.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "rng/pcg64.h"

namespace fasea {

struct RetryOptions {
  /// Total tries including the first; must be >= 1. A budget of 1 means
  /// "never retry".
  int max_attempts = 5;
  /// First backoff delay and the cap every later delay is clamped to.
  std::int64_t initial_backoff_ns = 1'000'000;    // 1 ms
  std::int64_t max_backoff_ns = 100'000'000;      // 100 ms
};

class RetryPolicy {
 public:
  using SleepFn = std::function<void(std::int64_t nanos)>;

  /// `seed` selects the jitter stream; equal seeds give identical delay
  /// sequences.
  RetryPolicy(const RetryOptions& options, std::uint64_t seed);

  /// Starts a fresh attempt sequence (Run calls this itself).
  void Reset();

  /// Marks one completed attempt that ended in `status` and decides
  /// whether to try again: false when the status is OK or non-retryable,
  /// the attempt budget is spent, or `deadline` has expired.
  bool ShouldRetry(const Status& status,
                   const Deadline& deadline = Deadline::Infinite());

  /// Next backoff delay (decorrelated jitter, capped). Call between
  /// attempts, after ShouldRetry returned true.
  std::int64_t NextDelayNanos();

  /// Attempts completed in the current sequence.
  int attempts() const { return attempts_; }

  /// Runs `op` under this policy: invoke, and while ShouldRetry says so,
  /// sleep the jittered backoff and invoke again. Returns the final
  /// status (the last error when the budget or deadline ran out).
  /// `sleep` defaults to std::this_thread::sleep_for; tests inject a
  /// recorder.
  Status Run(const std::function<Status()>& op, const SleepFn& sleep = {},
             const Deadline& deadline = Deadline::Infinite());

 private:
  RetryOptions options_;
  Pcg64 rng_;
  int attempts_ = 0;
  std::int64_t prev_delay_ns_;

  Histogram* attempts_histogram_ =
      Metrics()->GetHistogram("fasea.retry.attempts");
  Counter* backoffs_metric_ = Metrics()->GetCounter("fasea.retry.backoffs");
  Counter* exhausted_metric_ =
      Metrics()->GetCounter("fasea.retry.exhausted");
};

}  // namespace fasea

#endif  // FASEA_COMMON_RETRY_H_
