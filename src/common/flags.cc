#include "common/flags.h"

#include <cerrno>
#include <cstdlib>

#include "common/strings.h"

namespace fasea {

namespace {

StatusOr<std::int64_t> ParseInt(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("not an integer: '" + text + "'");
  }
  return static_cast<std::int64_t>(value);
}

StatusOr<double> ParseDouble(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("not a number: '" + text + "'");
  }
  return value;
}

StatusOr<bool> ParseBool(const std::string& text) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  return InvalidArgumentError("not a boolean: '" + text + "'");
}

}  // namespace

void FlagSet::Define(const std::string& name, Type type,
                     std::string default_text, const std::string& help) {
  FASEA_CHECK(!name.empty());
  Flag flag;
  flag.type = type;
  flag.help = help;
  flag.default_text = default_text;
  flag.text_value = std::move(default_text);
  switch (type) {
    case Type::kInt:
      flag.int_value = ParseInt(flag.text_value).value();
      break;
    case Type::kDouble:
      flag.double_value = ParseDouble(flag.text_value).value();
      break;
    case Type::kBool:
      flag.bool_value = ParseBool(flag.text_value).value();
      break;
    case Type::kString:
      break;
  }
  const bool inserted = flags_.emplace(name, std::move(flag)).second;
  FASEA_CHECK(inserted && "flag defined twice");
}

void FlagSet::DefineString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Define(name, Type::kString, default_value, help);
}
void FlagSet::DefineInt(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  Define(name, Type::kInt,
         StrFormat("%lld", static_cast<long long>(default_value)), help);
}
void FlagSet::DefineDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Define(name, Type::kDouble, FormatDouble(default_value, 17), help);
}
void FlagSet::DefineBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Define(name, Type::kBool, default_value ? "true" : "false", help);
}

Status FlagSet::SetValue(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return InvalidArgumentError("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      auto value = ParseInt(text);
      if (!value.ok()) {
        return InvalidArgumentError("--" + name + ": " +
                                    value.status().message());
      }
      flag.int_value = *value;
      break;
    }
    case Type::kDouble: {
      auto value = ParseDouble(text);
      if (!value.ok()) {
        return InvalidArgumentError("--" + name + ": " +
                                    value.status().message());
      }
      flag.double_value = *value;
      break;
    }
    case Type::kBool: {
      auto value = ParseBool(text);
      if (!value.ok()) {
        return InvalidArgumentError("--" + name + ": " +
                                    value.status().message());
      }
      flag.bool_value = *value;
      break;
    }
    case Type::kString:
      break;
  }
  flag.text_value = text;
  flag.set = true;
  return Status::Ok();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      if (Status st = SetValue(arg.substr(0, eq), arg.substr(eq + 1));
          !st.ok()) {
        return st;
      }
      continue;
    }
    // --flag or --noflag for bools; --flag value otherwise.
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      FASEA_CHECK_OK(SetValue(arg, "true"));
      continue;
    }
    if (StartsWith(arg, "no")) {
      auto no_it = flags_.find(arg.substr(2));
      if (no_it != flags_.end() && no_it->second.type == Type::kBool) {
        FASEA_CHECK_OK(SetValue(arg.substr(2), "false"));
        continue;
      }
    }
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + arg);
    }
    if (i + 1 >= argc) {
      return InvalidArgumentError("flag --" + arg + " is missing a value");
    }
    if (Status st = SetValue(arg, argv[++i]); !st.ok()) return st;
  }
  return Status::Ok();
}

const FlagSet::Flag& FlagSet::GetChecked(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  FASEA_CHECK(it != flags_.end() && "flag not defined");
  FASEA_CHECK(it->second.type == type && "flag type mismatch");
  return it->second;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).text_value;
}
std::int64_t FlagSet::GetInt(const std::string& name) const {
  return GetChecked(name, Type::kInt).int_value;
}
double FlagSet::GetDouble(const std::string& name) const {
  return GetChecked(name, Type::kDouble).double_value;
}
bool FlagSet::GetBool(const std::string& name) const {
  return GetChecked(name, Type::kBool).bool_value;
}

bool FlagSet::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  FASEA_CHECK(it != flags_.end());
  return it->second.set;
}

std::string FlagSet::HelpText(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    out += " (default: " + flag.default_text + ")\n";
    out += "      " + flag.help + "\n";
  }
  return out;
}

}  // namespace fasea
