// Small string helpers (split/join/trim/printf-style format).
#ifndef FASEA_COMMON_STRINGS_H_
#define FASEA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fasea {

/// Splits `text` on every occurrence of `sep`. Adjacent separators yield
/// empty pieces; splitting the empty string yields one empty piece.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("0.25", "1", "3.4e-05").
std::string FormatDouble(double value, int digits = 6);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace fasea

#endif  // FASEA_COMMON_STRINGS_H_
