#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace fasea {

RetryPolicy::RetryPolicy(const RetryOptions& options, std::uint64_t seed)
    : options_(options),
      rng_(seed, /*stream=*/0x7265747279ULL),  // "retry"
      prev_delay_ns_(options.initial_backoff_ns) {
  FASEA_CHECK(options.max_attempts >= 1);
  FASEA_CHECK(options.initial_backoff_ns >= 0);
  FASEA_CHECK(options.max_backoff_ns >= options.initial_backoff_ns);
}

void RetryPolicy::Reset() {
  attempts_ = 0;
  prev_delay_ns_ = options_.initial_backoff_ns;
}

bool RetryPolicy::ShouldRetry(const Status& status,
                              const Deadline& deadline) {
  ++attempts_;
  if (status.ok() || !IsRetryable(status)) return false;
  if (attempts_ >= options_.max_attempts) {
    exhausted_metric_->Increment();
    return false;
  }
  return !deadline.Expired();
}

std::int64_t RetryPolicy::NextDelayNanos() {
  const std::int64_t base = options_.initial_backoff_ns;
  // Decorrelated jitter: uniform in [base, min(cap, 3 * prev)]. Guard the
  // tripling against overflow before clamping to the cap.
  std::int64_t hi = options_.max_backoff_ns;
  if (prev_delay_ns_ < hi / 3) hi = prev_delay_ns_ * 3;
  const std::uint64_t range =
      hi > base ? static_cast<std::uint64_t>(hi - base) : 0;
  std::int64_t delay = base;
  if (range > 0) {
    delay += static_cast<std::int64_t>(rng_.NextBounded(range + 1));
  }
  prev_delay_ns_ = delay;
  backoffs_metric_->Increment();
  return delay;
}

Status RetryPolicy::Run(const std::function<Status()>& op,
                        const SleepFn& sleep, const Deadline& deadline) {
  Reset();
  for (;;) {
    Status status = op();
    if (!ShouldRetry(status, deadline)) {
      attempts_histogram_->Record(attempts_);
      return status;
    }
    std::int64_t delay = NextDelayNanos();
    // Never oversleep past the caller's deadline: a jittered delay longer
    // than the remainder would burn the whole budget sleeping and wake up
    // only to fail. Sleep at most the remainder (the next ShouldRetry
    // then observes the expiry and stops).
    if (!deadline.infinite()) {
      delay = std::min(delay, std::max<std::int64_t>(
                                  0, deadline.RemainingNanos()));
    }
    if (sleep) {
      sleep(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
  }
}

}  // namespace fasea
