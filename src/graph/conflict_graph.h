// Conflict graph over events (Definition 1 of the paper).
//
// An undirected graph on |V| vertices where an edge {vi, vj} means a user
// can attend at most one of the two events. Arrangement feasibility needs
// one query on the hot path — "does candidate v conflict with anything
// already arranged?" — so adjacency is stored as packed bitsets and the
// query is a word-wise AND against the arranged-set bitset: O(|V|/64).
#ifndef FASEA_GRAPH_CONFLICT_GRAPH_H_
#define FASEA_GRAPH_CONFLICT_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "rng/pcg64.h"

namespace fasea {

/// Fixed-capacity bitset sized at runtime; used for adjacency rows and for
/// the "already arranged" working set during arrangement construction.
class EventBitset {
 public:
  EventBitset() = default;
  explicit EventBitset(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  std::size_t size() const { return n_; }

  void Set(std::size_t i) {
    FASEA_DCHECK(i < n_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void Clear(std::size_t i) {
    FASEA_DCHECK(i < n_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool Test(std::size_t i) const {
    FASEA_DCHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// True if this and `other` share any set bit.
  bool Intersects(const EventBitset& other) const {
    FASEA_DCHECK(n_ == other.n_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }

  std::size_t Count() const;

  std::size_t MemoryBytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

class ConflictGraph {
 public:
  ConflictGraph() = default;
  /// Graph on n events, no conflicts.
  explicit ConflictGraph(std::size_t n);

  std::size_t num_events() const { return n_; }
  std::size_t num_conflicts() const { return edges_.size(); }

  /// Conflict ratio cr = |CF| / (|V|(|V|-1)/2); 0 for graphs with < 2
  /// events.
  double ConflictRatio() const;

  /// Adds the conflicting pair {a, b}; a == b or duplicate pairs abort.
  void AddConflict(std::size_t a, std::size_t b);

  bool Conflicts(std::size_t a, std::size_t b) const {
    FASEA_DCHECK(a < n_ && b < n_);
    return rows_[a].Test(b);
  }

  /// True if event v conflicts with any event in `arranged`.
  bool ConflictsWithAny(std::size_t v, const EventBitset& arranged) const {
    FASEA_DCHECK(v < n_);
    return rows_[v].Intersects(arranged);
  }

  /// The sorted list of conflicting pairs (a < b).
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges() const {
    return edges_;
  }

  /// Degree of vertex v.
  std::size_t Degree(std::size_t v) const {
    FASEA_DCHECK(v < n_);
    return rows_[v].Count();
  }

  /// True if the events listed in `events` are pairwise non-conflicting.
  bool IsIndependentSet(const std::vector<std::uint32_t>& events) const;

  std::size_t MemoryBytes() const;

  // --- Generators -------------------------------------------------------

  /// Erdős–Rényi style: exactly round(cr · n(n-1)/2) distinct conflicting
  /// pairs sampled uniformly.
  static ConflictGraph Random(std::size_t n, double conflict_ratio,
                              Pcg64& rng);

  /// All pairs conflicting (cr = 1).
  static ConflictGraph Complete(std::size_t n);

  /// Conflicts from time-interval overlap: events i and j conflict iff
  /// [start_i, end_i) overlaps [start_j, end_j). Used by the real-dataset
  /// surrogate (a 7:30pm concert conflicts with a 7:00pm one).
  static ConflictGraph FromIntervals(const std::vector<double>& starts,
                                     const std::vector<double>& ends);

 private:
  std::size_t n_ = 0;
  std::vector<EventBitset> rows_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

}  // namespace fasea

#endif  // FASEA_GRAPH_CONFLICT_GRAPH_H_
