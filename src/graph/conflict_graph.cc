#include "graph/conflict_graph.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "rng/distributions.h"

namespace fasea {

std::size_t EventBitset::Count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

ConflictGraph::ConflictGraph(std::size_t n) : n_(n) {
  rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows_.emplace_back(n);
}

double ConflictGraph::ConflictRatio() const {
  if (n_ < 2) return 0.0;
  const double total_pairs = static_cast<double>(n_) * (n_ - 1) / 2.0;
  return static_cast<double>(edges_.size()) / total_pairs;
}

void ConflictGraph::AddConflict(std::size_t a, std::size_t b) {
  FASEA_CHECK(a < n_ && b < n_ && a != b);
  FASEA_CHECK(!rows_[a].Test(b));
  rows_[a].Set(b);
  rows_[b].Set(a);
  edges_.emplace_back(static_cast<std::uint32_t>(std::min(a, b)),
                      static_cast<std::uint32_t>(std::max(a, b)));
}

bool ConflictGraph::IsIndependentSet(
    const std::vector<std::uint32_t>& events) const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (Conflicts(events[i], events[j])) return false;
    }
  }
  return true;
}

std::size_t ConflictGraph::MemoryBytes() const {
  std::size_t total = edges_.capacity() * sizeof(edges_[0]);
  for (const auto& row : rows_) total += row.MemoryBytes();
  return total;
}

ConflictGraph ConflictGraph::Random(std::size_t n, double conflict_ratio,
                                    Pcg64& rng) {
  FASEA_CHECK(conflict_ratio >= 0.0 && conflict_ratio <= 1.0);
  ConflictGraph g(n);
  if (n < 2) return g;
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const std::uint64_t want = static_cast<std::uint64_t>(
      std::llround(conflict_ratio * static_cast<double>(total_pairs)));
  if (want == total_pairs) return Complete(n);
  // Sample `want` distinct pair indices without replacement, then decode
  // the linear index k into the pair (a, b), a < b.
  const std::vector<std::int64_t> picks = SampleWithoutReplacement(
      rng, static_cast<std::int64_t>(total_pairs),
      static_cast<std::int64_t>(want));
  for (std::int64_t k : picks) {
    // Row a contains pairs with first index a: (n-1-a) of them, laid out
    // consecutively. Walk rows; fine for generation-time code.
    std::uint64_t remaining = static_cast<std::uint64_t>(k);
    std::size_t a = 0;
    while (remaining >= n - 1 - a) {
      remaining -= n - 1 - a;
      ++a;
    }
    const std::size_t b = a + 1 + static_cast<std::size_t>(remaining);
    g.AddConflict(a, b);
  }
  return g;
}

ConflictGraph ConflictGraph::Complete(std::size_t n) {
  ConflictGraph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) g.AddConflict(a, b);
  }
  return g;
}

ConflictGraph ConflictGraph::FromIntervals(const std::vector<double>& starts,
                                           const std::vector<double>& ends) {
  FASEA_CHECK(starts.size() == ends.size());
  ConflictGraph g(starts.size());
  for (std::size_t a = 0; a < starts.size(); ++a) {
    FASEA_CHECK(starts[a] <= ends[a]);
    for (std::size_t b = a + 1; b < starts.size(); ++b) {
      const bool overlap = starts[a] < ends[b] && starts[b] < ends[a];
      if (overlap) g.AddConflict(a, b);
    }
  }
  return g;
}

}  // namespace fasea
