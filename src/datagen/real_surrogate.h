// Surrogate of the paper's real dataset (§5.1, Table 3).
//
// The authors scraped 50 popular Beijing events from Damai.com and asked
// 19 users for ground-truth Yes/No feedback per event. Neither the events
// nor the human feedbacks are published, so this module reconstructs a
// deterministic synthetic dataset with the same schema and the same
// statistical shape:
//
//  - 50 events across 6 categories (pop concert / theater / sports /
//    folk art / music / movie) with the sub-categories of Table 3;
//  - per-event performers, country/district, lowest price band, day of
//    week, venue location and schedule;
//  - contexts: binary-encoded categorical features following [26]
//    (value k of an m-valued feature becomes k+1 in binary, so 3 values
//    map to <0,1>/<1,0>/<1,1>) concatenated with the normalized
//    user-to-venue distance: 3+3+2+4+4+3 categorical bits + 1 distance
//    = d = 20 total, every value divided by d = 20 (the paper's
//    normalization);
//  - conflicts from schedule overlap (same day, overlapping times);
//  - 19 users: each has a hidden preference vector; their frozen Yes/No
//    feedbacks are thresholded so user k answers "Yes" to exactly the
//    number of events the paper reports in the c_u = full row of Table 7
//    (12, 26, 11, 10, 15, 22, 16, 7, 22, 11, 13, 19, 23, 11, 11, 7, 9,
//    13, 17).
//
// Because feedbacks are frozen 0/1 and the same context matrix is shown
// every round, the surrogate exercises exactly the code paths of the real
// experiment, including the Exploit all-zero lock-in pathology.
#ifndef FASEA_DATAGEN_REAL_SURROGATE_H_
#define FASEA_DATAGEN_REAL_SURROGATE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/instance.h"
#include "model/round_provider.h"

namespace fasea {

struct RealEvent {
  int category;      // 0..5, see RealDataset::CategoryName.
  int sub_category;  // Index within the category's sub-category list.
  int performer;     // 0 male, 1 female, 2 group.
  int country;       // 0..10 (Hong Kong .. Poland).
  int price_band;    // 0..7 (0-49 .. >=600).
  int day;           // 0 Wed, 1 Fri, 2 Sat, 3 Sun, 4 Any.
  double venue_x = 0.0;  // Venue coordinates on a unit city square.
  double venue_y = 0.0;
  double start_hour = 0.0;      // Within its day, 24h clock.
  double duration_hours = 0.0;
};

class RealDataset {
 public:
  static constexpr std::size_t kNumEvents = 50;
  static constexpr std::size_t kNumUsers = 19;
  static constexpr std::size_t kDim = 20;

  /// Builds the canonical surrogate (fixed internal seed, bit-for-bit
  /// reproducible). `seed` can be overridden to study robustness.
  static RealDataset Create(std::uint64_t seed = 20170514);

  const std::vector<RealEvent>& events() const { return events_; }
  const ConflictGraph& conflicts() const { return conflicts_; }

  static std::string CategoryName(int category);
  static std::string SubCategoryName(int category, int sub_category);
  static std::size_t NumSubCategories(int category);

  /// Fixed 50 × 20 context matrix for `user` (distance feature is
  /// user-specific; everything else is shared).
  const ContextMatrix& ContextsFor(std::size_t user) const;

  /// Frozen ground-truth Yes/No feedback of `user` per event.
  const std::vector<std::uint8_t>& FeedbackRow(std::size_t user) const;

  /// Number of "Yes" answers of `user` (the paper's c_u = full value).
  std::int64_t YesCount(std::size_t user) const;

  /// Max number of pairwise non-conflicting "Yes" events of `user`,
  /// capped at `user_capacity` — the per-round reward of the paper's
  /// "Full Knowledge" reference.
  std::int64_t FullKnowledgeReward(std::size_t user,
                                   std::int64_t user_capacity) const;

  /// Problem instance for a run of `horizon` rounds: the real experiment
  /// puts no capacity pressure on events, so capacities are set high
  /// enough to never bind.
  ProblemInstance MakeInstance(std::int64_t horizon) const;

  /// Global tag id of an event (its sub-category) for the OnlineGreedy
  /// baseline of [39].
  int EventTag(std::size_t v) const;
  /// The tags `user` marked as preferred (top sub-categories of their
  /// hidden preference vector).
  const std::vector<int>& PreferredTags(std::size_t user) const;

  static constexpr int kNumTags = 24;  // Total sub-categories in Table 3.

 private:
  RealDataset() = default;

  std::vector<RealEvent> events_;
  ConflictGraph conflicts_;
  std::vector<ContextMatrix> contexts_;                // Per user.
  std::vector<std::vector<std::uint8_t>> feedback_;    // Per user.
  std::vector<std::vector<int>> preferred_tags_;       // Per user.
};

/// FeedbackModel over a frozen 0/1 row: expected reward IS the feedback.
class FrozenFeedbackModel final : public FeedbackModel {
 public:
  explicit FrozenFeedbackModel(std::vector<std::uint8_t> row)
      : row_(std::move(row)) {}

  double ExpectedReward(std::int64_t t, const ContextMatrix& contexts,
                        EventId v) const override;
  Feedback Sample(std::int64_t t, const ContextMatrix& contexts,
                  const Arrangement& arrangement, Pcg64& rng) override;

 private:
  std::vector<std::uint8_t> row_;
};

/// Provider that replays the same contexts and user capacity each round
/// (the real experiment shows the same 50 feature vectors every time).
class FixedRoundProvider final : public RoundProvider {
 public:
  FixedRoundProvider(ContextMatrix contexts, std::int64_t user_capacity) {
    round_.contexts = std::move(contexts);
    round_.user_capacity = user_capacity;
  }

  const RoundContext& NextRound(std::int64_t /*t*/) override { return round_; }

 private:
  RoundContext round_;
};

}  // namespace fasea

#endif  // FASEA_DATAGEN_REAL_SURROGATE_H_
