// Synthetic workload generator reproducing Table 4 of the paper.
//
// θ and the per-round context vectors are drawn from Uniform[-1,1],
// Normal(0,1), or the Power distribution with exponent 2, then normalized
// to unit length. The "Shuffle" context mode mixes the three per
// dimension: dimension i follows Uniform, Normal(mean i/d, 1), or Power in
// turn. Event capacities follow a (clamped) Normal; user capacities are
// Uniform{1..5}.
#ifndef FASEA_DATAGEN_SYNTHETIC_H_
#define FASEA_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "model/context_cache.h"
#include "model/instance.h"
#include "model/round_provider.h"

namespace fasea {

enum class ValueDistribution {
  kUniform,  // Uniform[-1, 1].
  kNormal,   // N(0, 1).
  kPower,    // density ∝ x² on [0, 1].
  kShuffle,  // Per-dimension mix (contexts only).
};

std::string_view ValueDistributionName(ValueDistribution dist);

/// Table 4 configuration; defaults are the paper's bold defaults.
struct SyntheticConfig {
  std::size_t num_events = 500;  // |V| ∈ {100, 500, 1000}.
  std::size_t dim = 20;          // d ∈ {1, 5, 10, 15, 20}.
  std::int64_t horizon = 100000; // T.
  ValueDistribution theta_dist = ValueDistribution::kUniform;
  ValueDistribution context_dist = ValueDistribution::kUniform;
  double event_capacity_mean = 200.0;    // c_v ~ N(200, 100) default.
  double event_capacity_stddev = 100.0;
  std::int64_t user_capacity_min = 1;    // c_u ~ Uniform{1..5}.
  std::int64_t user_capacity_max = 5;
  double conflict_ratio = 0.25;          // cr ∈ {0, 0.25, 0.5, 0.75, 1}.
  std::uint64_t seed = 1;

  /// Basic contextual bandit mode (paper §5.2 "Basic"): unlimited event
  /// capacities, no conflicts, one event arranged per round.
  bool basic_bandit = false;

  /// Bounded-scale mode: each event's context is drawn ONCE (from a
  /// per-event engine) and held fixed for the whole horizon, instead of
  /// the paper's fresh per-round redraws. The per-round engine then only
  /// draws the user capacity, so static worlds agree on capacities with
  /// or without lazy delivery.
  bool static_contexts = false;

  /// Lazy context delivery (requires static_contexts): rounds carry an
  /// empty context matrix plus a ContextSource pointer, and policies
  /// materialize only the rows their lazy top-k scoring touches. The
  /// trajectory is bit-identical to the eager static world.
  bool lazy_contexts = false;

  Status Validate() const;
};

/// Draws one scalar from `dist`.
double SampleValue(ValueDistribution dist, Pcg64& rng);

/// Unit-norm θ of dimension `dim` drawn from `dist` (kShuffle not allowed
/// for θ). A zero draw is re-drawn.
Vector GenerateTheta(ValueDistribution dist, std::size_t dim, Pcg64& rng);

/// Fresh per-round contexts: the cheap streaming generator behind
/// SyntheticRoundProvider; exposed for direct use in tests. Fills `row`
/// and normalizes it to unit length.
void FillContextRow(ValueDistribution dist, std::size_t dim, Pcg64& rng,
                    std::span<double> row);

/// Static per-event contexts: row v is FillContextRow on a private engine
/// seeded by (seed, "event", v), so any consumer — the cache, a dense
/// provider, a test — materializes the identical row at any time.
class StaticEventContextSource final : public ContextSource {
 public:
  StaticEventContextSource(std::size_t num_events, std::size_t dim,
                           ValueDistribution dist, std::uint64_t seed)
      : num_events_(num_events), dim_(dim), dist_(dist), seed_(seed) {}

  std::size_t num_events() const override { return num_events_; }
  std::size_t dim() const override { return dim_; }
  void Materialize(EventId v, std::span<double> row) const override;

 private:
  std::size_t num_events_;
  std::size_t dim_;
  ValueDistribution dist_;
  std::uint64_t seed_;
};

/// Ground truth for static worlds: expected rewards are precomputed per
/// event (contexts never change), so OPT and the regret accounting work
/// on lazy rounds whose context matrix is empty. Sample is inherited —
/// it dispatches through this ExpectedReward, so feedback draws are
/// bit-identical to the dense LinearFeedbackModel's.
class StaticLinearFeedbackModel final : public LinearFeedbackModel {
 public:
  StaticLinearFeedbackModel(Vector theta,
                            const StaticEventContextSource& source);

  double ExpectedReward(std::int64_t t, const ContextMatrix& contexts,
                        EventId v) const override;

 private:
  std::vector<double> expected_;  // clamp(x_vᵀθ, 0, 1) per event.
};

/// A complete generated world: instance + hidden θ + providers.
class SyntheticWorld {
 public:
  static StatusOr<std::unique_ptr<SyntheticWorld>> Create(
      const SyntheticConfig& config);

  const SyntheticConfig& config() const { return config_; }
  const ProblemInstance& instance() const { return instance_; }
  const Vector& theta() const { return theta_; }

  /// Provider that generates fresh contexts + user capacity per round
  /// (deterministic given the config seed).
  RoundProvider& provider() { return *provider_; }

  /// Ground-truth feedback model over the hidden θ.
  FeedbackModel& feedback() { return *feedback_; }
  const LinearFeedbackModel& linear_feedback() const { return *feedback_; }

  /// The static per-event source (static_contexts worlds; else nullptr).
  const StaticEventContextSource* context_source() const {
    return source_.get();
  }

 private:
  SyntheticWorld() = default;

  SyntheticConfig config_;
  ProblemInstance instance_;
  Vector theta_;
  std::unique_ptr<StaticEventContextSource> source_;
  std::unique_ptr<RoundProvider> provider_;
  std::unique_ptr<LinearFeedbackModel> feedback_;
};

}  // namespace fasea

#endif  // FASEA_DATAGEN_SYNTHETIC_H_
