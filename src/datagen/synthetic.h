// Synthetic workload generator reproducing Table 4 of the paper.
//
// θ and the per-round context vectors are drawn from Uniform[-1,1],
// Normal(0,1), or the Power distribution with exponent 2, then normalized
// to unit length. The "Shuffle" context mode mixes the three per
// dimension: dimension i follows Uniform, Normal(mean i/d, 1), or Power in
// turn. Event capacities follow a (clamped) Normal; user capacities are
// Uniform{1..5}.
#ifndef FASEA_DATAGEN_SYNTHETIC_H_
#define FASEA_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "model/instance.h"
#include "model/round_provider.h"

namespace fasea {

enum class ValueDistribution {
  kUniform,  // Uniform[-1, 1].
  kNormal,   // N(0, 1).
  kPower,    // density ∝ x² on [0, 1].
  kShuffle,  // Per-dimension mix (contexts only).
};

std::string_view ValueDistributionName(ValueDistribution dist);

/// Table 4 configuration; defaults are the paper's bold defaults.
struct SyntheticConfig {
  std::size_t num_events = 500;  // |V| ∈ {100, 500, 1000}.
  std::size_t dim = 20;          // d ∈ {1, 5, 10, 15, 20}.
  std::int64_t horizon = 100000; // T.
  ValueDistribution theta_dist = ValueDistribution::kUniform;
  ValueDistribution context_dist = ValueDistribution::kUniform;
  double event_capacity_mean = 200.0;    // c_v ~ N(200, 100) default.
  double event_capacity_stddev = 100.0;
  std::int64_t user_capacity_min = 1;    // c_u ~ Uniform{1..5}.
  std::int64_t user_capacity_max = 5;
  double conflict_ratio = 0.25;          // cr ∈ {0, 0.25, 0.5, 0.75, 1}.
  std::uint64_t seed = 1;

  /// Basic contextual bandit mode (paper §5.2 "Basic"): unlimited event
  /// capacities, no conflicts, one event arranged per round.
  bool basic_bandit = false;

  Status Validate() const;
};

/// Draws one scalar from `dist`.
double SampleValue(ValueDistribution dist, Pcg64& rng);

/// Unit-norm θ of dimension `dim` drawn from `dist` (kShuffle not allowed
/// for θ). A zero draw is re-drawn.
Vector GenerateTheta(ValueDistribution dist, std::size_t dim, Pcg64& rng);

/// Fresh per-round contexts: the cheap streaming generator behind
/// SyntheticRoundProvider; exposed for direct use in tests. Fills `row`
/// and normalizes it to unit length.
void FillContextRow(ValueDistribution dist, std::size_t dim, Pcg64& rng,
                    std::span<double> row);

/// A complete generated world: instance + hidden θ + providers.
class SyntheticWorld {
 public:
  static StatusOr<std::unique_ptr<SyntheticWorld>> Create(
      const SyntheticConfig& config);

  const SyntheticConfig& config() const { return config_; }
  const ProblemInstance& instance() const { return instance_; }
  const Vector& theta() const { return theta_; }

  /// Provider that generates fresh contexts + user capacity per round
  /// (deterministic given the config seed).
  RoundProvider& provider() { return *provider_; }

  /// Ground-truth feedback model over the hidden θ.
  FeedbackModel& feedback() { return *feedback_; }
  const LinearFeedbackModel& linear_feedback() const { return *feedback_; }

 private:
  SyntheticWorld() = default;

  SyntheticConfig config_;
  ProblemInstance instance_;
  Vector theta_;
  std::unique_ptr<RoundProvider> provider_;
  std::unique_ptr<LinearFeedbackModel> feedback_;
};

}  // namespace fasea

#endif  // FASEA_DATAGEN_SYNTHETIC_H_
