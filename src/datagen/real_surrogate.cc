#include "datagen/real_surrogate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"
#include "oracle/exact.h"
#include "rng/distributions.h"
#include "rng/seed.h"

namespace fasea {

namespace {

// Table 3 category / sub-category taxonomy.
constexpr const char* kCategoryNames[6] = {"Pop Concert", "Theater", "Sports",
                                           "Folk Art",    "Music",   "Movie"};

const std::vector<std::vector<std::string>>& SubCategoryTable() {
  static const auto* table = new std::vector<std::vector<std::string>>{
      {"pop", "classic", "folk", "jazz"},
      {"drama", "opera", "musical", "children drama"},
      {"basketball", "football", "boxing"},
      {"cross talk", "magic", "acrobatics"},
      {"piano", "orchestral", "choral"},
      {"adventure", "cartoon", "romance", "fantasy", "documentary", "horror",
       "comedy"},
  };
  return *table;
}

// Paper Table 7, last row: the number of "Yes" feedbacks of each user
// (their c_u = full capacity).
constexpr std::int64_t kYesCounts[RealDataset::kNumUsers] = {
    12, 26, 11, 10, 15, 22, 16, 7, 22, 11, 13, 19, 23, 11, 11, 7, 9, 13, 17};

// Binary feature encoding following [26]: an m-valued categorical value k
// is written as (k + 1) in binary over ceil(log2(m + 1)) bits, so no value
// encodes as all-zeros.
void EncodeBits(int value, int num_bits, std::vector<double>* out) {
  const int code = value + 1;
  FASEA_CHECK(code >= 1 && code < (1 << num_bits));
  for (int bit = num_bits - 1; bit >= 0; --bit) {
    out->push_back((code >> bit) & 1 ? 1.0 : 0.0);
  }
}

// Start times typical of the event kinds (matinee vs evening shows).
constexpr double kStartHours[] = {10.0, 14.0, 19.0, 19.5, 20.0};

int FirstGlobalTag(int category) {
  int tag = 0;
  for (int c = 0; c < category; ++c) {
    tag += static_cast<int>(SubCategoryTable()[c].size());
  }
  return tag;
}

}  // namespace

std::string RealDataset::CategoryName(int category) {
  FASEA_CHECK(category >= 0 && category < 6);
  return kCategoryNames[category];
}

std::string RealDataset::SubCategoryName(int category, int sub_category) {
  FASEA_CHECK(category >= 0 && category < 6);
  const auto& subs = SubCategoryTable()[category];
  FASEA_CHECK(sub_category >= 0 &&
              sub_category < static_cast<int>(subs.size()));
  return subs[sub_category];
}

std::size_t RealDataset::NumSubCategories(int category) {
  FASEA_CHECK(category >= 0 && category < 6);
  return SubCategoryTable()[category].size();
}

int RealDataset::EventTag(std::size_t v) const {
  FASEA_CHECK(v < events_.size());
  return FirstGlobalTag(events_[v].category) + events_[v].sub_category;
}

RealDataset RealDataset::Create(std::uint64_t seed) {
  RealDataset ds;
  Pcg64 rng = MakeEngine(seed, "real-events");

  // --- Events -----------------------------------------------------------
  ds.events_.reserve(kNumEvents);
  std::vector<double> starts, ends;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    RealEvent e;
    // Round-robin over categories keeps all six populated (the paper
    // collected a spread of popular events), with random sub-structure.
    e.category = static_cast<int>(i % 6);
    e.sub_category = static_cast<int>(
        UniformInt(rng, 0, static_cast<std::int64_t>(
                              NumSubCategories(e.category)) - 1));
    e.performer = static_cast<int>(UniformInt(rng, 0, 2));
    e.country = static_cast<int>(UniformInt(rng, 0, 10));
    e.price_band = static_cast<int>(UniformInt(rng, 0, 7));
    e.day = static_cast<int>(UniformInt(rng, 0, 4));
    e.venue_x = rng.NextDouble();
    e.venue_y = rng.NextDouble();
    e.start_hour = kStartHours[UniformInt(rng, 0, 4)];
    e.duration_hours = UniformReal(rng, 1.5, 3.0);
    ds.events_.push_back(e);
    const double t0 = e.day * 24.0 + e.start_hour;
    starts.push_back(t0);
    ends.push_back(t0 + e.duration_hours);
  }
  ds.conflicts_ = ConflictGraph::FromIntervals(starts, ends);

  // --- Per-user contexts -------------------------------------------------
  // Shared categorical bits; the distance feature depends on the user's
  // home location.
  std::vector<std::vector<double>> categorical(kNumEvents);
  for (std::size_t v = 0; v < kNumEvents; ++v) {
    const RealEvent& e = ds.events_[v];
    auto& bits = categorical[v];
    EncodeBits(e.category, 3, &bits);      // 6 values.
    EncodeBits(e.sub_category, 3, &bits);  // Up to 7 values.
    EncodeBits(e.performer, 2, &bits);     // 3 values.
    EncodeBits(e.country, 4, &bits);       // 11 values.
    EncodeBits(e.price_band, 4, &bits);    // 8 values.
    EncodeBits(e.day, 3, &bits);           // 5 values.
    FASEA_CHECK(bits.size() == kDim - 1);
  }

  Pcg64 user_rng = MakeEngine(seed, "real-users");
  ds.contexts_.reserve(kNumUsers);
  ds.feedback_.reserve(kNumUsers);
  ds.preferred_tags_.reserve(kNumUsers);
  for (std::size_t u = 0; u < kNumUsers; ++u) {
    const double home_x = user_rng.NextDouble();
    const double home_y = user_rng.NextDouble();
    ContextMatrix ctx(kNumEvents, kDim);
    for (std::size_t v = 0; v < kNumEvents; ++v) {
      const RealEvent& e = ds.events_[v];
      for (std::size_t j = 0; j + 1 < kDim; ++j) {
        ctx(v, j) = categorical[v][j] / static_cast<double>(kDim);
      }
      // Normalized distance on the unit square (max possible sqrt(2)).
      const double dist = std::hypot(e.venue_x - home_x, e.venue_y - home_y) /
                          std::sqrt(2.0);
      ctx(v, kDim - 1) = dist / static_cast<double>(kDim);
    }
    ds.contexts_.push_back(std::move(ctx));

    // Hidden preference vector: positive-leaning weights on categorical
    // bits, negative weight on distance (users prefer nearby events).
    Vector pref(kDim);
    for (std::size_t j = 0; j + 1 < kDim; ++j) {
      pref[j] = Normal(user_rng, 0.0, 1.0);
    }
    pref[kDim - 1] = -std::fabs(Normal(user_rng, 2.0, 0.5));

    // Score each event; threshold at the kYesCounts[u]-th largest score so
    // the user answers Yes to exactly the paper's count. Tiny noise breaks
    // ties between identically-encoded events.
    std::vector<double> scores(kNumEvents);
    for (std::size_t v = 0; v < kNumEvents; ++v) {
      scores[v] = Dot(ds.contexts_[u].Row(v), pref.span()) +
                  1e-9 * user_rng.NextDouble();
    }
    std::vector<std::size_t> order(kNumEvents);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores[a] > scores[b];
    });
    std::vector<std::uint8_t> row(kNumEvents, 0);
    for (std::int64_t k = 0; k < kYesCounts[u]; ++k) row[order[k]] = 1;
    ds.feedback_.push_back(std::move(row));

    // Preferred tags for the OnlineGreedy baseline: the top 5 sub-category
    // tags ranked by the mean preference score of their events. This
    // mimics users ticking favourite sub-categories in a sign-up form —
    // correlated with, but not identical to, their actual feedbacks.
    std::vector<double> tag_score(kNumTags, 0.0);
    std::vector<int> tag_count(kNumTags, 0);
    for (std::size_t v = 0; v < kNumEvents; ++v) {
      const int tag = ds.EventTag(v);
      tag_score[tag] += scores[v];
      tag_count[tag] += 1;
    }
    std::vector<int> tags;
    for (int tag = 0; tag < kNumTags; ++tag) {
      if (tag_count[tag] > 0) {
        tag_score[tag] /= tag_count[tag];
        tags.push_back(tag);
      }
    }
    std::sort(tags.begin(), tags.end(),
              [&](int a, int b) { return tag_score[a] > tag_score[b]; });
    if (tags.size() > 5) tags.resize(5);
    std::sort(tags.begin(), tags.end());
    ds.preferred_tags_.push_back(std::move(tags));
  }
  return ds;
}

const ContextMatrix& RealDataset::ContextsFor(std::size_t user) const {
  FASEA_CHECK(user < contexts_.size());
  return contexts_[user];
}

const std::vector<std::uint8_t>& RealDataset::FeedbackRow(
    std::size_t user) const {
  FASEA_CHECK(user < feedback_.size());
  return feedback_[user];
}

std::int64_t RealDataset::YesCount(std::size_t user) const {
  const auto& row = FeedbackRow(user);
  return std::accumulate(row.begin(), row.end(), std::int64_t{0});
}

std::int64_t RealDataset::FullKnowledgeReward(
    std::size_t user, std::int64_t user_capacity) const {
  const auto& row = FeedbackRow(user);
  std::vector<double> scores(row.begin(), row.end());
  ProblemInstance instance = MakeInstance(1);
  PlatformState state(instance);
  ExactOracle oracle;
  const Arrangement best =
      oracle.Select(scores, conflicts_, state, user_capacity);
  return static_cast<std::int64_t>(best.size());
}

ProblemInstance RealDataset::MakeInstance(std::int64_t horizon) const {
  // Real-dataset runs exert no capacity pressure: every round could accept
  // at most c_u <= 50 events, so horizon * 50 seats can never bind.
  std::vector<std::int64_t> capacities(kNumEvents, horizon * 50);
  auto instance =
      ProblemInstance::Create(std::move(capacities), conflicts_, kDim);
  FASEA_CHECK(instance.ok());
  return std::move(instance).value();
}

const std::vector<int>& RealDataset::PreferredTags(std::size_t user) const {
  FASEA_CHECK(user < preferred_tags_.size());
  return preferred_tags_[user];
}

double FrozenFeedbackModel::ExpectedReward(std::int64_t /*t*/,
                                           const ContextMatrix& /*contexts*/,
                                           EventId v) const {
  FASEA_CHECK(v < row_.size());
  return static_cast<double>(row_[v]);
}

Feedback FrozenFeedbackModel::Sample(std::int64_t /*t*/,
                                     const ContextMatrix& /*contexts*/,
                                     const Arrangement& arrangement,
                                     Pcg64& /*rng*/) {
  Feedback feedback(arrangement.size());
  for (std::size_t i = 0; i < arrangement.size(); ++i) {
    FASEA_CHECK(arrangement[i] < row_.size());
    feedback[i] = row_[arrangement[i]];
  }
  return feedback;
}

}  // namespace fasea
