#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "rng/distributions.h"
#include "rng/seed.h"

namespace fasea {

std::string_view ValueDistributionName(ValueDistribution dist) {
  switch (dist) {
    case ValueDistribution::kUniform:
      return "Uniform";
    case ValueDistribution::kNormal:
      return "Normal";
    case ValueDistribution::kPower:
      return "Power";
    case ValueDistribution::kShuffle:
      return "Shuffle";
  }
  return "Unknown";
}

Status SyntheticConfig::Validate() const {
  if (num_events == 0) return InvalidArgumentError("num_events must be > 0");
  if (dim == 0) return InvalidArgumentError("dim must be > 0");
  if (horizon <= 0) return InvalidArgumentError("horizon must be > 0");
  if (theta_dist == ValueDistribution::kShuffle) {
    return InvalidArgumentError("theta cannot use the Shuffle distribution");
  }
  if (conflict_ratio < 0.0 || conflict_ratio > 1.0) {
    return InvalidArgumentError("conflict_ratio must be in [0, 1]");
  }
  if (user_capacity_min < 1 || user_capacity_max < user_capacity_min) {
    return InvalidArgumentError("invalid user capacity range");
  }
  if (event_capacity_stddev < 0.0) {
    return InvalidArgumentError("event capacity stddev must be >= 0");
  }
  if (lazy_contexts && !static_contexts) {
    return InvalidArgumentError("lazy_contexts requires static_contexts");
  }
  return Status::Ok();
}

double SampleValue(ValueDistribution dist, Pcg64& rng) {
  switch (dist) {
    case ValueDistribution::kUniform:
      return UniformReal(rng, -1.0, 1.0);
    case ValueDistribution::kNormal:
      return StandardNormal(rng);
    case ValueDistribution::kPower:
      return Power(rng, 2.0);
    case ValueDistribution::kShuffle:
      break;
  }
  FASEA_CHECK(false && "Shuffle has no single-scalar sampler");
  return 0.0;
}

Vector GenerateTheta(ValueDistribution dist, std::size_t dim, Pcg64& rng) {
  FASEA_CHECK(dist != ValueDistribution::kShuffle);
  Vector theta(dim);
  do {
    for (std::size_t i = 0; i < dim; ++i) theta[i] = SampleValue(dist, rng);
  } while (theta.Norm() == 0.0);
  theta.Normalize();
  return theta;
}

void FillContextRow(ValueDistribution dist, std::size_t dim, Pcg64& rng,
                    std::span<double> row) {
  FASEA_DCHECK(row.size() == dim);
  if (dist == ValueDistribution::kShuffle) {
    // Dimension i cycles Uniform / Normal(mean i/d) / Power, following the
    // paper's "shuffle" construction of more heterogeneous features.
    for (std::size_t i = 0; i < dim; ++i) {
      switch (i % 3) {
        case 0:
          row[i] = UniformReal(rng, -1.0, 1.0);
          break;
        case 1:
          row[i] = Normal(rng, static_cast<double>(i) / dim, 1.0);
          break;
        default:
          row[i] = Power(rng, 2.0);
          break;
      }
    }
  } else {
    for (std::size_t i = 0; i < dim; ++i) row[i] = SampleValue(dist, rng);
  }
  // Normalize to unit length (‖x‖ ≤ 1 requirement); re-draw is not needed:
  // a zero row stays zero, which is a valid (if useless) context.
  double norm_sq = 0.0;
  for (double v : row) norm_sq += v * v;
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (double& v : row) v *= inv;
  }
}

void StaticEventContextSource::Materialize(EventId v,
                                           std::span<double> row) const {
  FASEA_CHECK(v < num_events_);
  Pcg64 rng(DeriveSeed(seed_, "event", static_cast<std::uint64_t>(v)));
  FillContextRow(dist_, dim_, rng, row);
}

StaticLinearFeedbackModel::StaticLinearFeedbackModel(
    Vector theta, const StaticEventContextSource& source)
    : LinearFeedbackModel(std::move(theta)),
      expected_(source.num_events()) {
  Vector row(source.dim());
  for (EventId v = 0; v < source.num_events(); ++v) {
    source.Materialize(v, row.span());
    // Same Dot + clamp the dense model computes from its context matrix,
    // over the same row values — bit-identical expectations.
    expected_[v] = std::clamp(Dot(row.span(), this->theta().span()), 0.0, 1.0);
  }
}

double StaticLinearFeedbackModel::ExpectedReward(
    std::int64_t /*t*/, const ContextMatrix& /*contexts*/,
    EventId v) const {
  return expected_[v];
}

namespace {

/// Streams fresh contexts and user capacities each round, reusing one
/// buffer. Deterministic in (seed, t): each round reseeds a per-round
/// engine so that providers for different policies (or re-runs) agree
/// without sharing mutable state.
class SyntheticRoundProvider final : public RoundProvider {
 public:
  SyntheticRoundProvider(const SyntheticConfig& config, std::uint64_t seed)
      : config_(config), seed_(seed) {
    round_.contexts = ContextMatrix(config.num_events, config.dim);
  }

  const RoundContext& NextRound(std::int64_t t) override {
    Pcg64 rng(DeriveSeed(seed_, "round", static_cast<std::uint64_t>(t)));
    if (config_.basic_bandit) {
      round_.user_capacity = 1;
    } else {
      round_.user_capacity =
          UniformInt(rng, config_.user_capacity_min, config_.user_capacity_max);
    }
    for (std::size_t v = 0; v < config_.num_events; ++v) {
      FillContextRow(config_.context_dist, config_.dim, rng,
                     round_.contexts.Row(v));
    }
    return round_;
  }

 private:
  SyntheticConfig config_;
  std::uint64_t seed_;
  RoundContext round_;
};

/// Static-context provider: the per-round engine draws ONLY the user
/// capacity (so lazy and eager static worlds agree on it draw for draw);
/// contexts come from the per-event source. Eager mode materializes the
/// full matrix once up front; lazy mode hands out the source instead.
class StaticRoundProvider final : public RoundProvider {
 public:
  StaticRoundProvider(const SyntheticConfig& config, std::uint64_t seed,
                      const StaticEventContextSource* source)
      : config_(config), seed_(seed) {
    if (config.lazy_contexts) {
      round_.source = source;
    } else {
      round_.contexts = ContextMatrix(config.num_events, config.dim);
      for (EventId v = 0; v < config.num_events; ++v) {
        source->Materialize(v, round_.contexts.Row(v));
      }
    }
  }

  const RoundContext& NextRound(std::int64_t t) override {
    Pcg64 rng(DeriveSeed(seed_, "round", static_cast<std::uint64_t>(t)));
    round_.user_capacity =
        config_.basic_bandit
            ? 1
            : UniformInt(rng, config_.user_capacity_min,
                         config_.user_capacity_max);
    return round_;
  }

 private:
  SyntheticConfig config_;
  std::uint64_t seed_;
  RoundContext round_;
};

}  // namespace

StatusOr<std::unique_ptr<SyntheticWorld>> SyntheticWorld::Create(
    const SyntheticConfig& config) {
  if (Status st = config.Validate(); !st.ok()) return st;

  auto world = std::unique_ptr<SyntheticWorld>(new SyntheticWorld());
  world->config_ = config;

  Pcg64 theta_rng = MakeEngine(config.seed, "theta");
  world->theta_ = GenerateTheta(config.theta_dist, config.dim, theta_rng);

  // Event capacities: N(mean, stddev) rounded, clamped at 0 (an event
  // drawn non-positive simply never has seats). Basic bandit mode uses
  // effectively-unlimited capacity and an empty conflict graph.
  std::vector<std::int64_t> capacities(config.num_events);
  Pcg64 cap_rng = MakeEngine(config.seed, "event-capacity");
  for (auto& c : capacities) {
    if (config.basic_bandit) {
      c = config.horizon;  // Can never be exhausted.
    } else {
      const double draw = Normal(cap_rng, config.event_capacity_mean,
                                 config.event_capacity_stddev);
      c = std::max<std::int64_t>(0, std::llround(draw));
    }
  }

  Pcg64 conflict_rng = MakeEngine(config.seed, "conflicts");
  ConflictGraph conflicts =
      config.basic_bandit
          ? ConflictGraph(config.num_events)
          : ConflictGraph::Random(config.num_events, config.conflict_ratio,
                                  conflict_rng);

  auto instance = ProblemInstance::Create(std::move(capacities),
                                          std::move(conflicts), config.dim);
  if (!instance.ok()) return instance.status();
  world->instance_ = std::move(instance).value();

  if (config.static_contexts) {
    world->source_ = std::make_unique<StaticEventContextSource>(
        config.num_events, config.dim, config.context_dist,
        DeriveSeed(config.seed, "static-contexts"));
    world->provider_ = std::make_unique<StaticRoundProvider>(
        config, DeriveSeed(config.seed, "provider"), world->source_.get());
    world->feedback_ = std::make_unique<StaticLinearFeedbackModel>(
        world->theta_, *world->source_);
  } else {
    world->provider_ = std::make_unique<SyntheticRoundProvider>(
        config, DeriveSeed(config.seed, "provider"));
    world->feedback_ = std::make_unique<LinearFeedbackModel>(world->theta_);
  }
  return world;
}

}  // namespace fasea
