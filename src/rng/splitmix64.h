// SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast 64-bit generator.
//
// FASEA uses SplitMix64 for two jobs: seeding the main PCG64 engine from a
// single user seed, and deriving independent per-stream seeds so that each
// policy / dataset / round provider draws from a statistically independent
// stream (see rng/seed.h).
#ifndef FASEA_RNG_SPLITMIX64_H_
#define FASEA_RNG_SPLITMIX64_H_

#include <cstdint>

namespace fasea {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Advances the state and returns the next 64-bit output.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace fasea

#endif  // FASEA_RNG_SPLITMIX64_H_
