#include "rng/pcg64.h"

#include "rng/splitmix64.h"

namespace fasea {

namespace {

// PCG 128-bit default multiplier (from the PCG reference implementation).
constexpr unsigned __int128 kMultiplier =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;

inline std::uint64_t RotateRight(std::uint64_t value, unsigned amount) {
  return (value >> amount) | (value << ((-amount) & 63u));
}

}  // namespace

Pcg64::Pcg64(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 mixer(seed);
  const u128 initstate =
      (static_cast<u128>(mixer.Next()) << 64) | mixer.Next();
  SplitMix64 stream_mixer(stream ^ 0xDA3E39CB94B95BDBULL);
  const u128 initseq =
      (static_cast<u128>(stream_mixer.Next()) << 64) | stream_mixer.Next();
  inc_ = (initseq << 1) | 1u;
  state_ = 0u;
  Next();
  state_ += initstate;
  Next();
}

std::uint64_t Pcg64::Next() {
  state_ = state_ * kMultiplier + inc_;
  // Output function XSL-RR: xor the high and low halves, rotate by the top
  // 6 bits of the state.
  const std::uint64_t xored =
      static_cast<std::uint64_t>(state_ >> 64) ^
      static_cast<std::uint64_t>(state_);
  const unsigned rot = static_cast<unsigned>(state_ >> 122);
  return RotateRight(xored, rot);
}

std::uint64_t Pcg64::NextBounded(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  u128 product = static_cast<u128>(Next()) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    const std::uint64_t threshold = (-bound) % bound;
    while (low < threshold) {
      product = static_cast<u128>(Next()) * bound;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

}  // namespace fasea
