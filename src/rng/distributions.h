// Scalar distributions over a Pcg64 engine.
//
// These cover everything Table 4 of the paper needs: Uniform[a,b],
// Normal(mu, sigma), the Power distribution with density f(x) ∝ x^a on
// [0,1] ("Power: 2" in the paper), Bernoulli, and integer uniforms.
#ifndef FASEA_RNG_DISTRIBUTIONS_H_
#define FASEA_RNG_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "rng/pcg64.h"

namespace fasea {

/// Uniform real in [lo, hi).
double UniformReal(Pcg64& rng, double lo, double hi);

/// Uniform integer in [lo, hi] inclusive.
std::int64_t UniformInt(Pcg64& rng, std::int64_t lo, std::int64_t hi);

/// Standard normal via Box–Muller (no per-engine cache; each call draws two
/// uniforms and returns one deviate, keeping streams state-free).
double StandardNormal(Pcg64& rng);

/// Normal with mean `mu` and standard deviation `sigma` (sigma >= 0).
double Normal(Pcg64& rng, double mu, double sigma);

/// Power distribution on [0,1]: density f(x) = (a+1) x^a, sampled by
/// inverse transform u^(1/(a+1)). For a = 2 most mass sits near 1, which is
/// what the paper exploits ("values are generally large (closer to 1)").
double Power(Pcg64& rng, double a);

/// True with probability p (p clamped to [0,1]).
bool Bernoulli(Pcg64& rng, double p);

/// Fisher–Yates shuffle of `values` in place.
template <typename T>
void Shuffle(Pcg64& rng, std::vector<T>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.NextBounded(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

/// Samples `k` distinct integers from [0, n) uniformly (Floyd's algorithm);
/// the result is in ascending order.
std::vector<std::int64_t> SampleWithoutReplacement(Pcg64& rng,
                                                   std::int64_t n,
                                                   std::int64_t k);

}  // namespace fasea

#endif  // FASEA_RNG_DISTRIBUTIONS_H_
