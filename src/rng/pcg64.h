// PCG64 (pcg_xsl_rr_128_64): O'Neill's permuted congruential generator
// with 128-bit state and 64-bit output. Implemented from scratch; this is
// the main engine behind every stochastic component in FASEA.
//
// Properties we rely on:
//  - deterministic given (seed, stream): experiments reproduce bit-for-bit;
//  - independent streams: distinct odd increments give uncorrelated
//    sequences, so each policy owns a private stream.
#ifndef FASEA_RNG_PCG64_H_
#define FASEA_RNG_PCG64_H_

#include <cstdint>

namespace fasea {

class Pcg64 {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a 64-bit seed and a stream id. Internally expands both via
  /// SplitMix64 so that low-entropy seeds (0, 1, 2, ...) still start from
  /// well-mixed 128-bit states.
  explicit Pcg64(std::uint64_t seed = 0x853C49E6748FEA9BULL,
                 std::uint64_t stream = 0);

  /// Advances the state and returns the next 64-bit output.
  std::uint64_t Next();

  /// Next double uniform in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  std::uint64_t NextBounded(std::uint64_t bound);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  using u128 = unsigned __int128;

  u128 state_;
  u128 inc_;  // Odd; selects the stream.
};

}  // namespace fasea

#endif  // FASEA_RNG_PCG64_H_
