#include "rng/distributions.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/macros.h"

namespace fasea {

double UniformReal(Pcg64& rng, double lo, double hi) {
  FASEA_DCHECK(lo <= hi);
  return lo + (hi - lo) * rng.NextDouble();
}

std::int64_t UniformInt(Pcg64& rng, std::int64_t lo, std::int64_t hi) {
  FASEA_DCHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(rng.NextBounded(span));
}

double StandardNormal(Pcg64& rng) {
  // Box–Muller. Reject u1 == 0 to keep log finite.
  double u1;
  do {
    u1 = rng.NextDouble();
  } while (u1 <= 0.0);
  const double u2 = rng.NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return radius * std::cos(2.0 * M_PI * u2);
}

double Normal(Pcg64& rng, double mu, double sigma) {
  FASEA_DCHECK(sigma >= 0.0);
  return mu + sigma * StandardNormal(rng);
}

double Power(Pcg64& rng, double a) {
  FASEA_DCHECK(a > -1.0);
  return std::pow(rng.NextDouble(), 1.0 / (a + 1.0));
}

bool Bernoulli(Pcg64& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng.NextDouble() < p;
}

std::vector<std::int64_t> SampleWithoutReplacement(Pcg64& rng,
                                                   std::int64_t n,
                                                   std::int64_t k) {
  FASEA_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) samples, O(k log k) set operations.
  std::set<std::int64_t> chosen;
  for (std::int64_t j = n - k; j < n; ++j) {
    const std::int64_t t = UniformInt(rng, 0, j);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<std::int64_t>(chosen.begin(), chosen.end());
}

}  // namespace fasea
