// Deterministic derivation of per-component seeds from one experiment seed.
//
// Every experiment takes a single user-facing 64-bit seed. Components
// (policy exploration noise, feedback sampling, data generation, conflict
// graph, ...) each get an independent stream derived from that seed plus a
// stable component tag, so adding a component never perturbs the draws of
// existing ones.
#ifndef FASEA_RNG_SEED_H_
#define FASEA_RNG_SEED_H_

#include <cstdint>
#include <string_view>

#include "rng/pcg64.h"
#include "rng/splitmix64.h"

namespace fasea {

/// FNV-1a hash of a string tag, used to name sub-streams.
constexpr std::uint64_t HashTag(std::string_view tag) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Derives a child seed from (root seed, tag).
inline std::uint64_t DeriveSeed(std::uint64_t root, std::string_view tag) {
  SplitMix64 mixer(root ^ HashTag(tag));
  return mixer.Next();
}

/// Derives a child seed from (root seed, tag, index) for indexed families
/// of streams (e.g. one stream per user).
inline std::uint64_t DeriveSeed(std::uint64_t root, std::string_view tag,
                                std::uint64_t index) {
  SplitMix64 mixer(root ^ HashTag(tag));
  const std::uint64_t base = mixer.Next();
  SplitMix64 indexed(base ^ (index * 0x9E3779B97F4A7C15ULL + 0x1234567));
  return indexed.Next();
}

/// Convenience: engine on the stream named by `tag`.
inline Pcg64 MakeEngine(std::uint64_t root, std::string_view tag) {
  return Pcg64(DeriveSeed(root, tag), HashTag(tag));
}

}  // namespace fasea

#endif  // FASEA_RNG_SEED_H_
