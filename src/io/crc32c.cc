#include "io/crc32c.h"

#include <array>

namespace fasea {

namespace {

constexpr std::uint32_t kPolynomial = 0x82F63B78u;  // Reflected Castagnoli.

struct Tables {
  // tables[k][b]: CRC contribution of byte b seen k positions back.
  std::array<std::array<std::uint32_t, 256>, 4> t;

  constexpr Tables() : t{} {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
      }
      t[0][b] = crc;
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      t[1][b] = (t[0][b] >> 8) ^ t[0][t[0][b] & 0xFF];
      t[2][b] = (t[1][b] >> 8) ^ t[0][t[1][b] & 0xFF];
      t[3][b] = (t[2][b] >> 8) ^ t[0][t[2][b] & 0xFF];
    }
  }
};

constexpr Tables kTables;

}  // namespace

std::uint32_t Crc32c(std::string_view data, std::uint32_t init) {
  std::uint32_t crc = ~init;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

std::uint32_t MaskCrc32c(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

std::uint32_t UnmaskCrc32c(std::uint32_t masked) {
  const std::uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace fasea
