#include "io/wal.h"

#include "common/bytes.h"
#include "common/strings.h"
#include "io/crc32c.h"
#include "obs/trace.h"

namespace fasea {

namespace {

constexpr std::uint32_t kSegmentMagic = 0x314C5746u;  // "FWL1".
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 16;
constexpr std::size_t kFrameHeaderBytes = 8;

std::string SegmentHeader(std::uint64_t index) {
  std::string out;
  out.reserve(kSegmentHeaderBytes);
  AppendU32(&out, kSegmentMagic);
  AppendU32(&out, kSegmentVersion);
  AppendU64(&out, index);
  return out;
}

/// Parses "wal-NNNNNN.log" → NNNNNN; 0 if `name` is not a segment file.
std::uint64_t ParseSegmentIndex(const std::string& name) {
  if (!StartsWith(name, "wal-") || name.size() < 9 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return 0;
  }
  std::uint64_t index = 0;
  for (std::size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    index = index * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return index;
}

}  // namespace

std::string WalSegmentFileName(std::uint64_t index) {
  return StrFormat("wal-%06llu.log", static_cast<unsigned long long>(index));
}

std::string ShardWalDirName(const std::string& base_dir, int shard) {
  return JoinPath(base_dir, StrFormat("shard-%03d", shard));
}

// --- WalWriter -----------------------------------------------------------

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env, std::string dir,
                                                     WalOptions options) {
  FASEA_CHECK(env != nullptr);
  if (options.sync_mode == WalSyncMode::kEveryN) {
    FASEA_CHECK(options.sync_every_n > 0);
  }
  if (Status st = env->CreateDir(dir); !st.ok()) return st;
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::uint64_t max_index = 0;
  for (const std::string& name : *names) {
    const std::uint64_t index = ParseSegmentIndex(name);
    if (index > max_index) max_index = index;
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(env, std::move(dir), options));
  if (Status st = writer->OpenSegment(max_index + 1); !st.ok()) return st;
  return writer;
}

Status WalWriter::OpenSegment(std::uint64_t index) {
  const std::string path = JoinPath(dir_, WalSegmentFileName(index));
  auto file = env_->NewWritableFile(path);
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  segment_index_ = index;
  segment_bytes_written_ = 0;
  const std::string header = SegmentHeader(index);
  if (Status st = file_->Append(header); !st.ok()) {
    broken_ = true;
    // Remove the partial-header segment so the next Open does not have
    // to scan past it (a torn header is benign to ScanWal regardless).
    (void)file_->Close();
    file_.reset();
    (void)env_->DeleteFile(path);
    return st;
  }
  segment_bytes_written_ = header.size();
  return Status::Ok();
}

Status WalWriter::MaybeRotate(std::size_t next_frame_bytes) {
  if (segment_bytes_written_ <= kSegmentHeaderBytes ||
      segment_bytes_written_ + next_frame_bytes <= options_.segment_bytes) {
    return Status::Ok();
  }
  // Seal the old segment — everything in it becomes durable before the
  // new segment accepts frames, so only the active tail can ever tear.
  if (Status st = Sync(); !st.ok()) return st;
  if (Status st = file_->Close(); !st.ok()) return st;
  rotations_metric_->Increment();
  return OpenSegment(segment_index_ + 1);
}

Status WalWriter::Append(std::string_view payload) {
  if (broken_) {
    append_failures_metric_->Increment();
    return UnavailableError(
        "wal: writer is broken after an earlier append failure");
  }
  if (payload.size() > kWalMaxPayloadBytes) {
    append_failures_metric_->Increment();
    return InvalidArgumentError(
        StrFormat("wal: payload of %zu bytes exceeds the %u-byte frame "
                  "limit",
                  payload.size(), kWalMaxPayloadBytes));
  }
  TraceSpan append_span("wal.append", trace_round_, TraceRing::Global(),
                        append_latency_);
  const std::size_t frame_bytes = kFrameHeaderBytes + payload.size();
  if (Status st = MaybeRotate(frame_bytes); !st.ok()) {
    broken_ = true;
    append_failures_metric_->Increment();
    return st;
  }
  std::string frame;
  frame.reserve(frame_bytes);
  AppendU32(&frame, static_cast<std::uint32_t>(payload.size()));
  AppendU32(&frame, MaskCrc32c(Crc32c(payload)));
  frame.append(payload);
  if (Status st = file_->Append(frame); !st.ok()) {
    broken_ = true;
    append_failures_metric_->Increment();
    return st;
  }
  // Push the frame out of user-space buffers: a process crash must lose
  // at most what the fsync policy already allows.
  if (Status st = file_->Flush(); !st.ok()) {
    broken_ = true;
    append_failures_metric_->Increment();
    return st;
  }
  segment_bytes_written_ += frame_bytes;
  ++records_appended_;
  ++records_since_sync_;
  appends_metric_->Increment();
  bytes_metric_->Add(static_cast<std::int64_t>(frame_bytes));

  bool want_sync = false;
  switch (options_.sync_mode) {
    case WalSyncMode::kEveryRecord:
      want_sync = true;
      break;
    case WalSyncMode::kEveryN:
      want_sync = records_since_sync_ >= options_.sync_every_n;
      break;
    case WalSyncMode::kNever:
      break;
  }
  if (want_sync) {
    if (Status st = Sync(); !st.ok()) {
      broken_ = true;
      append_failures_metric_->Increment();
      return st;
    }
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return UnavailableError("wal: writer is closed");
  TraceSpan span("wal.fsync", trace_round_, TraceRing::Global(),
                 fsync_latency_);
  if (Status st = file_->Sync(); !st.ok()) {
    broken_ = true;
    fsync_failures_metric_->Increment();
    return st;
  }
  records_since_sync_ = 0;
  fsyncs_metric_->Increment();
  return Status::Ok();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status result = Status::Ok();
  if (!broken_ && options_.sync_mode != WalSyncMode::kNever) {
    if (Status st = file_->Sync(); st.ok()) {
      fsyncs_metric_->Increment();
    } else {
      fsync_failures_metric_->Increment();
      result = st;
    }
  }
  if (Status st = file_->Close(); !st.ok() && result.ok()) result = st;
  file_.reset();
  return result;
}

// --- ScanWal -------------------------------------------------------------

namespace {

/// Scans the frames of one segment into `scan`. Unreadable bytes at the
/// physical tail of the segment are treated as a benign tear (truncated);
/// unreadable bytes with valid data after them are corruption.
Status ScanSegment(const std::string& name, const std::string& data,
                   CorruptFramePolicy policy, WalScan* scan) {
  const auto corrupt = [&](const char* what, std::size_t pos) {
    return DataLossError(StrFormat("wal segment %s: %s at offset %zu",
                                   name.c_str(), what, pos));
  };
  if (data.size() < kSegmentHeaderBytes) {
    // A crash can leave a freshly created segment with a partial header.
    // The header precedes every frame, so such a segment holds nothing
    // acknowledged — benign even mid-log (a crash-then-reopen-then-crash
    // history leaves the torn segment followed by newer ones).
    scan->bytes_truncated += static_cast<std::int64_t>(data.size());
    return Status::Ok();
  }
  ByteReader header(std::string_view(data).substr(0, kSegmentHeaderBytes));
  const std::uint32_t magic = *header.ReadU32();
  const std::uint32_t version = *header.ReadU32();
  if (magic != kSegmentMagic) return corrupt("bad segment magic", 0);
  if (version != kSegmentVersion) {
    return DataLossError(StrFormat("wal segment %s: unsupported version %u",
                                   name.c_str(), version));
  }

  std::size_t pos = kSegmentHeaderBytes;
  while (pos < data.size()) {
    const std::size_t bytes_left = data.size() - pos;
    // Incomplete frame header or payload: a torn tail.
    bool torn = false;
    std::uint32_t payload_len = 0;
    if (bytes_left < kFrameHeaderBytes) {
      torn = true;
    } else {
      payload_len = DecodeU32(data.data() + pos);
      if (payload_len > kWalMaxPayloadBytes) {
        // An absurd length is corruption, not a tear: tears shorten data,
        // they do not rewrite already-acknowledged header bytes.
        if (policy == CorruptFramePolicy::kFail) {
          return corrupt("implausible frame length", pos);
        }
        // The length cannot be trusted, so the rest of this segment is
        // unparseable; drop it and move on.
        ++scan->corrupt_frames_skipped;
        return Status::Ok();
      }
      if (bytes_left < kFrameHeaderBytes + payload_len) torn = true;
    }
    if (torn) {
      // A tear at the physical end of *any* segment is benign: torn
      // bytes were never acknowledged. Mid-log tears happen when a
      // failed append breaks the writer and recovery (or the breaker's
      // half-open probe) reopens a fresh segment, then a later crash
      // preserves both.
      scan->bytes_truncated += static_cast<std::int64_t>(bytes_left);
      return Status::Ok();
    }

    const std::uint32_t stored_crc =
        UnmaskCrc32c(DecodeU32(data.data() + pos + 4));
    const std::string_view payload(data.data() + pos + kFrameHeaderBytes,
                                   payload_len);
    const std::size_t frame_end = pos + kFrameHeaderBytes + payload_len;
    if (Crc32c(payload) != stored_crc) {
      if (frame_end == data.size()) {
        // The final frame of the segment failed verification: a torn or
        // partially synced tail (see the mid-log tear note above).
        scan->bytes_truncated += static_cast<std::int64_t>(bytes_left);
        return Status::Ok();
      }
      if (policy == CorruptFramePolicy::kFail) {
        return corrupt("frame checksum mismatch", pos);
      }
      ++scan->corrupt_frames_skipped;
      pos = frame_end;
      continue;
    }
    scan->payloads.emplace_back(payload);
    pos = frame_end;
  }
  return Status::Ok();
}

}  // namespace

StatusOr<WalScan> ScanWal(Env* env, const std::string& dir,
                          CorruptFramePolicy policy) {
  FASEA_CHECK(env != nullptr);
  WalScan scan;
  auto names = env->ListDir(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return scan;
    return names.status();
  }
  // ListDir sorts lexicographically; zero-padded names make that the
  // numeric segment order.
  std::vector<std::string> segments;
  for (const std::string& name : *names) {
    if (ParseSegmentIndex(name) != 0) segments.push_back(name);
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    auto data = env->ReadFileToString(JoinPath(dir, segments[i]));
    if (!data.ok()) return data.status();
    if (Status st = ScanSegment(segments[i], *data, policy, &scan);
        !st.ok()) {
      return st;
    }
    ++scan.segments_scanned;
    scan.last_segment_index = ParseSegmentIndex(segments[i]);
  }
  return scan;
}

}  // namespace fasea
