// Env: the filesystem boundary of the persistence layer.
//
// Everything in src/io that touches disk goes through this interface, so
// tests can substitute a FaultInjectionEnv and prove the WAL and the
// RecoveryManager survive short writes, failed fsyncs, and bit rot
// without ever involving real hardware faults.
//
// The surface is deliberately small — exactly what a write-ahead log and
// its recovery path need: append-only writes with explicit sync, whole-
// file reads, and directory listing/creation.
#ifndef FASEA_IO_ENV_H_
#define FASEA_IO_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace fasea {

/// An append-only file handle. Append buffers; Sync makes everything
/// appended so far durable (fsync); Close flushes and releases the
/// handle. All methods may be called after a failure — they keep
/// reporting the error rather than crashing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it if missing.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the entire file into a string.
  virtual StatusOr<std::string> ReadFileToString(const std::string& path) = 0;

  /// Names (not paths) of regular files directly inside `dir`, sorted.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Creates `dir` (single level); succeeds if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// The process-wide POSIX-backed environment.
  static Env* Default();
};

/// `dir` + "/" + `name`, without doubling separators.
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace fasea

#endif  // FASEA_IO_ENV_H_
