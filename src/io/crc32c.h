// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every WAL frame.
//
// Software slicing-by-4 table implementation: no SSE4.2 dependency, so
// the same bytes verify on any host. WAL frames store a *masked* CRC (a
// rotate-and-offset of the raw value, the scheme leveldb popularized) so
// that a frame whose payload happens to embed its own CRC — or a run of
// zeros — does not accidentally verify.
#ifndef FASEA_IO_CRC32C_H_
#define FASEA_IO_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace fasea {

/// CRC32C of `data`, starting from `init` (pass a previous result to
/// checksum a logical stream in pieces).
std::uint32_t Crc32c(std::string_view data, std::uint32_t init = 0);

/// Bijective masking applied to CRCs before storing them on disk.
std::uint32_t MaskCrc32c(std::uint32_t crc);
std::uint32_t UnmaskCrc32c(std::uint32_t masked);

}  // namespace fasea

#endif  // FASEA_IO_CRC32C_H_
