#include "io/fault_injection_env.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace fasea {

namespace {
constexpr std::string_view kTornWriteMsg = "injected fault: torn write";
constexpr std::string_view kWriteErrorMsg = "injected fault: write error";
constexpr std::string_view kSyncFailureMsg = "injected fault: fsync failure";

/// Strict full-string parses: the whole value must be consumed, so a
/// typo like "0.5x" is a configuration error, not a silent truncation.
bool ParseDoubleStrict(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseInt64Strict(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

void SleepNanos(std::int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}
}  // namespace

// --- FaultSchedule -------------------------------------------------------

StatusOr<FaultSchedule> FaultSchedule::Parse(std::string_view spec) {
  FaultSchedule schedule;
  for (const std::string& raw : StrSplit(spec, ';')) {
    const std::string_view piece = StripAsciiWhitespace(raw);
    if (piece.empty()) continue;
    const std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError(StrFormat(
          "fault schedule: '%s' is not a key=value pair",
          std::string(piece).c_str()));
    }
    const std::string key(StripAsciiWhitespace(piece.substr(0, eq)));
    const std::string value(StripAsciiWhitespace(piece.substr(eq + 1)));
    const auto bad = [&](const char* why) {
      return InvalidArgumentError(StrFormat(
          "fault schedule: %s '%s' for key '%s'", why, value.c_str(),
          key.c_str()));
    };

    double rate = 0.0;
    std::int64_t number = 0;
    if (key == "append_error_rate" || key == "short_write_rate" ||
        key == "sync_error_rate") {
      if (!ParseDoubleStrict(value, &rate) || rate < 0.0 || rate > 1.0) {
        return bad("bad probability");
      }
      if (key == "append_error_rate") schedule.append_error_rate = rate;
      if (key == "short_write_rate") schedule.short_write_rate = rate;
      if (key == "sync_error_rate") schedule.sync_error_rate = rate;
      continue;
    }
    if (!ParseInt64Strict(value, &number)) return bad("bad integer");
    if (key == "seed") {
      schedule.seed = static_cast<std::uint64_t>(number);
    } else if (key == "short_write_keep_bytes") {
      if (number < 0) return bad("negative value");
      schedule.short_write_keep_bytes = static_cast<std::size_t>(number);
    } else if (key == "append_latency_ns") {
      if (number < 0) return bad("negative value");
      schedule.append_latency_ns = number;
    } else if (key == "sync_latency_ns") {
      if (number < 0) return bad("negative value");
      schedule.sync_latency_ns = number;
    } else if (key == "latency_jitter_ns") {
      if (number < 0) return bad("negative value");
      schedule.latency_jitter_ns = number;
    } else if (key == "write_error_at") {
      if (number < 0) return bad("negative value");
      schedule.write_error_at = number;
    } else if (key == "short_write_at") {
      if (number < 0) return bad("negative value");
      schedule.short_write_at = number;
    } else if (key == "sync_fail_at") {
      if (number < 0) return bad("negative value");
      schedule.sync_fail_at = number;
    } else if (key == "disarm_after_appends") {
      if (number < 0) return bad("negative value");
      schedule.disarm_after_appends = number;
    } else {
      return InvalidArgumentError(StrFormat(
          "fault schedule: unknown key '%s'", key.c_str()));
    }
  }
  return schedule;
}

std::string FaultSchedule::ToString() const {
  std::vector<std::string> pieces;
  const FaultSchedule defaults;
  if (seed != defaults.seed) {
    pieces.push_back(StrFormat("seed=%llu",
                               static_cast<unsigned long long>(seed)));
  }
  const auto rate = [&](const char* key, double value) {
    if (value > 0.0) {
      // The printed form must parse back to the same double: ToString()
      // is the wire format chaos reruns consume, so a lossy print would
      // silently change the injected rate. 15 significant digits round-
      // trip almost every value; fall back to 17 (always exact) when
      // they don't.
      std::string printed = FormatDouble(value, 15);
      double reparsed = 0.0;
      if (!ParseDoubleStrict(printed, &reparsed) || reparsed != value) {
        printed = FormatDouble(value, 17);
      }
      pieces.push_back(std::string(key) + "=" + printed);
    }
  };
  rate("append_error_rate", append_error_rate);
  rate("short_write_rate", short_write_rate);
  rate("sync_error_rate", sync_error_rate);
  if (short_write_keep_bytes != defaults.short_write_keep_bytes) {
    pieces.push_back(StrFormat("short_write_keep_bytes=%zu",
                               short_write_keep_bytes));
  }
  const auto number = [&](const char* key, std::int64_t value,
                          std::int64_t default_value) {
    if (value != default_value) {
      pieces.push_back(StrFormat("%s=%lld", key,
                                 static_cast<long long>(value)));
    }
  };
  number("append_latency_ns", append_latency_ns, 0);
  number("sync_latency_ns", sync_latency_ns, 0);
  number("latency_jitter_ns", latency_jitter_ns, 0);
  number("write_error_at", write_error_at, -1);
  number("short_write_at", short_write_at, -1);
  number("sync_fail_at", sync_fail_at, -1);
  number("disarm_after_appends", disarm_after_appends, -1);
  return StrJoin(pieces, ";");
}

bool FaultSchedule::Armed() const {
  return append_error_rate > 0.0 || short_write_rate > 0.0 ||
         sync_error_rate > 0.0 || append_latency_ns > 0 ||
         sync_latency_ns > 0 || write_error_at >= 0 ||
         short_write_at >= 0 || sync_fail_at >= 0;
}

// --- FaultInjectedWritableFile -------------------------------------------

/// Forwards to the real file but consults the env's fault plan first.
class FaultInjectedWritableFile final : public WritableFile {
 public:
  FaultInjectedWritableFile(std::unique_ptr<WritableFile> base,
                            FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    bool fail = false;
    std::int64_t delay_ns = 0;
    const std::size_t keep = env_->PlanAppend(data.size(), &fail, &delay_ns);
    SleepNanos(delay_ns);
    if (keep > 0) {
      if (Status st = base_->Append(data.substr(0, keep)); !st.ok()) {
        return st;
      }
      // A torn write reaches the medium: flush so recovery tests reading
      // through a fresh handle observe the partial frame.
      if (fail) (void)base_->Flush();
    }
    if (fail) {
      return UnavailableError(std::string(
          keep < data.size() && keep > 0 ? kTornWriteMsg : kWriteErrorMsg));
    }
    return Status::Ok();
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    std::int64_t delay_ns = 0;
    const bool fail = env_->PlanSyncFailure(&delay_ns);
    SleepNanos(delay_ns);
    if (fail) {
      // The data may or may not be durable; only the acknowledgement is
      // withheld. Flush so the bytes are at least visible to readers.
      (void)base_->Flush();
      return UnavailableError(std::string(kSyncFailureMsg));
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

// --- FaultInjectionEnv ---------------------------------------------------

void FaultInjectionEnv::ArmWriteError(std::int64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  write_error_in_ = countdown;
}

void FaultInjectionEnv::ArmShortWrite(std::int64_t countdown,
                                      std::size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  short_write_in_ = countdown;
  short_write_keep_bytes_ = keep_bytes;
}

void FaultInjectionEnv::ArmSyncFailure(std::int64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_failure_in_ = countdown;
}

void FaultInjectionEnv::ArmReadCorruption(const std::string& path_suffix,
                                          std::size_t offset,
                                          std::uint8_t mask) {
  FASEA_CHECK(mask != 0);
  std::lock_guard<std::mutex> lock(mu_);
  corruptions_[path_suffix].push_back(Corruption{offset, mask});
}

void FaultInjectionEnv::SeedRng(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Pcg64(seed, /*stream=*/0x6661756C74ULL);
}

void FaultInjectionEnv::ApplySchedule(const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Pcg64(schedule.seed, /*stream=*/0x6661756C74ULL);
  write_error_in_ = schedule.write_error_at;
  short_write_in_ = schedule.short_write_at;
  short_write_keep_bytes_ = schedule.short_write_keep_bytes;
  sync_failure_in_ = schedule.sync_fail_at;
  append_error_rate_ = schedule.append_error_rate;
  short_write_rate_ = schedule.short_write_rate;
  sync_error_rate_ = schedule.sync_error_rate;
  rate_short_write_keep_bytes_ = schedule.short_write_keep_bytes;
  append_latency_ns_ = schedule.append_latency_ns;
  sync_latency_ns_ = schedule.sync_latency_ns;
  latency_jitter_ns_ = schedule.latency_jitter_ns;
  disarm_at_appends_ = schedule.disarm_after_appends >= 0
                           ? appends_seen_ + schedule.disarm_after_appends
                           : -1;
}

void FaultInjectionEnv::DisarmAllLocked() {
  write_error_in_ = -1;
  short_write_in_ = -1;
  sync_failure_in_ = -1;
  append_error_rate_ = 0.0;
  short_write_rate_ = 0.0;
  sync_error_rate_ = 0.0;
  append_latency_ns_ = 0;
  sync_latency_ns_ = 0;
  latency_jitter_ns_ = 0;
  disarm_at_appends_ = -1;
  corruptions_.clear();
}

void FaultInjectionEnv::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  DisarmAllLocked();
}

std::int64_t FaultInjectionEnv::appends_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_seen_;
}

std::int64_t FaultInjectionEnv::syncs_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_seen_;
}

std::int64_t FaultInjectionEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

std::int64_t FaultInjectionEnv::JitteredLatencyLocked(
    std::int64_t base_ns) {
  if (base_ns <= 0) return 0;
  std::int64_t delay = base_ns;
  if (latency_jitter_ns_ > 0) {
    delay += static_cast<std::int64_t>(rng_.NextBounded(
        static_cast<std::uint64_t>(latency_jitter_ns_) + 1));
  }
  return delay;
}

std::size_t FaultInjectionEnv::PlanAppend(std::size_t size, bool* fail,
                                          std::int64_t* delay_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++appends_seen_;
  *fail = false;
  *delay_ns = 0;
  if (disarm_at_appends_ >= 0 && appends_seen_ > disarm_at_appends_) {
    DisarmAllLocked();
  }
  *delay_ns = JitteredLatencyLocked(append_latency_ns_);
  if (write_error_in_ >= 0 && write_error_in_-- == 0) {
    CountInjectedFaultLocked();
    *fail = true;
    return 0;
  }
  if (short_write_in_ >= 0 && short_write_in_-- == 0) {
    CountInjectedFaultLocked();
    *fail = true;
    return short_write_keep_bytes_ < size ? short_write_keep_bytes_ : size;
  }
  if (append_error_rate_ > 0.0 &&
      rng_.NextDouble() < append_error_rate_) {
    CountInjectedFaultLocked();
    *fail = true;
    return 0;
  }
  if (short_write_rate_ > 0.0 && rng_.NextDouble() < short_write_rate_) {
    CountInjectedFaultLocked();
    *fail = true;
    return rate_short_write_keep_bytes_ < size
               ? rate_short_write_keep_bytes_
               : size;
  }
  return size;
}

bool FaultInjectionEnv::PlanSyncFailure(std::int64_t* delay_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++syncs_seen_;
  *delay_ns = JitteredLatencyLocked(sync_latency_ns_);
  if (sync_failure_in_ >= 0) {
    if (sync_failure_in_ == 0) {
      CountInjectedFaultLocked();
      return true;  // Stays at 0: every later sync fails too.
    }
    --sync_failure_in_;
  }
  if (sync_error_rate_ > 0.0 && rng_.NextDouble() < sync_error_rate_) {
    CountInjectedFaultLocked();
    return true;
  }
  return false;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectedWritableFile(std::move(base).value(), this));
}

StatusOr<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  auto data = base_->ReadFileToString(path);
  if (!data.ok()) return data;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [suffix, faults] : corruptions_) {
    if (path.size() < suffix.size() ||
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    for (const Corruption& c : faults) {
      if (c.offset < data->size()) {
        CountInjectedFaultLocked();
        (*data)[c.offset] = static_cast<char>(
            static_cast<std::uint8_t>((*data)[c.offset]) ^ c.mask);
      }
    }
  }
  return data;
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultInjectionEnv::CreateDir(const std::string& dir) {
  return base_->CreateDir(dir);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace fasea
