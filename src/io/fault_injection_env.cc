#include "io/fault_injection_env.h"

#include <utility>

namespace fasea {

namespace {
constexpr std::string_view kTornWriteMsg = "injected fault: torn write";
constexpr std::string_view kWriteErrorMsg = "injected fault: write error";
constexpr std::string_view kSyncFailureMsg = "injected fault: fsync failure";
}  // namespace

/// Forwards to the real file but consults the env's fault plan first.
class FaultInjectedWritableFile final : public WritableFile {
 public:
  FaultInjectedWritableFile(std::unique_ptr<WritableFile> base,
                            FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    bool fail = false;
    const std::size_t keep = env_->PlanAppend(data.size(), &fail);
    if (keep > 0) {
      if (Status st = base_->Append(data.substr(0, keep)); !st.ok()) {
        return st;
      }
      // A torn write reaches the medium: flush so recovery tests reading
      // through a fresh handle observe the partial frame.
      if (fail) (void)base_->Flush();
    }
    if (fail) {
      return UnavailableError(std::string(
          keep < data.size() && keep > 0 ? kTornWriteMsg : kWriteErrorMsg));
    }
    return Status::Ok();
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (env_->PlanSyncFailure()) {
      // The data may or may not be durable; only the acknowledgement is
      // withheld. Flush so the bytes are at least visible to readers.
      (void)base_->Flush();
      return UnavailableError(std::string(kSyncFailureMsg));
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

void FaultInjectionEnv::ArmReadCorruption(const std::string& path_suffix,
                                          std::size_t offset,
                                          std::uint8_t mask) {
  FASEA_CHECK(mask != 0);
  corruptions_[path_suffix].push_back(Corruption{offset, mask});
}

void FaultInjectionEnv::DisarmAll() {
  write_error_in_ = -1;
  short_write_in_ = -1;
  sync_failure_in_ = -1;
  corruptions_.clear();
}

std::size_t FaultInjectionEnv::PlanAppend(std::size_t size, bool* fail) {
  ++appends_seen_;
  *fail = false;
  if (write_error_in_ >= 0 && write_error_in_-- == 0) {
    CountInjectedFault();
    *fail = true;
    return 0;
  }
  if (short_write_in_ >= 0 && short_write_in_-- == 0) {
    CountInjectedFault();
    *fail = true;
    return short_write_keep_bytes_ < size ? short_write_keep_bytes_ : size;
  }
  return size;
}

bool FaultInjectionEnv::PlanSyncFailure() {
  ++syncs_seen_;
  if (sync_failure_in_ >= 0) {
    if (sync_failure_in_ == 0) {
      CountInjectedFault();
      return true;  // Stays at 0: every later sync fails too.
    }
    --sync_failure_in_;
  }
  return false;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectedWritableFile(std::move(base).value(), this));
}

StatusOr<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  auto data = base_->ReadFileToString(path);
  if (!data.ok()) return data;
  for (const auto& [suffix, faults] : corruptions_) {
    if (path.size() < suffix.size() ||
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    for (const Corruption& c : faults) {
      if (c.offset < data->size()) {
        CountInjectedFault();
        (*data)[c.offset] = static_cast<char>(
            static_cast<std::uint8_t>((*data)[c.offset]) ^ c.mask);
      }
    }
  }
  return data;
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultInjectionEnv::CreateDir(const std::string& dir) {
  return base_->CreateDir(dir);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace fasea
