// FaultInjectionEnv: an Env decorator that injects storage failures on
// demand, so tests can prove the WAL and RecoveryManager keep their
// invariants under the classic crash-consistency hazards:
//
//   - write errors   — an Append fails cleanly, no bytes reach the file;
//   - short writes   — an Append persists only a prefix, then fails
//                      (a torn record, as after power loss mid-write);
//   - fsync failures — data may sit in the page cache but durability is
//                      not acknowledged;
//   - read corruption — bytes flip between write and read-back (bit rot,
//                      to exercise CRC verification and frame skipping);
//   - latency        — appends/syncs stall (a saturated or dying disk),
//                      to exercise deadlines and backoff.
//
// Two arming styles compose:
//
//   - countdowns over the *global* operation sequence (appends and syncs
//     across every file opened through this Env), which lets a test say
//     "the 7th append tears" without knowing which segment the writer
//     will be on;
//   - probabilistic rates driven by a seeded RNG (SeedRng /
//     FaultSchedule::seed), so chaos soaks inject a realistic fault mix
//     that reproduces bit-for-bit per seed for a given operation order
//     (the WAL path is serialized by the service lock, so the order is
//     deterministic too).
//
// A declarative FaultSchedule bundles one whole configuration into a
// parseable string ("append_error_rate=0.05;disarm_after_appends=200")
// for the chaos harness and `fasea_cli chaos`.
//
// Thread safety: every method may be called from any thread — one mutex
// guards the fault plan, the RNG, and the counters, so the env can sit
// under a multi-threaded chaos driver without racing.
#ifndef FASEA_IO_FAULT_INJECTION_ENV_H_
#define FASEA_IO_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"
#include "obs/metrics.h"
#include "rng/pcg64.h"

namespace fasea {

/// One declarative fault configuration, parseable from a spec string of
/// `key=value` pairs separated by ';' (whitespace around either is
/// ignored; the empty string is the all-clear schedule). Keys:
///
///   seed=N                   RNG stream for the probabilistic faults.
///   append_error_rate=P      Each append fails outright w.p. P.
///   short_write_rate=P       Each append tears w.p. P (keeps
///                            `short_write_keep_bytes` bytes).
///   short_write_keep_bytes=N Prefix kept by probabilistic tears.
///   sync_error_rate=P        Each sync fails w.p. P.
///   append_latency_ns=N      Every append stalls N ns before running.
///   sync_latency_ns=N        Every sync stalls N ns before running.
///   latency_jitter_ns=N      Adds uniform [0, N] ns to each stall.
///   write_error_at=K         The (K+1)-th append from now fails.
///   short_write_at=K         The (K+1)-th append from now tears.
///   sync_fail_at=K           The (K+1)-th sync from now fails — and
///                            every later one (a dying disk).
///   disarm_after_appends=N   After N more appends, DisarmAll fires
///                            automatically (bounded fault windows make
///                            breaker re-close assertions deterministic).
struct FaultSchedule {
  std::uint64_t seed = 0;
  double append_error_rate = 0.0;
  double short_write_rate = 0.0;
  double sync_error_rate = 0.0;
  std::size_t short_write_keep_bytes = 4;
  std::int64_t append_latency_ns = 0;
  std::int64_t sync_latency_ns = 0;
  std::int64_t latency_jitter_ns = 0;
  std::int64_t write_error_at = -1;
  std::int64_t short_write_at = -1;
  std::int64_t sync_fail_at = -1;
  std::int64_t disarm_after_appends = -1;

  static StatusOr<FaultSchedule> Parse(std::string_view spec);
  /// Canonical spec string (only non-default fields; parseable back).
  std::string ToString() const;
  /// True if any fault or latency is configured.
  bool Armed() const;
};

class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (not owned; typically Env::Default()).
  explicit FaultInjectionEnv(Env* base) : base_(base) {
    FASEA_CHECK(base != nullptr);
  }

  // --- Fault arming -----------------------------------------------------

  /// The (countdown+1)-th Append from now on fails; no bytes are written.
  void ArmWriteError(std::int64_t countdown);

  /// The (countdown+1)-th Append writes only `keep_bytes` bytes of its
  /// payload, then reports failure — a torn write.
  void ArmShortWrite(std::int64_t countdown, std::size_t keep_bytes);

  /// The (countdown+1)-th Sync from now on fails (and every later one,
  /// matching a dying disk). Appends keep succeeding.
  void ArmSyncFailure(std::int64_t countdown);

  /// Every future read of the file whose path ends with `path_suffix`
  /// sees byte `offset` XOR-ed with `mask` (mask must be non-zero).
  void ArmReadCorruption(const std::string& path_suffix, std::size_t offset,
                         std::uint8_t mask);

  /// Reseeds the probabilistic-fault RNG stream.
  void SeedRng(std::uint64_t seed);

  /// Installs `schedule` wholesale: countdowns are re-armed relative to
  /// now, rates/latencies replace the current ones, and the RNG is
  /// reseeded from schedule.seed. Corruption arms are left alone.
  void ApplySchedule(const FaultSchedule& schedule);

  /// Clears all armed faults, rates, and latencies (already-failed syncs
  /// stay failed until re-armed; this resets that too).
  void DisarmAll();

  // --- Observability ----------------------------------------------------

  std::int64_t appends_seen() const;
  std::int64_t syncs_seen() const;
  std::int64_t faults_injected() const;

  // --- Env --------------------------------------------------------------

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultInjectedWritableFile;

  struct Corruption {
    std::size_t offset;
    std::uint8_t mask;
  };

  /// Decides the fate of one Append carrying `size` bytes. Returns the
  /// number of bytes to actually write; sets `fail` when the append must
  /// report an error afterwards and `delay_ns` to the injected stall
  /// (the caller sleeps outside the env lock).
  std::size_t PlanAppend(std::size_t size, bool* fail,
                         std::int64_t* delay_ns);

  /// Decides whether the next Sync fails, and its injected stall.
  bool PlanSyncFailure(std::int64_t* delay_ns);

  void DisarmAllLocked();
  std::int64_t JitteredLatencyLocked(std::int64_t base_ns);

  /// Bumps both the local count and the process-wide injected-fault
  /// metric (so harness runs can report how many faults actually fired).
  void CountInjectedFaultLocked() {
    ++faults_injected_;
    faults_metric_->Increment();
  }

  Env* const base_;

  mutable std::mutex mu_;
  Pcg64 rng_{0, /*stream=*/0x6661756C74ULL};  // "fault"
  std::int64_t write_error_in_ = -1;
  std::int64_t short_write_in_ = -1;
  std::size_t short_write_keep_bytes_ = 0;
  std::int64_t sync_failure_in_ = -1;
  double append_error_rate_ = 0.0;
  double short_write_rate_ = 0.0;
  double sync_error_rate_ = 0.0;
  std::size_t rate_short_write_keep_bytes_ = 4;
  std::int64_t append_latency_ns_ = 0;
  std::int64_t sync_latency_ns_ = 0;
  std::int64_t latency_jitter_ns_ = 0;
  std::int64_t disarm_at_appends_ = -1;  // Absolute appends_seen_ mark.
  std::map<std::string, std::vector<Corruption>> corruptions_;

  std::int64_t appends_seen_ = 0;
  std::int64_t syncs_seen_ = 0;
  std::int64_t faults_injected_ = 0;
  Counter* faults_metric_ =
      Metrics()->GetCounter("fasea.faultenv.faults_injected");
};

}  // namespace fasea

#endif  // FASEA_IO_FAULT_INJECTION_ENV_H_
