// FaultInjectionEnv: an Env decorator that injects storage failures on
// demand, so tests can prove the WAL and RecoveryManager keep their
// invariants under the classic crash-consistency hazards:
//
//   - write errors   — an Append fails cleanly, no bytes reach the file;
//   - short writes   — an Append persists only a prefix, then fails
//                      (a torn record, as after power loss mid-write);
//   - fsync failures — data may sit in the page cache but durability is
//                      not acknowledged;
//   - read corruption — bytes flip between write and read-back (bit rot,
//                      to exercise CRC verification and frame skipping).
//
// Faults are armed with countdowns over the *global* operation sequence
// (appends and syncs across every file opened through this Env), which
// lets a test say "the 7th append tears" without knowing which segment
// the writer will be on.
#ifndef FASEA_IO_FAULT_INJECTION_ENV_H_
#define FASEA_IO_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "obs/metrics.h"

namespace fasea {

class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (not owned; typically Env::Default()).
  explicit FaultInjectionEnv(Env* base) : base_(base) {
    FASEA_CHECK(base != nullptr);
  }

  // --- Fault arming -----------------------------------------------------

  /// The (countdown+1)-th Append from now on fails; no bytes are written.
  void ArmWriteError(std::int64_t countdown) { write_error_in_ = countdown; }

  /// The (countdown+1)-th Append writes only `keep_bytes` bytes of its
  /// payload, then reports failure — a torn write.
  void ArmShortWrite(std::int64_t countdown, std::size_t keep_bytes) {
    short_write_in_ = countdown;
    short_write_keep_bytes_ = keep_bytes;
  }

  /// The (countdown+1)-th Sync from now on fails (and every later one,
  /// matching a dying disk). Appends keep succeeding.
  void ArmSyncFailure(std::int64_t countdown) { sync_failure_in_ = countdown; }

  /// Every future read of the file whose path ends with `path_suffix`
  /// sees byte `offset` XOR-ed with `mask` (mask must be non-zero).
  void ArmReadCorruption(const std::string& path_suffix, std::size_t offset,
                         std::uint8_t mask);

  /// Clears all armed faults (already-failed syncs stay failed until
  /// re-armed; this resets that too).
  void DisarmAll();

  // --- Observability ----------------------------------------------------

  std::int64_t appends_seen() const { return appends_seen_; }
  std::int64_t syncs_seen() const { return syncs_seen_; }
  std::int64_t faults_injected() const { return faults_injected_; }

  // --- Env --------------------------------------------------------------

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultInjectedWritableFile;

  struct Corruption {
    std::size_t offset;
    std::uint8_t mask;
  };

  /// Decides the fate of one Append carrying `size` bytes. Returns the
  /// number of bytes to actually write and sets `fail` when the append
  /// must report an error afterwards.
  std::size_t PlanAppend(std::size_t size, bool* fail);

  /// Decides whether the next Sync fails.
  bool PlanSyncFailure();

  /// Bumps both the local count and the process-wide injected-fault
  /// metric (so harness runs can report how many faults actually fired).
  void CountInjectedFault() {
    ++faults_injected_;
    faults_metric_->Increment();
  }

  Env* base_;
  std::int64_t write_error_in_ = -1;
  std::int64_t short_write_in_ = -1;
  std::size_t short_write_keep_bytes_ = 0;
  std::int64_t sync_failure_in_ = -1;
  std::map<std::string, std::vector<Corruption>> corruptions_;

  std::int64_t appends_seen_ = 0;
  std::int64_t syncs_seen_ = 0;
  std::int64_t faults_injected_ = 0;
  Counter* faults_metric_ =
      Metrics()->GetCounter("fasea.faultenv.faults_injected");
};

}  // namespace fasea

#endif  // FASEA_IO_FAULT_INJECTION_ENV_H_
